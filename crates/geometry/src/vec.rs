//! Three-dimensional vectors.
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A three-dimensional vector of `f64` components, used throughout RABIT
/// for positions (metres), directions, and extents.
///
/// # Example
///
/// ```
/// use rabit_geometry::Vec3;
///
/// let home = Vec3::new(0.0, 0.0, 0.3);
/// let grid = Vec3::new(0.537, 0.018, 0.12);
/// let travel = (grid - home).norm();
/// assert!(travel > 0.5 && travel < 0.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component (vertical axis; the lab floor is at `z = 0`).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Vec3::norm`]).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Returns the unit vector in this direction, or `None` if the vector
    /// is (numerically) zero.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n <= crate::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Clamps each component between the matching components of `lo` and `hi`.
    #[inline]
    pub fn clamp(self, lo: Vec3, hi: Vec3) -> Vec3 {
        self.max(lo).min(hi)
    }

    /// Linear interpolation: returns `self` at `t = 0` and `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Returns `true` if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// The components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    /// # Panics
    ///
    /// Panics if `index > 2`.
    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

impl rabit_util::ToJson for Vec3 {
    fn to_json(&self) -> rabit_util::Json {
        rabit_util::Json::obj([
            ("x", rabit_util::Json::Num(self.x)),
            ("y", rabit_util::Json::Num(self.y)),
            ("z", rabit_util::Json::Num(self.z)),
        ])
    }
}

impl rabit_util::FromJson for Vec3 {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        Ok(Vec3::new(
            rabit_util::json::field(json, "x")?,
            rabit_util::json::field(json, "y")?,
            rabit_util::json::field(json, "z")?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).dot(Vec3::new(4.0, 5.0, 6.0)), 32.0);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_squared(), 25.0);
        assert_eq!(Vec3::ZERO.distance(v), 5.0);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert!((n - Vec3::Z).norm() < 1e-12);
    }

    #[test]
    fn min_max_clamp() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 3.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
        assert_eq!(
            a.clamp(Vec3::ZERO, Vec3::splat(2.0)),
            Vec3::new(1.0, 2.0, 0.0)
        );
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(0.1, 0.2, 0.3);
        assert_eq!(Vec3::from_array(v.to_array()), v);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [Vec3::X, Vec3::Y, Vec3::Z];
        let s: Vec3 = vs.into_iter().sum();
        assert_eq!(s, Vec3::splat(1.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn component_extrema() {
        let v = Vec3::new(-1.0, 4.0, 2.0);
        assert_eq!(v.max_component(), 4.0);
        assert_eq!(v.min_component(), -1.0);
    }
}
