//! A small, dependency-free micro-benchmark harness.
//!
//! The `benches/` targets measure real compute costs with
//! `std::time::Instant`: warm up, auto-calibrate an iteration count so a
//! batch takes a measurable slice of wall clock, then report per-iteration
//! statistics over repeated batches. No external harness, deterministic
//! output format, suitable for `cargo bench` (each target is
//! `harness = false` with a plain `main`).

use std::time::Instant;

/// Target duration of one timed batch.
const BATCH_TARGET_S: f64 = 0.01;
/// Batches collected per benchmark.
const SAMPLES: usize = 20;
/// Hard cap on a single benchmark's total measuring time.
const TIME_BUDGET_S: f64 = 2.0;

/// Per-iteration timing statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed batch.
    pub iters: u64,
    /// Per-iteration time of each batch, in nanoseconds.
    pub samples_ns: Vec<f64>,
}

impl Timing {
    /// Median per-iteration time (ns) — the headline number.
    pub fn median_ns(&self) -> f64 {
        crate::histogram::percentile_interp(&self.samples_ns, 0.5)
    }

    /// Mean per-iteration time (ns).
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Fastest observed batch (ns per iteration).
    pub fn min_ns(&self) -> f64 {
        self.samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// One aligned report line, scaled to a readable unit.
    pub fn report(&self) -> String {
        format!(
            "{:<44} {:>12}/iter  (min {}, mean {}, {} iters x {} samples)",
            self.name,
            format_ns(self.median_ns()),
            format_ns(self.min_ns()),
            format_ns(self.mean_ns()),
            self.iters,
            self.samples_ns.len(),
        )
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times `f`, printing and returning the statistics.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Timing {
    // Warm-up + calibration: how long does one call take?
    let calib_start = Instant::now();
    let mut calib_iters = 0u64;
    while calib_start.elapsed().as_secs_f64() < BATCH_TARGET_S || calib_iters == 0 {
        std::hint::black_box(f());
        calib_iters += 1;
        if calib_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter_s = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
    let iters = ((BATCH_TARGET_S / per_iter_s).round() as u64).max(1);

    let mut samples_ns = Vec::with_capacity(SAMPLES);
    let total_start = Instant::now();
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let batch = t0.elapsed().as_secs_f64();
        samples_ns.push(batch * 1e9 / iters as f64);
        if total_start.elapsed().as_secs_f64() > TIME_BUDGET_S && samples_ns.len() >= 5 {
            break;
        }
    }

    let timing = Timing {
        name: name.to_string(),
        iters,
        samples_ns,
    };
    println!("{}", timing.report());
    timing
}

/// Prints a group header, mirroring criterion's group structure.
pub fn group(name: &str) {
    println!("\n# {name}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_samples() {
        let t = Timing {
            name: "t".into(),
            iters: 1,
            samples_ns: vec![10.0, 30.0, 20.0],
        };
        assert_eq!(t.median_ns(), 20.0);
        assert_eq!(t.mean_ns(), 20.0);
        assert_eq!(t.min_ns(), 10.0);
        assert!(t.report().contains("20.0 ns"));
    }

    #[test]
    fn even_sample_count_medians_between() {
        let t = Timing {
            name: "t".into(),
            iters: 1,
            samples_ns: vec![10.0, 20.0],
        };
        assert_eq!(t.median_ns(), 15.0);
    }

    #[test]
    fn bench_measures_something() {
        let t = bench("noop_loop", || std::hint::black_box(3u64.pow(7)));
        assert!(t.iters >= 1);
        assert!(!t.samples_ns.is_empty());
        assert!(t.median_ns() >= 0.0);
    }

    #[test]
    fn format_units_scale() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }
}
