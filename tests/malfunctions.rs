//! Failure injection: device malfunctions under a running workflow.
//!
//! The Fig. 2 algorithm's post-execution check (`S_actual ≠ S_expected` →
//! "Device malfunction!") exists precisely for hardware that accepts a
//! command and then fails to act. This suite injects each malfunction
//! class into each device mid-workflow and checks which ones RABIT's
//! state comparison catches — and that the blind spots are exactly the
//! unsensed variables.

use rabit::buginject::RabitStage;
use rabit::core::{Alert, LabDevice};
use rabit::devices::{Device, Malfunction};
use rabit::testbed::{workflows, Testbed};
use rabit::tracer::Tracer;

fn inject(tb: &mut Testbed, device: &str, malfunction: Malfunction) {
    let id = device.into();
    match tb.lab.device_mut(&id).expect("device exists") {
        LabDevice::Dosing(d) => d.inject_malfunction(Some(malfunction)),
        LabDevice::Arm(a) => a.inject_malfunction(Some(malfunction)),
        LabDevice::Vial(v) => v.inject_malfunction(Some(malfunction)),
        LabDevice::Hotplate(h) => h.inject_malfunction(Some(malfunction)),
        LabDevice::Centrifuge(c) => c.inject_malfunction(Some(malfunction)),
        LabDevice::Thermoshaker(t) => t.inject_malfunction(Some(malfunction)),
        LabDevice::Pump(p) => p.inject_malfunction(Some(malfunction)),
        LabDevice::Grid(_) | LabDevice::Custom(_) => panic!("uninjectable device {device}"),
    }
}

fn run_with(tb: &mut Testbed) -> Option<Alert> {
    let wf = workflows::fig5_safe_workflow(&tb.locations);
    let mut rabit = tb.rabit(RabitStage::Modified);
    Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf).alert
}

/// A stuck dosing-device door is caught at the first door command: the
/// door actuator is sensed, so `S_actual ≠ S_expected`.
#[test]
fn stuck_door_is_a_detected_malfunction() {
    let mut tb = Testbed::new();
    inject(&mut tb, "dosing_device", Malfunction::SilentNoop);
    let alert = run_with(&mut tb).expect("stuck door must alarm");
    match &alert {
        Alert::DeviceMalfunction { diffs, .. } => {
            assert!(diffs.iter().any(|d| d.device.as_str() == "dosing_device"));
        }
        other => panic!("expected malfunction alert, got {other}"),
    }
}

/// A gripper that drops everything it grasps: the arm controller notices
/// (its holding state is command-level sensed), so the pick mismatches.
#[test]
fn dropping_gripper_is_a_detected_malfunction() {
    let mut tb = Testbed::new();
    inject(&mut tb, "viperx", Malfunction::DropsObject);
    let alert = run_with(&mut tb).expect("failed grasp must alarm");
    match &alert {
        Alert::DeviceMalfunction { command, diffs } => {
            assert!(command.to_string().contains("pick_object"));
            assert!(diffs.iter().any(|d| d.key.to_string() == "robotArmHolding"));
        }
        other => panic!("expected malfunction alert, got {other}"),
    }
}

/// A silently dead vial actuator (cap/decap does nothing) is a blind
/// spot: the stopper has no sensor, so RABIT cannot notice — but the
/// run's damage profile must not get worse than the healthy run's.
#[test]
fn dead_stopper_actuator_is_an_undetectable_blind_spot() {
    let mut tb = Testbed::new();
    inject(&mut tb, "vial", Malfunction::SilentNoop);
    let alert = run_with(&mut tb);
    assert!(
        alert.is_none(),
        "no sensor can report the stopper; got {alert:?}"
    );
    assert!(tb.lab.damage_log().is_empty());
}

/// A drifting temperature sensor beyond the tolerance trips the
/// malfunction check as soon as the hotplate is commanded.
#[test]
fn sensor_drift_is_caught_when_the_device_runs() {
    use rabit::devices::{ActionKind, Command, DeviceId, StateKey};
    use rabit::tracer::Workflow;

    let mut tb = Testbed::new();
    inject(&mut tb, "hotplate", Malfunction::SensorOffset(7.5));
    let mut rabit = tb.rabit(RabitStage::Modified);
    // Seed beliefs so rules 5/6 pass and the start command is otherwise
    // legal.
    rabit.initialize(&mut tb.lab);
    rabit.believe(
        &DeviceId::new("hotplate"),
        StateKey::ContainedObject,
        Some(DeviceId::new("vial")),
    );
    rabit.believe(&DeviceId::new("vial"), StateKey::SolidMg, 5.0);
    let wf = Workflow::new("heat").then(Command::new(
        "hotplate",
        ActionKind::StartAction { value: 60.0 },
    ));
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    match report.alert.expect("7.5° of drift must alarm") {
        Alert::DeviceMalfunction { diffs, .. } => {
            assert!(diffs.iter().any(|d| d.key.to_string() == "actionValue"));
        }
        other => panic!("expected malfunction alert, got {other}"),
    }
}

/// Every injectable stage-device malfunction leaves the guarded run's
/// damage at most the healthy unguarded run's damage (RABIT plus a broken
/// device is never worse than no RABIT).
#[test]
fn malfunctions_never_create_damage_under_guard() {
    for (device, malfunction) in [
        ("dosing_device", Malfunction::SilentNoop),
        ("viperx", Malfunction::DropsObject),
        ("viperx", Malfunction::SilentNoop),
        ("ned2", Malfunction::DropsObject),
        ("vial", Malfunction::SilentNoop),
        ("hotplate", Malfunction::SensorOffset(3.0)),
        ("syringe_pump", Malfunction::SilentNoop),
    ] {
        let mut tb = Testbed::new();
        inject(&mut tb, device, malfunction);
        let _ = run_with(&mut tb);
        assert!(
            tb.lab.damage_log().is_empty(),
            "{device} with {malfunction:?} damaged the lab under guard: {:?}",
            tb.lab.damage_log()
        );
    }
}
