//! Denavit–Hartenberg chains and forward kinematics.

#![allow(clippy::needless_range_loop)] // index-paired math over fixed-size arrays

use rabit_geometry::{Mat3, Pose, Vec3};
use std::fmt;

/// One revolute joint in standard Denavit–Hartenberg convention.
///
/// The transform from frame `i-1` to frame `i` for joint angle `θ` is
/// `RotZ(θ + theta_offset) · TransZ(d) · TransX(a) · RotX(alpha)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DhParam {
    /// Link length `a` (metres).
    pub a: f64,
    /// Link offset `d` (metres).
    pub d: f64,
    /// Link twist `α` (radians).
    pub alpha: f64,
    /// Fixed offset added to the commanded joint angle (radians).
    pub theta_offset: f64,
}

impl DhParam {
    /// Creates a DH parameter row.
    pub const fn new(a: f64, d: f64, alpha: f64, theta_offset: f64) -> Self {
        DhParam {
            a,
            d,
            alpha,
            theta_offset,
        }
    }

    /// The frame-to-frame transform for joint angle `theta`.
    pub fn transform(&self, theta: f64) -> Pose {
        let rot_z = Pose::from_rotation(Mat3::rotation_z(theta + self.theta_offset));
        let trans = Pose::from_translation(Vec3::new(self.a, 0.0, self.d));
        // TransZ(d) then TransX(a) commute as a single translation in the
        // intermediate frame: (a, 0, d).
        let rot_x = Pose::from_rotation(Mat3::rotation_x(self.alpha));
        rot_z.compose(&trans).compose(&rot_x)
    }
}

/// Folds an angle (or angle difference) into `(-π, π]`.
///
/// This is the canonical representative of the angle on the circle: for a
/// joint whose limits span a full revolution, `wrap_to_pi(b - a)` is the
/// signed short-way-around move from `a` to `b`.
pub fn wrap_to_pi(angle: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let w = angle.rem_euclid(tau);
    if w > std::f64::consts::PI {
        w - tau
    } else {
        w
    }
}

/// Symmetric joint limits, radians.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointLimits {
    /// Lower bound (radians).
    pub min: f64,
    /// Upper bound (radians).
    pub max: f64,
}

impl JointLimits {
    /// Creates joint limits.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(min <= max, "joint limits inverted: [{min}, {max}]");
        JointLimits { min, max }
    }

    /// A full-revolution joint (±π).
    pub fn full_circle() -> Self {
        JointLimits::new(-std::f64::consts::PI, std::f64::consts::PI)
    }

    /// Returns `true` if these limits span a full revolution or more, i.e.
    /// the joint can reach every orientation and "the short way around" is
    /// always a legal motion. [`JointLimits::full_circle`] qualifies, as do
    /// the ±2π wrists of the UR presets.
    pub fn spans_full_circle(&self) -> bool {
        self.max - self.min >= std::f64::consts::TAU - 1e-9
    }

    /// Returns `true` if `angle` is inside the limits.
    pub fn contains(&self, angle: f64) -> bool {
        angle >= self.min && angle <= self.max
    }

    /// Clamps `angle` into the limits.
    pub fn clamp(&self, angle: f64) -> f64 {
        angle.clamp(self.min, self.max)
    }
}

/// A joint configuration for a 6-axis arm (radians).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JointConfig {
    angles: [f64; 6],
}

impl JointConfig {
    /// Creates a configuration from six joint angles (radians).
    pub const fn new(angles: [f64; 6]) -> Self {
        JointConfig { angles }
    }

    /// All-zero configuration.
    pub const ZERO: JointConfig = JointConfig { angles: [0.0; 6] };

    /// The joint angles.
    #[inline]
    pub fn angles(&self) -> &[f64; 6] {
        &self.angles
    }

    /// Angle of joint `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 5`.
    #[inline]
    pub fn angle(&self, i: usize) -> f64 {
        self.angles[i]
    }

    /// Returns a copy with joint `i` set to `angle`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 5`.
    pub fn with_angle(mut self, i: usize, angle: f64) -> Self {
        self.angles[i] = angle;
        self
    }

    /// Component-wise linear interpolation: `self` at `t = 0`, `other` at
    /// `t = 1`. Joint-space interpolation is how RABIT's simulator models
    /// motion between waypoints.
    pub fn lerp(&self, other: &JointConfig, t: f64) -> JointConfig {
        let mut out = [0.0; 6];
        for i in 0..6 {
            out[i] = self.angles[i] + (other.angles[i] - self.angles[i]) * t;
        }
        JointConfig::new(out)
    }

    /// Limit-aware interpolation: like [`JointConfig::lerp`], but joints
    /// whose limits span a full circle ([`JointLimits::spans_full_circle`])
    /// take the short way around instead of winding the long way through
    /// joint space. The interpolated angle of a wrapping joint is folded
    /// back into `(-π, π]` so it stays inside `full_circle()` limits.
    ///
    /// Plain [`JointConfig::lerp`] is what executed trajectories use
    /// (controllers interpolate raw joint coordinates); this variant is for
    /// planning-side consumers that reason on the circle, such as the
    /// Lipschitz motion bound and its property tests.
    pub fn lerp_wrapped(
        &self,
        other: &JointConfig,
        t: f64,
        limits: &[JointLimits; 6],
    ) -> JointConfig {
        let mut out = [0.0; 6];
        for i in 0..6 {
            if limits[i].spans_full_circle() {
                let d = wrap_to_pi(other.angles[i] - self.angles[i]);
                out[i] = wrap_to_pi(self.angles[i] + d * t);
            } else {
                out[i] = self.angles[i] + (other.angles[i] - self.angles[i]) * t;
            }
        }
        JointConfig::new(out)
    }

    /// Limit-aware L∞ distance: like [`JointConfig::max_joint_delta`], but
    /// the delta of a joint whose limits span a full circle is wrapped into
    /// `[0, π]` — going from `-3` rad to `3` rad on a `full_circle()` joint
    /// is a 0.28 rad move, not a 6 rad one. Forward kinematics is 2π-periodic
    /// in every revolute joint, so the wrapped delta is the one that bounds
    /// Cartesian displacement between the two end configurations.
    pub fn max_joint_delta_wrapped(&self, other: &JointConfig, limits: &[JointLimits; 6]) -> f64 {
        let mut max = 0.0f64;
        for i in 0..6 {
            let raw = other.angles[i] - self.angles[i];
            let d = if limits[i].spans_full_circle() {
                wrap_to_pi(raw).abs()
            } else {
                raw.abs()
            };
            max = max.max(d);
        }
        max
    }

    /// L∞ distance in joint space (radians): the largest single-joint move.
    pub fn max_joint_delta(&self, other: &JointConfig) -> f64 {
        self.angles
            .iter()
            .zip(other.angles.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Euclidean norm of the joint-space difference.
    pub fn distance(&self, other: &JointConfig) -> f64 {
        self.angles
            .iter()
            .zip(other.angles.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Returns `true` if every angle is finite.
    pub fn is_finite(&self) -> bool {
        self.angles.iter().all(|a| a.is_finite())
    }
}

impl fmt::Display for JointConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3}, {:.3}, {:.3}, {:.3}, {:.3}, {:.3}]",
            self.angles[0],
            self.angles[1],
            self.angles[2],
            self.angles[3],
            self.angles[4],
            self.angles[5]
        )
    }
}

impl From<[f64; 6]> for JointConfig {
    fn from(angles: [f64; 6]) -> Self {
        JointConfig::new(angles)
    }
}

/// A six-joint serial chain in DH convention, rooted at a base pose.
#[derive(Debug, Clone, PartialEq)]
pub struct DhChain {
    params: [DhParam; 6],
    base: Pose,
}

impl DhChain {
    /// Creates a chain from six DH rows, rooted at `base` (the arm's
    /// mounting pose in world/deck coordinates).
    pub fn new(params: [DhParam; 6], base: Pose) -> Self {
        DhChain { params, base }
    }

    /// The DH parameter rows.
    pub fn params(&self) -> &[DhParam; 6] {
        &self.params
    }

    /// The base (mounting) pose.
    pub fn base(&self) -> &Pose {
        &self.base
    }

    /// Replaces the base pose (e.g. to mount the same arm model at a
    /// different deck position).
    pub fn with_base(mut self, base: Pose) -> Self {
        self.base = base;
        self
    }

    /// Forward kinematics: the world-space pose of every joint frame,
    /// **including** the base frame at index 0. The end-effector frame is
    /// the last element (index 6).
    pub fn joint_poses(&self, angles: &[f64; 6]) -> [Pose; 7] {
        let mut out = [Pose::IDENTITY; 7];
        out[0] = self.base;
        let mut acc = self.base;
        for (i, (p, &theta)) in self.params.iter().zip(angles.iter()).enumerate() {
            acc = acc.compose(&p.transform(theta));
            out[i + 1] = acc;
        }
        out
    }

    /// Batched forward kinematics over a window of configurations.
    ///
    /// Clears `out` and fills it with `joint_poses(configs[k])` for every
    /// config in the window, without per-call allocation once `out` has
    /// warmed up. The evaluation is column-major (one joint across the whole
    /// window at a time), so a joint whose angle is constant across the
    /// window — bitwise-identical in every config, common when only a few
    /// joints move along a trajectory — has its frame transform (and the
    /// trig inside it) computed once and reused for every config.
    ///
    /// The composition order is exactly that of [`DhChain::joint_poses`], so
    /// the resulting poses are bit-identical to per-config evaluation.
    pub fn joint_poses_batch(&self, configs: &[JointConfig], out: &mut Vec<[Pose; 7]>) {
        out.clear();
        if configs.is_empty() {
            return;
        }
        out.resize(configs.len(), [Pose::IDENTITY; 7]);
        for o in out.iter_mut() {
            o[0] = self.base;
        }
        for (i, p) in self.params.iter().enumerate() {
            let theta0 = configs[0].angle(i);
            let shared = if configs
                .iter()
                .all(|c| c.angle(i).to_bits() == theta0.to_bits())
            {
                Some(p.transform(theta0))
            } else {
                None
            };
            for (o, c) in out.iter_mut().zip(configs.iter()) {
                let step = match &shared {
                    Some(t) => *t,
                    None => p.transform(c.angle(i)),
                };
                o[i + 1] = o[i].compose(&step);
            }
        }
    }

    /// Forward kinematics: the world-space end-effector pose.
    pub fn end_effector_pose(&self, angles: &[f64; 6]) -> Pose {
        self.joint_poses(angles)[6]
    }

    /// World-space positions of the joint origins (7 points, base first).
    pub fn joint_positions(&self, angles: &[f64; 6]) -> [Vec3; 7] {
        let poses = self.joint_poses(angles);
        let mut out = [Vec3::ZERO; 7];
        for (o, p) in out.iter_mut().zip(poses.iter()) {
            *o = p.translation;
        }
        out
    }

    /// Maximum reach: the sum of all link lengths and offsets. Any target
    /// farther than this from the base is provably infeasible — the check
    /// behind the paper's "very high, clearly infeasible position" scenario.
    pub fn max_reach(&self) -> f64 {
        self.params
            .iter()
            .map(|p| (p.a * p.a + p.d * p.d).sqrt())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    /// A simple planar 2-link-dominant chain for hand-checkable FK:
    /// joint 1 lifts by d, links 2 and 3 extend along X.
    fn simple_chain() -> DhChain {
        DhChain::new(
            [
                DhParam::new(0.0, 0.2, 0.0, 0.0),
                DhParam::new(0.3, 0.0, 0.0, 0.0),
                DhParam::new(0.25, 0.0, 0.0, 0.0),
                DhParam::new(0.0, 0.0, 0.0, 0.0),
                DhParam::new(0.0, 0.0, 0.0, 0.0),
                DhParam::new(0.0, 0.05, 0.0, 0.0),
            ],
            Pose::IDENTITY,
        )
    }

    #[test]
    fn zero_configuration_extends_along_x() {
        let c = simple_chain();
        let ee = c.end_effector_pose(&[0.0; 6]);
        // a-sum along X = 0.55; d-sum along Z = 0.25.
        assert!((ee.translation - Vec3::new(0.55, 0.0, 0.25)).norm() < 1e-12);
    }

    #[test]
    fn base_joint_rotation_swings_the_arm() {
        let c = simple_chain();
        let ee = c.end_effector_pose(&[FRAC_PI_2, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((ee.translation - Vec3::new(0.0, 0.55, 0.25)).norm() < 1e-12);
    }

    #[test]
    fn joint_poses_are_cumulative() {
        let c = simple_chain();
        let poses = c.joint_poses(&[0.0; 6]);
        assert_eq!(poses[0], Pose::IDENTITY);
        assert!((poses[1].translation - Vec3::new(0.0, 0.0, 0.2)).norm() < 1e-12);
        assert!((poses[2].translation - Vec3::new(0.3, 0.0, 0.2)).norm() < 1e-12);
        assert!((poses[3].translation - Vec3::new(0.55, 0.0, 0.2)).norm() < 1e-12);
        assert!((poses[6].translation - Vec3::new(0.55, 0.0, 0.25)).norm() < 1e-12);
    }

    #[test]
    fn base_pose_offsets_everything() {
        let base = Pose::from_translation(Vec3::new(1.0, 2.0, 0.0));
        let c = simple_chain().with_base(base);
        let ee = c.end_effector_pose(&[0.0; 6]);
        assert!((ee.translation - Vec3::new(1.55, 2.0, 0.25)).norm() < 1e-12);
        let pts = c.joint_positions(&[0.0; 6]);
        assert!((pts[0] - Vec3::new(1.0, 2.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn max_reach_bounds_end_effector_distance() {
        let c = simple_chain();
        let reach = c.max_reach();
        for k in 0..50 {
            let t = k as f64 * 0.37;
            let q = [t.sin(), (2.0 * t).cos(), t, -t, 0.5 * t, t.cos()];
            let ee = c.end_effector_pose(&q);
            assert!(
                ee.translation.distance(c.base().translation) <= reach + 1e-9,
                "config {q:?} exceeds reach"
            );
        }
    }

    #[test]
    fn dh_transform_components() {
        // Pure rotation row.
        let p = DhParam::new(0.0, 0.0, 0.0, 0.0);
        let t = p.transform(FRAC_PI_2);
        assert!((t.transform_point(Vec3::X) - Vec3::Y).norm() < 1e-12);
        // Pure translation row.
        let p = DhParam::new(0.1, 0.2, 0.0, 0.0);
        let t = p.transform(0.0);
        assert!((t.translation - Vec3::new(0.1, 0.0, 0.2)).norm() < 1e-12);
        // Twist row maps Y to Z.
        let p = DhParam::new(0.0, 0.0, FRAC_PI_2, 0.0);
        let t = p.transform(0.0);
        assert!((t.transform_vector(Vec3::Y) - Vec3::Z).norm() < 1e-12);
        // Theta offset acts like a joint angle.
        let p = DhParam::new(0.0, 0.0, 0.0, FRAC_PI_2);
        let t = p.transform(0.0);
        assert!((t.transform_vector(Vec3::X) - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn joint_config_operations() {
        let a = JointConfig::ZERO;
        let b = JointConfig::new([1.0, -1.0, 0.5, 0.0, 2.0, -0.5]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5).angle(0), 0.5);
        assert_eq!(a.max_joint_delta(&b), 2.0);
        assert!((a.distance(&b) - (1.0f64 + 1.0 + 0.25 + 4.0 + 0.25).sqrt()).abs() < 1e-12);
        assert_eq!(b.with_angle(0, 9.0).angle(0), 9.0);
        assert!(b.is_finite());
        assert!(!b.with_angle(3, f64::NAN).is_finite());
        let c: JointConfig = [0.1; 6].into();
        assert_eq!(c.angle(5), 0.1);
        assert!(!format!("{b}").is_empty());
    }

    #[test]
    fn wrap_to_pi_folds_into_half_open_pi_interval() {
        use std::f64::consts::PI;
        assert_eq!(wrap_to_pi(0.0), 0.0);
        assert!((wrap_to_pi(3.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(wrap_to_pi(PI), PI);
        assert!((wrap_to_pi(-PI) - PI).abs() < 1e-12); // -π maps to the +π representative
        assert!((wrap_to_pi(6.0) - (6.0 - 2.0 * PI)).abs() < 1e-12);
        assert!((wrap_to_pi(-6.0) - (2.0 * PI - 6.0)).abs() < 1e-12);
        assert!((wrap_to_pi(7.0) - (7.0 - 2.0 * PI)).abs() < 1e-12);
    }

    /// Pins the satellite fix: on a `full_circle()` joint the interpolation
    /// takes the short way around and the delta wraps, while bounded joints
    /// keep the plain component-wise behaviour.
    #[test]
    fn wrapped_lerp_takes_the_short_way_on_full_circle_joints() {
        use std::f64::consts::PI;
        let mut limits = [JointLimits::new(-PI, PI); 6];
        limits[1] = JointLimits::new(-1.5, 1.5); // bounded elbow: no wrapping
        let a = JointConfig::new([3.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let b = JointConfig::new([-3.0, -1.0, 0.0, 0.0, 0.0, 0.0]);

        // Joint 0 goes 3.0 → -3.0 the short way: through π, not through 0.
        let mid = a.lerp_wrapped(&b, 0.5, &limits);
        assert!(
            mid.angle(0).abs() > 3.0,
            "short way passes near ±π, got {}",
            mid.angle(0)
        );
        // Endpoints are recovered (up to the fold into (-π, π]).
        assert!((a.lerp_wrapped(&b, 0.0, &limits).angle(0) - 3.0).abs() < 1e-12);
        assert!((a.lerp_wrapped(&b, 1.0, &limits).angle(0) - (-3.0)).abs() < 1e-9);
        // Every intermediate angle stays inside the declared limits.
        for k in 0..=20 {
            let q = a.lerp_wrapped(&b, k as f64 / 20.0, &limits);
            for i in 0..6 {
                assert!(
                    limits[i].contains(q.angle(i)),
                    "t={k} joint {i}: {}",
                    q.angle(i)
                );
            }
        }
        // The bounded joint interpolates exactly like plain lerp.
        assert_eq!(mid.angle(1), a.lerp(&b, 0.5).angle(1));

        // Deltas: wrapped on joint 0 (2π - 6 ≈ 0.283), raw on joint 1 (2.0).
        let wrapped = a.max_joint_delta_wrapped(&b, &limits);
        assert!(
            (wrapped - 2.0).abs() < 1e-12,
            "bounded joint dominates: {wrapped}"
        );
        let only_j0 = JointConfig::new([3.0, 0.0, 0.0, 0.0, 0.0, 0.0])
            .max_joint_delta_wrapped(&JointConfig::new([-3.0, 0.0, 0.0, 0.0, 0.0, 0.0]), &limits);
        assert!((only_j0 - (2.0 * PI - 6.0)).abs() < 1e-12);
        // Plain delta still reports the long way (pinned by joint_config_operations).
        assert_eq!(a.max_joint_delta(&b), 6.0);
        assert!(limits[0].spans_full_circle());
        assert!(!limits[1].spans_full_circle());
        assert!(JointLimits::new(-2.0 * PI, 2.0 * PI).spans_full_circle());
    }

    #[test]
    fn batched_fk_is_bit_identical_to_scalar_fk() {
        let c = simple_chain();
        // A window where joints 0, 3, 4 are constant (trig reuse path) and
        // the rest vary per sample.
        let configs: Vec<JointConfig> = (0..9)
            .map(|k| {
                let t = k as f64 * 0.17;
                JointConfig::new([0.4, t.sin(), 0.3 * t, -1.2, 0.0, t.cos()])
            })
            .collect();
        let mut batch = Vec::new();
        c.joint_poses_batch(&configs, &mut batch);
        assert_eq!(batch.len(), configs.len());
        for (q, poses) in configs.iter().zip(batch.iter()) {
            let scalar = c.joint_poses(q.angles());
            for i in 0..7 {
                assert_eq!(poses[i], scalar[i], "pose {i} differs for {q}");
            }
        }
        // Empty window clears the buffer.
        c.joint_poses_batch(&[], &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn joint_limits() {
        let l = JointLimits::new(-1.0, 2.0);
        assert!(l.contains(0.0));
        assert!(!l.contains(2.1));
        assert_eq!(l.clamp(-5.0), -1.0);
        assert_eq!(l.clamp(5.0), 2.0);
        assert!(JointLimits::full_circle().contains(3.0));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_limits_panic() {
        let _ = JointLimits::new(1.0, -1.0);
    }
}
