//! Oriented bounding boxes.
//!
//! Devices on the deck are usually axis-aligned ([`Aabb`]), but robot-arm
//! sleep volumes and software-defined walls may be rotated relative to a
//! given arm's coordinate frame, which is what [`Obb`] captures.

use crate::{Aabb, Mat3, Pose, Vec3};

/// An oriented box: an [`Aabb`] in its own local frame, placed by a [`Pose`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obb {
    /// Center of the box in world coordinates.
    pub center: Vec3,
    /// Half-extents along the box's local axes.
    pub half_extents: Vec3,
    /// Rotation from local box axes to world axes.
    pub rotation: Mat3,
}

impl Obb {
    /// Creates an oriented box.
    ///
    /// # Panics
    ///
    /// Panics if any half-extent is negative.
    pub fn new(center: Vec3, half_extents: Vec3, rotation: Mat3) -> Self {
        assert!(
            half_extents.x >= 0.0 && half_extents.y >= 0.0 && half_extents.z >= 0.0,
            "half-extents must be non-negative, got {half_extents}"
        );
        Obb {
            center,
            half_extents,
            rotation,
        }
    }

    /// An axis-aligned box viewed as an OBB.
    pub fn from_aabb(aabb: &Aabb) -> Self {
        Obb {
            center: aabb.center(),
            half_extents: aabb.half_extents(),
            rotation: Mat3::IDENTITY,
        }
    }

    /// Places a local-frame AABB into the world with `pose`.
    pub fn from_aabb_posed(aabb: &Aabb, pose: &Pose) -> Self {
        Obb {
            center: pose.transform_point(aabb.center()),
            half_extents: aabb.half_extents(),
            rotation: pose.rotation,
        }
    }

    /// Transforms a world-space point into the box's local frame.
    pub fn world_to_local(&self, p: Vec3) -> Vec3 {
        self.rotation.transpose() * (p - self.center)
    }

    /// Transforms a local-frame point into world space.
    pub fn local_to_world(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.center
    }

    /// Returns `true` if `p` (world space) lies inside or on the box.
    pub fn contains_point(&self, p: Vec3) -> bool {
        let l = self.world_to_local(p).abs();
        l.x <= self.half_extents.x && l.y <= self.half_extents.y && l.z <= self.half_extents.z
    }

    /// The closest point inside the box (world space) to a world-space `p`.
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        let l = self
            .world_to_local(p)
            .clamp(-self.half_extents, self.half_extents);
        self.local_to_world(l)
    }

    /// Euclidean distance from `p` to the box (0 when inside).
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        (p - self.closest_point(p)).norm()
    }

    /// The world-space AABB that tightly encloses this OBB.
    pub fn bounding_aabb(&self) -> Aabb {
        // Extent along each world axis = sum of |rotation row · half_extents|.
        let mut ext = Vec3::ZERO;
        let he = self.half_extents;
        let r = self.rotation;
        ext.x =
            (r.get(0, 0) * he.x).abs() + (r.get(0, 1) * he.y).abs() + (r.get(0, 2) * he.z).abs();
        ext.y =
            (r.get(1, 0) * he.x).abs() + (r.get(1, 1) * he.y).abs() + (r.get(1, 2) * he.z).abs();
        ext.z =
            (r.get(2, 0) * he.x).abs() + (r.get(2, 1) * he.y).abs() + (r.get(2, 2) * he.z).abs();
        Aabb::from_center_half_extents(self.center, ext)
    }

    /// The eight world-space corners of the box.
    pub fn corners(&self) -> [Vec3; 8] {
        let he = self.half_extents;
        let mut out = [Vec3::ZERO; 8];
        let mut i = 0;
        for &sx in &[-1.0, 1.0] {
            for &sy in &[-1.0, 1.0] {
                for &sz in &[-1.0, 1.0] {
                    out[i] = self.local_to_world(Vec3::new(sx * he.x, sy * he.y, sz * he.z));
                    i += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn axis_aligned_obb_matches_aabb() {
        let aabb = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let obb = Obb::from_aabb(&aabb);
        assert!(obb.contains_point(Vec3::splat(0.5)));
        assert!(!obb.contains_point(Vec3::splat(1.1)));
        let back = obb.bounding_aabb();
        assert!((back.min() - aabb.min()).norm() < 1e-12);
        assert!((back.max() - aabb.max()).norm() < 1e-12);
    }

    #[test]
    fn rotated_box_containment() {
        // A 2×0.2×0.2 box rotated 45° about Z.
        let obb = Obb::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.1, 0.1),
            Mat3::rotation_z(FRAC_PI_4),
        );
        // Along the rotated long axis.
        let on_axis = Vec3::new(0.6, 0.6, 0.0);
        assert!(obb.contains_point(on_axis));
        // Along the world X axis (outside the thin rotated box).
        assert!(!obb.contains_point(Vec3::new(0.8, 0.0, 0.0)));
    }

    #[test]
    fn closest_point_and_distance() {
        let obb = Obb::new(Vec3::ZERO, Vec3::splat(1.0), Mat3::rotation_z(FRAC_PI_4));
        let inside = Vec3::new(0.1, 0.1, 0.1);
        assert!((obb.closest_point(inside) - inside).norm() < 1e-12);
        assert!(obb.distance_to_point(inside) < 1e-12);
        let far = Vec3::new(0.0, 0.0, 5.0);
        assert!((obb.distance_to_point(far) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_aabb_contains_all_corners() {
        let obb = Obb::new(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.5, 0.3, 0.2),
            Mat3::rotation_axis_angle(Vec3::new(1.0, 1.0, 1.0), 0.8).unwrap(),
        );
        let aabb = obb.bounding_aabb();
        for c in obb.corners() {
            assert!(
                aabb.distance_to_point(c) < 1e-9,
                "corner {c} escapes bounding aabb"
            );
        }
    }

    #[test]
    fn posed_aabb_placement() {
        let local = Aabb::from_center_half_extents(Vec3::ZERO, Vec3::splat(0.5));
        let pose = Pose::new(Mat3::rotation_z(FRAC_PI_4), Vec3::new(1.0, 0.0, 0.0));
        let obb = Obb::from_aabb_posed(&local, &pose);
        assert!((obb.center - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-12);
        assert!(obb.contains_point(Vec3::new(1.0, 0.0, 0.4)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_extents_panic() {
        let _ = Obb::new(Vec3::ZERO, Vec3::new(-1.0, 1.0, 1.0), Mat3::IDENTITY);
    }

    #[test]
    fn world_local_roundtrip() {
        let obb = Obb::new(
            Vec3::new(0.3, 0.4, 0.5),
            Vec3::splat(1.0),
            Mat3::rotation_y(0.6),
        );
        let p = Vec3::new(-0.2, 0.9, 0.1);
        let back = obb.local_to_world(obb.world_to_local(p));
        assert!((back - p).norm() < 1e-12);
    }
}
