//! The resumable campaign runner: plan in, state directory and merged
//! artifact out.
//!
//! # State directory layout
//!
//! ```text
//! <dir>/manifest.json            run-level manifest (plan + fingerprint
//!                                + invocation count + warnings)
//! <dir>/trials/<trial_id>.json   one state file per trial
//! <dir>/campaign_artifact.json   merged artifact, written when no
//!                                pending work remains
//! ```
//!
//! Every file is written atomically (temp file + rename), so a kill at
//! any instant leaves each file either absent, whole at its previous
//! content, or whole at its new content — never torn. A resumed run
//! trusts `Done`/`Skipped` state files, resets `Running` (interrupted),
//! `Failed`, and corrupt files back to `Pending` with a warning in the
//! manifest, and re-executes only those.

use crate::plan::{CampaignPlan, PlanError, Trial, WorkflowSpec, PLACEMENT_TARGET};
use crate::state::{TrialResult, TrialState, TrialStatus};
use rabit_core::{Lab, Stage, Substrate};
use rabit_geometry::noise::PositionNoise;
use rabit_tracer::FleetJob;
use rabit_util::json::field;
use rabit_util::{FromJson, Json, JsonError, ToJson};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use std::{fs, io};

/// The schema tag carried by run manifests.
pub const MANIFEST_SCHEMA: &str = "rabit.campaign.manifest/v1";

/// Anything that can stop a campaign from running or resuming.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// Filesystem trouble under the state directory.
    Io {
        /// The file the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The plan cannot be materialized.
    Plan(PlanError),
    /// The state directory belongs to a different plan.
    PlanMismatch {
        /// Fingerprint the manifest on disk carries.
        on_disk: String,
        /// Fingerprint of the plan being run.
        requested: String,
    },
    /// The run manifest exists but does not decode.
    ManifestInvalid(JsonError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io { path, source } => {
                write!(f, "campaign io error at {}: {source}", path.display())
            }
            CampaignError::Plan(err) => write!(f, "campaign plan error: {err}"),
            CampaignError::PlanMismatch { on_disk, requested } => write!(
                f,
                "state directory belongs to plan {on_disk}, refusing to resume plan {requested}"
            ),
            CampaignError::ManifestInvalid(err) => write!(f, "manifest invalid: {err}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io { source, .. } => Some(source),
            CampaignError::Plan(err) => Some(err),
            CampaignError::ManifestInvalid(err) => Some(err),
            CampaignError::PlanMismatch { .. } => None,
        }
    }
}

impl From<PlanError> for CampaignError {
    fn from(err: PlanError) -> Self {
        CampaignError::Plan(err)
    }
}

/// What one [`CampaignRunner::run`] invocation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Trials executed by this invocation.
    pub executed: usize,
    /// Trials in `Done` after this invocation (cumulative).
    pub done: usize,
    /// Trials in `Failed` after this invocation.
    pub failed: usize,
    /// Trials in `Skipped` after this invocation.
    pub skipped: usize,
    /// Trials still `Pending` (non-zero when a `limit` stopped early).
    pub pending: usize,
    /// Warnings this invocation appended to the manifest (resume
    /// resets, corrupt state files, panicked trials).
    pub warnings: Vec<String>,
}

impl RunSummary {
    /// Whether the campaign is complete (nothing pending).
    pub fn complete(&self) -> bool {
        self.pending == 0
    }
}

/// Executes a [`CampaignPlan`] against a state directory, resumably.
pub struct CampaignRunner {
    plan: CampaignPlan,
    fingerprint: String,
    trials: Vec<Trial>,
    dir: PathBuf,
}

impl CampaignRunner {
    /// Materializes `plan` over the state directory `dir` (created on
    /// first run; resumed if it already holds this plan's state).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Plan`] when the plan does not
    /// materialize.
    pub fn new(plan: CampaignPlan, dir: impl Into<PathBuf>) -> Result<Self, CampaignError> {
        let trials = plan.materialize()?;
        let fingerprint = plan.fingerprint();
        Ok(CampaignRunner {
            plan,
            fingerprint,
            trials,
            dir: dir.into(),
        })
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The materialized trial matrix, in index order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of trials in the matrix.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether the matrix is empty (it never is for a valid plan).
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    fn trial_path(&self, trial: &Trial) -> PathBuf {
        self.dir.join("trials").join(format!("{}.json", trial.id))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Path of the merged artifact (exists once the campaign
    /// completed).
    pub fn artifact_path(&self) -> PathBuf {
        self.dir.join("campaign_artifact.json")
    }

    /// Runs up to `limit` pending trials (all of them for `None`) on
    /// `threads` workers, then updates the manifest — and, once nothing
    /// is pending, writes the merged artifact.
    ///
    /// Passing a `limit` is the deterministic stand-in for a kill: the
    /// invocation stops after that many trials exactly as if the
    /// process had died between two trial completions.
    ///
    /// # Errors
    ///
    /// Returns a [`CampaignError`] for filesystem trouble, a manifest
    /// that decodes but carries a different plan fingerprint, or a
    /// manifest that does not decode at all (state files, by contrast,
    /// self-heal: a corrupt one only re-runs its trial).
    pub fn run(&self, threads: usize, limit: Option<usize>) -> Result<RunSummary, CampaignError> {
        let trials_dir = self.dir.join("trials");
        fs::create_dir_all(&trials_dir).map_err(|source| CampaignError::Io {
            path: trials_dir.clone(),
            source,
        })?;
        let mut manifest = self.load_manifest()?;
        manifest.invocations += 1;
        let mut warnings = Vec::new();

        // Scan: classify every trial from its state file.
        let mut states: Vec<TrialState> = Vec::with_capacity(self.trials.len());
        for trial in &self.trials {
            states.push(self.scan_trial(trial, &mut warnings));
        }

        // Persist skip transitions and collect the pending slice.
        let mut pending: Vec<usize> = Vec::new();
        for (trial, state) in self.trials.iter().zip(states.iter_mut()) {
            if trial.skipped && state.status == TrialStatus::Pending {
                state.advance(TrialStatus::Skipped);
                self.write_state(trial, state)?;
            } else if state.status == TrialStatus::Pending {
                pending.push(trial.index);
            }
        }
        let selected: Vec<usize> = match limit {
            Some(k) => pending.iter().copied().take(k).collect(),
            None => pending,
        };

        // Execute the selected trials on the work-stealing pool. Each
        // job claims its trial (Running state hits disk before the
        // workflow runs) and persists its own outcome, so a kill leaves
        // every finished trial's Done file already on disk.
        let executed: Vec<(TrialState, Option<String>, Result<(), CampaignError>)> =
            rabit_core::fleet::run_indexed(selected.len(), threads, |j| {
                let trial = &self.trials[selected[j]];
                let mut state = states[trial.index].clone();
                state.attempt += 1;
                state.advance(TrialStatus::Running);
                if let Err(err) = self.write_state(trial, &state) {
                    return (state, None, Err(err));
                }
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| execute_trial(trial)));
                state.wall_ms = Some(started.elapsed().as_secs_f64() * 1e3);
                let warning = match outcome {
                    Ok(result) => {
                        state.advance(TrialStatus::Done);
                        state.result = Some(result);
                        None
                    }
                    Err(panic) => {
                        state.advance(TrialStatus::Failed);
                        state.result = None;
                        Some(format!(
                            "trial {} panicked: {}",
                            trial.id,
                            panic_message(&panic)
                        ))
                    }
                };
                let write = self.write_state(trial, &state);
                (state, warning, write)
            });
        for (state, warning, write) in executed {
            if let Some(w) = warning {
                warnings.push(w);
            }
            write?;
            let index = index_of(&self.trials, &state.trial_id);
            states[index] = state;
        }

        // Manifest update + (on completion) the merged artifact.
        manifest.warnings.extend(warnings.iter().cloned());
        self.write_manifest(&manifest)?;
        let summary = RunSummary {
            executed: selected.len(),
            done: count(&states, TrialStatus::Done),
            failed: count(&states, TrialStatus::Failed),
            skipped: count(&states, TrialStatus::Skipped),
            pending: count(&states, TrialStatus::Pending) + count(&states, TrialStatus::Running),
            warnings,
        };
        if summary.pending == 0 {
            let artifact = self.assemble_artifact(&states);
            self.atomic_write(
                &self.artifact_path(),
                &format!("{}\n", artifact.to_pretty()),
            )?;
        }
        Ok(summary)
    }

    /// Reads the merged artifact back (after a completed run).
    ///
    /// # Errors
    ///
    /// Returns an error when the artifact is absent (campaign not
    /// complete) or does not parse.
    pub fn artifact(&self) -> Result<Json, CampaignError> {
        let path = self.artifact_path();
        let text = fs::read_to_string(&path).map_err(|source| CampaignError::Io {
            path: path.clone(),
            source,
        })?;
        Json::parse(&text).map_err(CampaignError::ManifestInvalid)
    }

    /// Reads every trial's persisted state, in matrix order (missing
    /// files come back as fresh `Pending`).
    pub fn states(&self) -> Vec<TrialState> {
        let mut warnings = Vec::new();
        self.trials
            .iter()
            .map(|t| self.scan_trial(t, &mut warnings))
            .collect()
    }

    fn scan_trial(&self, trial: &Trial, warnings: &mut Vec<String>) -> TrialState {
        let path = self.trial_path(trial);
        let fresh = || TrialState::pending(&trial.id, &self.fingerprint, trial.seed);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return fresh(),
            Err(err) => {
                warnings.push(format!(
                    "state file {} unreadable ({err}); re-running trial",
                    path.display()
                ));
                return fresh();
            }
        };
        let decoded = Json::parse(&text).and_then(|json| TrialState::from_json(&json));
        let state = match decoded {
            Ok(state) => state,
            Err(err) => {
                warnings.push(format!(
                    "state file {} corrupt ({err}); re-running trial",
                    path.display()
                ));
                return fresh();
            }
        };
        if state.trial_id != trial.id || state.plan_fingerprint != self.fingerprint {
            warnings.push(format!(
                "state file {} belongs to another trial or plan; re-running trial",
                path.display()
            ));
            return fresh();
        }
        match state.status {
            TrialStatus::Done | TrialStatus::Skipped | TrialStatus::Pending => state,
            TrialStatus::Running => {
                warnings.push(format!(
                    "trial {} was interrupted mid-run; re-running",
                    trial.id
                ));
                reset_pending(state)
            }
            TrialStatus::Failed => {
                warnings.push(format!("trial {} failed previously; retrying", trial.id));
                reset_pending(state)
            }
        }
    }

    fn assemble_artifact(&self, states: &[TrialState]) -> Json {
        // Deterministic by construction: trial entries carry only the
        // plan-derived result, never attempt counts or wall-clock time.
        let trials: Vec<Json> = states
            .iter()
            .map(|state| {
                Json::obj([
                    ("trial_id", Json::Str(state.trial_id.clone())),
                    ("status", Json::Str(state.status.as_str().to_string())),
                    ("seed", Json::Str(format!("{:016x}", state.seed))),
                    (
                        "result",
                        match &state.result {
                            Some(r) => r.to_json(),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        let summary = Json::obj([
            ("trials", states.len().to_json()),
            ("done", count(states, TrialStatus::Done).to_json()),
            ("failed", count(states, TrialStatus::Failed).to_json()),
            ("skipped", count(states, TrialStatus::Skipped).to_json()),
            (
                "baseline",
                match self.plan.baseline() {
                    Some(spec) => Json::Str(spec.as_str()),
                    None => Json::Null,
                },
            ),
        ]);
        Json::obj([
            ("name", Json::Str(self.plan.name().to_string())),
            ("kind", Json::Str("campaign".to_string())),
            ("config", self.plan.to_json()),
            (
                "results",
                Json::obj([("summary", summary), ("trials", Json::Arr(trials))]),
            ),
        ])
    }

    fn load_manifest(&self) -> Result<Manifest, CampaignError> {
        let path = self.manifest_path();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) if err.kind() == io::ErrorKind::NotFound => {
                return Ok(Manifest {
                    name: self.plan.name().to_string(),
                    plan_fingerprint: self.fingerprint.clone(),
                    plan: self.plan.to_json(),
                    invocations: 0,
                    warnings: Vec::new(),
                })
            }
            Err(source) => return Err(CampaignError::Io { path, source }),
        };
        let manifest = Json::parse(&text)
            .and_then(|json| Manifest::from_json(&json))
            .map_err(CampaignError::ManifestInvalid)?;
        if manifest.plan_fingerprint != self.fingerprint {
            return Err(CampaignError::PlanMismatch {
                on_disk: manifest.plan_fingerprint,
                requested: self.fingerprint.clone(),
            });
        }
        Ok(manifest)
    }

    fn write_manifest(&self, manifest: &Manifest) -> Result<(), CampaignError> {
        self.atomic_write(
            &self.manifest_path(),
            &format!("{}\n", manifest.to_json().to_pretty()),
        )
    }

    fn write_state(&self, trial: &Trial, state: &TrialState) -> Result<(), CampaignError> {
        self.atomic_write(
            &self.trial_path(trial),
            &format!("{}\n", state.to_json().to_pretty()),
        )
    }

    fn atomic_write(&self, path: &Path, text: &str) -> Result<(), CampaignError> {
        let tmp = path.with_extension("json.tmp");
        let io_err = |source| CampaignError::Io {
            path: path.to_path_buf(),
            source,
        };
        fs::write(&tmp, text).map_err(io_err)?;
        fs::rename(&tmp, path).map_err(io_err)
    }
}

/// The run-level manifest persisted at `<dir>/manifest.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The plan's name.
    pub name: String,
    /// The plan fingerprint the directory is bound to.
    pub plan_fingerprint: String,
    /// The full serialized plan (the directory is self-describing).
    pub plan: Json,
    /// How many `run` invocations have touched this directory.
    pub invocations: usize,
    /// Accumulated warnings (resume resets, corrupt files, panics).
    pub warnings: Vec<String>,
}

impl ToJson for Manifest {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(MANIFEST_SCHEMA.to_string())),
            ("name", Json::Str(self.name.clone())),
            ("plan_fingerprint", Json::Str(self.plan_fingerprint.clone())),
            ("plan", self.plan.clone()),
            ("invocations", self.invocations.to_json()),
            ("warnings", self.warnings.to_json()),
        ])
    }
}

impl FromJson for Manifest {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let schema: String = field(json, "schema")?;
        if schema != MANIFEST_SCHEMA {
            return Err(JsonError::decode(format!(
                "unsupported manifest schema '{schema}' (expected '{MANIFEST_SCHEMA}')"
            )));
        }
        Ok(Manifest {
            name: field(json, "name")?,
            plan_fingerprint: field(json, "plan_fingerprint")?,
            plan: json
                .get("plan")
                .cloned()
                .ok_or_else(|| JsonError::decode("missing field 'plan'"))?,
            invocations: field(json, "invocations")?,
            warnings: field(json, "warnings")?,
        })
    }
}

/// Runs a plan to completion in a throwaway state directory and returns
/// `(merged artifact, final trial states)`. The directory is removed
/// afterwards — this is the entry point for bench bins and tables that
/// want campaign semantics without managing a directory.
///
/// # Errors
///
/// Returns any [`CampaignError`] the underlying runner produces.
pub fn run_ephemeral(
    plan: CampaignPlan,
    threads: usize,
) -> Result<(Json, Vec<TrialState>), CampaignError> {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rabit-campaign-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let runner = CampaignRunner::new(plan, &dir)?;
    let result = runner.run(threads, None).and_then(|_| {
        let artifact = runner.artifact()?;
        let states = runner.states();
        Ok((artifact, states))
    });
    let _ = fs::remove_dir_all(&dir);
    result
}

/// Executes one trial through the shared [`FleetJob`] code path.
fn execute_trial(trial: &Trial) -> TrialResult {
    // Specs were resolved during materialization, so build failures
    // here are bugs, not user errors — a panic flips the trial to
    // Failed and surfaces in the manifest.
    let workflow = trial.workflow.build().expect("spec validated at plan time");
    let fault = trial
        .fault
        .build(trial.seed)
        .expect("spec validated at plan time");
    let substrate = trial.substrate.build();
    let placement = trial.workflow == WorkflowSpec::Placement;
    let noisy;
    let substrate: &dyn Substrate = if placement {
        noisy = SeededNoise {
            inner: substrate,
            seed: trial.seed,
        };
        &noisy
    } else {
        &substrate
    };
    let (run, lab) = FleetJob {
        substrate,
        workflow: &workflow,
        fault,
        guarded: trial.mode.guarded(),
        snapshot: None,
    }
    .execute();
    let placement_error_m = if placement {
        arm_error(&lab, PLACEMENT_TARGET)
    } else {
        None
    };
    let alert = run.report.alert.as_ref();
    TrialResult {
        workflow: trial.workflow.as_str(),
        substrate: run.substrate.unwrap_or_default(),
        stage: run.stage.map(|s| s.name().to_string()).unwrap_or_default(),
        mode: trial.mode.as_str().to_string(),
        fault: trial.fault.as_str(),
        outcome: if run.report.completed() {
            "completed".to_string()
        } else {
            "blocked".to_string()
        },
        alert: alert.map(|a| a.headline().to_string()),
        detected: alert.is_some_and(|a| a.is_rabit_detection()),
        device_fault: alert.is_some_and(|a| !a.is_rabit_detection()),
        executed: run.report.executed,
        lab_time_s: run.report.lab_time_s,
        rabit_overhead_s: run.report.rabit_overhead_s,
        damage: run.damage.iter().map(|d| d.severity.to_string()).collect(),
        faults_injected: run.faults_injected,
        cache_hits: run.cache_hits,
        cache_misses: run.cache_misses,
        samples_checked: run.samples_checked,
        samples_skipped: run.samples_skipped,
        distance_queries: run.distance_queries,
        placement_error_m,
    }
}

fn arm_error(lab: &Lab, target: rabit_geometry::Vec3) -> Option<f64> {
    let device = lab.device(&"viperx".into())?;
    let arm = device.as_arm()?;
    Some((arm.location() - target).norm())
}

/// A substrate wrapper that seeds the inner substrate's positional
/// noise onto the ViperX from the trial seed — how placement-precision
/// trials get per-trial noise that is still a pure function of the
/// plan.
struct SeededNoise<S: Substrate> {
    inner: S,
    seed: u64,
}

impl<S: Substrate> Substrate for SeededNoise<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn stage(&self) -> Stage {
        self.inner.stage()
    }
    fn build_lab(&self) -> Lab {
        let mut lab = self.inner.build_lab();
        lab.set_arm_noise("viperx", self.inner.position_noise(), self.seed);
        lab
    }
    fn rulebase(&self) -> rabit_rulebase::RulebaseSnapshot {
        self.inner.rulebase()
    }
    fn catalog(&self) -> rabit_rulebase::DeviceCatalog {
        self.inner.catalog()
    }
    fn latency(&self) -> rabit_devices::LatencyModel {
        self.inner.latency()
    }
    fn position_noise(&self) -> PositionNoise {
        self.inner.position_noise()
    }
    fn validator(&self) -> Option<Box<dyn rabit_core::TrajectoryValidator>> {
        self.inner.validator()
    }
    fn engine_config(&self) -> rabit_core::RabitConfig {
        self.inner.engine_config()
    }
    fn fault_plan(&self) -> rabit_core::FaultPlan {
        self.inner.fault_plan()
    }
}

fn reset_pending(mut state: TrialState) -> TrialState {
    state.status = TrialStatus::Pending;
    state.result = None;
    state.wall_ms = None;
    state
}

fn count(states: &[TrialState], status: TrialStatus) -> usize {
    states.iter().filter(|s| s.status == status).count()
}

fn index_of(trials: &[Trial], trial_id: &str) -> usize {
    trials
        .iter()
        .position(|t| t.id == trial_id)
        .expect("executed state belongs to the matrix")
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ExecMode, SubstrateSpec};
    use rabit_testbed::RabitStage;

    fn tiny_plan() -> CampaignPlan {
        CampaignPlan::new("runner-unit", 11)
            .with_workflow(WorkflowSpec::Fig5Safe)
            .with_workflow(WorkflowSpec::Bug("bug_b_arm_collision".into()))
            .with_substrate(SubstrateSpec::Study(RabitStage::Baseline))
            .with_substrate(SubstrateSpec::Study(RabitStage::Modified))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rabit-campaign-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn full_run_writes_states_manifest_and_artifact() {
        let dir = temp_dir("full");
        let runner = CampaignRunner::new(tiny_plan(), &dir).unwrap();
        let summary = runner.run(2, None).unwrap();
        assert!(summary.complete());
        assert_eq!(summary.executed, 4);
        assert_eq!(summary.done, 4);
        assert!(summary.warnings.is_empty());
        assert!(runner.artifact_path().exists());
        let artifact = runner.artifact().unwrap();
        assert_eq!(
            artifact.get("kind").and_then(Json::as_str),
            Some("campaign")
        );
        let states = runner.states();
        assert!(states.iter().all(|s| s.status == TrialStatus::Done));
        assert!(states.iter().all(|s| s.attempt == 1));
        // Bug B is detected on the modified config, not the baseline.
        assert!(states[3].result.as_ref().unwrap().detected);
        assert!(!states[2].result.as_ref().unwrap().detected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn limited_run_resumes_where_it_stopped() {
        let dir = temp_dir("resume");
        let runner = CampaignRunner::new(tiny_plan(), &dir).unwrap();
        let first = runner.run(1, Some(3)).unwrap();
        assert_eq!(first.executed, 3);
        assert_eq!(first.pending, 1);
        assert!(!runner.artifact_path().exists());
        let second = runner.run(1, None).unwrap();
        assert_eq!(second.executed, 1, "only the remaining trial runs");
        assert!(second.complete());
        assert!(runner.states().iter().all(|s| s.attempt == 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_plan_refuses_to_resume() {
        let dir = temp_dir("mismatch");
        CampaignRunner::new(tiny_plan(), &dir)
            .unwrap()
            .run(1, Some(1))
            .unwrap();
        let other = tiny_plan().with_replicates(2);
        let err = CampaignRunner::new(other, &dir).unwrap().run(1, None);
        assert!(matches!(err, Err(CampaignError::PlanMismatch { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn skip_listed_trials_never_execute() {
        let dir = temp_dir("skip");
        let plan = tiny_plan().with_skip("fig5_safe|study:baseline|none|guarded|r0");
        let runner = CampaignRunner::new(plan, &dir).unwrap();
        let summary = runner.run(2, None).unwrap();
        assert_eq!(summary.skipped, 1);
        assert_eq!(summary.done, 3);
        let states = runner.states();
        assert_eq!(states[0].status, TrialStatus::Skipped);
        assert!(states[0].result.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_run_cleans_up() {
        let plan = CampaignPlan::new("ephemeral", 3)
            .with_workflow(WorkflowSpec::Fig5Safe)
            .with_substrate(SubstrateSpec::Study(RabitStage::Modified))
            .with_modes(vec![ExecMode::Guarded, ExecMode::Unguarded]);
        let (artifact, states) = run_ephemeral(plan, 2).unwrap();
        assert_eq!(states.len(), 2);
        assert!(states.iter().all(|s| s.status == TrialStatus::Done));
        let results = artifact.get("results").unwrap();
        assert_eq!(
            results
                .get("summary")
                .and_then(|s| s.get("done"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
    }
}
