//! Real compute cost of the geometric queries behind the Extended
//! Simulator's trajectory polling.

use rabit_bench::timing::{bench, group};
use rabit_geometry::{collide, Aabb, Capsule, Segment, Vec3};
use rabit_kinematics::presets;
use std::hint::black_box;

fn main() {
    let aabb = Aabb::new(Vec3::new(0.0, 0.3, 0.0), Vec3::new(0.2, 0.5, 0.3));
    let capsule = Capsule::new(Vec3::new(0.5, 0.0, 0.3), Vec3::new(0.4, 0.2, 0.2), 0.03);
    let seg_a = Segment::new(Vec3::ZERO, Vec3::new(1.0, 0.2, 0.1));
    let seg_b = Segment::new(Vec3::new(0.5, -0.5, 0.0), Vec3::new(0.5, 0.5, 0.3));

    group("collide");
    bench("capsule_aabb_distance", || {
        collide::capsule_aabb_distance(black_box(&capsule), &aabb)
    });
    bench("segment_segment_distance", || {
        seg_a.distance_to_segment(black_box(&seg_b))
    });
    bench("aabb_contains_point", || {
        aabb.contains_point(black_box(Vec3::new(0.1, 0.4, 0.1)))
    });

    // A full per-pose collision check: 7 capsules against 7 obstacles —
    // one polling step of the Extended Simulator.
    let arm = presets::ur3e();
    let q = arm.home_configuration();
    let obstacles: Vec<Aabb> = (0..7)
        .map(|i| {
            let x = -0.6 + 0.2 * i as f64;
            Aabb::new(Vec3::new(x, 0.3, 0.0), Vec3::new(x + 0.15, 0.45, 0.2))
        })
        .collect();
    group("sim_poll");
    bench("one_pose_vs_deck", || {
        let capsules = arm.link_capsules(black_box(&q), None);
        let mut hits = 0;
        for o in &obstacles {
            for cap in &capsules[1..] {
                if collide::capsule_intersects_aabb(cap, o) {
                    hits += 1;
                }
            }
        }
        hits
    });

    // The same pose check with broad-phase pruning over larger decks.
    group("broadphase");
    for n in [8usize, 64, 256] {
        let mut world = rabit_sim::SimWorld::new();
        for i in 0..n {
            let x = (i % 16) as f64 * 0.3 - 2.4;
            let y = (i / 16) as f64 * 0.3 - 2.4;
            world.add_obstacle(
                format!("dev{i}"),
                Aabb::new(Vec3::new(x, y, 0.0), Vec3::new(x + 0.2, y + 0.2, 0.25)),
            );
        }
        let capsules = arm.link_capsules(&q, None);
        bench(&format!("first_hit_pruned_{n}"), || {
            world.first_hit(black_box(&capsules[1..]), &[])
        });
        bench(&format!("first_hit_exhaustive_{n}"), || {
            world.first_hit_exhaustive(black_box(&capsules[1..]), &[])
        });
    }
}
