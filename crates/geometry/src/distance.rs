//! Batched structure-of-arrays (SoA) distance kernels.
//!
//! The conservative-advancement sweep (PR 5) traded narrow-phase
//! intersection tests for clearance *distance* queries — tens of thousands
//! per fleet lap — and the old 64-iteration ternary search made each
//! segment–box query cost ~128 point–box evaluations. This module attacks
//! the distance path directly:
//!
//! * an **exact closed form** for segment–AABB distance
//!   ([`segment_aabb_distance`]): the squared distance along the segment is
//!   a convex piecewise quadratic whose half-derivative is piecewise
//!   *linear* with at most six breakpoints (the per-axis slab entry/exit
//!   parameters), so the minimizing parameter comes from locating the
//!   derivative's sign change and interpolating within one linear piece —
//!   roughly a hundred flops instead of ~1500, with a short bisection
//!   fallback reserved for the degenerate edge-graze bracket;
//! * a **structure-of-arrays obstacle layout** ([`ObstacleSoA`]) holding
//!   box primitives as per-axis min/max arrays and capsule primitives as
//!   per-axis endpoint arrays (spheres are degenerate zero-length
//!   capsules), so the batched kernels ([`segment_aabb_distance_x4`],
//!   [`segment_capsule_distance_x4`]) gather four obstacle lanes per pass
//!   from contiguous memory and evaluate them with branch-free slab
//!   arithmetic.
//!
//! Both batched kernels run the *same* scalar cores per lane as the public
//! scalar entry points, so a batched evaluation is bit-identical to the
//! scalar query it replaces — the sweep kernel's "clearance > 0 proves the
//! narrow phase misses" certificate survives the rewrite exactly.

use crate::{Aabb, Segment, Vec3};

/// Axes whose segment direction component is at most this value are treated
/// as static (constant coordinate). The threshold is far below any
/// representable lab geometry, but large enough that `1/d` and the slab
/// crossing parameters stay finite for every input the kernels accept.
const STATIC_AXIS: f64 = 1e-120;

/// Bisection steps used by the degenerate-bracket fallback of the
/// closed-form minimizer. The derivative is linear inside a bracket, so
/// interpolation is normally exact; bisection only runs when the
/// interpolated step leaves the bracket (an edge-graze bracket whose
/// endpoints are numerically indistinguishable).
const FALLBACK_BISECTIONS: usize = 16;

/// Exact minimum distance between a segment and an axis-aligned box
/// (0 when they touch or the segment passes through the box).
///
/// Closed form: writing the segment as `P(t) = A + tD`, the squared
/// point–box distance `f(t)` decomposes per axis into
/// `w_k · max(t_in_k − t, t − t_out_k, 0)²` for moving axes (with
/// `w_k = D_k²` and `t_in/t_out` the slab crossing parameters) plus a
/// constant gap for static axes. `f` is convex and its half-derivative
/// `h(t) = Σ w_k (max(t − t_out_k, 0) − max(t_in_k − t, 0))` is continuous,
/// nondecreasing, and piecewise linear with at most six breakpoints, so the
/// global minimizer on `[0, 1]` is an endpoint (when `h` does not change
/// sign) or the interpolated root of `h` inside one linear piece.
pub fn segment_aabb_distance(seg: &Segment, aabb: &Aabb) -> f64 {
    let a = [seg.a.x, seg.a.y, seg.a.z];
    let b = [seg.b.x, seg.b.y, seg.b.z];
    let lo = [aabb.min().x, aabb.min().y, aabb.min().z];
    let hi = [aabb.max().x, aabb.max().y, aabb.max().z];
    segment_box_distance_sq(&a, &b, &lo, &hi).sqrt()
}

/// Squared segment–box distance on raw per-axis components. Shared scalar
/// core of [`segment_aabb_distance`] and the box lanes of
/// [`segment_aabb_distance_x4`], so both produce bit-identical results.
fn segment_box_distance_sq(a: &[f64; 3], b: &[f64; 3], lo: &[f64; 3], hi: &[f64; 3]) -> f64 {
    // Per-axis slab decomposition.
    let mut fixed = 0.0; // squared gap contributed by static axes
    let mut t_in = [f64::NEG_INFINITY; 3];
    let mut t_out = [f64::INFINITY; 3];
    let mut w = [0.0_f64; 3];
    let mut breaks = [0.0_f64; 6];
    let mut n_breaks = 0;
    for k in 0..3 {
        let d = b[k] - a[k];
        if d.abs() <= STATIC_AXIS {
            let gap = (lo[k] - a[k]).max(a[k] - hi[k]).max(0.0);
            fixed += gap * gap;
        } else {
            let inv = 1.0 / d;
            let t0 = (lo[k] - a[k]) * inv;
            let t1 = (hi[k] - a[k]) * inv;
            let (enter, exit) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            t_in[k] = enter;
            t_out[k] = exit;
            w[k] = d * d;
            if enter > 0.0 && enter < 1.0 {
                breaks[n_breaks] = enter;
                n_breaks += 1;
            }
            if exit > 0.0 && exit < 1.0 {
                breaks[n_breaks] = exit;
                n_breaks += 1;
            }
        }
    }
    // Branch-free objective and half-derivative (static axes contribute
    // zero weight, so their ±infinity sentinels vanish under max(_, 0)).
    let f = |t: f64| -> f64 {
        let mut s = fixed;
        for k in 0..3 {
            let g = (t_in[k] - t).max(t - t_out[k]).max(0.0);
            s += w[k] * g * g;
        }
        s
    };
    let h = |t: f64| -> f64 {
        let mut s = 0.0;
        for k in 0..3 {
            s += w[k] * ((t - t_out[k]).max(0.0) - (t_in[k] - t).max(0.0));
        }
        s
    };
    let h0 = h(0.0);
    if h0 >= 0.0 {
        return f(0.0);
    }
    let h1 = h(1.0);
    if h1 <= 0.0 {
        return f(1.0);
    }
    // h changes sign in (0, 1): scan the sorted breakpoints for the
    // bracketing linear piece and interpolate its root.
    breaks[..n_breaks].sort_unstable_by(f64::total_cmp);
    let (mut t_lo, mut h_lo) = (0.0, h0);
    for &t in &breaks[..n_breaks] {
        let ht = h(t);
        if ht >= 0.0 {
            return f(root_in_bracket(t_lo, h_lo, t, ht, &h));
        }
        (t_lo, h_lo) = (t, ht);
    }
    f(root_in_bracket(t_lo, h_lo, 1.0, h1, &h))
}

/// Root of the half-derivative inside a sign-change bracket
/// (`h(t_lo) < 0 <= h(t_hi)`). `h` is linear on the bracket, so
/// interpolation is exact; a short bisection covers the degenerate
/// edge-graze bracket where the interpolated step is not representable
/// inside it.
fn root_in_bracket(t_lo: f64, h_lo: f64, t_hi: f64, h_hi: f64, h: &impl Fn(f64) -> f64) -> f64 {
    debug_assert!(h_lo < 0.0 && h_hi >= 0.0);
    if h_hi == 0.0 {
        // An exact zero at the bracket's upper end (the common through-box
        // entry): the minimum is attained there, keep it bit-exact.
        return t_hi;
    }
    let slope = h_hi - h_lo;
    if slope > 0.0 {
        let t = t_lo + (t_hi - t_lo) * (-h_lo / slope);
        if t >= t_lo && t <= t_hi {
            return t;
        }
    }
    let (mut lo, mut hi) = (t_lo, t_hi);
    for _ in 0..FALLBACK_BISECTIONS {
        let mid = 0.5 * (lo + hi);
        if h(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Structure-of-arrays obstacle layout consumed by the batched distance
/// kernels.
///
/// Two primitive kinds, each stored as per-axis arrays so a batch of lanes
/// gathers from contiguous memory:
///
/// * **boxes** — axis-aligned cuboids as min/max arrays per axis;
/// * **capsules** — segment endpoints per axis plus a radius array.
///   Spheres are pushed as degenerate zero-length capsules (`a == b`), and
///   hemisphere obstacles batch as their bounding sphere (the same sound
///   under-approximation the scalar path uses).
///
/// Box lanes and capsule lanes are indexed independently (`lane` in
/// `0..box_count()` / `0..capsule_count()`); callers that mix kinds keep
/// their own lane→object mapping.
#[derive(Clone, Debug, Default)]
pub struct ObstacleSoA {
    box_min: [Vec<f64>; 3],
    box_max: [Vec<f64>; 3],
    cap_a: [Vec<f64>; 3],
    cap_b: [Vec<f64>; 3],
    cap_radius: Vec<f64>,
}

impl ObstacleSoA {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes every primitive, keeping the allocations.
    pub fn clear(&mut self) {
        for k in 0..3 {
            self.box_min[k].clear();
            self.box_max[k].clear();
            self.cap_a[k].clear();
            self.cap_b[k].clear();
        }
        self.cap_radius.clear();
    }

    /// Appends a box primitive and returns its lane index.
    pub fn push_box(&mut self, aabb: &Aabb) -> usize {
        let lane = self.box_count();
        let (lo, hi) = (aabb.min(), aabb.max());
        for (k, (l, h)) in [(lo.x, hi.x), (lo.y, hi.y), (lo.z, hi.z)]
            .into_iter()
            .enumerate()
        {
            self.box_min[k].push(l);
            self.box_max[k].push(h);
        }
        lane
    }

    /// Appends a capsule primitive and returns its lane index.
    pub fn push_capsule(&mut self, segment: &Segment, radius: f64) -> usize {
        let lane = self.capsule_count();
        for (k, (a, b)) in [
            (segment.a.x, segment.b.x),
            (segment.a.y, segment.b.y),
            (segment.a.z, segment.b.z),
        ]
        .into_iter()
        .enumerate()
        {
            self.cap_a[k].push(a);
            self.cap_b[k].push(b);
        }
        self.cap_radius.push(radius);
        lane
    }

    /// Appends a sphere as a degenerate (zero-length) capsule lane and
    /// returns its lane index.
    pub fn push_sphere(&mut self, center: Vec3, radius: f64) -> usize {
        self.push_capsule(&Segment::new(center, center), radius)
    }

    /// Number of box lanes.
    pub fn box_count(&self) -> usize {
        self.box_min[0].len()
    }

    /// Number of capsule lanes (including degenerate sphere lanes).
    pub fn capsule_count(&self) -> usize {
        self.cap_radius.len()
    }

    /// Reconstructs the box stored in `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= box_count()`.
    pub fn box_aabb(&self, lane: usize) -> Aabb {
        Aabb::new(
            Vec3::new(
                self.box_min[0][lane],
                self.box_min[1][lane],
                self.box_min[2][lane],
            ),
            Vec3::new(
                self.box_max[0][lane],
                self.box_max[1][lane],
                self.box_max[2][lane],
            ),
        )
    }

    /// Reconstructs the capsule stored in `lane` as `(segment, radius)`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= capsule_count()`.
    pub fn capsule(&self, lane: usize) -> (Segment, f64) {
        let a = Vec3::new(
            self.cap_a[0][lane],
            self.cap_a[1][lane],
            self.cap_a[2][lane],
        );
        let b = Vec3::new(
            self.cap_b[0][lane],
            self.cap_b[1][lane],
            self.cap_b[2][lane],
        );
        (Segment::new(a, b), self.cap_radius[lane])
    }

    /// `true` if `lane` stores a degenerate (sphere) capsule.
    pub fn capsule_is_sphere(&self, lane: usize) -> bool {
        (0..3).all(|k| self.cap_a[k][lane] == self.cap_b[k][lane])
    }
}

/// Batched segment–box distance: evaluates `seg` against four box lanes of
/// `soa` in one pass and returns the four surface distances.
///
/// Lanes may repeat (callers pad ragged tails by repeating a lane); every
/// lane runs the same closed-form core as [`segment_aabb_distance`], so the
/// results are bit-identical to four scalar queries.
///
/// # Panics
///
/// Panics if any lane is out of bounds.
pub fn segment_aabb_distance_x4(soa: &ObstacleSoA, seg: &Segment, lanes: &[u32; 4]) -> [f64; 4] {
    let a = [seg.a.x, seg.a.y, seg.a.z];
    let b = [seg.b.x, seg.b.y, seg.b.z];
    lanes.map(|lane| {
        let lane = lane as usize;
        let lo = [
            soa.box_min[0][lane],
            soa.box_min[1][lane],
            soa.box_min[2][lane],
        ];
        let hi = [
            soa.box_max[0][lane],
            soa.box_max[1][lane],
            soa.box_max[2][lane],
        ];
        segment_box_distance_sq(&a, &b, &lo, &hi).sqrt()
    })
}

/// Batched segment–capsule clearance: evaluates `seg`, treated as a capsule
/// of radius `inflate`, against four capsule lanes of `soa` and returns the
/// four surface-to-surface distances (negative on interpenetration).
///
/// `inflate` is subtracted *before* the lane radius, matching the operation
/// order of the scalar obstacle path (`Capsule::distance_to_capsule` and
/// `collide::sphere_capsule_distance` both peel the query capsule's radius
/// first), so batched results are bit-identical to the scalar ones.
/// Degenerate sphere lanes dispatch to the point-distance core exactly as
/// the scalar sphere query does.
///
/// # Panics
///
/// Panics if any lane is out of bounds.
pub fn segment_capsule_distance_x4(
    soa: &ObstacleSoA,
    seg: &Segment,
    inflate: f64,
    lanes: &[u32; 4],
) -> [f64; 4] {
    lanes.map(|lane| {
        let lane = lane as usize;
        let (other, radius) = soa.capsule(lane);
        let raw = if other.a == other.b {
            seg.distance_to_point(other.a)
        } else {
            seg.distance_to_segment(&other)
        };
        (raw - inflate) - radius
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(seg: &Segment, aabb: &Aabb, steps: usize) -> f64 {
        (0..=steps)
            .map(|i| aabb.distance_to_point(seg.point_at(i as f64 / steps as f64)))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn closed_form_matches_brute_force_on_fixed_cases() {
        let aabb = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let cases = [
            Segment::new(Vec3::new(-1.0, -1.0, 2.0), Vec3::new(2.0, 2.0, 2.0)),
            Segment::new(Vec3::new(2.5, 1.0, 1.0), Vec3::new(1.0, 2.5, 1.0)),
            Segment::new(Vec3::new(-0.5, 0.5, 0.5), Vec3::new(-0.1, 0.5, 0.5)),
            Segment::new(Vec3::new(0.3, 0.3, 1.4), Vec3::new(0.9, 1.8, 1.1)),
        ];
        for seg in &cases {
            let exact = segment_aabb_distance(seg, &aabb);
            let brute = brute_force(seg, &aabb, 20_000);
            assert!(exact <= brute + 1e-12, "exact {exact} above brute {brute}");
            assert!(
                brute - exact < 1e-7,
                "exact {exact} far below brute {brute}"
            );
        }
    }

    #[test]
    fn through_box_is_exactly_zero() {
        let aabb = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let through = Segment::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(2.0, 0.5, 0.5));
        assert_eq!(segment_aabb_distance(&through, &aabb), 0.0);
        let diagonal = Segment::new(Vec3::new(-0.5, -0.5, -0.5), Vec3::new(1.5, 1.5, 1.5));
        assert_eq!(segment_aabb_distance(&diagonal, &aabb), 0.0);
        let ends_inside = Segment::new(Vec3::new(3.0, 0.5, 0.5), Vec3::new(0.5, 0.5, 0.5));
        assert_eq!(segment_aabb_distance(&ends_inside, &aabb), 0.0);
        let starts_inside = Segment::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(0.5, 4.0, 0.5));
        assert_eq!(segment_aabb_distance(&starts_inside, &aabb), 0.0);
    }

    #[test]
    fn degenerate_segment_is_point_distance() {
        let aabb = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let p = Vec3::new(2.0, 0.5, 0.5);
        let seg = Segment::new(p, p);
        let d = segment_aabb_distance(&seg, &aabb);
        assert!((d - 1.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn edge_graze_is_tiny() {
        // Segment touching the top +x edge of the unit box tangentially.
        let aabb = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let seg = Segment::new(Vec3::new(1.0, -1.0, 1.0), Vec3::new(1.0, 2.0, 1.0));
        let d = segment_aabb_distance(&seg, &aabb);
        assert!(d.abs() < 1e-12, "edge graze distance {d}");
    }

    #[test]
    fn soa_box_lanes_match_scalar_bitwise() {
        let mut soa = ObstacleSoA::new();
        let boxes = [
            Aabb::new(Vec3::ZERO, Vec3::splat(1.0)),
            Aabb::new(Vec3::new(-2.0, -2.0, -0.3), Vec3::new(2.0, 2.0, 0.0)),
            Aabb::new(Vec3::new(0.3, 0.4, 0.5), Vec3::new(0.9, 1.4, 2.5)),
            Aabb::new(Vec3::new(-5.0, 1.0, 1.0), Vec3::new(-4.0, 2.0, 2.0)),
        ];
        for b in &boxes {
            soa.push_box(b);
        }
        let seg = Segment::new(Vec3::new(-1.2, 0.7, 1.3), Vec3::new(1.9, -0.4, 0.2));
        let batch = segment_aabb_distance_x4(&soa, &seg, &[0, 1, 2, 3]);
        for (lane, b) in boxes.iter().enumerate() {
            let scalar = segment_aabb_distance(&seg, b);
            assert_eq!(batch[lane].to_bits(), scalar.to_bits());
            assert_eq!(soa.box_aabb(lane), *b);
        }
    }

    #[test]
    fn soa_capsule_lanes_match_scalar_bitwise() {
        let mut soa = ObstacleSoA::new();
        let axis = Segment::new(Vec3::new(0.2, 0.2, 0.0), Vec3::new(0.2, 0.2, 1.5));
        soa.push_capsule(&axis, 0.25);
        soa.push_sphere(Vec3::new(1.0, -1.0, 0.5), 0.4);
        let seg = Segment::new(Vec3::new(-1.0, 0.0, 0.8), Vec3::new(1.0, 0.5, 0.9));
        let inflate = 0.05;
        let batch = segment_capsule_distance_x4(&soa, &seg, inflate, &[0, 1, 0, 1]);
        let scalar_cyl = (seg.distance_to_segment(&axis) - inflate) - 0.25;
        let scalar_sph = (seg.distance_to_point(Vec3::new(1.0, -1.0, 0.5)) - inflate) - 0.4;
        assert_eq!(batch[0].to_bits(), scalar_cyl.to_bits());
        assert_eq!(batch[1].to_bits(), scalar_sph.to_bits());
        assert_eq!(batch[2].to_bits(), batch[0].to_bits());
        assert_eq!(batch[3].to_bits(), batch[1].to_bits());
        assert!(soa.capsule_is_sphere(1) && !soa.capsule_is_sphere(0));
    }
}
