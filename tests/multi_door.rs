//! The §V-C multi-door open challenge, end to end: a two-door chamber
//! served by both testbed arms concurrently, with per-arm door rules
//! wired into a live engine over a physical lab.

use rabit::core::{Lab, LabDevice, Rabit, RabitConfig};
use rabit::devices::multidoor::{close_door_command, door_key, open_door_command, MultiDoorDevice};
use rabit::devices::{ActionKind, Command, DeviceId, DeviceType, RobotArm};
use rabit::geometry::{Aabb, Vec3};
use rabit::rulebase::extensions::multi_door::multi_door_rules;
use rabit::rulebase::{DeviceCatalog, DeviceMeta, Rulebase};
use rabit::tracer::{Tracer, Workflow};

fn glovebox_lab() -> Lab {
    let mut lab = Lab::new()
        .with_device(RobotArm::new(
            "viperx",
            Vec3::new(0.3, 0.0, 0.3),
            Vec3::new(0.1, -0.3, 0.2),
        ))
        .with_device(RobotArm::new(
            "ned2",
            Vec3::new(0.9, 0.0, 0.3),
            Vec3::new(1.1, -0.3, 0.2),
        ));
    lab.add_device(LabDevice::Custom(Box::new(MultiDoorDevice::new(
        "glovebox",
        Aabb::new(Vec3::new(0.45, 0.3, 0.0), Vec3::new(0.75, 0.6, 0.4)),
        ["west", "east"],
    ))));
    lab
}

fn glovebox_rabit() -> Rabit {
    let catalog = DeviceCatalog::new()
        .with(
            DeviceMeta::new("viperx", DeviceType::RobotArm)
                .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
        )
        .with(
            DeviceMeta::new("ned2", DeviceType::RobotArm)
                .with_arm_positions(Vec3::new(0.9, 0.0, 0.3), Vec3::new(1.1, -0.3, 0.2)),
        )
        .with(DeviceMeta::new(
            "glovebox",
            DeviceType::Custom("multi_door_chamber".to_string()),
        ));
    let mut rulebase = Rulebase::standard();
    rulebase.extend(multi_door_rules(
        "glovebox".into(),
        &[
            (DeviceId::new("viperx"), "west".to_string()),
            (DeviceId::new("ned2"), "east".to_string()),
        ],
    ));
    Rabit::new(rulebase, catalog, RabitConfig::default())
}

fn enter(arm: &str) -> Command {
    Command::new(
        arm,
        ActionKind::MoveInsideDevice {
            device: "glovebox".into(),
        },
    )
}

fn exit(arm: &str) -> Command {
    Command::new(arm, ActionKind::MoveOutOfDevice)
}

/// Both arms work the chamber at the same time, each through its own
/// door — exactly what the paper says single-door RABIT cannot express.
#[test]
fn two_arms_share_the_chamber_through_their_own_doors() {
    let mut lab = glovebox_lab();
    let mut rabit = glovebox_rabit();
    let wf = Workflow::new("shared_chamber")
        .then(open_door_command("glovebox", "west"))
        .then(open_door_command("glovebox", "east"))
        .then(enter("viperx"))
        .then(enter("ned2")) // concurrent occupancy
        .then(exit("viperx"))
        .then(close_door_command("glovebox", "west"))
        .then(exit("ned2"))
        .then(close_door_command("glovebox", "east"));
    let report = Tracer::guarded(&mut lab, &mut rabit).run(&wf);
    assert!(report.completed(), "alert: {:?}", report.alert);
    assert_eq!(report.executed, 8);
}

/// Entering through one's own closed door is blocked even when the
/// *other* door stands open.
#[test]
fn own_door_must_be_open() {
    let mut lab = glovebox_lab();
    let mut rabit = glovebox_rabit();
    let wf = Workflow::new("wrong_door")
        .then(open_door_command("glovebox", "east")) // only Ned2's door
        .then(enter("viperx"));
    let report = Tracer::guarded(&mut lab, &mut rabit).run(&wf);
    let alert = report.alert.expect("ViperX's west door is closed");
    assert!(alert.to_string().contains("'west'"), "{alert}");
}

/// Closing a door on the arm that entered through it is blocked; closing
/// the other door is fine.
#[test]
fn doors_close_independently_around_occupants() {
    let mut lab = glovebox_lab();
    let mut rabit = glovebox_rabit();
    let wf = Workflow::new("close_on_arm")
        .then(open_door_command("glovebox", "west"))
        .then(open_door_command("glovebox", "east"))
        .then(enter("viperx"))
        .then(close_door_command("glovebox", "east")) // fine: Ned2 is out
        .then(close_door_command("glovebox", "west")); // traps ViperX
    let report = Tracer::guarded(&mut lab, &mut rabit).run(&wf);
    assert_eq!(report.executed, 4);
    let alert = report.alert.expect("closing on the occupant must alert");
    assert!(alert.to_string().contains("viperx is inside"), "{alert}");
}

/// The chamber's per-door state is tracked through the engine's believed
/// state and matches the device's sensed reality.
#[test]
fn door_states_round_trip_through_the_engine() {
    let mut lab = glovebox_lab();
    let mut rabit = glovebox_rabit();
    let wf = Workflow::new("door_states")
        .then(open_door_command("glovebox", "west"))
        .then(close_door_command("glovebox", "west"))
        .then(open_door_command("glovebox", "east"));
    let report = Tracer::guarded(&mut lab, &mut rabit).run(&wf);
    assert!(report.completed(), "alert: {:?}", report.alert);
    let gid = DeviceId::new("glovebox");
    assert_eq!(
        rabit.current_state().get_bool(&gid, &door_key("west")),
        Some(false)
    );
    assert_eq!(
        rabit.current_state().get_bool(&gid, &door_key("east")),
        Some(true)
    );
}
