//! Hot-path benchmark: rule dispatch, verdict caching, and
//! allocation-free sweeps.
//!
//! Three layers, measured separately and end to end:
//!
//! 1. **Rule dispatch** — ns/command for the linear reference scan
//!    (`check_linear`, the pre-index behaviour) versus the
//!    signature-indexed scan (`check`) and the stop-at-first fast path
//!    (`check_first`), over the standard-rulebase testbed scenario.
//! 2. **Verdict cache** — ns/validation for the Extended Simulator on a
//!    repeated-motion workflow with the cache off versus on, plus the
//!    achieved hit rate.
//! 3. **Fleet scenario end to end** — serial ns/command for guarded
//!    fig5 workflow runs in the *before* configuration (no verdict
//!    cache, full-scan rule evaluation) versus the *after* configuration
//!    (verdict cache + `first_violation_only`), with allocations per
//!    command from a counting global allocator.
//!
//! Writes `BENCH_hotpath.json` and prints the tables. `--quick` runs a
//! reduced calibration pass for CI smoke checks.
//!
//! Run with `cargo run --release -p rabit-bench --bin hotpath`.

use rabit_bench::report::render_table;
use rabit_buginject::RabitStage;
use rabit_core::TrajectoryValidator;
use rabit_devices::{ActionKind, Command, DeviceId, DeviceState, LabState, StateKey};
use rabit_testbed::{workflows, Testbed};
use rabit_tracer::Tracer;
use rabit_util::Json;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A pass-through allocator that counts allocation calls, so the bench
/// can report allocations per command on the hot path.
struct CountingAlloc;

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATION_COUNT.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// 1. Rule dispatch
// ---------------------------------------------------------------------

struct DispatchResult {
    commands: usize,
    iters: usize,
    linear_ns: f64,
    indexed_ns: f64,
    first_ns: f64,
}

fn bench_rule_dispatch(iters: usize) -> DispatchResult {
    let mut tb = Testbed::new();
    let rabit = tb.rabit(RabitStage::Modified);
    let rulebase = rabit.rulebase();
    let catalog = rabit.catalog();
    let state = tb.lab.fetch_state();
    let wf = workflows::fig5_safe_workflow(&tb.locations);
    let commands = wf.commands();

    let mut sink = 0usize;
    let mut time = |f: &mut dyn FnMut() -> usize| -> f64 {
        let t0 = Instant::now();
        let mut acc = 0;
        for _ in 0..iters {
            acc += f();
        }
        let dt = t0.elapsed().as_secs_f64();
        sink += acc;
        dt / (iters * commands.len()) as f64 * 1e9
    };

    let linear_ns = time(&mut || {
        commands
            .iter()
            .map(|c| rulebase.check_linear(c, &state, catalog).len())
            .sum()
    });
    let indexed_ns = time(&mut || {
        commands
            .iter()
            .map(|c| rulebase.check(c, &state, catalog).len())
            .sum()
    });
    let first_ns = time(&mut || {
        commands
            .iter()
            .filter(|c| rulebase.check_first(c, &state, catalog).is_some())
            .count()
    });
    assert!(sink < usize::MAX, "keep the work observable");
    DispatchResult {
        commands: commands.len(),
        iters,
        linear_ns,
        indexed_ns,
        first_ns,
    }
}

// ---------------------------------------------------------------------
// 2. Verdict cache on a repeated-motion workflow
// ---------------------------------------------------------------------

struct CacheResult {
    validations: usize,
    uncached_ns: f64,
    cached_ns: f64,
    hits: u64,
    misses: u64,
}

fn repeated_motion_commands(tb: &Testbed) -> Vec<Command> {
    // A pick-place shuttle: the arm cycles the same three poses over and
    // over, the shape of a plate-stamping or grid-filling workflow.
    let grid = tb.locations.grid_nw_viperx;
    let dose = tb.locations.dosing_viperx;
    vec![
        Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: grid.pickup_safe_height,
            },
        ),
        Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: dose.approach,
            },
        ),
        Command::new("viperx", ActionKind::MoveHome),
    ]
}

fn bench_verdict_cache(laps: usize) -> CacheResult {
    let tb = Testbed::new();
    let commands = repeated_motion_commands(&tb);
    let mut state = LabState::new();
    state.insert(
        "viperx",
        DeviceState::new().with(StateKey::Holding, None::<DeviceId>),
    );

    let run = |cache: bool| -> (f64, u64, u64) {
        let mut sim = tb.extended_simulator(false);
        sim.config_mut().verdict_cache = cache;
        let t0 = Instant::now();
        for _ in 0..laps {
            for cmd in &commands {
                let _ = sim.validate(cmd, &state);
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        (
            dt / (laps * commands.len()) as f64 * 1e9,
            sim.cache_hits(),
            sim.cache_misses(),
        )
    };

    let (uncached_ns, _, _) = run(false);
    let (cached_ns, hits, misses) = run(true);
    CacheResult {
        validations: laps * commands.len(),
        uncached_ns,
        cached_ns,
        hits,
        misses,
    }
}

// ---------------------------------------------------------------------
// 3. Fleet scenario end to end
// ---------------------------------------------------------------------

struct FleetScenarioResult {
    laps: usize,
    commands_per_lap: usize,
    before_ns: f64,
    after_ns: f64,
    before_allocs_per_cmd: f64,
    after_allocs_per_cmd: f64,
    hits: u64,
    misses: u64,
}

/// Serial guarded runs of the fig5 safe workflow, one engine kept alive
/// across laps (as a deployed RABIT instance is). `before` disables the
/// verdict cache and scans every rule; `after` is the shipped hot path.
fn bench_fleet_scenario(laps: usize, after: bool) -> (f64, f64, u64, u64, usize) {
    let tb = Testbed::new();
    let wf = workflows::fig5_safe_workflow(&tb.locations);
    let mut sim = tb.extended_simulator(false);
    sim.config_mut().verdict_cache = after;
    let mut rabit = tb.rabit(RabitStage::Modified).with_validator(Box::new(sim));
    rabit.config_mut().first_violation_only = after;

    // Warm-up lap: populates the verdict cache (after-config) and the
    // allocator's size classes (both configs), so the measurement sees
    // the steady state a long-lived deployment runs in.
    let mut lab = Testbed::new().lab;
    let warm = Tracer::guarded(&mut lab, &mut rabit).run(&wf);
    assert!(warm.completed(), "fig5 safe workflow must complete");

    let mut labs: Vec<_> = (0..laps).map(|_| Testbed::new().lab).collect();
    let alloc0 = allocations();
    let t0 = Instant::now();
    for lab in &mut labs {
        let report = Tracer::guarded(lab, &mut rabit).run(&wf);
        assert!(report.completed(), "fig5 safe workflow must complete");
    }
    let dt = t0.elapsed().as_secs_f64();
    let allocs = allocations() - alloc0;
    let total_cmds = laps * wf.len();
    let (hits, misses) = rabit.validator_cache_stats();
    (
        dt / total_cmds as f64 * 1e9,
        allocs as f64 / total_cmds as f64,
        hits,
        misses,
        wf.len(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (dispatch_iters, cache_laps, fleet_laps) =
        if quick { (200, 64, 4) } else { (2000, 512, 24) };

    // --- 1. Rule dispatch -------------------------------------------------
    let d = bench_rule_dispatch(dispatch_iters);
    println!(
        "Rule dispatch ({} commands x {} iters, standard testbed rulebase)\n",
        d.commands, d.iters
    );
    println!(
        "{}",
        render_table(
            &["path", "ns/command", "speedup vs linear"],
            &[
                vec![
                    "linear scan".into(),
                    format!("{:.0}", d.linear_ns),
                    "1.00".into()
                ],
                vec![
                    "indexed".into(),
                    format!("{:.0}", d.indexed_ns),
                    format!("{:.2}", d.linear_ns / d.indexed_ns)
                ],
                vec![
                    "indexed, first-only".into(),
                    format!("{:.0}", d.first_ns),
                    format!("{:.2}", d.linear_ns / d.first_ns)
                ],
            ]
        )
    );

    // --- 2. Verdict cache -------------------------------------------------
    let c = bench_verdict_cache(cache_laps);
    let hit_rate = c.hits as f64 / (c.hits + c.misses) as f64;
    println!(
        "Verdict cache (repeated-motion workflow, {} validations)\n",
        c.validations
    );
    println!(
        "{}",
        render_table(
            &["config", "ns/validation", "speedup", "hit rate"],
            &[
                vec![
                    "cache off".into(),
                    format!("{:.0}", c.uncached_ns),
                    "1.00".into(),
                    "-".into()
                ],
                vec![
                    "cache on".into(),
                    format!("{:.0}", c.cached_ns),
                    format!("{:.2}", c.uncached_ns / c.cached_ns),
                    format!("{:.1}%", hit_rate * 100.0)
                ],
            ]
        )
    );

    // --- 3. Fleet scenario ------------------------------------------------
    let (before_ns, before_allocs, _, _, cmds_per_lap) = bench_fleet_scenario(fleet_laps, false);
    let (after_ns, after_allocs, hits, misses, _) = bench_fleet_scenario(fleet_laps, true);
    let f = FleetScenarioResult {
        laps: fleet_laps,
        commands_per_lap: cmds_per_lap,
        before_ns,
        after_ns,
        before_allocs_per_cmd: before_allocs,
        after_allocs_per_cmd: after_allocs,
        hits,
        misses,
    };
    let fleet_hit_rate = f.hits as f64 / (f.hits + f.misses).max(1) as f64;
    println!(
        "Fleet scenario end to end ({} laps x {} commands, serial guarded runs)\n",
        f.laps, f.commands_per_lap
    );
    println!(
        "{}",
        render_table(
            &["config", "ns/command", "allocs/command", "speedup"],
            &[
                vec![
                    "before (no cache, full scan)".into(),
                    format!("{:.0}", f.before_ns),
                    format!("{:.1}", f.before_allocs_per_cmd),
                    "1.00".into()
                ],
                vec![
                    "after (cache + first-only)".into(),
                    format!("{:.0}", f.after_ns),
                    format!("{:.1}", f.after_allocs_per_cmd),
                    format!("{:.2}", f.before_ns / f.after_ns)
                ],
            ]
        )
    );
    println!(
        "fleet verdict-cache hit rate: {:.1}%",
        fleet_hit_rate * 100.0
    );

    // --- BENCH_hotpath.json -----------------------------------------------
    let config = Json::obj([
        ("quick_mode", Json::Bool(quick)),
        ("dispatch_iters", Json::Num(dispatch_iters as f64)),
        ("cache_laps", Json::Num(cache_laps as f64)),
        ("fleet_laps", Json::Num(fleet_laps as f64)),
    ]);
    let results = Json::obj([
        (
            "rule_dispatch",
            Json::obj([
                ("commands", Json::Num(d.commands as f64)),
                ("iters", Json::Num(d.iters as f64)),
                ("linear_ns_per_command", Json::Num(d.linear_ns)),
                ("indexed_ns_per_command", Json::Num(d.indexed_ns)),
                ("first_only_ns_per_command", Json::Num(d.first_ns)),
                ("indexed_speedup", Json::Num(d.linear_ns / d.indexed_ns)),
                ("first_only_speedup", Json::Num(d.linear_ns / d.first_ns)),
            ]),
        ),
        (
            "verdict_cache",
            Json::obj([
                ("validations", Json::Num(c.validations as f64)),
                ("uncached_ns_per_validation", Json::Num(c.uncached_ns)),
                ("cached_ns_per_validation", Json::Num(c.cached_ns)),
                ("speedup", Json::Num(c.uncached_ns / c.cached_ns)),
                ("hits", Json::Num(c.hits as f64)),
                ("misses", Json::Num(c.misses as f64)),
                ("hit_rate", Json::Num(hit_rate)),
            ]),
        ),
        (
            "fleet_scenario",
            Json::obj([
                ("workflow", Json::Str("fig5_safe".into())),
                ("laps", Json::Num(f.laps as f64)),
                ("commands_per_lap", Json::Num(f.commands_per_lap as f64)),
                ("before_ns_per_command", Json::Num(f.before_ns)),
                ("after_ns_per_command", Json::Num(f.after_ns)),
                ("speedup", Json::Num(f.before_ns / f.after_ns)),
                (
                    "before_allocations_per_command",
                    Json::Num(f.before_allocs_per_cmd),
                ),
                (
                    "after_allocations_per_command",
                    Json::Num(f.after_allocs_per_cmd),
                ),
                ("cache_hits", Json::Num(f.hits as f64)),
                ("cache_misses", Json::Num(f.misses as f64)),
                ("cache_hit_rate", Json::Num(fleet_hit_rate)),
            ]),
        ),
    ]);
    rabit_bench::schema::write_artifact("hotpath", config, results);
}
