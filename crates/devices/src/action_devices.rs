//! Action devices: hotplate, centrifuge, thermoshaker.

use crate::command::ActionKind;
use crate::device::{
    is_silent_noop, offset_reading, Device, DeviceError, LatencyModel, Malfunction,
};
use crate::id::{DeviceId, DeviceType};
use crate::state::DeviceState;
use crate::value::StateKey;
use rabit_geometry::Aabb;

/// Shared implementation for the three action devices: an active/inactive
/// state, an action value, a firmware threshold, an optional door, and an
/// optional contained object.
#[derive(Debug, Clone, PartialEq)]
struct ActionCore {
    id: DeviceId,
    footprint: Aabb,
    active: bool,
    value: f64,
    /// Firmware threshold on the action value (the IKA hotplate's safe
    /// temperature limit, a centrifuge's max rpm, …).
    firmware_limit: f64,
    has_door: bool,
    door_open: bool,
    contained: Option<DeviceId>,
    malfunction: Option<Malfunction>,
    latency: LatencyModel,
}

impl ActionCore {
    fn new(id: DeviceId, footprint: Aabb, firmware_limit: f64, has_door: bool) -> Self {
        ActionCore {
            id,
            footprint,
            active: false,
            value: 0.0,
            firmware_limit,
            has_door,
            door_open: false,
            contained: None,
            malfunction: None,
            latency: LatencyModel::PRODUCTION,
        }
    }

    fn fetch_state(&self) -> DeviceState {
        // Controller-sensed variables only; the contained container is a
        // believed variable (no sensor in the chamber).
        let mut s = DeviceState::new()
            .with(StateKey::ActionActive, self.active)
            .with(
                StateKey::ActionValue,
                offset_reading(self.value, self.malfunction),
            )
            .with(StateKey::ActionThreshold, self.firmware_limit)
            .with(StateKey::Footprint, self.footprint);
        if self.has_door {
            s.set(StateKey::DoorOpen, self.door_open);
        }
        s
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        match action {
            ActionKind::StartAction { value } => {
                if *value > self.firmware_limit {
                    return Err(DeviceError::FirmwareLimit {
                        device: self.id.clone(),
                        requested: *value,
                        limit: self.firmware_limit,
                    });
                }
                if is_silent_noop(self.malfunction) {
                    return Ok(());
                }
                self.active = true;
                self.value = *value;
                Ok(())
            }
            ActionKind::StopAction => {
                if is_silent_noop(self.malfunction) {
                    return Ok(());
                }
                self.active = false;
                self.value = 0.0;
                Ok(())
            }
            ActionKind::SetDoor { open } if self.has_door => {
                if is_silent_noop(self.malfunction) {
                    return Ok(());
                }
                self.door_open = *open;
                Ok(())
            }
            other => Err(DeviceError::UnsupportedAction {
                device: self.id.clone(),
                action: other.label(),
            }),
        }
    }
}

macro_rules! action_device {
    ($(#[$doc:meta])* $name:ident, $limit:expr, $has_door:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq)]
        pub struct $name {
            core: ActionCore,
        }

        impl $name {
            /// Creates the device occupying `footprint` with the default
            /// firmware threshold.
            pub fn new(id: impl Into<DeviceId>, footprint: Aabb) -> Self {
                $name { core: ActionCore::new(id.into(), footprint, $limit, $has_door) }
            }

            /// Overrides the firmware threshold on the action value.
            pub fn with_firmware_limit(mut self, limit: f64) -> Self {
                self.core.firmware_limit = limit;
                self
            }

            /// Overrides the latency model.
            pub fn with_latency(mut self, latency: LatencyModel) -> Self {
                self.core.latency = latency;
                self
            }

            /// Whether the action is currently running.
            pub fn active(&self) -> bool {
                self.core.active
            }

            /// Current action value (0 when inactive).
            pub fn value(&self) -> f64 {
                self.core.value
            }

            /// The firmware threshold on the action value.
            pub fn firmware_limit(&self) -> f64 {
                self.core.firmware_limit
            }

            /// The container inside the device, if any.
            pub fn contained(&self) -> Option<&DeviceId> {
                self.core.contained.as_ref()
            }

            /// Places a container inside.
            pub fn insert_container(&mut self, container: DeviceId) {
                self.core.contained = Some(container);
            }

            /// Removes the contained container.
            pub fn remove_container(&mut self) -> Option<DeviceId> {
                self.core.contained.take()
            }
        }

        impl Device for $name {
            fn id(&self) -> &DeviceId {
                &self.core.id
            }

            fn device_type(&self) -> DeviceType {
                DeviceType::ActionDevice
            }

            fn fetch_state(&self) -> DeviceState {
                self.core.fetch_state()
            }

            fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
                self.core.execute(action)
            }

            fn footprint(&self) -> Option<Aabb> {
                Some(self.core.footprint)
            }

            fn latency(&self) -> LatencyModel {
                self.core.latency
            }

            fn inject_malfunction(&mut self, malfunction: Option<Malfunction>) {
                self.core.malfunction = malfunction;
            }
        }
    };
}

action_device!(
    /// An IKA hotplate stirrer: heats and stirs. The firmware threshold is
    /// the "safe temperature limit" the paper cites from the IKA manual
    /// (default 340 °C plate limit).
    Hotplate,
    340.0,
    false
);

action_device!(
    /// An IKA thermoshaker: heats and shakes vials.
    Thermoshaker,
    3_000.0,
    false
);

/// A Fisher Scientific centrifuge: an **Action Device** with a lid (door)
/// and a red alignment dot that must face North before a container may be
/// loaded (Hein custom rule IV-3).
#[derive(Debug, Clone, PartialEq)]
pub struct Centrifuge {
    core: ActionCore,
    red_dot_north: bool,
}

impl Centrifuge {
    /// Creates a centrifuge occupying `footprint`. The rotor parks with
    /// the red dot facing North.
    pub fn new(id: impl Into<DeviceId>, footprint: Aabb) -> Self {
        Centrifuge {
            core: ActionCore::new(id.into(), footprint, 15_000.0, true),
            red_dot_north: true,
        }
    }

    /// Overrides the firmware rpm threshold.
    pub fn with_firmware_limit(mut self, limit: f64) -> Self {
        self.core.firmware_limit = limit;
        self
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.core.latency = latency;
        self
    }

    /// Whether the spin is currently running.
    pub fn active(&self) -> bool {
        self.core.active
    }

    /// Current rpm (0 when inactive).
    pub fn value(&self) -> f64 {
        self.core.value
    }

    /// The firmware rpm threshold.
    pub fn firmware_limit(&self) -> f64 {
        self.core.firmware_limit
    }

    /// The container inside the rotor, if any.
    pub fn contained(&self) -> Option<&DeviceId> {
        self.core.contained.as_ref()
    }

    /// Places a container inside the rotor.
    pub fn insert_container(&mut self, container: DeviceId) {
        self.core.contained = Some(container);
    }

    /// Removes the contained container.
    pub fn remove_container(&mut self) -> Option<DeviceId> {
        self.core.contained.take()
    }

    /// Whether the red alignment dot currently faces North.
    pub fn red_dot_north(&self) -> bool {
        self.red_dot_north
    }

    /// Sets the rotor park orientation (e.g. after a spin leaves the dot
    /// askew, or a technician re-aligns it).
    pub fn set_red_dot_north(&mut self, north: bool) {
        self.red_dot_north = north;
    }
}

impl Device for Centrifuge {
    fn id(&self) -> &DeviceId {
        &self.core.id
    }

    fn device_type(&self) -> DeviceType {
        DeviceType::ActionDevice
    }

    fn fetch_state(&self) -> DeviceState {
        self.core
            .fetch_state()
            .with(StateKey::RedDotNorth, self.red_dot_north)
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        let was_active = self.core.active;
        self.core.execute(action)?;
        // A spin leaves the rotor at an arbitrary orientation; assume the
        // dot is no longer North after any start.
        if !was_active && self.core.active {
            self.red_dot_north = false;
        }
        Ok(())
    }

    fn footprint(&self) -> Option<Aabb> {
        Some(self.core.footprint)
    }

    fn latency(&self) -> LatencyModel {
        self.core.latency
    }

    fn inject_malfunction(&mut self, malfunction: Option<Malfunction>) {
        self.core.malfunction = malfunction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_geometry::Vec3;

    fn fp() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::new(0.2, 0.2, 0.2))
    }

    #[test]
    fn hotplate_start_stop() {
        let mut h = Hotplate::new("hotplate", fp());
        assert!(!h.active());
        h.execute(&ActionKind::StartAction { value: 60.0 }).unwrap();
        assert!(h.active());
        assert_eq!(h.value(), 60.0);
        h.execute(&ActionKind::StopAction).unwrap();
        assert!(!h.active());
        assert_eq!(h.value(), 0.0);
    }

    #[test]
    fn hotplate_firmware_temperature_limit() {
        let mut h = Hotplate::new("hotplate", fp()).with_firmware_limit(120.0);
        let err = h
            .execute(&ActionKind::StartAction { value: 150.0 })
            .unwrap_err();
        assert!(matches!(err, DeviceError::FirmwareLimit { limit, .. } if limit == 120.0));
        assert!(!h.active());
        assert!(h.execute(&ActionKind::StartAction { value: 100.0 }).is_ok());
        assert_eq!(h.firmware_limit(), 120.0);
    }

    #[test]
    fn hotplate_has_no_door() {
        let mut h = Hotplate::new("hotplate", fp());
        assert!(matches!(
            h.execute(&ActionKind::SetDoor { open: true }),
            Err(DeviceError::UnsupportedAction { .. })
        ));
        assert!(h.fetch_state().get(&StateKey::DoorOpen).is_none());
    }

    #[test]
    fn centrifuge_door_and_contents() {
        let mut c = Centrifuge::new("centrifuge", fp());
        c.execute(&ActionKind::SetDoor { open: true }).unwrap();
        assert_eq!(c.fetch_state().get_bool(&StateKey::DoorOpen), Some(true));
        c.insert_container(DeviceId::new("vial"));
        assert_eq!(c.contained().unwrap().as_str(), "vial");
        assert_eq!(c.remove_container().unwrap().as_str(), "vial");
    }

    #[test]
    fn centrifuge_red_dot_tracks_spins() {
        let mut c = Centrifuge::new("centrifuge", fp());
        assert!(c.red_dot_north());
        assert_eq!(c.fetch_state().get_bool(&StateKey::RedDotNorth), Some(true));
        c.execute(&ActionKind::StartAction { value: 4_000.0 })
            .unwrap();
        assert!(!c.red_dot_north(), "a spin leaves the dot askew");
        c.execute(&ActionKind::StopAction).unwrap();
        assert!(!c.red_dot_north(), "stopping does not re-align");
        c.set_red_dot_north(true);
        assert!(c.red_dot_north());
        // Over-limit spin rejected by firmware.
        let err = c
            .execute(&ActionKind::StartAction { value: 99_999.0 })
            .unwrap_err();
        assert!(matches!(err, DeviceError::FirmwareLimit { .. }));
        assert!(c.red_dot_north(), "rejected spin must not move the rotor");
    }

    #[test]
    fn sensor_offset_malfunction_skews_reading() {
        let mut h = Hotplate::new("hotplate", fp());
        h.execute(&ActionKind::StartAction { value: 60.0 }).unwrap();
        h.inject_malfunction(Some(Malfunction::SensorOffset(5.0)));
        assert_eq!(
            h.fetch_state().get_number(&StateKey::ActionValue),
            Some(65.0)
        );
        // The internal truth is unchanged.
        assert_eq!(h.value(), 60.0);
    }

    #[test]
    fn silent_noop_malfunction_ignores_commands() {
        let mut t = Thermoshaker::new("shaker", fp());
        t.inject_malfunction(Some(Malfunction::SilentNoop));
        t.execute(&ActionKind::StartAction { value: 500.0 })
            .unwrap();
        assert!(!t.active());
    }

    #[test]
    fn thresholds_exposed_in_state() {
        let t = Thermoshaker::new("shaker", fp());
        assert_eq!(
            t.fetch_state().get_number(&StateKey::ActionThreshold),
            Some(3_000.0)
        );
        assert_eq!(t.device_type(), DeviceType::ActionDevice);
        assert!(t.footprint().is_some());
    }
}
