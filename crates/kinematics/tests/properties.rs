//! Property-based tests over kinematics invariants.

use proptest::prelude::*;
use rabit_kinematics::trajectory::Trajectory;
use rabit_kinematics::{presets, ArmModel, HeldObject, JointConfig};

fn any_arm() -> impl Strategy<Value = ArmModel> {
    prop_oneof![
        Just(presets::ur3e()),
        Just(presets::viperx300()),
        Just(presets::ned2()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tool_never_exceeds_max_reach(arm in any_arm(), seed in any::<u64>()) {
        // Derive a config deterministically from the seed within limits.
        let mut q = JointConfig::ZERO;
        let mut s = seed;
        for i in 0..6 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = (s >> 11) as f64 / (1u64 << 53) as f64;
            let l = arm.limits()[i];
            q = q.with_angle(i, l.min + t * (l.max - l.min));
        }
        let d = arm.tool_position(&q).distance(arm.chain().base().translation);
        prop_assert!(d <= arm.max_reach() + 1e-9, "{}: {d} > {}", arm.name(), arm.max_reach());
    }

    #[test]
    fn capsules_chain_continuously(arm in any_arm()) {
        let caps = arm.link_capsules(&arm.home_configuration(), None);
        prop_assert_eq!(caps.len(), 7);
        for w in caps.windows(2) {
            prop_assert!((w[0].segment.b - w[1].segment.a).norm() < 1e-9);
        }
    }

    #[test]
    fn held_object_never_shrinks_the_arm(arm in any_arm(), r in 0.001..0.05f64, l in 0.0..0.15f64) {
        let held = HeldObject::new(r, l);
        let q = arm.home_configuration();
        let bare = arm.lowest_point(&q, None);
        let with = arm.lowest_point(&q, Some(&held));
        prop_assert!(with <= bare + 1e-9);
    }

    #[test]
    fn trajectory_sampling_brackets_endpoints(n in 2usize..50) {
        let arm = presets::ur3e();
        let t = Trajectory::linear(arm.home_configuration(), arm.sleep_configuration());
        let s = t.sample(n);
        prop_assert_eq!(s.len(), n);
        prop_assert!(s[0].max_joint_delta(&t.start()) < 1e-12);
        prop_assert!(s[n - 1].max_joint_delta(&t.end()) < 1e-12);
        // Monotone progress: each sample moves away from the start.
        let mut last = -1.0;
        for c in &s {
            let d = t.start().distance(c);
            prop_assert!(d >= last - 1e-9);
            last = d;
        }
    }

    #[test]
    fn config_at_is_continuous(t1 in 0.0..5.0f64, dt in 0.0..0.01f64) {
        let arm = presets::viperx300();
        let traj = Trajectory::linear(arm.home_configuration(), arm.sleep_configuration());
        let a = traj.config_at(t1);
        let b = traj.config_at(t1 + dt);
        // With DEFAULT_JOINT_SPEED = 1 rad/s, joints can't jump more than dt.
        prop_assert!(a.max_joint_delta(&b) <= dt + 1e-9);
    }

    #[test]
    fn lerp_stays_within_segment_bounds(t in 0.0..1.0f64) {
        let a = JointConfig::new([0.0, -1.0, 2.0, 0.5, -0.5, 0.0]);
        let b = JointConfig::new([1.0, 1.0, -2.0, 0.5, 0.5, 3.0]);
        let c = a.lerp(&b, t);
        for i in 0..6 {
            let (lo, hi) = (a.angle(i).min(b.angle(i)), a.angle(i).max(b.angle(i)));
            prop_assert!(c.angle(i) >= lo - 1e-12 && c.angle(i) <= hi + 1e-12);
        }
    }
}

#[test]
fn ik_then_fk_roundtrip_for_reachable_grid() {
    // Deterministic integration check across the three arms.
    use rabit_geometry::Vec3;
    use rabit_kinematics::ik::{solve_position, IkParams};
    for arm in [presets::ur3e(), presets::viperx300()] {
        let seed = arm.home_configuration();
        let start = arm.tool_position(&seed);
        for dx in [-0.05, 0.0, 0.05] {
            for dz in [-0.05, 0.05] {
                let target = start + Vec3::new(dx, 0.02, dz);
                let q = solve_position(&arm, &seed, target, &IkParams::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", arm.name()));
                assert!(arm.tool_position(&q).distance(target) < 1e-3);
            }
        }
    }
}
