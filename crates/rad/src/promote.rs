//! Promotion of mined rules into live rulebase epochs.
//!
//! Mining only matters once the mined conventions become *runtime
//! guards* (LabGuard's argument). [`RulePromoter`] is that last hop: it
//! takes a qualifying rule set — typically
//! [`OnlineMiner::decayed_rules`](crate::OnlineMiner::decayed_rules),
//! the conventions the lab holds *now* — and reconciles the tenant's
//! live [`RuleStore`] against it:
//!
//! * a qualifying rule the store has never seen is **created**
//!   (a [`CreateRuleRequest`] carrying [`MinedRule::to_rule`]);
//! * a qualifying rule present but disabled is **re-enabled** (the
//!   pattern re-emerged after a collapse);
//! * a previously-promoted mined rule that no longer qualifies is
//!   **disabled**, not removed — its evidence history stays addressable
//!   and a later re-emergence is a cheap enable commit;
//! * rules the lab staged by hand (non-`Mined` ids) are never touched.
//!
//! Each difference is one copy-on-write store commit, so a promotion
//! that changes anything publishes a fresh epoch; fleets running through
//! `run_fleet_on_live` pick the new rulebase up at their next job while
//! in-flight validations finish on the epoch they captured. A promotion
//! that finds nothing to change commits nothing and the epoch stands —
//! re-promoting the same rule set is idempotent.

use crate::mine::MinedRule;
use rabit_rulebase::{RuleId, TenantId};
use rabit_service::{CreateRuleRequest, RuleStore, ServiceError};

/// Promotes qualifying mined rules into one tenant's live rulebase.
#[derive(Debug, Clone)]
pub struct RulePromoter {
    tenant: TenantId,
}

/// What one [`RulePromoter::promote`] call committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromotionOutcome {
    /// Mined rules newly created in the store (enabled).
    pub created: Vec<RuleId>,
    /// Previously-disabled mined rules switched back on.
    pub reenabled: Vec<RuleId>,
    /// Previously-promoted mined rules that no longer qualify, switched
    /// off.
    pub disabled: Vec<RuleId>,
    /// Qualifying rules already live — present and enabled — that needed
    /// no commit.
    pub unchanged: usize,
    /// The tenant's epoch after the promotion (unchanged if nothing was
    /// committed).
    pub epoch: u64,
}

impl PromotionOutcome {
    /// Number of store commits the promotion made.
    pub fn commits(&self) -> usize {
        self.created.len() + self.reenabled.len() + self.disabled.len()
    }
}

impl RulePromoter {
    /// A promoter targeting one tenant.
    pub fn new(tenant: impl Into<TenantId>) -> Self {
        RulePromoter {
            tenant: tenant.into(),
        }
    }

    /// The tenant this promoter commits to.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// Reconciles the tenant's live rulebase against `qualifying` (see
    /// the module docs for the exact create / re-enable / disable
    /// semantics).
    ///
    /// Reads the tenant's latest snapshot once and issues one commit per
    /// difference. Concurrent commits from other writers interleave
    /// safely (every mutation is copy-on-write and id-addressed), though
    /// the outcome then reflects this promoter's commits only.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`] if the tenant was never seeded;
    /// other [`ServiceError`]s only if a concurrent writer races this
    /// promotion (e.g. creates the same rule id first).
    pub fn promote(
        &self,
        qualifying: &[MinedRule],
        store: &RuleStore,
    ) -> Result<PromotionOutcome, ServiceError> {
        let snapshot = store.snapshot_for(&self.tenant)?;
        let mut outcome = PromotionOutcome {
            created: Vec::new(),
            reenabled: Vec::new(),
            disabled: Vec::new(),
            unchanged: 0,
            epoch: snapshot.epoch(),
        };

        for mined in qualifying {
            let id = RuleId::Mined(mined.name().to_string());
            match snapshot.rule(&id) {
                None => {
                    store.create_rule(&self.tenant, CreateRuleRequest::new(mined.to_rule()))?;
                    outcome.created.push(id);
                }
                Some(_) if snapshot.is_enabled(&id) == Some(false) => {
                    store.set_rule_enabled(&self.tenant, &id, true)?;
                    outcome.reenabled.push(id);
                }
                Some(_) => outcome.unchanged += 1,
            }
        }

        // Support collapse: previously-promoted mined rules that no
        // longer qualify stop firing at the next epoch.
        for rule in snapshot.rules() {
            let RuleId::Mined(name) = rule.id() else {
                continue;
            };
            let still_qualifies = qualifying.iter().any(|m| m.name() == name.as_str());
            if !still_qualifies && snapshot.is_enabled(rule.id()) == Some(true) {
                store.set_rule_enabled(&self.tenant, rule.id(), false)?;
                outcome.disabled.push(rule.id().clone());
            }
        }

        outcome.epoch = store
            .epoch_of(&self.tenant)
            .unwrap_or_else(|| snapshot.epoch());
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{RadGenParams, TraceStream};
    use crate::mine::MineParams;
    use crate::online::OnlineMiner;
    use rabit_rulebase::Rulebase;

    fn tenant() -> TenantId {
        TenantId::new("hein")
    }

    fn mined_now(params: &RadGenParams) -> (OnlineMiner, Vec<MinedRule>) {
        let mut miner = OnlineMiner::new(MineParams::default());
        for trace in TraceStream::new(params) {
            miner.observe_trace(&trace);
        }
        let rules = miner.decayed_rules();
        (miner, rules)
    }

    #[test]
    fn promotion_creates_rules_and_bumps_the_epoch() {
        let store = RuleStore::new();
        store.seed_tenant(tenant(), Rulebase::new());
        let (_, rules) = mined_now(&RadGenParams::new().with_sessions(120));
        assert!(!rules.is_empty());

        let promoter = RulePromoter::new(tenant());
        let outcome = promoter.promote(&rules, &store).unwrap();
        assert_eq!(outcome.created.len(), rules.len());
        assert_eq!(outcome.commits(), rules.len());
        assert_eq!(outcome.epoch, rules.len() as u64, "one commit per rule");
        assert_eq!(store.epoch_of(&tenant()), Some(outcome.epoch));

        let snap = store.snapshot_for(&tenant()).unwrap();
        for m in &rules {
            let id = RuleId::Mined(m.name().to_string());
            assert!(snap.rule(&id).is_some(), "{id} promoted");
            assert_eq!(snap.is_enabled(&id), Some(true));
        }
    }

    #[test]
    fn repromotion_is_idempotent() {
        let store = RuleStore::new();
        store.seed_tenant(tenant(), Rulebase::new());
        let (_, rules) = mined_now(&RadGenParams::new().with_sessions(120));
        let promoter = RulePromoter::new(tenant());
        let first = promoter.promote(&rules, &store).unwrap();
        let again = promoter.promote(&rules, &store).unwrap();
        assert_eq!(again.commits(), 0, "{again:?}");
        assert_eq!(again.unchanged, rules.len());
        assert_eq!(
            again.epoch, first.epoch,
            "no-op promotion publishes nothing"
        );
    }

    #[test]
    fn drift_disables_collapsed_rules_and_promotes_emerged_ones() {
        let store = RuleStore::new();
        store.seed_tenant(tenant(), Rulebase::new());
        let promoter = RulePromoter::new(tenant());

        // Promote the pre-drift conventions...
        let pre = RadGenParams::new().with_sessions(400).with_seed(23);
        let (_, pre_rules) = mined_now(&pre);
        let pre_names: Vec<&str> = pre_rules.iter().map(MinedRule::name).collect();
        assert!(pre_names.contains(&"start_running_requires_door_open=false"));
        promoter.promote(&pre_rules, &store).unwrap();
        let epoch_before = store.epoch_of(&tenant()).unwrap();

        // ...then stream through the drift and re-promote.
        let (_, post_rules) = mined_now(
            &RadGenParams::new()
                .with_sessions(800)
                .with_seed(23)
                .with_drift_at(400),
        );
        let outcome = promoter.promote(&post_rules, &store).unwrap();
        assert!(outcome.epoch > epoch_before);

        let snap = store.snapshot_for(&tenant()).unwrap();
        let collapsed = RuleId::Mined("start_running_requires_door_open=false".into());
        let emerged = RuleId::Mined("start_running_requires_door_open=true".into());
        assert_eq!(
            snap.is_enabled(&collapsed),
            Some(false),
            "collapsed rule disabled"
        );
        assert_eq!(snap.is_enabled(&emerged), Some(true), "emerged rule live");
        assert!(outcome.disabled.contains(&collapsed));
        assert!(outcome.created.contains(&emerged));

        // The convention swings back: a third promotion re-enables the
        // collapsed rule instead of recreating it.
        let (_, back_rules) = mined_now(&pre);
        let back = promoter.promote(&back_rules, &store).unwrap();
        assert!(back.reenabled.contains(&collapsed));
        assert!(back.disabled.contains(&emerged));
    }

    #[test]
    fn hand_staged_rules_are_never_touched() {
        let store = RuleStore::new();
        store.seed_tenant(tenant(), Rulebase::standard());
        let (_, rules) = mined_now(&RadGenParams::new().with_sessions(120));
        let promoter = RulePromoter::new(tenant());
        let before = store.snapshot_for(&tenant()).unwrap();
        let outcome = promoter.promote(&rules, &store).unwrap();
        assert!(outcome.disabled.is_empty(), "no general rule is disabled");
        let after = store.snapshot_for(&tenant()).unwrap();
        // Every pre-existing (hand-staged) rule kept its enablement.
        for rule in before.rules() {
            assert_eq!(after.is_enabled(rule.id()), before.is_enabled(rule.id()));
        }
    }

    #[test]
    fn unknown_tenants_are_typed_errors() {
        let store = RuleStore::new();
        let promoter = RulePromoter::new("ghost");
        let err = promoter.promote(&[], &store).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownTenant(_)));
    }
}
