//! The deployment pipeline as a first-class abstraction, end to end:
//! the same safe workflow runs verdict-identical on every substrate, the
//! gated promotion reproduces the paper's per-stage detection counts,
//! and a single fleet mixes stages.

use rabit::buginject::{catalog, run_study_on};
use rabit::core::{Stage, Substrate};
use rabit::production::ProductionDeck;
use rabit::testbed::{locations, workflows, Testbed, TestbedSubstrate};
use rabit::tracer::{run_fleet_on, Workflow};

/// The safe Fig. 5 workflow must complete — same verdict, same executed
/// command count, zero damage — on all three substrate implementations:
/// the sim-backed stage, the testbed itself, and the production profile.
#[test]
fn safe_workflow_is_verdict_identical_on_all_three_substrates() {
    let wf = workflows::fig5_safe_workflow(&locations());
    let sim = Testbed::simulator_substrate();
    let testbed = Testbed::new();
    let prod = TestbedSubstrate::for_stage(Stage::Production);
    let substrates: Vec<&dyn Substrate> = vec![&sim, &testbed, &prod];
    let mut executed = Vec::new();
    for substrate in substrates {
        let (mut lab, mut rabit) = substrate.instantiate();
        let report = rabit.run(&mut lab, wf.commands());
        assert!(
            report.completed(),
            "false positive on {}: {:?}",
            substrate.name(),
            report.alert
        );
        assert!(
            lab.damage_log().is_empty(),
            "damage on {}",
            substrate.name()
        );
        executed.push(report.executed);
    }
    assert!(
        executed.windows(2).all(|w| w[0] == w[1]),
        "stages executed different command counts: {executed:?}"
    );
}

/// Promoting the 16-bug suite through the canonical pipeline reproduces
/// the per-stage detection counts: the simulator stage (validator
/// attached) detects 13, the physical profiles 12 each.
#[test]
fn pipeline_detection_counts_match_the_study() {
    let pipeline = Testbed::pipeline();
    let counts: Vec<(Stage, usize)> = pipeline
        .substrates()
        .iter()
        .map(|s| (s.stage(), run_study_on(s.as_ref()).detected()))
        .collect();
    assert_eq!(
        counts,
        [
            (Stage::Simulator, 13),
            (Stage::Testbed, 12),
            (Stage::Production, 12),
        ]
    );
}

/// A bug the rules alone catch is blocked at the very first stage: the
/// unsafe command never reaches physical equipment, and the later stages
/// never even run.
#[test]
fn gated_promotion_blocks_bugs_before_physical_stages() {
    let pipeline = Testbed::pipeline();
    let loc = locations();
    let bug = &catalog()[0]; // Bug A: the door is never reopened.
    let wf = bug.buggy_workflow(&loc);
    let report = pipeline.promote(wf.name(), wf.commands());
    assert!(!report.deployed());
    assert_eq!(report.blocked_at(), Some(Stage::Simulator));
    assert_eq!(report.stages.len(), 1);
    assert!(report.stages[0].detected());
    assert_eq!(report.total_damage(), 0);
    assert!(report.stage(Stage::Testbed).is_none(), "gated out");
    assert!(report.stage(Stage::Production).is_none(), "gated out");
}

/// One fleet, three stages: substrate-generic fleet execution tags every
/// run with its stage and keeps results deterministic across workers.
#[test]
fn a_single_fleet_mixes_deployment_stages() {
    let loc = locations();
    let wf = workflows::fig5_safe_workflow(&loc);
    let sim = Testbed::simulator_substrate();
    let testbed = Testbed::new();
    let prod = TestbedSubstrate::for_stage(Stage::Production);
    let jobs: Vec<(&dyn Substrate, &Workflow)> =
        vec![(&sim, &wf), (&testbed, &wf), (&prod, &wf), (&sim, &wf)];
    let serial = run_fleet_on(&jobs, 1);
    let parallel = run_fleet_on(&jobs, 4);
    assert_eq!(serial.completed_runs(), jobs.len());
    assert_eq!(parallel.completed_runs(), jobs.len());
    assert_eq!(serial.runs_at(Stage::Simulator).count(), 2);
    assert_eq!(serial.runs_at(Stage::Testbed).count(), 1);
    assert_eq!(serial.runs_at(Stage::Production).count(), 1);
    for (a, b) in serial.runs.iter().zip(parallel.runs.iter()) {
        assert_eq!(a.stage, b.stage);
        assert_eq!(a.substrate, b.substrate);
        assert_eq!(a.report.executed, b.report.executed);
        assert_eq!(a.report.lab_time_s, b.report.lab_time_s);
    }
    // The simulator stage actually swept trajectories; physical stages
    // validated nothing virtually.
    let sim_run = serial.runs_at(Stage::Simulator).next().unwrap();
    assert!(sim_run.cache_hits + sim_run.cache_misses > 0);
    let tb_run = serial.runs_at(Stage::Testbed).next().unwrap();
    assert_eq!(tb_run.cache_hits + tb_run.cache_misses, 0);
}

/// The production deck's two-stage pipeline (no cardboard intermediate)
/// deploys its own reference workflow.
#[test]
fn production_pipeline_skips_the_testbed_stage() {
    use rabit::production::solubility;
    let pipeline = ProductionDeck::pipeline();
    let wf = solubility::solubility_workflow(&solubility::SolubilityParams::default());
    let report = pipeline.promote(wf.name(), wf.commands());
    assert!(report.deployed(), "blocked at {:?}", report.blocked_at());
    assert_eq!(report.stages.len(), 2);
    assert!(report.stage(Stage::Testbed).is_none());
}
