//! Broad-phase culling over static obstacle sets.
//!
//! The Extended Simulator's sweep is O(devices × trajectory samples):
//! every sampled arm pose tests every device cuboid. That is fine for the
//! testbed's nine devices but wasteful for production decks and for fleet
//! runs that sweep hundreds of virtual labs. [`Bvh`] is a flat
//! bounding-volume hierarchy over the obstacles' AABBs: a query with a
//! probe box returns only the obstacles whose bounds overlap it, so the
//! narrow-phase capsule tests run against a handful of candidates instead
//! of the whole deck.
//!
//! The tree is built once per world mutation (median split on the longest
//! centroid axis) and stored as a flat node array — no pointers, no
//! recursion at query time, fully deterministic.
//!
//! # Example
//!
//! ```
//! use rabit_geometry::{broadphase::Bvh, Aabb, Vec3};
//!
//! let boxes = vec![
//!     Aabb::new(Vec3::ZERO, Vec3::splat(0.1)),
//!     Aabb::new(Vec3::splat(1.0), Vec3::splat(1.1)),
//! ];
//! let bvh = Bvh::build(&boxes);
//! let probe = Aabb::new(Vec3::splat(-0.05), Vec3::splat(0.05));
//! assert_eq!(bvh.query(&probe), vec![0]);
//! ```

use crate::{Aabb, Vec3};

/// Leaves per node below which splitting stops.
const LEAF_SIZE: usize = 4;

#[derive(Debug, Clone, PartialEq)]
struct Node {
    /// Bounds of everything under this node.
    aabb: Aabb,
    /// Index of the left child in `nodes`; the right child is `left + 1`…
    /// no — children are stored at arbitrary indices, so both are kept.
    left: u32,
    right: u32,
    /// For leaves: range `start..start + count` into `order`.
    start: u32,
    count: u32,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.count > 0
    }
}

/// A flat axis-aligned bounding-box BVH over a fixed set of boxes.
///
/// Indices returned by [`Bvh::query`] refer to the slice passed to
/// [`Bvh::build`], in ascending order — callers that care about
/// first-in-insertion-order semantics can therefore scan candidates
/// directly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bvh {
    nodes: Vec<Node>,
    /// Permutation of leaf indices; leaves own contiguous ranges of it.
    order: Vec<u32>,
    /// The indexed boxes (original order), for the per-leaf overlap test.
    boxes: Vec<Aabb>,
}

impl Bvh {
    /// Builds a BVH over `boxes`. An empty slice yields an empty tree.
    pub fn build(boxes: &[Aabb]) -> Self {
        let mut bvh = Bvh {
            nodes: Vec::new(),
            order: (0..boxes.len() as u32).collect(),
            boxes: boxes.to_vec(),
        };
        if !boxes.is_empty() {
            bvh.nodes.reserve(2 * boxes.len());
            bvh.split(boxes, 0, boxes.len());
        }
        bvh
    }

    /// Number of indexed boxes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Builds the subtree over `order[start..end]`, returning its node id.
    fn split(&mut self, boxes: &[Aabb], start: usize, end: usize) -> u32 {
        let slice = &self.order[start..end];
        let mut bounds = boxes[slice[0] as usize];
        let mut centroid_min = bounds.center();
        let mut centroid_max = centroid_min;
        for &i in slice {
            let b = boxes[i as usize];
            bounds = bounds.union(&b);
            centroid_min = centroid_min.min(b.center());
            centroid_max = centroid_max.max(b.center());
        }

        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            aabb: bounds,
            left: 0,
            right: 0,
            start: start as u32,
            count: (end - start) as u32,
        });

        let spread = centroid_max - centroid_min;
        if end - start <= LEAF_SIZE || spread.norm() < crate::EPSILON {
            return id; // leaf
        }

        // Median split along the widest centroid axis. Ties in the sort
        // key fall back to the index itself, keeping the build fully
        // deterministic.
        let axis = widest_axis(spread);
        self.order[start..end].sort_by(|&a, &b| {
            let (ca, cb) = (
                boxes[a as usize].center()[axis],
                boxes[b as usize].center()[axis],
            );
            ca.partial_cmp(&cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mid = start + (end - start) / 2;

        let left = self.split(boxes, start, mid);
        let right = self.split(boxes, mid, end);
        let node = &mut self.nodes[id as usize];
        node.left = left;
        node.right = right;
        node.count = 0; // interior
        id
    }

    /// All indexed boxes whose bounds overlap `probe`, ascending.
    pub fn query(&self, probe: &Aabb) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_into(probe, &mut out);
        out
    }

    /// As [`Bvh::query`], reusing an output buffer (cleared first).
    ///
    /// Allocation-free apart from `out` growth: the traversal stack is a
    /// fixed inline array (the median split keeps the tree balanced, so
    /// depth is ≤ log₂(n) + 1 and 64 slots cover any realisable tree).
    pub fn query_into(&self, probe: &Aabb, out: &mut Vec<usize>) {
        out.clear();
        if self.nodes.is_empty() {
            return;
        }
        let mut stack = [0u32; 64];
        let mut sp = 1; // stack[0] is the root already
        while sp > 0 {
            sp -= 1;
            let node = &self.nodes[stack[sp] as usize];
            if !node.aabb.intersects(probe) {
                continue;
            }
            if node.is_leaf() {
                let (s, c) = (node.start as usize, node.count as usize);
                out.extend(
                    self.order[s..s + c]
                        .iter()
                        .map(|&i| i as usize)
                        .filter(|&i| self.boxes[i].intersects(probe)),
                );
            } else {
                debug_assert!(sp + 2 <= stack.len(), "BVH deeper than inline stack");
                stack[sp] = node.left;
                stack[sp + 1] = node.right;
                sp += 2;
            }
        }
        out.sort_unstable();
    }

    /// As [`Bvh::query_into`], seeded by the previous query's result via
    /// `cache` — the temporal-coherence fast path for trajectory sweeps,
    /// where consecutive probes are nearly identical.
    ///
    /// On a cache miss the tree is walked once with the probe inflated by
    /// `slack` on every side and the resulting candidate *superset* is
    /// remembered; as long as subsequent probes stay inside the inflated
    /// box, they are answered by filtering that superset against the exact
    /// probe — no tree walk. The output is always exactly equal to
    /// `query_into(probe, out)`: the superset contains every box that can
    /// overlap any probe within the inflated bounds, and the final per-box
    /// filter is the same one the tree walk applies at its leaves.
    ///
    /// The cache is only meaningful against the tree that filled it:
    /// callers must [`QueryCache::clear`] it whenever the obstacle set (and
    /// hence the tree) is rebuilt.
    pub fn query_into_cached(
        &self,
        probe: &Aabb,
        slack: f64,
        cache: &mut QueryCache,
        out: &mut Vec<usize>,
    ) {
        if let Some(cached) = &cache.probe {
            if cached.contains_aabb(probe) {
                cache.hits += 1;
                out.clear();
                out.extend(
                    cache
                        .superset
                        .iter()
                        .copied()
                        .filter(|&i| self.boxes[i].intersects(probe)),
                );
                return;
            }
        }
        cache.misses += 1;
        let inflated = probe.inflated(slack.max(0.0));
        self.query_into(&inflated, &mut cache.superset);
        cache.probe = Some(inflated);
        out.clear();
        out.extend(
            cache
                .superset
                .iter()
                .copied()
                .filter(|&i| self.boxes[i].intersects(probe)),
        );
    }

    /// Packet query: answers every probe in `probes` with **one** tree
    /// traversal over the union of their bounds, emitting one candidate
    /// list per probe into `out`.
    ///
    /// Each emitted list is exactly what [`Bvh::query_into`] would return
    /// for that probe (ascending, per-box filtered) — the union walk visits
    /// a superset of every individual walk's leaves, and the per-probe
    /// filter at the leaves is the same one the scalar query applies. The
    /// sweep kernel uses this to resolve all capsule probes of an arm pose
    /// in a single traversal instead of one walk per capsule.
    pub fn query_packet_into(&self, probes: &[Aabb], out: &mut PacketLists) {
        out.reset(probes.len());
        let Some(union) = union_of(probes) else {
            return;
        };
        if self.nodes.is_empty() {
            return;
        }
        let mut stack = [0u32; 64];
        let mut sp = 1; // stack[0] is the root already
        while sp > 0 {
            sp -= 1;
            let node = &self.nodes[stack[sp] as usize];
            if !node.aabb.intersects(&union) {
                continue;
            }
            if node.is_leaf() {
                let (s, c) = (node.start as usize, node.count as usize);
                for &i in &self.order[s..s + c] {
                    let b = &self.boxes[i as usize];
                    if !b.intersects(&union) {
                        continue;
                    }
                    for (p, probe) in probes.iter().enumerate() {
                        if b.intersects(probe) {
                            out.lists[p].push(i as usize);
                        }
                    }
                }
            } else {
                debug_assert!(sp + 2 <= stack.len(), "BVH deeper than inline stack");
                stack[sp] = node.left;
                stack[sp + 1] = node.right;
                sp += 2;
            }
        }
        for list in &mut out.lists[..probes.len()] {
            list.sort_unstable();
        }
    }

    /// As [`Bvh::query_packet_into`], seeded by the previous packet's
    /// superset via `cache` — the temporal-coherence fast path for
    /// trajectory sweeps.
    ///
    /// On a miss the tree is walked once with the probes' union inflated by
    /// `slack`, and the candidate superset is remembered; as long as later
    /// packets stay inside the inflated union, every per-probe list is
    /// answered by filtering that superset with no tree walk. Output is
    /// always exactly equal to [`Bvh::query_packet_into`]. As with
    /// [`Bvh::query_into_cached`], the cache must be cleared whenever the
    /// tree is rebuilt.
    pub fn query_packet_cached(
        &self,
        probes: &[Aabb],
        slack: f64,
        cache: &mut QueryCache,
        out: &mut PacketLists,
    ) {
        out.reset(probes.len());
        let Some(union) = union_of(probes) else {
            return;
        };
        let cached_covers = cache
            .probe
            .as_ref()
            .is_some_and(|cached| cached.contains_aabb(&union));
        if cached_covers {
            cache.hits += 1;
        } else {
            cache.misses += 1;
            let inflated = union.inflated(slack.max(0.0));
            self.query_into(&inflated, &mut cache.superset);
            cache.probe = Some(inflated);
        }
        for &i in &cache.superset {
            let b = &self.boxes[i];
            for (p, probe) in probes.iter().enumerate() {
                if b.intersects(probe) {
                    out.lists[p].push(i);
                }
            }
        }
    }
}

/// Union of a probe set's bounds; `None` when the set is empty.
fn union_of(probes: &[Aabb]) -> Option<Aabb> {
    let (first, rest) = probes.split_first()?;
    Some(rest.iter().fold(*first, |acc, b| acc.union(b)))
}

/// Per-probe candidate lists produced by [`Bvh::query_packet_into`].
///
/// The backing vectors are reused across packets, so a steady-state sweep
/// performs no allocation once the lists have grown to their working size.
#[derive(Debug, Clone, Default)]
pub struct PacketLists {
    lists: Vec<Vec<usize>>,
    used: usize,
}

impl PacketLists {
    /// Creates an empty set of lists.
    pub fn new() -> Self {
        PacketLists::default()
    }

    /// Number of probes answered by the last packet query.
    pub fn len(&self) -> usize {
        self.used
    }

    /// Whether the last packet query had no probes.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// The candidate list for probe `p` of the last packet query
    /// (ascending box indices).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probe index of the last query.
    pub fn list(&self, p: usize) -> &[usize] {
        assert!(p < self.used, "probe {p} out of range {}", self.used);
        &self.lists[p]
    }

    /// Clears and sizes the lists for a packet of `n` probes.
    fn reset(&mut self, n: usize) {
        if self.lists.len() < n {
            self.lists.resize_with(n, Vec::new);
        }
        for list in &mut self.lists[..n] {
            list.clear();
        }
        self.used = n;
    }
}

/// Reusable state for [`Bvh::query_into_cached`]: the last inflated probe
/// and the candidate superset collected for it, plus hit/miss statistics.
#[derive(Debug, Clone, Default)]
pub struct QueryCache {
    probe: Option<Aabb>,
    /// All box indices intersecting `probe`, ascending (a query_into result).
    superset: Vec<usize>,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        QueryCache::default()
    }

    /// Invalidates the cached superset (keeps the statistics). Must be
    /// called whenever the [`Bvh`] the cache was used against is rebuilt.
    pub fn clear(&mut self) {
        self.probe = None;
        self.superset.clear();
    }

    /// Queries answered from the cached superset without walking the tree.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Queries that had to walk the tree (including the first).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

fn widest_axis(spread: Vec3) -> usize {
    if spread.x >= spread.y && spread.x >= spread.z {
        0
    } else if spread.y >= spread.z {
        1
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_boxes(n: usize) -> Vec<Aabb> {
        // n³ unit-ish boxes on a lattice, spaced so neighbours don't touch.
        let mut out = Vec::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let c = Vec3::new(x as f64, y as f64, z as f64) * 2.0;
                    out.push(Aabb::from_center_half_extents(c, Vec3::splat(0.4)));
                }
            }
        }
        out
    }

    fn exhaustive(boxes: &[Aabb], probe: &Aabb) -> Vec<usize> {
        boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(probe))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let bvh = Bvh::build(&[]);
        assert!(bvh.is_empty());
        assert!(bvh
            .query(&Aabb::new(Vec3::ZERO, Vec3::splat(1.0)))
            .is_empty());
    }

    #[test]
    fn single_box() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let bvh = Bvh::build(&[b]);
        assert_eq!(bvh.len(), 1);
        assert_eq!(bvh.query(&b), vec![0]);
        let far = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        assert!(bvh.query(&far).is_empty());
    }

    #[test]
    fn matches_exhaustive_on_lattice() {
        let boxes = grid_boxes(4); // 64 boxes
        let bvh = Bvh::build(&boxes);
        let probes = [
            Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            Aabb::new(Vec3::splat(0.0), Vec3::splat(6.5)),
            Aabb::new(Vec3::new(3.0, -1.0, 3.0), Vec3::new(5.0, 9.0, 5.0)),
            Aabb::new(Vec3::splat(100.0), Vec3::splat(101.0)),
        ];
        for probe in &probes {
            assert_eq!(bvh.query(probe), exhaustive(&boxes, probe));
        }
    }

    #[test]
    fn duplicate_and_degenerate_boxes_are_handled() {
        // All boxes identical: centroid spread is zero, so the tree must
        // stop splitting rather than recurse forever.
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let boxes = vec![b; 37];
        let bvh = Bvh::build(&boxes);
        assert_eq!(bvh.query(&b), (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_sorted_ascending() {
        let boxes = grid_boxes(3);
        let bvh = Bvh::build(&boxes);
        let probe = Aabb::new(Vec3::splat(-1.0), Vec3::splat(10.0));
        let hits = bvh.query(&probe);
        assert!(hits.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(hits.len(), boxes.len());
    }

    #[test]
    fn cached_queries_match_fresh_queries_exactly() {
        let boxes = grid_boxes(4);
        let bvh = Bvh::build(&boxes);
        let mut cache = QueryCache::new();
        let mut cached = Vec::new();
        let mut fresh = Vec::new();
        // A slow diagonal sweep: consecutive probes overlap heavily, so most
        // queries should be answered from the cached superset.
        for k in 0..80 {
            let c = Vec3::splat(k as f64 * 0.1);
            let probe = Aabb::from_center_half_extents(c, Vec3::splat(0.6));
            bvh.query_into_cached(&probe, 0.5, &mut cache, &mut cached);
            bvh.query_into(&probe, &mut fresh);
            assert_eq!(cached, fresh, "step {k}");
        }
        assert!(cache.hits() > cache.misses(), "coherent sweep should hit");
        // A far jump misses and refills.
        let far = Aabb::from_center_half_extents(Vec3::splat(100.0), Vec3::splat(1.0));
        let misses_before = cache.misses();
        bvh.query_into_cached(&far, 0.5, &mut cache, &mut cached);
        assert!(cached.is_empty());
        assert_eq!(cache.misses(), misses_before + 1);
        // clear() invalidates: the next identical probe walks the tree again.
        cache.clear();
        bvh.query_into_cached(&far, 0.5, &mut cache, &mut cached);
        assert_eq!(cache.misses(), misses_before + 2);
    }

    #[test]
    fn packet_query_matches_per_probe_queries() {
        let boxes = grid_boxes(4);
        let bvh = Bvh::build(&boxes);
        let mut lists = PacketLists::new();
        let mut fresh = Vec::new();
        // Disjoint, overlapping, and empty probes in one packet.
        let probes = [
            Aabb::from_center_half_extents(Vec3::splat(0.0), Vec3::splat(0.6)),
            Aabb::from_center_half_extents(Vec3::splat(2.0), Vec3::splat(2.5)),
            Aabb::from_center_half_extents(Vec3::splat(100.0), Vec3::splat(0.5)),
        ];
        bvh.query_packet_into(&probes, &mut lists);
        assert_eq!(lists.len(), probes.len());
        for (p, probe) in probes.iter().enumerate() {
            bvh.query_into(probe, &mut fresh);
            assert_eq!(lists.list(p), &fresh[..], "probe {p}");
        }
        // Cached packets agree too, and coherent sweeps hit the cache.
        let mut cache = QueryCache::new();
        for k in 0..40 {
            let c = Vec3::splat(k as f64 * 0.05);
            let moving = [
                Aabb::from_center_half_extents(c, Vec3::splat(0.5)),
                Aabb::from_center_half_extents(c + Vec3::new(1.0, 0.0, 0.0), Vec3::splat(0.5)),
            ];
            bvh.query_packet_cached(&moving, 0.6, &mut cache, &mut lists);
            for (p, probe) in moving.iter().enumerate() {
                bvh.query_into(probe, &mut fresh);
                assert_eq!(lists.list(p), &fresh[..], "step {k} probe {p}");
            }
        }
        assert!(cache.hits() > cache.misses());
        // Empty packets resolve without touching the tree.
        bvh.query_packet_into(&[], &mut lists);
        assert!(lists.is_empty());
    }

    #[test]
    fn query_into_reuses_buffer() {
        let boxes = grid_boxes(2);
        let bvh = Bvh::build(&boxes);
        let mut buf = vec![99usize; 4];
        bvh.query_into(&Aabb::new(Vec3::splat(-1.0), Vec3::splat(0.5)), &mut buf);
        assert_eq!(buf, vec![0]);
    }
}
