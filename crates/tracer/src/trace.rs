//! Command traces: what RATracer records.
//!
//! The Robot Arm Dataset (RAD) is "three months of command trace data
//! captured in the Hein Lab" by RATracer. A [`Trace`] is our equivalent
//! record: one [`TraceEvent`] per intercepted command, with its timestamp
//! and outcome. Traces are serializable, so synthetic RAD corpora
//! (`rabit-rad`) use the same format.

use rabit_devices::Command;
use rabit_util::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// What happened to one intercepted command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Forwarded to the device and executed successfully.
    Forwarded,
    /// Blocked by RABIT before execution (the tracer raised a Python
    /// exception in the paper's implementation).
    Blocked {
        /// The alert headline ("Invalid Command!", …).
        alert: String,
    },
    /// The device itself faulted during execution.
    Faulted {
        /// The device error text.
        error: String,
    },
    /// Executed, but RABIT's post-check found a state mismatch.
    MalfunctionDetected {
        /// Description of the mismatch.
        detail: String,
    },
    /// Not executed: the engine skipped it without halting (e.g. the
    /// target device is quarantined under a degraded-continuation
    /// recovery policy).
    Skipped {
        /// Why the command was skipped.
        reason: String,
    },
}

impl TraceOutcome {
    /// Returns `true` if the command actually ran on the device.
    pub fn executed(&self) -> bool {
        matches!(
            self,
            TraceOutcome::Forwarded | TraceOutcome::MalfunctionDetected { .. }
        )
    }
}

/// One traced command.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Sequence number within the trace.
    pub seq: usize,
    /// Virtual lab time when the command was issued (seconds).
    pub time_s: f64,
    /// The command.
    pub command: Command,
    /// What happened to it.
    pub outcome: TraceOutcome,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match &self.outcome {
            TraceOutcome::Forwarded => "ok".to_string(),
            TraceOutcome::Blocked { alert } => format!("BLOCKED: {alert}"),
            TraceOutcome::Faulted { error } => format!("FAULT: {error}"),
            TraceOutcome::MalfunctionDetected { detail } => {
                format!("MALFUNCTION: {detail}")
            }
            TraceOutcome::Skipped { reason } => format!("SKIPPED: {reason}"),
        };
        write!(
            f,
            "#{:04} t={:8.2}s {} [{}]",
            self.seq, self.time_s, self.command, tag
        )
    }
}

/// A full trace: the RATracer log of one workflow (or one lab session).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Name of the workflow (or session) that produced the trace.
    pub workflow: String,
    /// The events, in order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace for a named workflow.
    pub fn new(workflow: impl Into<String>) -> Self {
        Trace {
            workflow: workflow.into(),
            events: Vec::new(),
        }
    }

    /// Appends an event.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Commands that actually executed, in order — the view the RAD rule
    /// miner consumes.
    pub fn executed_commands(&self) -> impl Iterator<Item = &Command> {
        self.events
            .iter()
            .filter(|e| e.outcome.executed())
            .map(|e| &e.command)
    }

    /// Serializes to JSON Lines (one event per line), the on-disk RAD
    /// format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json().to_compact());
            out.push('\n');
        }
        out
    }

    /// Parses a JSON-Lines trace.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on any malformed line.
    pub fn from_jsonl(workflow: impl Into<String>, text: &str) -> Result<Self, JsonError> {
        let mut trace = Trace::new(workflow);
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            trace
                .events
                .push(TraceEvent::from_json(&Json::parse(line)?)?);
        }
        Ok(trace)
    }
}

impl ToJson for TraceOutcome {
    fn to_json(&self) -> Json {
        match self {
            TraceOutcome::Forwarded => Json::Str("Forwarded".into()),
            TraceOutcome::Blocked { alert } => {
                Json::obj([("Blocked", Json::obj([("alert", Json::Str(alert.clone()))]))])
            }
            TraceOutcome::Faulted { error } => {
                Json::obj([("Faulted", Json::obj([("error", Json::Str(error.clone()))]))])
            }
            TraceOutcome::MalfunctionDetected { detail } => Json::obj([(
                "MalfunctionDetected",
                Json::obj([("detail", Json::Str(detail.clone()))]),
            )]),
            TraceOutcome::Skipped { reason } => Json::obj([(
                "Skipped",
                Json::obj([("reason", Json::Str(reason.clone()))]),
            )]),
        }
    }
}

impl FromJson for TraceOutcome {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        use rabit_util::json::field;
        if let Some(tag) = json.as_str() {
            return match tag {
                "Forwarded" => Ok(TraceOutcome::Forwarded),
                other => Err(JsonError::decode(format!("unknown outcome '{other}'"))),
            };
        }
        let pairs = json
            .as_obj()
            .ok_or_else(|| JsonError::decode(format!("expected outcome, got {json}")))?;
        let (tag, body) = pairs
            .first()
            .ok_or_else(|| JsonError::decode("empty outcome object"))?;
        Ok(match tag.as_str() {
            "Blocked" => TraceOutcome::Blocked {
                alert: field(body, "alert")?,
            },
            "Faulted" => TraceOutcome::Faulted {
                error: field(body, "error")?,
            },
            "MalfunctionDetected" => TraceOutcome::MalfunctionDetected {
                detail: field(body, "detail")?,
            },
            "Skipped" => TraceOutcome::Skipped {
                reason: field(body, "reason")?,
            },
            other => return Err(JsonError::decode(format!("unknown outcome '{other}'"))),
        })
    }
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", self.seq.to_json()),
            ("time_s", Json::Num(self.time_s)),
            ("command", self.command.to_json()),
            ("outcome", self.outcome.to_json()),
        ])
    }
}

impl FromJson for TraceEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        use rabit_util::json::field;
        Ok(TraceEvent {
            seq: field(json, "seq")?,
            time_s: field(json, "time_s")?,
            command: field(json, "command")?,
            outcome: field(json, "outcome")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::ActionKind;

    fn event(seq: usize, outcome: TraceOutcome) -> TraceEvent {
        TraceEvent {
            seq,
            time_s: seq as f64 * 2.0,
            command: Command::new("doser", ActionKind::SetDoor { open: true }),
            outcome,
        }
    }

    #[test]
    fn outcome_execution_classification() {
        assert!(TraceOutcome::Forwarded.executed());
        assert!(TraceOutcome::MalfunctionDetected { detail: "x".into() }.executed());
        assert!(!TraceOutcome::Blocked { alert: "x".into() }.executed());
        assert!(!TraceOutcome::Faulted { error: "x".into() }.executed());
    }

    #[test]
    fn executed_commands_filters() {
        let mut t = Trace::new("wf");
        t.record(event(0, TraceOutcome::Forwarded));
        t.record(event(
            1,
            TraceOutcome::Blocked {
                alert: "Invalid Command!".into(),
            },
        ));
        t.record(event(2, TraceOutcome::Forwarded));
        assert_eq!(t.len(), 3);
        assert_eq!(t.executed_commands().count(), 2);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut t = Trace::new("wf");
        t.record(event(0, TraceOutcome::Forwarded));
        t.record(event(
            1,
            TraceOutcome::Faulted {
                error: "limit".into(),
            },
        ));
        let text = t.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = Trace::from_jsonl("wf", &text).unwrap();
        assert_eq!(back, t);
        // Empty lines are tolerated.
        let padded = format!("\n{text}\n\n");
        assert_eq!(Trace::from_jsonl("wf", &padded).unwrap().len(), 2);
    }

    #[test]
    fn display_contains_key_fields() {
        let e = event(
            7,
            TraceOutcome::Blocked {
                alert: "Invalid trajectory!".into(),
            },
        );
        let s = e.to_string();
        assert!(s.contains("#0007"));
        assert!(s.contains("open_door"));
        assert!(s.contains("Invalid trajectory!"));
        assert!(Trace::new("x").is_empty());
    }
}
