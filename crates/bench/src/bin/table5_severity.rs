//! Regenerates Table V: "Severity of bugs with the total number of bugs
//! in each category and the number of bugs detected by RABIT" — run on
//! the modified configuration, as in the paper.

use rabit_bench::report::render_table;
use rabit_buginject::{run_study, RabitStage};
use rabit_core::Severity;

fn main() {
    println!("Table V — bug severity × detection (modified RABIT)\n");
    let result = run_study(RabitStage::Modified);
    let classes = [
        (Severity::Low, "Low: wasting chemical materials"),
        (Severity::MediumLow, "Medium-Low: breakage of glassware"),
        (
            Severity::MediumHigh,
            "Medium-High: harm to platform/walls/grids",
        ),
        (Severity::High, "High: breaking expensive equipment"),
    ];
    let mut rows = Vec::new();
    for (severity, label) in classes {
        let (total, detected) = result.severity_row(severity);
        rows.push(vec![
            label.to_string(),
            total.to_string(),
            detected.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["Severity of Bugs", "Total", "Detected"], &rows)
    );
    println!("Paper:       Low 3/1, Medium-Low 1/1, Medium-High 6/4, High 6/6");
    println!(
        "Reproduction: Low {l}/{ld}, Medium-Low {ml}/{mld}, Medium-High {mh}/{mhd}, High {h}/{hd}",
        l = result.severity_row(Severity::Low).0,
        ld = result.severity_row(Severity::Low).1,
        ml = result.severity_row(Severity::MediumLow).0,
        mld = result.severity_row(Severity::MediumLow).1,
        mh = result.severity_row(Severity::MediumHigh).0,
        mhd = result.severity_row(Severity::MediumHigh).1,
        h = result.severity_row(Severity::High).0,
        hd = result.severity_row(Severity::High).1,
    );
    println!("\nPer-bug outcomes:");
    let rows: Vec<Vec<String>> = result
        .outcomes
        .iter()
        .map(|o| {
            vec![
                o.id.to_string(),
                o.category.to_string(),
                o.severity.to_string(),
                if o.detected {
                    "detected".into()
                } else if o.device_fault {
                    "device fault".into()
                } else {
                    "missed".into()
                },
                format!("{} damage event(s)", o.damage.len()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Bug", "Category", "Severity", "Outcome", "Damage"], &rows)
    );
}
