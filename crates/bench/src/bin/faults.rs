//! Fault-injection benchmark.
//!
//! Sweeps every parametric fault family (`rabit_buginject::fault_families`)
//! against the stage-2 testbed substrate and reports, per family:
//!
//! * **detection rate** — fraction of faulted runs RABIT halts with one
//!   of its own checks, under [`RecoveryPolicy::AlertImmediately`];
//! * **recovery rate** — fraction of runs that complete once the engine
//!   retries transient faults with exponential backoff
//!   ([`RecoveryPolicy::Retry`]);
//! * **guarded-throughput overhead** — wall-clock cost of the faulted
//!   sweep relative to a clean sweep of the same size, plus the virtual
//!   RABIT overhead per run (retry backoff included).
//!
//! Writes `BENCH_faults.json` and prints the results as a table. Run
//! with `cargo run --release -p rabit-bench --bin faults`; `--quick`
//! runs a reduced pass for CI smoke checks.

use rabit_bench::report::render_table;
use rabit_buginject::{fault_families, run_fault_family_on, FamilyResult};
use rabit_core::{FaultPlan, RecoveryPolicy, RetryPolicy, Stage, Substrate};
use rabit_testbed::TestbedSubstrate;
use rabit_util::Json;
use std::time::Instant;

/// Best-of-N wall-clock seconds for `f`.
fn measure(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct FamilyRow {
    alerted: FamilyResult,
    retried: FamilyResult,
    wall_s: f64,
}

fn family_json(row: &FamilyRow, clean_wall_s: f64, clean_overhead_s: f64) -> Json {
    let a = &row.alerted;
    let r = &row.retried;
    Json::obj([
        ("family", Json::Str(a.family.clone())),
        ("runs", Json::Num(a.runs as f64)),
        ("faults_injected", Json::Num(a.injected as f64)),
        ("detected_runs", Json::Num(a.detected as f64)),
        ("detection_rate", Json::Num(a.detection_rate())),
        ("device_fault_runs", Json::Num(a.device_faults as f64)),
        ("recovered_runs", Json::Num(r.recovered_runs as f64)),
        ("recovery_rate", Json::Num(r.completion_rate())),
        ("retries", Json::Num(r.recovery.retries as f64)),
        ("quarantined", Json::Num(r.recovery.quarantined as f64)),
        ("mean_overhead_seconds", Json::Num(r.mean_overhead_s)),
        (
            "overhead_vs_clean_virtual",
            Json::Num(if clean_overhead_s > 0.0 {
                r.mean_overhead_s / clean_overhead_s
            } else {
                0.0
            }),
        ),
        ("sweep_wall_seconds", Json::Num(row.wall_s)),
        (
            "overhead_vs_clean_wall",
            Json::Num(if clean_wall_s > 0.0 {
                row.wall_s / clean_wall_s
            } else {
                0.0
            }),
        ),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, repeats, threads) = if quick { (4, 1, 2) } else { (16, 3, 4) };
    let seed = 0xFA_17;

    let substrate = TestbedSubstrate::for_stage(Stage::Testbed);
    let retry = RecoveryPolicy::Retry(RetryPolicy::default());

    // --- Clean baseline: the same sweep with nothing injected -------------
    let empty = FaultPlan::none();
    let mut clean = None;
    let clean_wall_s = measure(repeats, || {
        clean = Some(run_fault_family_on(
            &substrate,
            "none",
            &empty,
            runs,
            threads,
            RecoveryPolicy::AlertImmediately,
        ));
    });
    let clean = clean.expect("at least one clean sweep ran");
    assert_eq!(clean.injected, 0, "the empty plan must inject nothing");
    assert_eq!(clean.completed, runs, "clean runs must all complete");

    // --- Faulted sweeps, one per family -----------------------------------
    let rows: Vec<FamilyRow> = fault_families(seed)
        .into_iter()
        .map(|(family, plan)| {
            let mut alerted = None;
            let wall_s = measure(repeats, || {
                alerted = Some(run_fault_family_on(
                    &substrate,
                    family,
                    &plan,
                    runs,
                    threads,
                    RecoveryPolicy::AlertImmediately,
                ));
            });
            let retried = run_fault_family_on(&substrate, family, &plan, runs, threads, retry);
            FamilyRow {
                alerted: alerted.expect("at least one sweep ran"),
                retried,
                wall_s,
            }
        })
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.alerted.family.clone(),
                row.alerted.injected.to_string(),
                format!("{:.2}", row.alerted.detection_rate()),
                format!("{:.2}", row.retried.completion_rate()),
                row.retried.recovery.retries.to_string(),
                format!("{:.2}", row.retried.mean_overhead_s),
                format!("{:.2}x", row.wall_s / clean_wall_s.max(1e-12)),
            ]
        })
        .collect();
    println!(
        "Fault families on {} ({runs} runs each, {threads} threads, best of {repeats})\n",
        substrate.name()
    );
    println!(
        "{}",
        render_table(
            &[
                "family",
                "injected",
                "detect rate",
                "recover rate",
                "retries",
                "overhead s/run",
                "wall vs clean"
            ],
            &table
        )
    );

    // --- BENCH_faults.json -------------------------------------------------
    let config = Json::obj([
        ("quick_mode", Json::Bool(quick)),
        ("seed", Json::Num(seed as f64)),
        ("runs_per_family", Json::Num(runs as f64)),
        ("threads", Json::Num(threads as f64)),
        ("substrate", Json::Str(substrate.name().to_string())),
    ]);
    let results = Json::obj([
        (
            "clean_baseline",
            Json::obj([
                ("sweep_wall_seconds", Json::Num(clean_wall_s)),
                ("mean_overhead_seconds", Json::Num(clean.mean_overhead_s)),
                ("mean_lab_time_seconds", Json::Num(clean.mean_lab_time_s)),
            ]),
        ),
        (
            "families",
            Json::Arr(
                rows.iter()
                    .map(|row| family_json(row, clean_wall_s, clean.mean_overhead_s))
                    .collect(),
            ),
        ),
    ]);
    rabit_bench::schema::write_artifact("faults", config, results);
}
