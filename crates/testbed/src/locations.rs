//! Hard-coded testbed location coordinates (the Fig. 6 utilities file).
//!
//! The paper's testbed keeps **separate coordinate systems per arm** (the
//! "de facto approach in the Hein Lab") because mapping both arms into a
//! common frame had ~3 cm of error. Locations are therefore recorded per
//! arm, exactly like the `locations` dict in Fig. 6.
//!
//! The z-values here are chosen to be self-consistent with the shared
//! physical constants (`rabit_devices::physical`): safe pickups sit above
//! [`HELD_OBJECT_CLEARANCE_M`]; Bug D lowers the dosing-device pickup to
//! 0.08, which clears the bare arm ([`ARM_CLEARANCE_M`] = 0.05) but
//! crashes a held vial.
//!
//! [`HELD_OBJECT_CLEARANCE_M`]: rabit_devices::physical::HELD_OBJECT_CLEARANCE_M
//! [`ARM_CLEARANCE_M`]: rabit_devices::physical::ARM_CLEARANCE_M

use rabit_geometry::Vec3;

/// Per-arm location set for one point of interest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmLocations {
    /// Safe approach height above the pickup.
    pub pickup_safe_height: Vec3,
    /// The pickup position itself.
    pub pickup: Vec3,
}

/// The testbed's location table (Fig. 6 analog).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Locations {
    /// Grid slot NW, in ViperX's frame.
    pub grid_nw_viperx: ArmLocations,
    /// Grid slot NW, in Ned2's frame.
    pub grid_nw_ned2: ArmLocations,
    /// Grid slot SE ("imaginary hotplate for now"), in Ned2's frame.
    pub grid_se_ned2: ArmLocations,
    /// Dosing device, in ViperX's frame.
    pub dosing_viperx: DosingLocations,
    /// Bug B's `random_location` for Ned2 — close to the grid where
    /// ViperX is stationed.
    pub random_location_ned2: Vec3,
}

/// Dosing-device approach set (Fig. 6 lines 23-27).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DosingLocations {
    /// Stand-off point in front of the device.
    pub approach: Vec3,
    /// Safe height above the pickup point.
    pub pickup_safe_height: Vec3,
    /// The in-device pickup point (Bug D lowers its z to 0.08).
    pub pickup: Vec3,
}

/// The standard testbed location table.
pub fn locations() -> Locations {
    Locations {
        grid_nw_viperx: ArmLocations {
            pickup_safe_height: Vec3::new(0.537, 0.018, 0.23),
            pickup: Vec3::new(0.537, 0.018, 0.18),
        },
        // In the paper each arm records this slot in its own frame with
        // different numbers; our lab model resolves physics in one world
        // frame, so Ned2's entry is the calibrated world coordinate of
        // the same slot (see DESIGN.md, frame-handling substitution).
        grid_nw_ned2: ArmLocations {
            pickup_safe_height: Vec3::new(0.537, 0.018, 0.23),
            pickup: Vec3::new(0.537, 0.018, 0.18),
        },
        grid_se_ned2: ArmLocations {
            pickup_safe_height: Vec3::new(0.35, 0.10, 0.23),
            pickup: Vec3::new(0.35, 0.10, 0.18),
        },
        // The approach hovers in front of and above the device opening
        // (the doser cuboid spans y 0.40-0.55, z 0-0.30); the in-device
        // hand-off itself is a MoveInsideDevice step, so no free-space
        // move ever dives beside the box. The low `pickup` point is the
        // Bug-D mutation anchor.
        dosing_viperx: DosingLocations {
            approach: Vec3::new(0.15, 0.30, 0.33),
            pickup_safe_height: Vec3::new(0.15, 0.30, 0.33),
            pickup: Vec3::new(0.15, 0.37, 0.10),
        },
        // Fig. 5 line 28: [0.443, -0.010, 0.292].
        random_location_ned2: Vec3::new(0.443, -0.010, 0.292),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::physical::{ARM_CLEARANCE_M, HELD_OBJECT_CLEARANCE_M};

    #[test]
    fn safe_pickups_clear_a_held_vial() {
        let l = locations();
        for p in [
            l.grid_nw_viperx.pickup,
            l.grid_nw_ned2.pickup,
            l.grid_se_ned2.pickup,
            l.dosing_viperx.pickup,
        ] {
            assert!(
                p.z > HELD_OBJECT_CLEARANCE_M,
                "pickup {p} must clear a held vial"
            );
        }
    }

    #[test]
    fn bug_d_variant_splits_the_clearances() {
        // Lowering the dosing pickup to 0.08 (the Bug D mutation) lands
        // between the two clearance constants: safe bare, fatal held.
        let bug_d_z = 0.08;
        assert!(bug_d_z > ARM_CLEARANCE_M);
        assert!(bug_d_z <= HELD_OBJECT_CLEARANCE_M);
    }

    #[test]
    fn safe_heights_are_above_pickups() {
        let l = locations();
        assert!(l.grid_nw_viperx.pickup_safe_height.z > l.grid_nw_viperx.pickup.z);
        assert!(l.dosing_viperx.pickup_safe_height.z > l.dosing_viperx.pickup.z);
    }
}
