//! Positional noise models for low-fidelity robot arms.
//!
//! The testbed arms (ViperX, Ned2) have "limited capabilities and
//! precision" compared to the production UR3e (paper §III). RABIT's
//! testbed substrate models this as zero-mean Gaussian noise added to
//! commanded positions, with a per-arm standard deviation.

use crate::Vec3;
use rabit_util::Rng;

/// An isotropic Gaussian positional noise model.
///
/// # Example
///
/// ```
/// use rabit_geometry::noise::PositionNoise;
/// use rabit_geometry::Vec3;
///
/// let mut rng = rabit_util::Rng::seed_from_u64(1);
/// // Testbed-arm repeatability on the order of a centimetre.
/// let noise = PositionNoise::gaussian(0.01);
/// let commanded = Vec3::new(0.3, 0.2, 0.1);
/// let actual = noise.perturb(commanded, &mut rng);
/// assert!(commanded.distance(actual) < 0.1); // almost surely
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionNoise {
    /// Standard deviation per axis, in metres. Zero means a perfect arm.
    sigma: f64,
}

impl PositionNoise {
    /// A noiseless model (production-grade arm).
    pub const NONE: PositionNoise = PositionNoise { sigma: 0.0 };

    /// Creates an isotropic Gaussian noise model with per-axis standard
    /// deviation `sigma` metres.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn gaussian(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise sigma must be finite and non-negative, got {sigma}"
        );
        PositionNoise { sigma }
    }

    /// The per-axis standard deviation in metres.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns `true` if this model adds no noise.
    pub fn is_none(&self) -> bool {
        self.sigma == 0.0
    }

    /// Samples a noisy observation of `p`.
    pub fn perturb(&self, p: Vec3, rng: &mut Rng) -> Vec3 {
        if self.is_none() {
            return p;
        }
        p + Vec3::new(
            self.sample_gaussian(rng),
            self.sample_gaussian(rng),
            self.sample_gaussian(rng),
        )
    }

    /// Box–Muller transform: one standard normal sample scaled by sigma.
    fn sample_gaussian(&self, rng: &mut Rng) -> f64 {
        self.sigma * rng.random_normal()
    }

    /// Expected Euclidean error magnitude `E[‖ε‖]` for this model.
    ///
    /// For an isotropic 3D Gaussian, `E[‖ε‖] = σ·√(8/π)` ≈ `1.5958·σ`
    /// (mean of the Maxwell–Boltzmann distribution). Used to choose testbed
    /// sigmas that reproduce the paper's ~3 cm mean frame error.
    pub fn expected_error_norm(&self) -> f64 {
        self.sigma * (8.0 / std::f64::consts::PI).sqrt()
    }
}

impl Default for PositionNoise {
    fn default() -> Self {
        PositionNoise::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = Rng::seed_from_u64(7);
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(PositionNoise::NONE.perturb(p, &mut rng), p);
        assert!(PositionNoise::NONE.is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = PositionNoise::gaussian(-0.01);
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let mut rng = Rng::seed_from_u64(42);
        let noise = PositionNoise::gaussian(0.02);
        let n = 20_000;
        let mut sum = Vec3::ZERO;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let e = noise.perturb(Vec3::ZERO, &mut rng);
            sum += e;
            sum_sq += e.x * e.x;
        }
        let mean = sum / n as f64;
        assert!(mean.norm() < 0.001, "mean should be near zero, got {mean}");
        let var = sum_sq / n as f64;
        assert!(
            (var.sqrt() - 0.02).abs() < 0.002,
            "per-axis std {} should be near 0.02",
            var.sqrt()
        );
    }

    #[test]
    fn expected_error_norm_matches_empirical() {
        let mut rng = Rng::seed_from_u64(3);
        let noise = PositionNoise::gaussian(0.015);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            total += noise.perturb(Vec3::ZERO, &mut rng).norm();
        }
        let empirical = total / n as f64;
        let predicted = noise.expected_error_norm();
        assert!(
            (empirical - predicted).abs() / predicted < 0.05,
            "empirical {empirical} vs predicted {predicted}"
        );
    }

    #[test]
    fn sigma_accessor() {
        assert_eq!(PositionNoise::gaussian(0.01).sigma(), 0.01);
        assert_eq!(PositionNoise::default(), PositionNoise::NONE);
    }
}
