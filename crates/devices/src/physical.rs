//! Shared physical constants of the lab model.
//!
//! Both the ground-truth physics (the `Lab` environment in `rabit-core`)
//! and RABIT's own geometric preconditions reference these constants, so
//! that "RABIT knows the arm's dimensions" means knowing *these* numbers.
//! The Bug-D storyline is reproduced by the split between
//! [`ARM_CLEARANCE_M`] (which baseline RABIT models) and
//! [`HELD_OBJECT_CLEARANCE_M`] (which it did not, until the post-Bug-D
//! modification: "RABIT failed to account that a robot arm's dimensions
//! may change if it is holding an object", §IV).

/// How far the gripper body extends below the commanded tool position
/// (metres). A move with target `z ≤` this collides the bare arm with the
/// mounting platform.
pub const ARM_CLEARANCE_M: f64 = 0.05;

/// How far a held vial hangs below the commanded tool position (metres).
/// A move with target `z ≤` this while holding crashes the vial into the
/// platform (Bug D: pickup z changed from 0.10 to 0.08).
pub const HELD_OBJECT_CLEARANCE_M: f64 = 0.09;

/// Two arm tool positions closer than this (metres) constitute an
/// arm-on-arm collision (Bug B).
pub const ARM_COLLISION_RADIUS_M: f64 = 0.15;

/// A pick physically succeeds only if the target object rests within this
/// distance of the arm's tool position (metres).
pub const GRASP_RADIUS_M: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn clearances_are_ordered() {
        // A held object always hangs lower than the bare gripper, so its
        // clearance requirement must be the stricter one.
        assert!(HELD_OBJECT_CLEARANCE_M > ARM_CLEARANCE_M);
        assert!(GRASP_RADIUS_M > 0.0);
        assert!(ARM_COLLISION_RADIUS_M > GRASP_RADIUS_M);
    }
}
