//! The sharded, batched rule-command broker.
//!
//! [`ServiceBroker`] fronts a shared [`RuleStore`] with a pool of
//! worker threads and **per-tenant bounded ring queues** (one
//! [`rabit_util::ring::RingBuffer`] lane per tenant): commands for one
//! tenant are applied strictly in submission order (so a tenant's epoch
//! history is the same for any worker count), while commands for
//! different tenants commit in parallel. This is the determinism
//! contract the differential suite checks at 1, 4, and 8 threads — it
//! holds exactly because epochs are per tenant, so cross-tenant commit
//! interleaving is unobservable.
//!
//! # Architecture
//!
//! The ingestion path is sharded and mostly lock-free:
//!
//! * **Lanes** — each tenant gets a `TenantLane`: a bounded MPSC ring
//!   of jobs plus a `scheduled` flag. The flag's compare-and-swap
//!   guarantees at most one worker holds a lane at a time, which is
//!   what turns the lane ring into per-tenant serial order — even when
//!   lanes are stolen across shards.
//! * **Shards** — one per worker. A lane's home shard receives it when
//!   it becomes runnable; each shard has its own run-queue and
//!   [`Parker`], so producers wake exactly one shard instead of
//!   convoying every thread through one global mutex + condvar. Idle
//!   workers steal *whole lanes* from other shards (never individual
//!   commands, which would break FIFO).
//! * **Batched admission** — [`ServiceBroker::submit_batch`] enqueues N
//!   commands with one reply allocation ([`BatchTicket`]), one ring
//!   reservation per tenant group, and one wakeup. Workers drain lanes
//!   in batches and commit them through [`RuleStore::apply_ops`] — one
//!   copy-on-write clone per drained batch instead of one per command.
//! * **Backpressure** — lanes are bounded. Blocking admission parks the
//!   producer until space frees; [`ServiceBroker::try_submit_batch`]
//!   instead *sheds* overloaded tenant groups with typed
//!   [`ServiceError::Overloaded`] receipts, all-or-nothing per group so
//!   a retry can never reorder a tenant's commands.
//!
//! Every blocking wait in this module goes through [`Parker`], whose
//! condvar wait sits inside a generation-predicate loop — spurious
//! wakeups re-check the condition, and a wakeup racing the check cannot
//! be lost. The legacy single-command [`ServiceBroker::submit`] path is
//! a thin wrapper over a one-command batch and inherits the same
//! guarantees.

use crate::store::{RuleCommit, RuleOp, RuleStore, ServiceError};
use rabit_rulebase::TenantId;
use rabit_util::ring::{Parker, RingBuffer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default per-tenant lane capacity (commands).
const DEFAULT_QUEUE_CAPACITY: usize = 4096;
/// Per-shard run-queue capacity (lanes; a lane occupies at most one
/// run-queue slot broker-wide, so overflow only matters with thousands
/// of simultaneously-runnable tenants — the push spins briefly then).
const RUNQ_CAPACITY: usize = 1024;
/// Most jobs a worker drains from a lane into one store commit.
const DRAIN_MAX: usize = 256;
/// Batches a worker applies from one lane before requeueing it, so one
/// firehose tenant cannot starve the rest of its shard.
const BATCHES_PER_CLAIM: usize = 4;

/// A tenant-addressed [`RuleOp`] — the broker's submission unit.
#[derive(Debug, Clone)]
pub struct RuleCommand {
    /// The tenant the operation addresses.
    pub tenant: TenantId,
    /// The operation.
    pub op: RuleOp,
}

impl RuleCommand {
    /// A command for `tenant`.
    pub fn new(tenant: impl Into<TenantId>, op: RuleOp) -> Self {
        RuleCommand {
            tenant: tenant.into(),
            op,
        }
    }
}

/// Shared completion state for one submitted batch: one slot per
/// command, a countdown, and the parker the waiter sleeps on.
#[derive(Debug)]
struct BatchState {
    results: Mutex<Vec<Option<Result<RuleCommit, ServiceError>>>>,
    remaining: AtomicUsize,
    parker: Parker,
}

impl BatchState {
    fn for_len(len: usize) -> Arc<Self> {
        Arc::new(BatchState {
            results: Mutex::new(vec![None; len]),
            remaining: AtomicUsize::new(len),
            parker: Parker::new(),
        })
    }
}

/// Fills `slot` and wakes the waiter when it was the last one open.
fn complete(state: &BatchState, slot: u32, result: Result<RuleCommit, ServiceError>) {
    {
        let mut results = state.results.lock().expect("batch results poisoned");
        results[slot as usize] = Some(result);
    }
    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        state.parker.unpark_all();
    }
}

/// The receipt channel for one submitted batch: a single shared reply
/// slot for all N commands (this is the amortisation that replaces the
/// old one-channel-per-command design).
#[derive(Debug)]
pub struct BatchTicket {
    state: Arc<BatchState>,
}

impl BatchTicket {
    /// How many commands the batch carried.
    pub fn len(&self) -> usize {
        self.state
            .results
            .lock()
            .expect("batch results poisoned")
            .len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until every command in the batch has an outcome, then
    /// returns them in submission order. Shed commands resolve to
    /// [`ServiceError::Overloaded`]. Dropping the ticket instead just
    /// discards the receipts; the commits stand.
    pub fn wait(self) -> Vec<Result<RuleCommit, ServiceError>> {
        loop {
            let ticket = self.state.parker.ticket();
            if self.state.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            self.state.parker.park(ticket);
        }
        let mut results = self.state.results.lock().expect("batch results poisoned");
        results
            .drain(..)
            .map(|slot| slot.expect("completed batch fills every slot"))
            .collect()
    }
}

/// The receipt channel for one submitted command: [`Ticket::wait`]
/// blocks until the broker has committed (or rejected) it. A thin
/// wrapper over a one-command [`BatchTicket`].
#[derive(Debug)]
pub struct Ticket {
    batch: BatchTicket,
}

impl Ticket {
    /// Blocks until the command's outcome is known.
    pub fn wait(self) -> Result<RuleCommit, ServiceError> {
        self.batch
            .wait()
            .pop()
            .expect("single-command batch yields one receipt")
    }
}

/// One queued job: the op plus its slot in the batch's reply state.
struct Job {
    op: RuleOp,
    reply: Arc<BatchState>,
    slot: u32,
}

/// One tenant's bounded ingestion lane.
struct TenantLane {
    tenant: TenantId,
    /// Home shard: where the lane is queued when it becomes runnable.
    shard: usize,
    ring: RingBuffer<Job>,
    /// True while the lane is queued on a shard or held by a worker.
    /// The CAS on this flag is the per-tenant exclusivity that makes
    /// lane order commit order.
    scheduled: AtomicBool,
    /// Parks blocking producers waiting for lane space.
    producers: Parker,
}

/// One worker's slice of the broker: a run-queue of runnable lanes and
/// the parker its worker (and only its worker) sleeps on.
struct Shard {
    runq: RingBuffer<Arc<TenantLane>>,
    parker: Parker,
}

/// Monotonic ingestion counters (relaxed; read via [`ServiceBroker::stats`]).
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    committed: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    parks: AtomicU64,
    steals: AtomicU64,
    queue_depth_peak: AtomicU64,
}

/// A point-in-time snapshot of the broker's ingestion counters — the
/// queue-depth/steal/park observability surfaced in the bench envelope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Commands admitted into lanes (accepted, whether yet committed).
    pub submitted: u64,
    /// Commands that committed successfully.
    pub committed: u64,
    /// Commands the store rejected with a typed error (not counting
    /// shed ones).
    pub rejected: u64,
    /// Commands shed with [`ServiceError::Overloaded`] by
    /// [`ServiceBroker::try_submit_batch`].
    pub shed_commands: u64,
    /// Store commits ([`RuleStore::apply_ops`] calls) — `submitted /
    /// batches` is the realised amortisation factor.
    pub batches: u64,
    /// Times a worker went to sleep empty-handed.
    pub worker_parks: u64,
    /// Lanes claimed from another worker's shard.
    pub worker_steals: u64,
    /// Deepest any tenant lane has been (commands), observed at
    /// enqueue time.
    pub queue_depth_peak: u64,
}

/// Everything shared between submitters and workers.
struct Inner {
    store: Arc<RuleStore>,
    shards: Vec<Shard>,
    lanes: Mutex<BTreeMap<TenantId, Arc<TenantLane>>>,
    queue_capacity: usize,
    /// Jobs admitted and not yet retired (drives [`ServiceBroker::flush`]).
    in_flight: AtomicUsize,
    flush_parker: Parker,
    shutdown: AtomicBool,
    /// Round-robin cursor for homing new lanes onto shards.
    next_shard: AtomicUsize,
    counters: Counters,
}

/// The asynchronous command broker over a shared [`RuleStore`].
///
/// Dropping the broker finishes every queued command, then joins the
/// workers.
pub struct ServiceBroker {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceBroker {
    /// Spawns a broker with `threads` workers (min 1) over the store,
    /// with the default per-tenant lane capacity.
    pub fn new(store: Arc<RuleStore>, threads: usize) -> Self {
        ServiceBroker::with_queue_capacity(store, threads, DEFAULT_QUEUE_CAPACITY)
    }

    /// Spawns a broker whose per-tenant lanes hold at most
    /// `queue_capacity` commands (rounded up to a power of two, min 2).
    /// Small capacities exercise the backpressure paths: blocking
    /// admission parks, [`ServiceBroker::try_submit_batch`] sheds.
    pub fn with_queue_capacity(
        store: Arc<RuleStore>,
        threads: usize,
        queue_capacity: usize,
    ) -> Self {
        let inner = ServiceBroker::build(store, threads, queue_capacity);
        let workers = (0..inner.shards.len())
            .map(|me| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, me))
            })
            .collect();
        ServiceBroker { inner, workers }
    }

    /// The shared state with no workers attached.
    fn build(store: Arc<RuleStore>, threads: usize, queue_capacity: usize) -> Arc<Inner> {
        let threads = threads.max(1);
        Arc::new(Inner {
            store,
            shards: (0..threads)
                .map(|_| Shard {
                    runq: RingBuffer::with_capacity(RUNQ_CAPACITY),
                    parker: Parker::new(),
                })
                .collect(),
            lanes: Mutex::new(BTreeMap::new()),
            queue_capacity,
            in_flight: AtomicUsize::new(0),
            flush_parker: Parker::new(),
            shutdown: AtomicBool::new(false),
            next_shard: AtomicUsize::new(0),
            counters: Counters::default(),
        })
    }

    /// A broker with **no workers**: admitted jobs stay queued forever.
    /// Lets tests exercise shedding deterministically.
    #[cfg(test)]
    fn paused(store: Arc<RuleStore>, queue_capacity: usize) -> Self {
        ServiceBroker {
            inner: ServiceBroker::build(store, 1, queue_capacity),
            workers: Vec::new(),
        }
    }

    /// The shared store (snapshots read from it reflect every commit
    /// the broker has applied so far).
    pub fn store(&self) -> &Arc<RuleStore> {
        &self.inner.store
    }

    /// Current ingestion counters.
    pub fn stats(&self) -> BrokerStats {
        let c = &self.inner.counters;
        BrokerStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            committed: c.committed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            shed_commands: c.shed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            worker_parks: c.parks.load(Ordering::Relaxed),
            worker_steals: c.steals.load(Ordering::Relaxed),
            queue_depth_peak: c.queue_depth_peak.load(Ordering::Relaxed),
        }
    }

    /// Enqueues a command; per-tenant submission order is commit order.
    /// Returns a [`Ticket`] resolving to the commit receipt. Blocks
    /// only if the tenant's lane is full (until a worker frees space).
    pub fn submit(&self, command: RuleCommand) -> Ticket {
        Ticket {
            batch: self.admit(std::slice::from_ref(&command), true),
        }
    }

    /// Enqueues a batch of commands with a single reply allocation and
    /// (per tenant in the batch) a single ring reservation + wakeup.
    ///
    /// Within the batch, same-tenant commands commit in batch order;
    /// different tenants commit in parallel, exactly as if submitted
    /// one at a time. If a tenant's lane is full the call parks until a
    /// worker frees space (groups larger than the lane capacity are
    /// admitted in capacity-sized chunks).
    pub fn submit_batch(&self, commands: &[RuleCommand]) -> BatchTicket {
        self.admit(commands, true)
    }

    /// Non-blocking batch admission with typed overload shedding.
    ///
    /// Tenant groups that fit their lane are admitted exactly like
    /// [`ServiceBroker::submit_batch`]; a group that does not fit is
    /// shed **whole** — every command in it resolves to
    /// [`ServiceError::Overloaded`], none commits — so resubmitting the
    /// shed commands later preserves per-tenant order. (A group larger
    /// than the lane capacity can never fit and is always shed.)
    pub fn try_submit_batch(&self, commands: &[RuleCommand]) -> BatchTicket {
        self.admit(commands, false)
    }

    /// Shared admission: group by tenant, enqueue each group.
    fn admit(&self, commands: &[RuleCommand], block: bool) -> BatchTicket {
        let state = BatchState::for_len(commands.len());
        // Group commands by tenant, preserving per-tenant order. Linear
        // tenant lookup: batches overwhelmingly carry few tenants.
        let mut groups: Vec<(Arc<TenantLane>, Vec<Job>)> = Vec::new();
        for (slot, command) in commands.iter().enumerate() {
            let job = Job {
                op: command.op.clone(),
                reply: Arc::clone(&state),
                slot: slot as u32,
            };
            match groups
                .iter_mut()
                .find(|(lane, _)| lane.tenant == command.tenant)
            {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((self.lane(&command.tenant), vec![job])),
            }
        }
        for (lane, jobs) in groups {
            self.enqueue(&lane, jobs, block);
        }
        BatchTicket { state }
    }

    /// The tenant's lane, created (and homed round-robin on a shard) on
    /// first sight.
    fn lane(&self, tenant: &TenantId) -> Arc<TenantLane> {
        let inner = &self.inner;
        let mut lanes = inner.lanes.lock().expect("broker lanes poisoned");
        if let Some(lane) = lanes.get(tenant) {
            return Arc::clone(lane);
        }
        let shard = inner.next_shard.fetch_add(1, Ordering::Relaxed) % inner.shards.len();
        let lane = Arc::new(TenantLane {
            tenant: tenant.clone(),
            shard,
            ring: RingBuffer::with_capacity(inner.queue_capacity),
            scheduled: AtomicBool::new(false),
            producers: Parker::new(),
        });
        lanes.insert(tenant.clone(), Arc::clone(&lane));
        lane
    }

    /// Admits one tenant group into its lane — blocking (parks until
    /// space) or shedding (whole group, typed receipts).
    fn enqueue(&self, lane: &Arc<TenantLane>, jobs: Vec<Job>, block: bool) {
        let inner = &self.inner;
        let n = jobs.len();
        inner
            .counters
            .submitted
            .fetch_add(n as u64, Ordering::Relaxed);
        inner.in_flight.fetch_add(n, Ordering::AcqRel);
        if !block {
            match lane.ring.try_push_batch(jobs) {
                Ok(()) => self.after_push(lane),
                Err(shed) => {
                    inner.counters.shed.fetch_add(n as u64, Ordering::Relaxed);
                    inner
                        .counters
                        .submitted
                        .fetch_sub(n as u64, Ordering::Relaxed);
                    for job in shed {
                        complete(
                            &job.reply,
                            job.slot,
                            Err(ServiceError::Overloaded(lane.tenant.clone())),
                        );
                    }
                    retire(inner, n);
                }
            }
            return;
        }
        let capacity = lane.ring.capacity();
        let mut rest = jobs;
        while !rest.is_empty() {
            let take = rest.len().min(capacity);
            let mut chunk: Vec<Job> = rest.drain(..take).collect();
            loop {
                // Ticket before the attempt: a worker freeing space
                // between our failed push and our park bumps the
                // generation, so the park returns immediately.
                let ticket = lane.producers.ticket();
                match lane.ring.try_push_batch(chunk) {
                    Ok(()) => break,
                    Err(back) => {
                        chunk = back;
                        lane.producers.park(ticket);
                    }
                }
            }
            self.after_push(lane);
        }
    }

    /// Post-push bookkeeping: record depth, make the lane runnable on
    /// its home shard if it was not already scheduled, wake that shard.
    fn after_push(&self, lane: &Arc<TenantLane>) {
        let inner = &self.inner;
        let depth = lane.ring.len() as u64;
        inner
            .counters
            .queue_depth_peak
            .fetch_max(depth, Ordering::Relaxed);
        if !lane.scheduled.swap(true, Ordering::AcqRel) {
            push_runq(inner, lane.shard, Arc::clone(lane));
            inner.shards[lane.shard].parker.unpark_all();
        }
    }

    /// Blocks until every command admitted so far has been committed,
    /// rejected, or shed. Snapshots taken from the store afterwards see
    /// all of them.
    pub fn flush(&self) {
        let inner = &self.inner;
        loop {
            let ticket = inner.flush_parker.ticket();
            if inner.in_flight.load(Ordering::Acquire) == 0 {
                return;
            }
            inner.flush_parker.park(ticket);
        }
    }
}

impl Drop for ServiceBroker {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.parker.unpark_all();
        }
        for worker in self.workers.drain(..) {
            let _unused = worker.join();
        }
    }
}

/// Queues a runnable lane on `shard` (spins on the rare runq overflow).
fn push_runq(inner: &Inner, shard: usize, lane: Arc<TenantLane>) {
    let mut item = lane;
    loop {
        match inner.shards[shard].runq.try_push(item) {
            Ok(()) => return,
            Err(back) => {
                item = back;
                std::thread::yield_now();
            }
        }
    }
}

/// Retires `n` completed (or shed) jobs; wakes flush waiters — and,
/// during shutdown, the workers — when the count hits zero.
fn retire(inner: &Inner, n: usize) {
    if inner.in_flight.fetch_sub(n, Ordering::AcqRel) == n {
        inner.flush_parker.unpark_all();
        if inner.shutdown.load(Ordering::Acquire) {
            for shard in &inner.shards {
                shard.parker.unpark_all();
            }
        }
    }
}

/// Pops a runnable lane: own shard first, then steal from the others.
fn claim(inner: &Inner, me: usize) -> Option<Arc<TenantLane>> {
    if let Some(lane) = inner.shards[me].runq.try_pop() {
        return Some(lane);
    }
    let shards = inner.shards.len();
    for offset in 1..shards {
        if let Some(lane) = inner.shards[(me + offset) % shards].runq.try_pop() {
            inner.counters.steals.fetch_add(1, Ordering::Relaxed);
            return Some(lane);
        }
    }
    None
}

/// Worker: claim a lane, process it, park when nothing is runnable.
fn worker_loop(inner: &Inner, me: usize) {
    let mut ops: Vec<RuleOp> = Vec::with_capacity(DRAIN_MAX);
    let mut meta: Vec<(Arc<BatchState>, u32)> = Vec::with_capacity(DRAIN_MAX);
    loop {
        // Ticket before the scan: work pushed to this shard after the
        // scan bumps the generation and the park falls through.
        let ticket = inner.shards[me].parker.ticket();
        if let Some(lane) = claim(inner, me) {
            process(inner, &lane, &mut ops, &mut meta);
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) && inner.in_flight.load(Ordering::Acquire) == 0 {
            return;
        }
        inner.counters.parks.fetch_add(1, Ordering::Relaxed);
        inner.shards[me].parker.park(ticket);
    }
}

/// Drains and commits batches from an exclusively-held lane, then hands
/// the lane back (requeue if still loaded, release + recheck if not).
fn process(
    inner: &Inner,
    lane: &Arc<TenantLane>,
    ops: &mut Vec<RuleOp>,
    meta: &mut Vec<(Arc<BatchState>, u32)>,
) {
    for _ in 0..BATCHES_PER_CLAIM {
        ops.clear();
        meta.clear();
        while ops.len() < DRAIN_MAX {
            match lane.ring.try_pop() {
                Some(job) => {
                    ops.push(job.op);
                    meta.push((job.reply, job.slot));
                }
                None => break,
            }
        }
        if ops.is_empty() {
            break;
        }
        let drained = ops.len();
        // One copy-on-write commit for the whole drained batch; per-op
        // epochs and receipts come back in lane (= submission) order.
        let results = inner.store.apply_ops(&lane.tenant, ops);
        inner.counters.batches.fetch_add(1, Ordering::Relaxed);
        let mut committed = 0u64;
        let mut rejected = 0u64;
        for ((state, slot), result) in meta.drain(..).zip(results) {
            if result.is_ok() {
                committed += 1;
            } else {
                rejected += 1;
            }
            complete(&state, slot, result);
        }
        inner
            .counters
            .committed
            .fetch_add(committed, Ordering::Relaxed);
        inner
            .counters
            .rejected
            .fetch_add(rejected, Ordering::Relaxed);
        // Space freed: wake producers parked on this lane.
        lane.producers.unpark_all();
        retire(inner, drained);
    }
    if !lane.ring.is_empty() {
        // Still loaded after its fairness quantum: keep it scheduled
        // and requeue so any worker (including a stealer) continues it.
        push_runq(inner, lane.shard, Arc::clone(lane));
        inner.shards[lane.shard].parker.unpark_all();
        return;
    }
    lane.scheduled.store(false, Ordering::Release);
    // A producer may have pushed between our last drain and the clear,
    // seen `scheduled == true`, and skipped queueing the lane — recheck
    // and reclaim so that push is never stranded.
    if !lane.ring.is_empty() && !lane.scheduled.swap(true, Ordering::AcqRel) {
        push_runq(inner, lane.shard, Arc::clone(lane));
        inner.shards[lane.shard].parker.unpark_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CreateRuleRequest;
    use rabit_rulebase::{Rule, RuleId, Rulebase};

    fn noop_rule(name: &str) -> Rule {
        Rule::new(
            RuleId::Custom(name.to_string()),
            "never fires",
            |_, _, _| None,
        )
    }

    #[test]
    fn broker_commits_in_per_tenant_submission_order() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("a", Rulebase::standard());
        store.seed_tenant("b", Rulebase::standard());
        let broker = ServiceBroker::new(Arc::clone(&store), 4);
        let mut tickets = Vec::new();
        for i in 0..8 {
            for tenant in ["a", "b"] {
                tickets.push(broker.submit(RuleCommand::new(
                    tenant,
                    RuleOp::Create(CreateRuleRequest::new(noop_rule(&format!("r{i}")))),
                )));
            }
        }
        let receipts: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        // Per tenant, the i-th submission published epoch i+1.
        for (i, pair) in receipts.chunks(2).enumerate() {
            for receipt in pair {
                let receipt = receipt.as_ref().expect("create commits");
                assert_eq!(receipt.epoch, i as u64 + 1);
            }
        }
        assert_eq!(store.epoch_of(&TenantId::new("a")), Some(8));
        assert_eq!(store.epoch_of(&TenantId::new("b")), Some(8));
    }

    #[test]
    fn flush_makes_all_commits_visible() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("lab", Rulebase::standard());
        let broker = ServiceBroker::new(Arc::clone(&store), 2);
        for i in 0..16 {
            drop(broker.submit(RuleCommand::new(
                "lab",
                RuleOp::Create(CreateRuleRequest::new(noop_rule(&format!("r{i}")))),
            )));
        }
        broker.flush();
        assert_eq!(store.epoch_of(&TenantId::new("lab")), Some(16));
        assert_eq!(
            store.snapshot_for(&TenantId::new("lab")).unwrap().len(),
            11 + 16
        );
    }

    #[test]
    fn rejected_commands_report_typed_errors() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("lab", Rulebase::standard());
        let broker = ServiceBroker::new(Arc::clone(&store), 1);
        let err = broker
            .submit(RuleCommand::new(
                "ghost",
                RuleOp::Disable(RuleId::General(1)),
            ))
            .wait()
            .expect_err("unseeded tenant");
        assert_eq!(err, ServiceError::UnknownTenant(TenantId::new("ghost")));
        assert_eq!(store.epoch_of(&TenantId::new("lab")), Some(0));
    }

    #[test]
    fn batch_receipts_come_back_in_submission_order() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("a", Rulebase::standard());
        store.seed_tenant("b", Rulebase::standard());
        let broker = ServiceBroker::new(Arc::clone(&store), 4);
        // Interleave two tenants plus a failing command in one batch.
        let commands = vec![
            RuleCommand::new("a", RuleOp::Create(CreateRuleRequest::new(noop_rule("x")))),
            RuleCommand::new("b", RuleOp::Create(CreateRuleRequest::new(noop_rule("x")))),
            RuleCommand::new("a", RuleOp::Disable(RuleId::General(1))),
            RuleCommand::new("a", RuleOp::Remove(RuleId::Custom("ghost".into()))),
            RuleCommand::new("b", RuleOp::Disable(RuleId::General(2))),
        ];
        let ticket = broker.submit_batch(&commands);
        assert_eq!(ticket.len(), 5);
        let receipts = ticket.wait();
        assert_eq!(receipts[0].as_ref().unwrap().epoch, 1);
        assert_eq!(receipts[1].as_ref().unwrap().epoch, 1);
        assert_eq!(receipts[2].as_ref().unwrap().epoch, 2);
        assert!(matches!(receipts[3], Err(ServiceError::UnknownRule { .. })));
        assert_eq!(receipts[4].as_ref().unwrap().epoch, 2);
        assert_eq!(store.epoch_of(&TenantId::new("a")), Some(2));
        assert_eq!(store.epoch_of(&TenantId::new("b")), Some(2));
        let stats = broker.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.committed, 4);
        assert_eq!(stats.rejected, 1);
        assert!(stats.queue_depth_peak >= 1);
    }

    #[test]
    fn empty_batches_resolve_immediately() {
        let store = Arc::new(RuleStore::new());
        let broker = ServiceBroker::new(Arc::clone(&store), 1);
        let ticket = broker.submit_batch(&[]);
        assert!(ticket.is_empty());
        assert!(ticket.wait().is_empty());
        broker.flush();
    }

    #[test]
    fn try_submit_sheds_whole_groups_when_the_lane_is_full() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("lab", Rulebase::standard());
        // No workers: nothing drains, so shedding is deterministic.
        let broker = ServiceBroker::paused(Arc::clone(&store), 4);
        let cmd = |name: &str| {
            RuleCommand::new(
                "lab",
                RuleOp::Create(CreateRuleRequest::new(noop_rule(name))),
            )
        };
        // Fills the 4-slot lane.
        drop(broker.try_submit_batch(&[cmd("a"), cmd("b"), cmd("c"), cmd("d")]));
        // A 2-command group cannot fit: shed whole, typed receipts.
        let receipts = broker.try_submit_batch(&[cmd("e"), cmd("f")]).wait();
        assert_eq!(receipts.len(), 2);
        for receipt in &receipts {
            assert_eq!(
                receipt,
                &Err(ServiceError::Overloaded(TenantId::new("lab")))
            );
        }
        // Oversized groups (bigger than the lane) are always shed.
        let oversized: Vec<_> = (0..5).map(|i| cmd(&format!("g{i}"))).collect();
        let receipts = broker.try_submit_batch(&oversized).wait();
        assert!(receipts
            .iter()
            .all(|r| matches!(r, Err(ServiceError::Overloaded(_)))));
        let stats = broker.stats();
        assert_eq!(stats.shed_commands, 7);
        assert_eq!(stats.submitted, 4, "accepted commands only");
        assert_eq!(store.epoch_of(&TenantId::new("lab")), Some(0));
    }

    #[test]
    fn blocking_submit_parks_until_workers_free_space() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("lab", Rulebase::standard());
        // Capacity 2 with live workers: a 64-command batch must park
        // and chunk its way in rather than shed or spin forever.
        let broker = ServiceBroker::with_queue_capacity(Arc::clone(&store), 2, 2);
        let commands: Vec<_> = (0..64)
            .map(|i| {
                RuleCommand::new(
                    "lab",
                    RuleOp::Create(CreateRuleRequest::new(noop_rule(&format!("r{i}")))),
                )
            })
            .collect();
        let receipts = broker.submit_batch(&commands).wait();
        for (i, receipt) in receipts.iter().enumerate() {
            assert_eq!(receipt.as_ref().unwrap().epoch, i as u64 + 1);
        }
        assert_eq!(store.epoch_of(&TenantId::new("lab")), Some(64));
        assert_eq!(broker.stats().shed_commands, 0);
    }

    #[test]
    fn drop_finishes_queued_work() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("lab", Rulebase::standard());
        {
            let broker = ServiceBroker::new(Arc::clone(&store), 2);
            for i in 0..32 {
                drop(broker.submit(RuleCommand::new(
                    "lab",
                    RuleOp::Create(CreateRuleRequest::new(noop_rule(&format!("r{i}")))),
                )));
            }
            // No flush: Drop must drain the lanes before joining.
        }
        assert_eq!(store.epoch_of(&TenantId::new("lab")), Some(32));
    }
}
