//! Differential test: the verdict cache must be invisible. A cached
//! [`ExtendedSimulator`] and an uncached one, driven with identical
//! command streams over identical (mutating) worlds, must return the
//! same verdict and mirror the same arm pose at every step — while the
//! cached one actually serves a meaningful share of hits.

use rabit_core::{TrajectoryValidator, TrajectoryVerdict};
use rabit_devices::{ActionKind, Command, DeviceId, DeviceState, LabState, StateKey};
use rabit_geometry::{Aabb, Vec3};
use rabit_kinematics::presets;
use rabit_sim::{ExtendedSimulator, SimConfig, SimWorld};
use rabit_util::Rng;

const WORLDS: usize = 6;
const COMMANDS_PER_WORLD: usize = 96; // 6 × 96 = 576 ≥ 256 paired validations

fn sim(world: SimWorld, verdict_cache: bool) -> ExtendedSimulator {
    ExtendedSimulator::new(
        world,
        SimConfig {
            gui: false,
            verdict_cache,
            ..SimConfig::default()
        },
    )
    .with_arm("ur3e", presets::ur3e())
}

fn state(holding: bool) -> LabState {
    let mut s = LabState::new();
    let held = if holding {
        Some(DeviceId::new("vial"))
    } else {
        None
    };
    s.insert("ur3e", DeviceState::new().with(StateKey::Holding, held));
    s
}

/// A small pool of reachable targets around the home tool position, so
/// the random walk revisits (start, goal) pairs and the cache gets hits.
fn target_pool() -> Vec<Vec3> {
    let arm = presets::ur3e();
    let home_tool = arm.tool_position(&arm.home_configuration());
    vec![
        home_tool + Vec3::new(0.05, 0.05, 0.05),
        home_tool + Vec3::new(-0.06, 0.04, 0.02),
        home_tool + Vec3::new(0.0, 0.1, -0.03),
        Vec3::new(5.0, 5.0, 5.0), // out of reach → Unavailable
    ]
}

fn random_world(rng: &mut Rng) -> SimWorld {
    let mut w = SimWorld::new();
    let n = rng.random_range(0..6usize);
    for i in 0..n {
        let c = Vec3::new(
            rng.random_range(-0.6..0.6),
            rng.random_range(-0.6..0.6),
            rng.random_range(0.0..0.6),
        );
        let h = Vec3::new(
            rng.random_range(0.02..0.15),
            rng.random_range(0.02..0.15),
            rng.random_range(0.02..0.15),
        );
        w.add_obstacle(format!("dev{i}"), Aabb::from_center_half_extents(c, h));
    }
    w
}

fn random_command(rng: &mut Rng, pool: &[Vec3]) -> Command {
    match rng.random_range(0..10u32) {
        0 => Command::new("ur3e", ActionKind::MoveHome),
        1 => Command::new("ur3e", ActionKind::MoveToSleep),
        _ => Command::new(
            "ur3e",
            ActionKind::MoveToLocation {
                target: pool[rng.random_range(0..pool.len())],
            },
        ),
    }
}

#[test]
fn cached_verdicts_match_uncached_pose_for_pose() {
    let mut rng = Rng::seed_from_u64(0xCAC4E);
    let pool = target_pool();
    let arm_id = DeviceId::new("ur3e");
    let mut total = 0usize;
    let mut total_hits = 0u64;
    for wi in 0..WORLDS {
        let world = random_world(&mut rng);
        let mut cached = sim(world.clone(), true);
        let mut uncached = sim(world, false);
        let mut holding = false;
        for ci in 0..COMMANDS_PER_WORLD {
            // Occasionally mutate both worlds identically mid-run: the
            // epoch key must keep stale verdicts from being served.
            if rng.random_bool(0.06) {
                let c = Vec3::new(
                    rng.random_range(-0.5..0.5),
                    rng.random_range(-0.5..0.5),
                    rng.random_range(0.0..0.5),
                );
                let aabb = Aabb::from_center_half_extents(c, Vec3::splat(0.08));
                let name = format!("mut{wi}_{ci}");
                cached.world_mut().add_obstacle(name.clone(), aabb);
                uncached.world_mut().add_obstacle(name, aabb);
            } else if rng.random_bool(0.03) {
                let names: Vec<String> = cached
                    .world()
                    .obstacles()
                    .iter()
                    .map(|o| o.name.clone())
                    .collect();
                if !names.is_empty() {
                    let victim = &names[rng.random_range(0..names.len())];
                    cached.world_mut().remove_obstacle(victim);
                    uncached.world_mut().remove_obstacle(victim);
                }
            }
            if rng.random_bool(0.1) {
                holding = !holding;
            }
            let cmd = random_command(&mut rng, &pool);
            let s = state(holding);
            let vc = cached.validate(&cmd, &s);
            let vu = uncached.validate(&cmd, &s);
            assert_eq!(vc, vu, "world {wi} command {ci} ({cmd:?}): verdicts differ");
            assert_eq!(
                cached.arm_configuration(&arm_id),
                uncached.arm_configuration(&arm_id),
                "world {wi} command {ci}: mirrored poses diverged"
            );
            total += 1;
        }
        assert_eq!(
            cached.cache_hits() + cached.cache_misses(),
            COMMANDS_PER_WORLD as u64,
            "every validation goes through the cache"
        );
        assert_eq!(uncached.cache_hits(), 0, "disabled cache must not hit");
        total_hits += cached.cache_hits();
    }
    assert!(total >= 256, "only {total} paired validations");
    // The pool is small and moves mirror deterministically, so the walk
    // revisits states. Mutations wipe the live epoch and held-state
    // toggles split keys, so the rate stays modest — but the cache must
    // genuinely engage.
    assert!(
        total_hits * 10 >= (WORLDS * COMMANDS_PER_WORLD) as u64,
        "only {total_hits} hits across {total} validations — cache never engages"
    );
}

#[test]
fn mid_run_world_mutation_invalidates_cached_safe_verdict() {
    // Cache a Safe verdict for home → target, then drop a device cuboid
    // onto exactly that path. Replaying the identical command from the
    // identical pose must report the collision, not the stale Safe.
    let arm = presets::ur3e();
    let home_tool = arm.tool_position(&arm.home_configuration());
    let target = home_tool + Vec3::new(0.0, 0.25, 0.0);
    let mid = home_tool.lerp(target, 0.5);
    let block = Aabb::from_center_half_extents(mid, Vec3::new(0.35, 0.04, 0.35));

    let mut s = sim(SimWorld::new(), true);
    let cmd = Command::new("ur3e", ActionKind::MoveToLocation { target });
    let back = Command::new("ur3e", ActionKind::MoveHome);
    let lab = state(false);

    // Prime: safe, and repeat the round trip to prove the hits come.
    assert_eq!(s.validate(&cmd, &lab), TrajectoryVerdict::Safe);
    assert_eq!(s.validate(&back, &lab), TrajectoryVerdict::Safe);
    assert_eq!(s.validate(&cmd, &lab), TrajectoryVerdict::Safe);
    assert_eq!(s.validate(&back, &lab), TrajectoryVerdict::Safe);
    assert!(s.cache_hits() >= 2, "repeat round trip must hit the cache");

    // Mutate the device AABB mid-run: the same key inputs now face a
    // different world, so the stale Safe must not be served.
    s.world_mut().add_obstacle("dropped_device", block);
    match s.validate(&cmd, &lab) {
        TrajectoryVerdict::Collision(report) => {
            assert_eq!(report.device.as_str(), "dropped_device")
        }
        other => panic!("stale cached verdict served after mutation: {other:?}"),
    }

    // And removing it restores Safe (a third epoch, not the first's
    // entries — but the verdict is what matters).
    s.world_mut().remove_obstacle("dropped_device");
    assert_eq!(s.validate(&cmd, &lab), TrajectoryVerdict::Safe);
}

#[test]
fn rulebase_epoch_bump_invalidates_cached_verdicts() {
    // The verdict key composes the *rulebase* epoch alongside the world
    // epoch: a rule commit mid-run must stop cached verdicts from being
    // served even though the world never changed. The engine reports the
    // epoch through `note_rulebase_epoch` before every validation.
    let arm = presets::ur3e();
    let home_tool = arm.tool_position(&arm.home_configuration());
    let target = home_tool + Vec3::new(0.05, 0.05, 0.05);
    let mut s = sim(SimWorld::new(), true);
    let cmd = Command::new("ur3e", ActionKind::MoveToLocation { target });
    let back = Command::new("ur3e", ActionKind::MoveHome);
    let lab = state(false);

    // Prime under rulebase epoch 0 and prove the round trip hits.
    s.note_rulebase_epoch(0);
    assert_eq!(s.validate(&cmd, &lab), TrajectoryVerdict::Safe);
    assert_eq!(s.validate(&back, &lab), TrajectoryVerdict::Safe);
    assert_eq!(s.validate(&cmd, &lab), TrajectoryVerdict::Safe);
    assert_eq!(s.validate(&back, &lab), TrajectoryVerdict::Safe);
    let hits_before = s.cache_hits();
    let misses_before = s.cache_misses();
    assert!(hits_before >= 2, "repeat round trip must hit the cache");

    // A rule commit publishes epoch 1: the identical command from the
    // identical pose and world must re-sweep, not replay epoch 0's entry.
    s.note_rulebase_epoch(1);
    assert_eq!(s.validate(&cmd, &lab), TrajectoryVerdict::Safe);
    assert_eq!(s.cache_hits(), hits_before, "stale epoch-0 verdict served");
    assert_eq!(s.cache_misses(), misses_before + 1);

    // An in-flight validation still on epoch 0 finds its entries intact:
    // old generations age out via LRU, they are not swept eagerly. The
    // arm is at `target` now, so the primed epoch-0 `back` entry applies.
    s.note_rulebase_epoch(0);
    assert_eq!(s.validate(&back, &lab), TrajectoryVerdict::Safe);
    assert_eq!(
        s.cache_hits(),
        hits_before + 1,
        "epoch-0 entries must survive the epoch-1 commit"
    );
}

#[test]
fn cache_respects_held_object_difference() {
    // Same pose, same goal, different held state: the bare-arm Safe must
    // not be replayed for the held-vial case (Bug D's geometry).
    let arm = presets::ur3e();
    let home_tool = arm.tool_position(&arm.home_configuration());
    let target = home_tool + Vec3::new(0.08, 0.0, -0.02);
    let mid = home_tool.lerp(target, 0.5);
    let shelf =
        Aabb::from_center_half_extents(mid - Vec3::new(0.0, 0.0, 0.12), Vec3::new(0.2, 0.2, 0.06));
    let mut s = sim(SimWorld::new().with_obstacle("shelf", shelf), true);
    let cmd = Command::new("ur3e", ActionKind::MoveToLocation { target });
    assert_eq!(s.validate(&cmd, &state(false)), TrajectoryVerdict::Safe);
    // Reset the mirrored pose so the start config matches exactly.
    s.add_arm("ur3e", presets::ur3e());
    match s.validate(&cmd, &state(true)) {
        TrajectoryVerdict::Collision(report) => assert_eq!(report.device.as_str(), "shelf"),
        other => panic!("held-object case served the bare-arm verdict: {other:?}"),
    }
}
