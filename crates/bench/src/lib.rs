//! Experiment harness reproducing every table and figure of the RABIT
//! paper's evaluation.
//!
//! Each `src/bin/` binary regenerates one paper artifact (run with
//! `cargo run -p rabit-bench --bin <name>`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1_stages` | Table I (stage capabilities, quantified) |
//! | `table2_transition` | Table II (state-transition examples) |
//! | `table3_general_rules` | Table III controlled experiments |
//! | `table4_custom_rules` | Table IV controlled experiments |
//! | `table5_severity` | Table V (bug severity × detection) |
//! | `detection_rates` | §IV summary: 50% → 75% → 81%, 0 false positives |
//! | `latency_overhead` | §II-C overhead measurements |
//! | `frame_error` | §IV cat. 2: the ~3 cm common-frame error |
//! | `pilot_study` | §V-A pilot study |
//! | `rad_mining` | §II-A rule mining from RAD |
//! | `ablations` | DESIGN.md ablation studies |
//! | `pipeline` | three-stage promotion pipeline (per-stage throughput, detection, gating) |
//!
//! The `benches/` directory holds dependency-free micro-benchmarks (the
//! [`timing`] harness) for the real compute costs: rule evaluation,
//! collision checking, trajectories, mining, and the end-to-end engine
//! step. `fleet_throughput` measures the fleet executor and broad-phase
//! pruning, emitting `BENCH_fleet.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod latency;
pub mod report;
pub mod scenarios;
pub mod schema;
pub mod stages;
pub mod timing;
