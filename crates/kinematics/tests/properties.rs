//! Property-based tests over kinematics invariants.
//!
//! Hand-rolled property loops over the in-tree seeded PRNG — each
//! property runs `CASES` deterministic cases.

use rabit_kinematics::trajectory::Trajectory;
use rabit_kinematics::{presets, ArmModel, HeldObject, JointConfig};
use rabit_util::Rng;

const CASES: usize = 256;

fn any_arm(rng: &mut Rng) -> ArmModel {
    match rng.random_range(0..3u32) {
        0 => presets::ur3e(),
        1 => presets::viperx300(),
        _ => presets::ned2(),
    }
}

#[test]
fn tool_never_exceeds_max_reach() {
    let mut rng = Rng::seed_from_u64(201);
    for _ in 0..CASES {
        let arm = any_arm(&mut rng);
        // A random config drawn uniformly within the joint limits.
        let mut q = JointConfig::ZERO;
        for i in 0..6 {
            let l = arm.limits()[i];
            q = q.with_angle(i, rng.random_range(l.min..l.max));
        }
        let d = arm
            .tool_position(&q)
            .distance(arm.chain().base().translation);
        assert!(
            d <= arm.max_reach() + 1e-9,
            "{}: {d} > {}",
            arm.name(),
            arm.max_reach()
        );
    }
}

#[test]
fn capsules_chain_continuously() {
    let mut rng = Rng::seed_from_u64(202);
    for _ in 0..CASES {
        let arm = any_arm(&mut rng);
        let caps = arm.link_capsules(&arm.home_configuration(), None);
        assert_eq!(caps.len(), 7);
        for w in caps.windows(2) {
            assert!((w[0].segment.b - w[1].segment.a).norm() < 1e-9);
        }
    }
}

#[test]
fn held_object_never_shrinks_the_arm() {
    let mut rng = Rng::seed_from_u64(203);
    for _ in 0..CASES {
        let arm = any_arm(&mut rng);
        let held = HeldObject::new(rng.random_range(0.001..0.05), rng.random_range(0.0..0.15));
        let q = arm.home_configuration();
        let bare = arm.lowest_point(&q, None);
        let with = arm.lowest_point(&q, Some(&held));
        assert!(with <= bare + 1e-9);
    }
}

#[test]
fn trajectory_sampling_brackets_endpoints() {
    let mut rng = Rng::seed_from_u64(204);
    for _ in 0..CASES {
        let n = rng.random_range(2..50usize);
        let arm = presets::ur3e();
        let t = Trajectory::linear(arm.home_configuration(), arm.sleep_configuration());
        let s = t.sample(n);
        assert_eq!(s.len(), n);
        assert!(s[0].max_joint_delta(&t.start()) < 1e-12);
        assert!(s[n - 1].max_joint_delta(&t.end()) < 1e-12);
        // Monotone progress: each sample moves away from the start.
        let mut last = -1.0;
        for c in &s {
            let d = t.start().distance(c);
            assert!(d >= last - 1e-9);
            last = d;
        }
    }
}

#[test]
fn config_at_is_continuous() {
    let mut rng = Rng::seed_from_u64(205);
    for _ in 0..CASES {
        let t1 = rng.random_range(0.0..5.0);
        let dt = rng.random_range(0.0..0.01);
        let arm = presets::viperx300();
        let traj = Trajectory::linear(arm.home_configuration(), arm.sleep_configuration());
        let a = traj.config_at(t1);
        let b = traj.config_at(t1 + dt);
        // With DEFAULT_JOINT_SPEED = 1 rad/s, joints can't jump more than dt.
        assert!(a.max_joint_delta(&b) <= dt + 1e-9);
    }
}

#[test]
fn lerp_stays_within_segment_bounds() {
    let mut rng = Rng::seed_from_u64(206);
    for _ in 0..CASES {
        let t = rng.random_range(0.0..1.0);
        let a = JointConfig::new([0.0, -1.0, 2.0, 0.5, -0.5, 0.0]);
        let b = JointConfig::new([1.0, 1.0, -2.0, 0.5, 0.5, 3.0]);
        let c = a.lerp(&b, t);
        for i in 0..6 {
            let (lo, hi) = (a.angle(i).min(b.angle(i)), a.angle(i).max(b.angle(i)));
            assert!(c.angle(i) >= lo - 1e-12 && c.angle(i) <= hi + 1e-12);
        }
    }
}

#[test]
fn ik_then_fk_roundtrip_for_reachable_grid() {
    // Deterministic integration check across the three arms.
    use rabit_geometry::Vec3;
    use rabit_kinematics::ik::{solve_position, IkParams};
    for arm in [presets::ur3e(), presets::viperx300()] {
        let seed = arm.home_configuration();
        let start = arm.tool_position(&seed);
        for dx in [-0.05, 0.0, 0.05] {
            for dz in [-0.05, 0.05] {
                let target = start + Vec3::new(dx, 0.02, dz);
                let q = solve_position(&arm, &seed, target, &IkParams::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", arm.name()));
                assert!(arm.tool_position(&q).distance(target) < 1e-3);
            }
        }
    }
}
