//! Regenerates the Table III controlled experiments: one deliberately
//! unsafe scenario per general rule, on the testbed and with the Extended
//! Simulator attached. The paper: "RABIT successfully detected unsafe
//! behavior in all these scenarios."

use rabit_bench::report::{mark, render_table};
use rabit_bench::scenarios::{rule_scenarios, run_scenario};
use rabit_rulebase::RuleId;
use rabit_testbed::RabitStage;

fn main() {
    println!("Table III — controlled experiments for the 11 general rules\n");
    let mut rows = Vec::new();
    let mut all = true;
    for scenario in rule_scenarios()
        .iter()
        .filter(|s| matches!(s.rule, RuleId::General(_)))
    {
        let tb = run_scenario(scenario, RabitStage::Modified);
        let sim = run_scenario(scenario, RabitStage::ModifiedWithSimulator);
        all &= tb.detected && sim.detected && tb.right_rule;
        rows.push(vec![
            scenario.rule.to_string(),
            scenario.scenario.to_string(),
            mark(tb.detected),
            mark(sim.detected),
            mark(tb.right_rule),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Rule",
                "Unsafe scenario",
                "Testbed",
                "With simulator",
                "Right rule cited"
            ],
            &rows
        )
    );
    println!(
        "Paper: all scenarios detected. Reproduction: {}",
        if all {
            "all detected ✓"
        } else {
            "MISMATCH ✗"
        }
    );
}
