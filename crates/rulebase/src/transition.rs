//! The state-transition function: postconditions.
//!
//! `UpdateState(S_current, a_next)` from the Fig. 2 algorithm (Line 11):
//! given the current lab snapshot and a command, compute the snapshot the
//! lab *should* be in after the command executes. Comparing this
//! `S_expected` against the fetched `S_actual` detects device
//! malfunctions (Lines 13-15).

use crate::catalog::DeviceCatalog;
use rabit_devices::{ActionKind, Command, DeviceId, LabState, StateKey, Substance};

/// Computes the expected lab state after `command` executes in `current`.
///
/// The function is total: commands that would be rule violations still
/// produce a prediction (RABIT would have stopped them earlier; the
/// transition function itself is not a safety check).
pub fn expected_state(catalog: &DeviceCatalog, current: &LabState, command: &Command) -> LabState {
    let mut next = current.clone();
    let actor = &command.actor;
    match &command.action {
        ActionKind::MoveToLocation { target } => {
            next.set(actor, StateKey::Location, *target);
            next.set(actor, StateKey::InsideOf, None::<DeviceId>);
            next.set(actor, StateKey::AtSleep, false);
            // A held object travels with the gripper.
            if let Some(held) = current.get_id(actor, &StateKey::Holding).flatten().cloned() {
                next.set(&held, StateKey::Location, *target);
            }
        }
        ActionKind::MoveInsideDevice { device } => {
            next.set(actor, StateKey::InsideOf, Some(device.clone()));
            next.set(actor, StateKey::AtSleep, false);
        }
        ActionKind::MoveOutOfDevice => {
            next.set(actor, StateKey::InsideOf, None::<DeviceId>);
        }
        ActionKind::MoveHome => {
            if let Some(home) = catalog.get(actor).and_then(|m| m.home_location) {
                next.set(actor, StateKey::Location, home);
                if let Some(held) = current.get_id(actor, &StateKey::Holding).flatten().cloned() {
                    next.set(&held, StateKey::Location, home);
                }
            }
            next.set(actor, StateKey::InsideOf, None::<DeviceId>);
            next.set(actor, StateKey::AtSleep, false);
        }
        ActionKind::MoveToSleep => {
            if let Some(sleep) = catalog.get(actor).and_then(|m| m.sleep_location) {
                next.set(actor, StateKey::Location, sleep);
                if let Some(held) = current.get_id(actor, &StateKey::Holding).flatten().cloned() {
                    next.set(&held, StateKey::Location, sleep);
                }
            }
            next.set(actor, StateKey::InsideOf, None::<DeviceId>);
            next.set(actor, StateKey::AtSleep, true);
        }
        ActionKind::PickObject { object } => {
            next.set(actor, StateKey::Holding, Some(object.clone()));
            next.set(actor, StateKey::GripperOpen, false);
            next.set(actor, StateKey::AtSleep, false);
            // If the object sat inside a device, it leaves it.
            for meta in catalog.iter() {
                if current
                    .get_id(&meta.id, &StateKey::ContainedObject)
                    .flatten()
                    == Some(object)
                {
                    next.set(&meta.id, StateKey::ContainedObject, None::<DeviceId>);
                }
            }
        }
        ActionKind::PlaceObject { object, into } => {
            next.set(actor, StateKey::Holding, None::<DeviceId>);
            next.set(actor, StateKey::GripperOpen, true);
            if let Some(device) = into {
                next.set(device, StateKey::ContainedObject, Some(object.clone()));
            }
        }
        ActionKind::OpenGripper => {
            next.set(actor, StateKey::GripperOpen, true);
            next.set(actor, StateKey::Holding, None::<DeviceId>);
        }
        ActionKind::CloseGripper => {
            next.set(actor, StateKey::GripperOpen, false);
        }
        ActionKind::SetDoor { open } => {
            next.set(actor, StateKey::DoorOpen, *open);
        }
        ActionKind::DoseSolid { amount_mg, into } => {
            add_substance(&mut next, into, Substance::Solid, *amount_mg);
        }
        ActionKind::DoseLiquid { volume_ml, into } => {
            add_substance(&mut next, into, Substance::Liquid, *volume_ml);
        }
        ActionKind::StartAction { value } => {
            next.set(actor, StateKey::ActionActive, true);
            // Only devices that report an action value are expected to
            // show it (dosing systems expose just active/inactive).
            if current.get_number(actor, &StateKey::ActionValue).is_some() {
                next.set(actor, StateKey::ActionValue, *value);
            }
            // A centrifuge spin leaves the red dot askew.
            if current.get_bool(actor, &StateKey::RedDotNorth).is_some() {
                next.set(actor, StateKey::RedDotNorth, false);
            }
            // On a dosing system, `run_action(quantity)` dispenses into
            // the contained container (Fig. 5 line 21).
            if matches!(
                catalog.device_type(actor),
                Some(rabit_devices::DeviceType::DosingSystem)
            ) {
                if let Some(contained) = current
                    .get_id(actor, &StateKey::ContainedObject)
                    .flatten()
                    .cloned()
                {
                    add_substance(&mut next, &contained, Substance::Solid, *value);
                }
            }
        }
        ActionKind::StopAction => {
            next.set(actor, StateKey::ActionActive, false);
            if current.get_number(actor, &StateKey::ActionValue).is_some() {
                next.set(actor, StateKey::ActionValue, 0.0);
            }
        }
        ActionKind::Cap => {
            next.set(actor, StateKey::HasStopper, true);
        }
        ActionKind::Decap => {
            next.set(actor, StateKey::HasStopper, false);
        }
        ActionKind::Transfer {
            from,
            to,
            substance,
            amount,
        } => {
            remove_substance(&mut next, from, *substance, *amount);
            add_substance(&mut next, to, *substance, *amount);
        }
        ActionKind::Custom { name, .. } => {
            // Multi-door actuation (the §V-C extension) has a declared
            // postcondition: the named door's state variable flips.
            if let Some(door) = name.strip_prefix(rabit_devices::multidoor::OPEN_DOOR_PREFIX) {
                next.set(actor, rabit_devices::multidoor::door_key(door), true);
            } else if let Some(door) =
                name.strip_prefix(rabit_devices::multidoor::CLOSE_DOOR_PREFIX)
            {
                next.set(actor, rabit_devices::multidoor::door_key(door), false);
            }
            // Other lab-defined actions: no generic postcondition; they
            // rely on malfunction checks of the variables they declare.
        }
    }
    next
}

fn substance_keys(substance: Substance) -> (StateKey, StateKey) {
    match substance {
        Substance::Solid => (StateKey::SolidMg, StateKey::CapacityMg),
        Substance::Liquid => (StateKey::LiquidMl, StateKey::CapacityMl),
    }
}

fn add_substance(state: &mut LabState, container: &DeviceId, substance: Substance, amount: f64) {
    let (level_key, capacity_key) = substance_keys(substance);
    let level = state.get_number(container, &level_key).unwrap_or(0.0);
    let capacity = state
        .get_number(container, &capacity_key)
        .unwrap_or(f64::INFINITY);
    // Physical saturation: overflow spills, contents cap at capacity.
    state.set(container, level_key, (level + amount).min(capacity));
}

fn remove_substance(state: &mut LabState, container: &DeviceId, substance: Substance, amount: f64) {
    let (level_key, _) = substance_keys(substance);
    let level = state.get_number(container, &level_key).unwrap_or(0.0);
    state.set(container, level_key, (level - amount).max(0.0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DeviceMeta;
    use rabit_devices::{DeviceState, DeviceType};
    use rabit_geometry::Vec3;

    fn catalog() -> DeviceCatalog {
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("arm", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, 0.0, 0.1)),
            )
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("vial", DeviceType::Container))
            .with(DeviceMeta::new("centrifuge", DeviceType::ActionDevice).with_door())
    }

    fn base() -> LabState {
        let mut s = LabState::new();
        s.insert(
            "arm",
            DeviceState::new()
                .with(StateKey::Location, Vec3::new(0.3, 0.0, 0.3))
                .with(StateKey::Holding, None::<DeviceId>)
                .with(StateKey::InsideOf, None::<DeviceId>)
                .with(StateKey::GripperOpen, true)
                .with(StateKey::AtSleep, false),
        );
        s.insert(
            "vial",
            DeviceState::new()
                .with(StateKey::SolidMg, 0.0)
                .with(StateKey::LiquidMl, 0.0)
                .with(StateKey::CapacityMg, 10.0)
                .with(StateKey::CapacityMl, 20.0)
                .with(StateKey::HasStopper, false),
        );
        s.insert(
            "doser",
            DeviceState::new()
                .with(StateKey::DoorOpen, false)
                .with(StateKey::ContainedObject, None::<DeviceId>),
        );
        s.insert(
            "centrifuge",
            DeviceState::new()
                .with(StateKey::ActionActive, false)
                .with(StateKey::ActionValue, 0.0)
                .with(StateKey::RedDotNorth, true),
        );
        s
    }

    #[test]
    fn move_updates_location_and_held_object() {
        let cat = catalog();
        let mut s = base();
        s.set(
            &"arm".into(),
            StateKey::Holding,
            Some(DeviceId::new("vial")),
        );
        let target = Vec3::new(0.5, 0.1, 0.2);
        let next = expected_state(
            &cat,
            &s,
            &Command::new("arm", ActionKind::MoveToLocation { target }),
        );
        assert_eq!(
            next.get(&"arm".into(), &StateKey::Location)
                .unwrap()
                .as_position()
                .unwrap(),
            target
        );
        assert_eq!(
            next.get(&"vial".into(), &StateKey::Location)
                .unwrap()
                .as_position()
                .unwrap(),
            target,
            "held vial travels with the arm"
        );
    }

    #[test]
    fn home_and_sleep_use_catalog_positions() {
        let cat = catalog();
        let s = base();
        let next = expected_state(&cat, &s, &Command::new("arm", ActionKind::MoveToSleep));
        assert_eq!(next.get_bool(&"arm".into(), &StateKey::AtSleep), Some(true));
        assert_eq!(
            next.get(&"arm".into(), &StateKey::Location)
                .unwrap()
                .as_position()
                .unwrap(),
            Vec3::new(0.1, 0.0, 0.1)
        );
        let back = expected_state(&cat, &next, &Command::new("arm", ActionKind::MoveHome));
        assert_eq!(
            back.get_bool(&"arm".into(), &StateKey::AtSleep),
            Some(false)
        );
        assert_eq!(
            back.get(&"arm".into(), &StateKey::Location)
                .unwrap()
                .as_position()
                .unwrap(),
            Vec3::new(0.3, 0.0, 0.3)
        );
    }

    #[test]
    fn pick_place_roundtrip_moves_containment() {
        let cat = catalog();
        let mut s = base();
        s.set(
            &"doser".into(),
            StateKey::ContainedObject,
            Some(DeviceId::new("vial")),
        );
        // Picking the vial out of the doser clears the doser's containment.
        let picked = expected_state(
            &cat,
            &s,
            &Command::new(
                "arm",
                ActionKind::PickObject {
                    object: "vial".into(),
                },
            ),
        );
        assert_eq!(
            picked
                .get_id(&"arm".into(), &StateKey::Holding)
                .unwrap()
                .unwrap()
                .as_str(),
            "vial"
        );
        assert_eq!(
            picked.get_bool(&"arm".into(), &StateKey::GripperOpen),
            Some(false)
        );
        assert_eq!(
            picked.get_id(&"doser".into(), &StateKey::ContainedObject),
            Some(None)
        );
        // Placing into the centrifuge sets its containment.
        let placed = expected_state(
            &cat,
            &picked,
            &Command::new(
                "arm",
                ActionKind::PlaceObject {
                    object: "vial".into(),
                    into: Some("centrifuge".into()),
                },
            ),
        );
        assert_eq!(placed.get_id(&"arm".into(), &StateKey::Holding), Some(None));
        assert_eq!(
            placed
                .get_id(&"centrifuge".into(), &StateKey::ContainedObject)
                .unwrap()
                .unwrap()
                .as_str(),
            "vial"
        );
    }

    #[test]
    fn doors_and_grippers() {
        let cat = catalog();
        let s = base();
        let open = expected_state(
            &cat,
            &s,
            &Command::new("doser", ActionKind::SetDoor { open: true }),
        );
        assert_eq!(
            open.get_bool(&"doser".into(), &StateKey::DoorOpen),
            Some(true)
        );
        let mut held = s.clone();
        held.set(
            &"arm".into(),
            StateKey::Holding,
            Some(DeviceId::new("vial")),
        );
        let dropped = expected_state(&cat, &held, &Command::new("arm", ActionKind::OpenGripper));
        assert_eq!(
            dropped.get_id(&"arm".into(), &StateKey::Holding),
            Some(None)
        );
        assert_eq!(
            dropped.get_bool(&"arm".into(), &StateKey::GripperOpen),
            Some(true)
        );
        let closed = expected_state(&cat, &s, &Command::new("arm", ActionKind::CloseGripper));
        assert_eq!(
            closed.get_bool(&"arm".into(), &StateKey::GripperOpen),
            Some(false)
        );
    }

    #[test]
    fn dosing_saturates_at_capacity() {
        let cat = catalog();
        let s = base();
        let next = expected_state(
            &cat,
            &s,
            &Command::new(
                "doser",
                ActionKind::DoseSolid {
                    amount_mg: 6.0,
                    into: "vial".into(),
                },
            ),
        );
        assert_eq!(
            next.get_number(&"vial".into(), &StateKey::SolidMg),
            Some(6.0)
        );
        // Overdose: expected physical outcome is saturation (spill).
        let over = expected_state(
            &cat,
            &next,
            &Command::new(
                "doser",
                ActionKind::DoseSolid {
                    amount_mg: 9.0,
                    into: "vial".into(),
                },
            ),
        );
        assert_eq!(
            over.get_number(&"vial".into(), &StateKey::SolidMg),
            Some(10.0)
        );
    }

    #[test]
    fn transfer_moves_substance() {
        let cat = catalog();
        let mut s = base();
        s.set(&"vial".into(), StateKey::LiquidMl, 10.0);
        s.insert(
            "vial2",
            DeviceState::new()
                .with(StateKey::LiquidMl, 0.0)
                .with(StateKey::CapacityMl, 20.0),
        );
        let next = expected_state(
            &cat,
            &s,
            &Command::new(
                "arm",
                ActionKind::Transfer {
                    from: "vial".into(),
                    to: "vial2".into(),
                    substance: Substance::Liquid,
                    amount: 4.0,
                },
            ),
        );
        assert_eq!(
            next.get_number(&"vial".into(), &StateKey::LiquidMl),
            Some(6.0)
        );
        assert_eq!(
            next.get_number(&"vial2".into(), &StateKey::LiquidMl),
            Some(4.0)
        );
        // Removal floors at zero.
        let drained = expected_state(
            &cat,
            &next,
            &Command::new(
                "arm",
                ActionKind::Transfer {
                    from: "vial".into(),
                    to: "vial2".into(),
                    substance: Substance::Liquid,
                    amount: 100.0,
                },
            ),
        );
        assert_eq!(
            drained.get_number(&"vial".into(), &StateKey::LiquidMl),
            Some(0.0)
        );
        assert_eq!(
            drained.get_number(&"vial2".into(), &StateKey::LiquidMl),
            Some(20.0)
        );
    }

    #[test]
    fn start_stop_action_and_red_dot() {
        let cat = catalog();
        let s = base();
        let spun = expected_state(
            &cat,
            &s,
            &Command::new("centrifuge", ActionKind::StartAction { value: 4000.0 }),
        );
        assert_eq!(
            spun.get_bool(&"centrifuge".into(), &StateKey::ActionActive),
            Some(true)
        );
        assert_eq!(
            spun.get_number(&"centrifuge".into(), &StateKey::ActionValue),
            Some(4000.0)
        );
        assert_eq!(
            spun.get_bool(&"centrifuge".into(), &StateKey::RedDotNorth),
            Some(false),
            "expected postcondition: a spin leaves the dot askew"
        );
        let stopped = expected_state(
            &cat,
            &spun,
            &Command::new("centrifuge", ActionKind::StopAction),
        );
        assert_eq!(
            stopped.get_bool(&"centrifuge".into(), &StateKey::ActionActive),
            Some(false)
        );
        assert_eq!(
            stopped.get_number(&"centrifuge".into(), &StateKey::ActionValue),
            Some(0.0)
        );
    }

    #[test]
    fn cap_decap() {
        let cat = catalog();
        let s = base();
        let capped = expected_state(&cat, &s, &Command::new("vial", ActionKind::Cap));
        assert_eq!(
            capped.get_bool(&"vial".into(), &StateKey::HasStopper),
            Some(true)
        );
        let decapped = expected_state(&cat, &capped, &Command::new("vial", ActionKind::Decap));
        assert_eq!(
            decapped.get_bool(&"vial".into(), &StateKey::HasStopper),
            Some(false)
        );
    }

    #[test]
    fn custom_actions_are_identity() {
        let cat = catalog();
        let s = base();
        let next = expected_state(
            &cat,
            &s,
            &Command::new(
                "doser",
                ActionKind::Custom {
                    name: "blink".into(),
                    params: vec![],
                },
            ),
        );
        assert_eq!(next, s);
    }

    #[test]
    fn transition_never_mutates_input() {
        let cat = catalog();
        let s = base();
        let snapshot = s.clone();
        let _ = expected_state(&cat, &s, &Command::new("arm", ActionKind::MoveToSleep));
        assert_eq!(s, snapshot);
    }
}
