//! Quickstart: wire RABIT between an experiment script and a small lab.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a two-device lab (a robot arm and a dosing device with a glass
//! door), guards it with the standard rulebase, runs a safe workflow, and
//! then shows RABIT stopping the classic unsafe command — entering the
//! dosing device while its door is closed — before anything breaks.

use rabit::core::{Lab, Rabit, RabitConfig};
use rabit::devices::{DeviceType, DosingDevice, RobotArm, Vial};
use rabit::geometry::{Aabb, Vec3};
use rabit::rulebase::{DeviceCatalog, DeviceMeta, Rulebase};
use rabit::tracer::{Tracer, Workflow};

fn build_lab() -> Lab {
    Lab::new()
        .with_device(RobotArm::new(
            "arm",
            Vec3::new(0.3, 0.0, 0.3),  // home
            Vec3::new(0.1, -0.3, 0.2), // sleep
        ))
        .with_device(DosingDevice::new(
            "doser",
            Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
        ))
        .with_device(Vial::new("vial", Vec3::new(0.5, 0.0, 0.15)))
}

fn build_rabit() -> Rabit {
    // In a real deployment the catalog comes from the JSON configuration
    // (see the `configuration` example); here we build it inline.
    let catalog = DeviceCatalog::new()
        .with(
            DeviceMeta::new("arm", DeviceType::RobotArm)
                .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
        )
        .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
        .with(DeviceMeta::new("vial", DeviceType::Container));
    Rabit::new(Rulebase::standard(), catalog, RabitConfig::default())
}

fn main() {
    // --- A safe workflow sails through. ---
    let mut lab = build_lab();
    let mut rabit = build_rabit();
    let safe = Workflow::new("safe_demo")
        .set_door("doser", true)
        .move_inside("arm", "doser")
        .move_out("arm")
        .set_door("doser", false);
    let report = Tracer::guarded(&mut lab, &mut rabit).run(&safe);
    println!(
        "safe workflow: {} commands executed, alert: {:?}",
        report.executed, report.alert
    );
    assert!(report.completed());

    // --- The footnote-1 bug: the programmer forgot open_door(). ---
    let mut lab = build_lab();
    let mut rabit = build_rabit();
    let buggy = Workflow::new("forgot_open_door").move_inside("arm", "doser");
    let report = Tracer::guarded(&mut lab, &mut rabit).run(&buggy);
    let alert = report.alert.expect("RABIT must stop this");
    println!("\nbuggy workflow stopped: {alert}");
    assert!(lab.damage_log().is_empty(), "the glass door survived");
    println!(
        "damage log: {} events — the door did not break",
        lab.damage_log().len()
    );

    // --- The same bug WITHOUT RABIT breaks the door. ---
    let mut lab = build_lab();
    let report = Tracer::pass_through(&mut lab).run(&buggy);
    assert!(report.completed(), "nothing stops the unguarded run");
    for event in lab.damage_log() {
        println!("\nunguarded run: {event}");
    }
}
