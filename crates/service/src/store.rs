//! The versioned, multi-tenant rule store.
//!
//! [`RuleStore`] keeps one [`TenantTable`] per tenant: the tenant's
//! current epoch plus an `Arc` to its latest published [`Rulebase`].
//! Every commit — create, update, enable/disable, remove — is
//! copy-on-write: it clones the published rulebase, applies the change,
//! bumps the tenant's epoch, and swaps in a fresh `Arc`. Holders of
//! older [`RulebaseSnapshot`]s are untouched; a validation that started
//! on epoch *N* finishes on epoch *N* while the next command picks up
//! the latest epoch through [`SnapshotSource::snapshot`].
//!
//! Epochs are **per tenant**: commits to one lab never perturb another
//! lab's version history, which is also what makes the broker's
//! cross-tenant parallelism deterministic (only per-tenant order
//! matters).

use rabit_rulebase::{Rule, RuleId, Rulebase, RulebaseSnapshot, SnapshotSource, TenantId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A request to add one rule to a tenant's rulebase.
///
/// Modeled on the classic REST shape (`POST /rules`): the payload plus
/// an initial enablement bit, defaulting to enabled.
#[derive(Debug, Clone)]
pub struct CreateRuleRequest {
    /// The rule to add. Its [`RuleId`] must be new to the tenant.
    pub rule: Rule,
    /// Whether the rule starts enabled (`true` unless
    /// [`CreateRuleRequest::disabled`] is used).
    pub is_enabled: bool,
}

impl CreateRuleRequest {
    /// A request adding `rule` enabled.
    pub fn new(rule: Rule) -> Self {
        CreateRuleRequest {
            rule,
            is_enabled: true,
        }
    }

    /// Marks the rule to start disabled (staged but not yet firing).
    pub fn disabled(mut self) -> Self {
        self.is_enabled = false;
        self
    }
}

/// A partial update to one existing rule (`PUT /rules/{id}`): each
/// `Some` field is applied, each `None` leaves the current value. An
/// update with every field `None` is rejected as [`ServiceError::EmptyUpdate`].
#[derive(Debug, Clone, Default)]
pub struct UpdateRuleRequest {
    /// Replacement rule body (checker + description), if any. The
    /// replacement keeps the addressed [`RuleId`]; supplying a rule
    /// carrying a different id is rejected.
    pub rule: Option<Rule>,
    /// New enablement state, if any.
    pub is_enabled: Option<bool>,
}

impl UpdateRuleRequest {
    /// An empty update (rejected unless a field is set).
    pub fn new() -> Self {
        UpdateRuleRequest::default()
    }

    /// Sets the replacement rule body.
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Sets the enablement state.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.is_enabled = Some(enabled);
        self
    }
}

/// What a commit did, recorded in its [`RuleCommit`] receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOp {
    /// A rule was added.
    Create,
    /// A rule's body and/or enablement was replaced.
    Update,
    /// A rule was switched on.
    Enable,
    /// A rule was switched off.
    Disable,
    /// A rule was removed.
    Remove,
}

impl fmt::Display for CommitOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CommitOp::Create => "create",
            CommitOp::Update => "update",
            CommitOp::Enable => "enable",
            CommitOp::Disable => "disable",
            CommitOp::Remove => "remove",
        })
    }
}

/// The receipt of one committed mutation: which tenant, which rule,
/// what happened, and the epoch the commit published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleCommit {
    /// The tenant the commit landed in.
    pub tenant: TenantId,
    /// The rule the commit addressed.
    pub rule: RuleId,
    /// What the commit did.
    pub op: CommitOp,
    /// The epoch this commit published (the tenant's previous epoch + 1).
    pub epoch: u64,
}

/// A typed rule-service failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The tenant has never been seeded.
    UnknownTenant(TenantId),
    /// The addressed rule does not exist in the tenant's rulebase.
    UnknownRule {
        /// The tenant addressed.
        tenant: TenantId,
        /// The missing rule.
        rule: RuleId,
    },
    /// A create collided with an existing rule id.
    DuplicateRule {
        /// The tenant addressed.
        tenant: TenantId,
        /// The already-present rule.
        rule: RuleId,
    },
    /// An [`UpdateRuleRequest`] with no fields set.
    EmptyUpdate,
    /// An update supplied a replacement rule whose id differs from the
    /// addressed one (renames are a remove + create, never silent).
    IdMismatch {
        /// The rule the update addressed.
        addressed: RuleId,
        /// The id the replacement body carried.
        supplied: RuleId,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServiceError::UnknownRule { tenant, rule } => {
                write!(f, "tenant {tenant} has no rule {rule}")
            }
            ServiceError::DuplicateRule { tenant, rule } => {
                write!(f, "tenant {tenant} already has rule {rule}")
            }
            ServiceError::EmptyUpdate => f.write_str("update request sets no fields"),
            ServiceError::IdMismatch {
                addressed,
                supplied,
            } => write!(
                f,
                "update addressed rule {addressed} but supplied body for {supplied}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One tenant's row: its version counter and latest publication.
#[derive(Debug)]
struct TenantTable {
    epoch: u64,
    published: Arc<Rulebase>,
}

/// The versioned multi-tenant rule store.
///
/// Thread-safe behind one internal mutex: commits are serialised (they
/// are rare, human-scale events), snapshot reads are a lock + two `Arc`
/// clones. Validation itself never holds the lock — engines work off
/// the immutable snapshots they captured.
#[derive(Debug, Default)]
pub struct RuleStore {
    tenants: Mutex<BTreeMap<TenantId, TenantTable>>,
}

impl RuleStore {
    /// An empty store with no tenants.
    pub fn new() -> Self {
        RuleStore::default()
    }

    /// Seeds (or reseeds) a tenant with a full rulebase at epoch
    /// [`rabit_rulebase::STATIC_EPOCH`]. A seeded, never-committed
    /// tenant therefore hands out snapshots indistinguishable from the
    /// pinned path — the bit-identical baseline the differential suite
    /// pins down.
    pub fn seed_tenant(&self, tenant: impl Into<TenantId>, rulebase: Rulebase) -> RulebaseSnapshot {
        let tenant = tenant.into();
        let published = Arc::new(rulebase);
        let mut tenants = self.tenants.lock().expect("rule store poisoned");
        tenants.insert(
            tenant.clone(),
            TenantTable {
                epoch: rabit_rulebase::STATIC_EPOCH,
                published: Arc::clone(&published),
            },
        );
        RulebaseSnapshot::published(tenant, rabit_rulebase::STATIC_EPOCH, published)
    }

    /// A store pre-seeded with the default tenant — the drop-in handle
    /// for single-lab setups.
    pub fn single_tenant(rulebase: Rulebase) -> Self {
        let store = RuleStore::new();
        store.seed_tenant(TenantId::default_tenant(), rulebase);
        store
    }

    /// The seeded tenants, in order.
    pub fn tenants(&self) -> Vec<TenantId> {
        let tenants = self.tenants.lock().expect("rule store poisoned");
        tenants.keys().cloned().collect()
    }

    /// The tenant's current epoch, or `None` if unseeded.
    pub fn epoch_of(&self, tenant: &TenantId) -> Option<u64> {
        let tenants = self.tenants.lock().expect("rule store poisoned");
        tenants.get(tenant).map(|t| t.epoch)
    }

    /// The tenant's latest published snapshot, or a typed error for
    /// unseeded tenants ([`SnapshotSource::snapshot`] is the infallible
    /// variant).
    pub fn snapshot_for(&self, tenant: &TenantId) -> Result<RulebaseSnapshot, ServiceError> {
        let tenants = self.tenants.lock().expect("rule store poisoned");
        let table = tenants
            .get(tenant)
            .ok_or_else(|| ServiceError::UnknownTenant(tenant.clone()))?;
        Ok(RulebaseSnapshot::published(
            tenant.clone(),
            table.epoch,
            Arc::clone(&table.published),
        ))
    }

    /// Adds a rule to the tenant's rulebase (`POST /rules`).
    pub fn create_rule(
        &self,
        tenant: &TenantId,
        request: CreateRuleRequest,
    ) -> Result<RuleCommit, ServiceError> {
        let id = request.rule.id().clone();
        self.commit(tenant, CommitOp::Create, id.clone(), |rulebase| {
            if rulebase.rule(&id).is_some() {
                return Err(ServiceError::DuplicateRule {
                    tenant: tenant.clone(),
                    rule: id.clone(),
                });
            }
            rulebase.push(request.rule.clone());
            if !request.is_enabled {
                rulebase.set_enabled(&id, false);
            }
            Ok(())
        })
    }

    /// Partially updates a rule (`PUT /rules/{id}`).
    pub fn update_rule(
        &self,
        tenant: &TenantId,
        rule: &RuleId,
        request: UpdateRuleRequest,
    ) -> Result<RuleCommit, ServiceError> {
        if request.rule.is_none() && request.is_enabled.is_none() {
            return Err(ServiceError::EmptyUpdate);
        }
        if let Some(body) = &request.rule {
            if body.id() != rule {
                return Err(ServiceError::IdMismatch {
                    addressed: rule.clone(),
                    supplied: body.id().clone(),
                });
            }
        }
        self.commit(tenant, CommitOp::Update, rule.clone(), |rulebase| {
            if rulebase.rule(rule).is_none() {
                return Err(ServiceError::UnknownRule {
                    tenant: tenant.clone(),
                    rule: rule.clone(),
                });
            }
            if let Some(body) = request.rule.clone() {
                rulebase.update(rule, body);
            }
            if let Some(enabled) = request.is_enabled {
                rulebase.set_enabled(rule, enabled);
            }
            Ok(())
        })
    }

    /// Switches a rule on or off without touching its body.
    pub fn set_rule_enabled(
        &self,
        tenant: &TenantId,
        rule: &RuleId,
        enabled: bool,
    ) -> Result<RuleCommit, ServiceError> {
        let op = if enabled {
            CommitOp::Enable
        } else {
            CommitOp::Disable
        };
        self.commit(tenant, op, rule.clone(), |rulebase| {
            if !rulebase.set_enabled(rule, enabled) {
                return Err(ServiceError::UnknownRule {
                    tenant: tenant.clone(),
                    rule: rule.clone(),
                });
            }
            Ok(())
        })
    }

    /// Removes a rule (`DELETE /rules/{id}`).
    pub fn remove_rule(
        &self,
        tenant: &TenantId,
        rule: &RuleId,
    ) -> Result<RuleCommit, ServiceError> {
        self.commit(tenant, CommitOp::Remove, rule.clone(), |rulebase| {
            if !rulebase.remove(rule) {
                return Err(ServiceError::UnknownRule {
                    tenant: tenant.clone(),
                    rule: rule.clone(),
                });
            }
            Ok(())
        })
    }

    /// The copy-on-write commit path shared by every mutation: clone the
    /// publication, apply, bump the tenant epoch, publish a fresh `Arc`.
    /// A mutation that errors publishes nothing — the epoch is untouched.
    fn commit(
        &self,
        tenant: &TenantId,
        op: CommitOp,
        rule: RuleId,
        mutate: impl FnOnce(&mut Rulebase) -> Result<(), ServiceError>,
    ) -> Result<RuleCommit, ServiceError> {
        let mut tenants = self.tenants.lock().expect("rule store poisoned");
        let table = tenants
            .get_mut(tenant)
            .ok_or_else(|| ServiceError::UnknownTenant(tenant.clone()))?;
        let mut next = (*table.published).clone();
        mutate(&mut next)?;
        table.epoch += 1;
        table.published = Arc::new(next);
        Ok(RuleCommit {
            tenant: tenant.clone(),
            rule,
            op,
            epoch: table.epoch,
        })
    }
}

impl SnapshotSource for RuleStore {
    /// The tenant's latest publication; unknown tenants fall back to an
    /// empty pinned rulebase (detects nothing), per the trait contract.
    fn snapshot(&self, tenant: &TenantId) -> RulebaseSnapshot {
        self.snapshot_for(tenant)
            .unwrap_or_else(|_| RulebaseSnapshot::pinned(Rulebase::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_rulebase::general;

    fn tenant() -> TenantId {
        TenantId::new("hein")
    }

    fn seeded() -> RuleStore {
        let store = RuleStore::new();
        store.seed_tenant(tenant(), Rulebase::standard());
        store
    }

    #[test]
    fn seeding_publishes_epoch_zero() {
        let store = seeded();
        assert_eq!(store.epoch_of(&tenant()), Some(0));
        let snap = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.tenant(), &tenant());
        assert_eq!(snap.len(), 11);
        assert_eq!(store.tenants(), vec![tenant()]);
    }

    #[test]
    fn commits_bump_the_epoch_and_publish_fresh_arcs() {
        let store = seeded();
        let before = store.snapshot_for(&tenant()).unwrap();
        let commit = store
            .create_rule(
                &tenant(),
                CreateRuleRequest::new(
                    general::rule_4_no_double_pick()
                        .with_signature(rabit_rulebase::RuleSignature::any()),
                ),
            )
            .expect_err("duplicate id must be rejected");
        assert!(matches!(commit, ServiceError::DuplicateRule { .. }));

        let custom = Rule::new(RuleId::Custom("no-op".into()), "never fires", |_, _, _| {
            None
        });
        let commit = store
            .create_rule(&tenant(), CreateRuleRequest::new(custom))
            .unwrap();
        assert_eq!(commit.epoch, 1);
        assert_eq!(commit.op, CommitOp::Create);
        let after = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.len(), 12);
        // Copy-on-write: the pre-commit holder still sees epoch 0.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.len(), 11);
        assert!(!before.same_publication(&after));
    }

    #[test]
    fn disabled_create_stages_without_firing() {
        let store = seeded();
        let staged = Rule::new(RuleId::Custom("staged".into()), "staged", |_, _, _| None);
        store
            .create_rule(&tenant(), CreateRuleRequest::new(staged).disabled())
            .unwrap();
        let snap = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(snap.len(), 12);
        assert_eq!(snap.enabled_count(), 11);
        assert_eq!(
            snap.is_enabled(&RuleId::Custom("staged".into())),
            Some(false)
        );
    }

    #[test]
    fn update_validates_shape_and_target() {
        let store = seeded();
        assert_eq!(
            store.update_rule(&tenant(), &RuleId::General(1), UpdateRuleRequest::new()),
            Err(ServiceError::EmptyUpdate)
        );
        let wrong_id = UpdateRuleRequest::new().with_rule(Rule::new(
            RuleId::Custom("other".into()),
            "x",
            |_, _, _| None,
        ));
        assert!(matches!(
            store.update_rule(&tenant(), &RuleId::General(1), wrong_id),
            Err(ServiceError::IdMismatch { .. })
        ));
        assert!(matches!(
            store.update_rule(
                &tenant(),
                &RuleId::Custom("ghost".into()),
                UpdateRuleRequest::new().with_enabled(false)
            ),
            Err(ServiceError::UnknownRule { .. })
        ));
        let commit = store
            .update_rule(
                &tenant(),
                &RuleId::General(1),
                UpdateRuleRequest::new().with_enabled(false),
            )
            .unwrap();
        assert_eq!(commit.epoch, 1);
        let snap = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(snap.is_enabled(&RuleId::General(1)), Some(false));
    }

    #[test]
    fn failed_commits_publish_nothing() {
        let store = seeded();
        let before = store.snapshot_for(&tenant()).unwrap();
        assert!(store
            .remove_rule(&tenant(), &RuleId::Custom("ghost".into()))
            .is_err());
        assert_eq!(store.epoch_of(&tenant()), Some(0));
        let after = store.snapshot_for(&tenant()).unwrap();
        assert!(before.same_publication(&after), "no new publication");
    }

    #[test]
    fn unknown_tenants_are_typed_errors_but_infallible_sources() {
        let store = seeded();
        let ghost = TenantId::new("ghost");
        assert_eq!(
            store.snapshot_for(&ghost).err(),
            Some(ServiceError::UnknownTenant(ghost.clone()))
        );
        let fallback = store.snapshot(&ghost);
        assert_eq!(fallback.len(), 0, "empty rulebase detects nothing");
        assert!(store
            .set_rule_enabled(&ghost, &RuleId::General(1), false)
            .is_err());
    }

    #[test]
    fn remove_and_reenable_round_trip() {
        let store = seeded();
        let disable = store
            .set_rule_enabled(&tenant(), &RuleId::General(1), false)
            .unwrap();
        assert_eq!(disable.op, CommitOp::Disable);
        let enable = store
            .set_rule_enabled(&tenant(), &RuleId::General(1), true)
            .unwrap();
        assert_eq!(enable.op, CommitOp::Enable);
        assert_eq!(enable.epoch, 2);
        let remove = store.remove_rule(&tenant(), &RuleId::General(1)).unwrap();
        assert_eq!(remove.op, CommitOp::Remove);
        assert_eq!(remove.epoch, 3);
        let snap = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(snap.len(), 10);
        assert!(snap.rule(&RuleId::General(1)).is_none());
    }
}
