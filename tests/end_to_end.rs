//! End-to-end integration: JSON configuration → rulebase + catalog →
//! guarded execution on the physical testbed → detection and damage
//! outcomes, across all crates through the facade.

use rabit::buginject::{catalog as bug_catalog, run_bug, RabitStage};
use rabit::config::{template, to_catalog};
use rabit::core::{Rabit, RabitConfig};
use rabit::rulebase::{extensions, Rulebase};
use rabit::testbed::{workflows, Testbed};
use rabit::tracer::{TraceOutcome, Tracer};

/// A RABIT configured entirely from the JSON template drives the testbed
/// exactly like the hand-built one.
#[test]
fn json_configured_rabit_matches_hand_built() {
    let (catalog, custom_rules) = to_catalog(&template::testbed_template()).unwrap();
    let mut rulebase = Rulebase::standard();
    rulebase.extend(custom_rules);
    rulebase.push(extensions::held_object_clearance_rule());
    rulebase.push(extensions::time_multiplexing_rule());
    rulebase.push(extensions::sleep_volume_rule());
    let mut json_rabit = Rabit::new(rulebase, catalog, RabitConfig::default());

    // Safe workflow: completes.
    let mut tb = Testbed::new();
    let wf = workflows::fig5_safe_workflow(&tb.locations);
    let report = Tracer::guarded(&mut tb.lab, &mut json_rabit).run(&wf);
    assert!(report.completed(), "{:?}", report.alert);

    // Every catalogued bug gets the same verdict as under the hand-built
    // Modified configuration.
    for bug in bug_catalog() {
        let expected = run_bug(&bug, RabitStage::Modified).detected;
        let mut tb = Testbed::new();
        let (catalog, custom_rules) = to_catalog(&template::testbed_template()).unwrap();
        let mut rulebase = Rulebase::standard();
        rulebase.extend(custom_rules);
        rulebase.push(extensions::held_object_clearance_rule());
        rulebase.push(extensions::time_multiplexing_rule());
        rulebase.push(extensions::sleep_volume_rule());
        let mut rabit = Rabit::new(rulebase, catalog, RabitConfig::default());
        let wf = bug.buggy_workflow(&tb.locations);
        let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
        let detected = report
            .alert
            .as_ref()
            .is_some_and(|a| a.is_rabit_detection());
        assert_eq!(
            detected, expected,
            "{}: JSON vs hand-built disagree",
            bug.id
        );
    }
}

/// A blocked command never executes: the trace ends with a Blocked event
/// and the device state is untouched by it.
#[test]
fn blocked_commands_never_execute() {
    let bug = bug_catalog()
        .into_iter()
        .find(|b| b.id == "bug_a_door_not_reopened")
        .unwrap();
    let mut tb = Testbed::new();
    let wf = bug.buggy_workflow(&tb.locations);
    let mut rabit = tb.rabit(RabitStage::Modified);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    let last = report.trace.events.last().unwrap();
    assert!(matches!(last.outcome, TraceOutcome::Blocked { .. }));
    assert!(!last.outcome.executed());
    assert!(tb.lab.damage_log().is_empty());
    // The trace stops at the alert: nothing after it ran.
    assert_eq!(report.trace.len(), report.executed + 1);
}

/// Guarded runs are fully deterministic.
#[test]
fn engine_is_deterministic() {
    let run = || {
        let mut tb = Testbed::new();
        let wf = workflows::fig5_safe_workflow(&tb.locations);
        let mut rabit = tb.rabit(RabitStage::ModifiedWithSimulator);
        let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
        (
            report.executed,
            report.lab_time_s,
            report.rabit_overhead_s,
            report.trace.to_jsonl(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

/// RABIT never increases physical damage: for every catalogued bug, the
/// guarded run's damage is at most the unguarded run's.
#[test]
fn rabit_never_makes_things_worse() {
    for bug in bug_catalog() {
        let mut guarded_tb = Testbed::new();
        let wf = bug.buggy_workflow(&guarded_tb.locations);
        let mut rabit = guarded_tb.rabit(RabitStage::ModifiedWithSimulator);
        let _ = Tracer::guarded(&mut guarded_tb.lab, &mut rabit).run(&wf);

        let mut unguarded_tb = Testbed::new();
        let wf = bug.buggy_workflow(&unguarded_tb.locations);
        let _ = Tracer::pass_through(&mut unguarded_tb.lab).run(&wf);

        assert!(
            guarded_tb.lab.damage_log().len() <= unguarded_tb.lab.damage_log().len(),
            "{}: guarded {} vs unguarded {}",
            bug.id,
            guarded_tb.lab.damage_log().len(),
            unguarded_tb.lab.damage_log().len()
        );
    }
}

/// Mined RAD rules are enforceable by the live engine: a miner-built
/// rulebase blocks the door bug.
#[test]
fn mined_rules_guard_the_lab() {
    use rabit::rad::{generate_corpus, mine, MineParams, RadGenParams};

    let corpus = generate_corpus(&RadGenParams::default());
    let mined = mine(&corpus, &MineParams::default());
    let mut rulebase = Rulebase::new();
    rulebase.extend(mined.iter().map(|m| m.to_rule()));
    assert!(!rulebase.is_empty());

    let mut tb = Testbed::new();
    let mut rabit = Rabit::new(rulebase, tb.catalog.clone(), RabitConfig::default());
    // The Bug-A workflow: enter the doser through a closed door. The
    // mined door rule alone must block it.
    let bug = bug_catalog()
        .into_iter()
        .find(|b| b.id == "bug_a_door_not_reopened")
        .unwrap();
    let wf = bug.buggy_workflow(&tb.locations);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    let alert = report.alert.expect("mined rulebase must detect Bug A");
    assert!(alert.to_string().contains("mined"), "{alert}");
}
