//! Regenerates the §II-C latency-overhead measurements: ~0.03 s (1.5%)
//! per command without the simulator, ~2 s (112%) with the GUI-bound
//! Extended Simulator, and the planned GUI bypass.

use rabit_bench::latency::{measure, OverheadConfig};
use rabit_bench::report::render_table;

fn main() {
    println!("§II-C — RABIT latency overhead on the solubility workflow\n");
    let measurements = measure();
    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.config.name().to_string(),
                m.commands.to_string(),
                format!("{:.1}", m.total_s),
                format!("{:.3}", m.overhead_per_command_s),
                format!("{:.1}%", m.overhead_fraction * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Commands",
                "Total lab time (s)",
                "Overhead/cmd (s)",
                "Overhead (%)",
            ],
            &rows
        )
    );
    let rabit = measurements
        .iter()
        .find(|m| m.config == OverheadConfig::Rabit)
        .expect("measured");
    let gui = measurements
        .iter()
        .find(|m| m.config == OverheadConfig::RabitWithGuiSim)
        .expect("measured");
    println!(
        "Paper: ≈0.03 s (1.5%) without the simulator — measured {:.3} s ({:.1}%).",
        rabit.overhead_per_command_s,
        rabit.overhead_fraction * 100.0
    );
    println!(
        "Paper: ≈2 s (112%) with the GUI simulator — measured {:.2} s ({:.1}%).",
        gui.overhead_per_command_s,
        gui.overhead_fraction * 100.0
    );
    println!("Bypassing the GUI (headless row) collapses the simulator overhead, as planned in the paper.");
}
