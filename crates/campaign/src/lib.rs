//! Resumable campaign runner: the experiment lifecycle as a
//! schema-validated state machine.
//!
//! The RABIT evaluation is a matrix of `(workflow × bug × substrate ×
//! fault × seed)` trials. This crate makes that matrix a first-class,
//! *resumable* object:
//!
//! * [`CampaignPlan`] — a declarative, serializable plan whose
//!   cartesian product materializes into [`Trial`]s, each with a seed
//!   derived from `(plan seed, trial index)` — never from execution
//!   order — so artifacts are a pure function of the plan;
//! * [`TrialState`] — the explicit per-trial state machine
//!   (`Pending → Running → Done | Failed | Skipped`), persisted as one
//!   JSON file per trial plus a run-level [`Manifest`];
//! * [`CampaignRunner`] — executes pending trials on the deterministic
//!   work-stealing fleet pool (`rabit_tracer::FleetJob` per trial), so
//!   a killed campaign resumes exactly where it stopped: `Done` and
//!   `Skipped` trials are kept, interrupted/failed/corrupt ones re-run
//!   with a warning in the manifest;
//! * [`plans`] — the predefined plans behind EXPERIMENTS.md (Table I,
//!   the 16-bug detection matrix).
//!
//! The merged artifact excludes every wall-clock field, so a
//! kill-and-resume run is byte-identical to an uninterrupted one — the
//! property `tests/campaign_resume.rs` pins down.
//!
//! # Example
//!
//! ```
//! use rabit_campaign::{plans, run_ephemeral};
//!
//! let (artifact, states) = run_ephemeral(plans::quick_matrix_plan(), 2).unwrap();
//! assert_eq!(states.len(), 8);
//! assert_eq!(artifact.get("kind").and_then(|k| k.as_str()), Some("campaign"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
pub mod plans;
mod runner;
mod state;

pub use plan::{
    derive_seed, CampaignPlan, ExecMode, FaultVariant, PlanError, SubstrateSpec, Trial,
    WorkflowSpec, PLACEMENT_TARGET, PLAN_SCHEMA,
};
pub use runner::{
    run_ephemeral, CampaignError, CampaignRunner, Manifest, RunSummary, MANIFEST_SCHEMA,
};
pub use state::{TrialResult, TrialState, TrialStatus, TRIAL_SCHEMA};
