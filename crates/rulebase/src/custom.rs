//! The Hein Lab's four custom rules (Table IV).
//!
//! Custom rules target devices by *tag* (e.g. `"centrifuge"`), so the same
//! rule text adapts to any lab's catalog — the paper's design goal of
//! "describing only the items specific to that environment" (§II-A).

use crate::rule::{Rule, RuleId};
use rabit_devices::{ActionClass, ActionKind, Command, LabState, StateKey, Substance};

/// Tag identifying centrifuges in the catalog.
pub const CENTRIFUGE_TAG: &str = "centrifuge";

/// Builds the four Hein-Lab custom rules, numbered as in Table IV.
pub fn hein_custom_rules() -> Vec<Rule> {
    vec![
        rule_c1_liquid_after_solid(),
        rule_c2_centrifuge_needs_solid_and_liquid(),
        rule_c3_centrifuge_red_dot_north(),
        rule_c4_centrifuge_needs_stopper(),
    ]
}

/// Helper: the container targeted by a place-into-centrifuge command.
fn centrifuge_placement<'a>(
    cmd: &'a Command,
    ctx: &crate::rule::RuleCtx<'_>,
) -> Option<(&'a rabit_devices::DeviceId, &'a rabit_devices::DeviceId)> {
    let ActionKind::PlaceObject {
        object,
        into: Some(target),
    } = &cmd.action
    else {
        return None;
    };
    ctx.catalog
        .has_tag(target, CENTRIFUGE_TAG)
        .then_some((object, target))
}

/// Rule IV-1: *Add liquid to a container only if the container already
/// has solid.*
pub fn rule_c1_liquid_after_solid() -> Rule {
    Rule::new(
        RuleId::Custom("1".to_string()),
        "Add liquid to a container only if the container already has solid",
        |cmd, state, _| {
            let receiver = match &cmd.action {
                ActionKind::DoseLiquid { into, .. } => into,
                ActionKind::Transfer {
                    to,
                    substance: Substance::Liquid,
                    ..
                } => to,
                _ => return None,
            };
            let solid = state
                .get_number(receiver, &StateKey::SolidMg)
                .unwrap_or(0.0);
            if solid <= 0.0 {
                Some(format!("adding liquid to {receiver} before any solid"))
            } else {
                None
            }
        },
    )
    .with_actions(&[ActionClass::DoseLiquid, ActionClass::Transfer])
}

/// Rule IV-2: *Place the container in the centrifuge only if the
/// container contains both a solid and a liquid.*
pub fn rule_c2_centrifuge_needs_solid_and_liquid() -> Rule {
    Rule::new(
        RuleId::Custom("2".to_string()),
        "Place the container in the centrifuge only if it contains both a solid and a liquid",
        |cmd, state, ctx| {
            let (object, target) = centrifuge_placement(cmd, ctx)?;
            let solid = state.get_number(object, &StateKey::SolidMg).unwrap_or(0.0);
            let liquid = state.get_number(object, &StateKey::LiquidMl).unwrap_or(0.0);
            if solid <= 0.0 || liquid <= 0.0 {
                Some(format!(
                    "{object} placed in {target} with solid={solid} mg, liquid={liquid} mL"
                ))
            } else {
                None
            }
        },
    )
    .with_actions(&[ActionClass::PlaceObject])
}

/// Rule IV-3: *Place the container in the centrifuge only if the red dot
/// on centrifuge faces North.*
pub fn rule_c3_centrifuge_red_dot_north() -> Rule {
    Rule::new(
        RuleId::Custom("3".to_string()),
        "Place the container in the centrifuge only if the red dot faces North",
        |cmd, state, ctx| {
            let (object, target) = centrifuge_placement(cmd, ctx)?;
            if state.get_bool(target, &StateKey::RedDotNorth) == Some(true) {
                None
            } else {
                Some(format!(
                    "{object} placed in {target} while its red dot is not North"
                ))
            }
        },
    )
    .with_actions(&[ActionClass::PlaceObject])
}

/// Rule IV-4: *Place the container in the centrifuge only if the
/// container has a stopper on it.*
pub fn rule_c4_centrifuge_needs_stopper() -> Rule {
    Rule::new(
        RuleId::Custom("4".to_string()),
        "Place the container in the centrifuge only if it has a stopper on it",
        |cmd, state, ctx| {
            let (object, target) = centrifuge_placement(cmd, ctx)?;
            if state.get_bool(object, &StateKey::HasStopper) == Some(true) {
                None
            } else {
                Some(format!("{object} placed in {target} without its stopper"))
            }
        },
    )
    .with_actions(&[ActionClass::PlaceObject])
}

/// Ignore `state` warnings in helper.
#[allow(dead_code)]
fn _silence(_: &LabState) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{DeviceCatalog, DeviceMeta};
    use crate::rule::RuleCtx;
    use rabit_devices::{DeviceId, DeviceState, DeviceType};

    fn catalog() -> DeviceCatalog {
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("centrifuge", DeviceType::ActionDevice)
                    .with_door()
                    .with_tag(CENTRIFUGE_TAG),
            )
            .with(DeviceMeta::new("hotplate", DeviceType::ActionDevice))
            .with(DeviceMeta::new("arm", DeviceType::RobotArm))
            .with(DeviceMeta::new("vial", DeviceType::Container))
    }

    fn ready_state() -> LabState {
        let mut s = LabState::new();
        s.insert(
            "vial",
            DeviceState::new()
                .with(StateKey::SolidMg, 5.0)
                .with(StateKey::LiquidMl, 10.0)
                .with(StateKey::HasStopper, true),
        );
        s.insert(
            "centrifuge",
            DeviceState::new().with(StateKey::RedDotNorth, true),
        );
        s
    }

    fn place_cmd() -> Command {
        Command::new(
            "arm",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("centrifuge".into()),
            },
        )
    }

    fn check(rule: &Rule, cmd: &Command, state: &LabState) -> Option<String> {
        let catalog = catalog();
        let ctx = RuleCtx { catalog: &catalog };
        rule.check(cmd, state, &ctx).map(|v| v.message)
    }

    #[test]
    fn c1_blocks_liquid_into_solidless_vial() {
        let rule = rule_c1_liquid_after_solid();
        let mut state = ready_state();
        state.set(&"vial".into(), StateKey::SolidMg, 0.0);
        let dose = Command::new(
            "pump",
            ActionKind::DoseLiquid {
                volume_ml: 2.0,
                into: "vial".into(),
            },
        );
        assert!(check(&rule, &dose, &state)
            .unwrap()
            .contains("before any solid"));
        state.set(&"vial".into(), StateKey::SolidMg, 3.0);
        assert!(check(&rule, &dose, &state).is_none());
        // Liquid transfers are covered; solid transfers are not.
        let t_liquid = Command::new(
            "arm",
            ActionKind::Transfer {
                from: "other".into(),
                to: "vial".into(),
                substance: Substance::Liquid,
                amount: 1.0,
            },
        );
        state.set(&"vial".into(), StateKey::SolidMg, 0.0);
        assert!(check(&rule, &t_liquid, &state).is_some());
        let t_solid = Command::new(
            "arm",
            ActionKind::Transfer {
                from: "other".into(),
                to: "vial".into(),
                substance: Substance::Solid,
                amount: 1.0,
            },
        );
        assert!(check(&rule, &t_solid, &state).is_none());
    }

    #[test]
    fn c2_requires_both_phases() {
        let rule = rule_c2_centrifuge_needs_solid_and_liquid();
        let mut state = ready_state();
        assert!(check(&rule, &place_cmd(), &state).is_none());
        state.set(&"vial".into(), StateKey::LiquidMl, 0.0);
        assert!(check(&rule, &place_cmd(), &state)
            .unwrap()
            .contains("liquid=0"));
        state.set(&"vial".into(), StateKey::LiquidMl, 10.0);
        state.set(&"vial".into(), StateKey::SolidMg, 0.0);
        assert!(check(&rule, &place_cmd(), &state).is_some());
    }

    #[test]
    fn c3_requires_red_dot_north() {
        let rule = rule_c3_centrifuge_red_dot_north();
        let mut state = ready_state();
        assert!(check(&rule, &place_cmd(), &state).is_none());
        state.set(&"centrifuge".into(), StateKey::RedDotNorth, false);
        assert!(check(&rule, &place_cmd(), &state)
            .unwrap()
            .contains("not North"));
    }

    #[test]
    fn c4_requires_stopper() {
        let rule = rule_c4_centrifuge_needs_stopper();
        let mut state = ready_state();
        assert!(check(&rule, &place_cmd(), &state).is_none());
        state.set(&"vial".into(), StateKey::HasStopper, false);
        assert!(check(&rule, &place_cmd(), &state)
            .unwrap()
            .contains("without its stopper"));
    }

    #[test]
    fn centrifuge_rules_ignore_other_devices() {
        // Placing into a hotplate (not tagged) triggers none of C2-C4.
        let cmd = Command::new(
            "arm",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("hotplate".into()),
            },
        );
        let mut state = ready_state();
        state.set(&"vial".into(), StateKey::SolidMg, 0.0);
        state.set(&"vial".into(), StateKey::HasStopper, false);
        for rule in [
            rule_c2_centrifuge_needs_solid_and_liquid(),
            rule_c3_centrifuge_red_dot_north(),
            rule_c4_centrifuge_needs_stopper(),
        ] {
            assert!(check(&rule, &cmd, &state).is_none());
        }
        // Placing down at a grid slot (into: None) also exempt.
        let cmd = Command::new(
            "arm",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: None,
            },
        );
        assert!(check(&rule_c4_centrifuge_needs_stopper(), &cmd, &state).is_none());
    }

    #[test]
    fn all_four_rules_built_with_ids() {
        let rules = hein_custom_rules();
        assert_eq!(rules.len(), 4);
        for (i, r) in rules.iter().enumerate() {
            assert_eq!(r.id(), &RuleId::Custom((i + 1).to_string()));
        }
    }

    #[test]
    fn missing_red_dot_state_is_conservative() {
        let rule = rule_c3_centrifuge_red_dot_north();
        let mut state = ready_state();
        state.insert("centrifuge", DeviceState::new());
        assert!(check(&rule, &place_cmd(), &state).is_some());
        let _ = DeviceId::new("x");
    }
}
