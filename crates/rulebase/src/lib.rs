//! The RABIT rulebase.
//!
//! "For each device type, we identify *state variables* … We also
//! identify, for each device type, *actions*, which can modify the
//! associated state variables. Each action has a set of *preconditions*
//! … and *postconditions* … The complete set of all such descriptions
//! constitutes the RABIT rulebase." (paper §II-A)
//!
//! This crate provides:
//!
//! * [`Rule`], [`RuleId`], [`Violation`] — the rule objects;
//! * [`general`] — the 11 general-purpose rules of Table III;
//! * [`custom`] — the 4 Hein-Lab custom rules of Table IV;
//! * [`extensions`] — the multiplexing rules added after the multi-arm
//!   collision findings (§IV);
//! * [`transition`] — `UpdateState`, the postcondition/state-transition
//!   function;
//! * [`DeviceCatalog`] — static device metadata from JSON configuration;
//! * [`Rulebase`] — the evaluated collection, with [`RuleId`]-addressed
//!   mutation and per-rule enablement;
//! * [`snapshot`] — [`RulebaseSnapshot`]: epoch-stamped, copy-on-write
//!   `Arc` handles plus [`TenantId`]/[`SnapshotSource`], the currency of
//!   the live rule service (`rabit-service`);
//! * [`table`] — printable renditions of Tables II-IV.
//!
//! # Example
//!
//! ```
//! use rabit_rulebase::Rulebase;
//!
//! let rb = Rulebase::hein_lab();
//! assert_eq!(rb.len(), 15); // 11 general + 4 custom
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
pub mod custom;
pub mod extensions;
pub mod general;
mod rule;
#[allow(clippy::module_inception)]
mod rulebase;
pub mod snapshot;
pub mod table;
pub mod transition;

pub use catalog::{DeviceCatalog, DeviceMeta};
pub use rule::{ActorClass, Rule, RuleCtx, RuleId, RuleSignature, Violation, Violations};
pub use rulebase::{BatchEdit, Rulebase};
pub use snapshot::{RulebaseSnapshot, SnapshotCache, SnapshotSource, TenantId, STATIC_EPOCH};
