//! Ablation studies for the design choices called out in DESIGN.md:
//! trajectory polling rate, time- vs space-multiplexing, the held-object
//! geometry extension, GUI vs headless simulation, and rule-evaluation
//! strategy.

use rabit_bench::report::{mark, render_table};
use rabit_buginject::{catalog, run_bug};
use rabit_devices::{ActionKind, Command, DeviceId, DeviceState, LabState, StateKey};
use rabit_geometry::{Aabb, Vec3};
use rabit_kinematics::presets;
use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rulebase};
use rabit_sim::SimWorld;
use rabit_testbed::{RabitStage, Testbed};
use rabit_tracer::Workflow;
use std::time::Instant;

fn main() {
    polling_rate();
    multiplexing();
    held_object();
    rule_eval_strategy();
}

/// Ablation 1: polling interval vs detection of a small obstacle that the
/// tool only grazes mid-motion.
fn polling_rate() {
    println!("Ablation 1 — trajectory polling interval vs small-obstacle detection\n");
    let arm = presets::ur3e();
    let q0 = arm.home_configuration();
    let home_tool = arm.tool_position(&q0);
    let target = home_tool + Vec3::new(0.0, 0.22, 0.0);
    let q1 = rabit_kinematics::ik::solve_position(
        &arm,
        &q0,
        target,
        &rabit_kinematics::ik::IkParams::default(),
    )
    .expect("reachable");
    let traj = rabit_kinematics::trajectory::Trajectory::linear(q0, q1);

    // A small box exactly where the tool passes at 50% of the motion.
    let mid_tool = arm.tool_position(&traj.config_at(traj.duration() * 0.5));
    let world = SimWorld::new().with_obstacle(
        "beaker",
        Aabb::from_center_half_extents(mid_tool, Vec3::new(0.02, 0.015, 0.02)),
    );

    let mut rows = Vec::new();
    for interval in [0.005, 0.02, 0.05, 0.2, 0.5, 1.5] {
        let samples = traj.sample_every(interval);
        let mut detected = false;
        let mut checks = 0usize;
        for q in &samples {
            checks += 1;
            let capsules = &arm.link_capsules(q, None)[1..];
            if world.first_hit(capsules, &[]).is_some() {
                detected = true;
                break;
            }
        }
        rows.push(vec![
            format!("{interval:.3}"),
            checks.to_string(),
            mark(detected),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Poll interval (s)", "Collision checks", "Obstacle detected"],
            &rows
        )
    );
    println!("Finer polling costs more checks; coarse polling can step over small obstacles.\n");
}

/// Ablation 2: time multiplexing serialises arm work; space multiplexing
/// lets the arms run concurrently on their own sides of the wall. The
/// makespans come from the deterministic concurrent scheduler
/// (`rabit_tracer::run_concurrent`) over the live testbed.
fn multiplexing() {
    println!("Ablation 2 — time vs space multiplexing (two-arm makespan)\n");

    let viperx_work = |tb: &Testbed| -> Workflow {
        let grid = tb.locations.grid_nw_viperx;
        Workflow::new("viperx_side")
            .go_home("viperx")
            .move_to("viperx", grid.pickup_safe_height)
            .pick_up("viperx", "vial", grid.pickup)
            .move_to("viperx", grid.pickup_safe_height)
            .place_at("viperx", "vial", grid.pickup)
            .go_home("viperx")
            .go_to_sleep("viperx")
    };
    let ned2_work = || -> Workflow {
        Workflow::new("ned2_side")
            .go_home("ned2")
            .move_to("ned2", Vec3::new(0.95, 0.2, 0.3))
            .move_to("ned2", Vec3::new(1.1, 0.0, 0.2))
            .go_home("ned2")
            .go_to_sleep("ned2")
    };

    // Space multiplexing: both streams interleave under the software wall.
    let mut tb = Testbed::new();
    let streams = [viperx_work(&tb), ned2_work()];
    let mut rabit = tb.rabit(RabitStage::Baseline);
    rabit
        .rulebase_mut()
        .push(rabit_rulebase::extensions::space_multiplexing_rule());
    let report = rabit_tracer::run_concurrent(&mut tb.lab, &mut rabit, &streams);
    assert!(report.completed(), "{:?}", report.alert);
    let space_mux = report.makespan_s;
    // Time multiplexing: one arm at a time → the serialised figure.
    let time_mux = report.serialized_s;

    let rows = vec![
        vec![
            "time multiplexing (one arm moves at a time)".to_string(),
            format!("{time_mux:.1}"),
        ],
        vec![
            "space multiplexing (software wall, concurrent)".to_string(),
            format!("{space_mux:.1}"),
        ],
    ];
    println!("{}", render_table(&["Policy", "Makespan (s)"], &rows));
    println!(
        "Space multiplexing recovers {:.0}% of the wall-clock time while keeping a \
         formal separation guarantee — the paper: \"pushing for more concurrency in \
         their experiments\".\n",
        report.concurrency_gain() * 100.0
    );
}

/// Ablation 3: the held-object geometry extension on/off against the
/// Bug-D-class bug.
fn held_object() {
    println!("Ablation 3 — held-object geometry extension (Bug D class)\n");
    let bug = catalog()
        .into_iter()
        .find(|b| b.id == "held_vial_low")
        .expect("catalogued");
    let without = run_bug(&bug, RabitStage::Baseline);
    let with = run_bug(&bug, RabitStage::Modified);
    let rows = vec![
        vec![
            "without (baseline RABIT)".to_string(),
            mark(without.detected),
            format!("{} damage event(s)", without.damage.len()),
        ],
        vec![
            "with (post-Bug-D modification)".to_string(),
            mark(with.detected),
            format!("{} damage event(s)", with.damage.len()),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["Held-object modelling", "Bug detected", "Physical outcome"],
            &rows
        )
    );
    println!(
        "Paper: \"RABIT failed to account that a robot arm's dimensions may change if \
         it is holding an object. We modified RABIT to account for these changes.\"\n"
    );
}

/// Ablation 5: full rulebase scan (collect all violations) vs first-hit
/// evaluation — real compute cost.
fn rule_eval_strategy() {
    println!("Ablation 4 — rule evaluation strategy (real compute cost)\n");
    let rulebase = Rulebase::hein_lab();
    let catalog = DeviceCatalog::new()
        .with(DeviceMeta::new("arm", rabit_devices::DeviceType::RobotArm))
        .with(DeviceMeta::new("doser", rabit_devices::DeviceType::DosingSystem).with_door());
    let mut state = LabState::new();
    state.insert("doser", DeviceState::new().with(StateKey::DoorOpen, false));
    state.insert(
        "arm",
        DeviceState::new().with(StateKey::Holding, None::<DeviceId>),
    );
    let cmd = Command::new(
        "arm",
        ActionKind::MoveInsideDevice {
            device: "doser".into(),
        },
    );

    let iters = 200_000;
    let t0 = Instant::now();
    let mut total = 0usize;
    for _ in 0..iters {
        total += rulebase.check(&cmd, &state, &catalog).len();
    }
    let full = t0.elapsed();
    let t0 = Instant::now();
    let mut hits = 0usize;
    for _ in 0..iters {
        hits += usize::from(rulebase.check_first(&cmd, &state, &catalog).is_some());
    }
    let first = t0.elapsed();

    let rows = vec![
        vec![
            "full scan (all violations)".to_string(),
            format!("{:.0} ns", full.as_nanos() as f64 / iters as f64),
            total.to_string(),
        ],
        vec![
            "first-hit (deployment fast path)".to_string(),
            format!("{:.0} ns", first.as_nanos() as f64 / iters as f64),
            hits.to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["Strategy", "Cost per command", "Findings"], &rows)
    );
    println!(
        "Either strategy costs microseconds — the 0.03 s per-command overhead the paper \
         measured is dominated by device status round-trips, not rule evaluation."
    );
}
