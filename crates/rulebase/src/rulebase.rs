//! The rulebase: the complete set of rules RABIT evaluates per command.

use crate::catalog::DeviceCatalog;
use crate::custom::hein_custom_rules;
use crate::general::general_rules;
use crate::rule::{ActorClass, Rule, RuleCtx, RuleId, Violation, Violations};
use rabit_devices::{ActionClass, Command, LabState};

/// Dispatch index: for every action class, the indices of the rules
/// whose [`RuleSignature`](crate::RuleSignature) admits it, in
/// evaluation order. Built once per rulebase mutation, so `check` visits
/// only the rules that can possibly fire on a command instead of the
/// whole rulebase.
#[derive(Debug, Clone, Default)]
struct RuleIndex {
    buckets: [Vec<u32>; ActionClass::COUNT],
}

impl RuleIndex {
    fn build(rules: &[Rule], enabled: &[bool]) -> Self {
        let mut index = RuleIndex::default();
        index.rebuild(rules, enabled);
        index
    }

    /// Rebuilds in place, reusing the bucket allocations. Under the rule
    /// service every commit reindexes, so at service throughput this
    /// runs millions of times per second — clearing `Vec`s instead of
    /// reallocating the whole bucket array keeps it off the heap.
    fn rebuild(&mut self, rules: &[Rule], enabled: &[bool]) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        for (i, rule) in rules.iter().enumerate() {
            if !enabled[i] {
                continue;
            }
            for class in rule.signature().action_classes() {
                self.buckets[class.index()].push(i as u32);
            }
        }
    }

    #[inline]
    fn bucket(&self, class: ActionClass) -> &[u32] {
        &self.buckets[class.index()]
    }
}

/// A collection of rules evaluated against every intercepted command.
///
/// # Example
///
/// ```
/// use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rulebase};
/// use rabit_devices::{ActionKind, Command, DeviceType, LabState};
///
/// let catalog = DeviceCatalog::new()
///     .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
///     .with(DeviceMeta::new("arm", DeviceType::RobotArm));
/// let rulebase = Rulebase::standard();
/// let cmd = Command::new("arm", ActionKind::MoveInsideDevice { device: "doser".into() });
/// // No door state recorded → conservatively unsafe.
/// let violations = rulebase.check(&cmd, &LabState::new(), &catalog);
/// assert!(!violations.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rulebase {
    rules: Vec<Rule>,
    /// Parallel to `rules`: whether each rule participates in checks.
    /// Disabled rules stay in the table (they keep their id, description
    /// and position for re-enablement) but are excluded from the
    /// dispatch index and from the linear reference paths alike.
    enabled: Vec<bool>,
    index: RuleIndex,
}

impl Rulebase {
    /// An empty rulebase (detects nothing).
    pub fn new() -> Self {
        Rulebase::default()
    }

    /// The standard rulebase: the 11 general rules of Table III.
    pub fn standard() -> Self {
        Rulebase::from_rules(general_rules())
    }

    /// The Hein-Lab rulebase: general rules plus the 4 custom rules of
    /// Table IV.
    pub fn hein_lab() -> Self {
        let mut rb = Rulebase::standard();
        rb.extend(hein_custom_rules());
        rb
    }

    fn from_rules(rules: Vec<Rule>) -> Self {
        let enabled = vec![true; rules.len()];
        let index = RuleIndex::build(&rules, &enabled);
        Rulebase {
            rules,
            enabled,
            index,
        }
    }

    fn reindex(&mut self) {
        self.index.rebuild(&self.rules, &self.enabled);
    }

    /// Adds one rule (builder style).
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.push(rule);
        self
    }

    /// Adds one rule (enabled).
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
        self.enabled.push(true);
        self.reindex();
    }

    /// Adds many rules (enabled).
    pub fn extend(&mut self, rules: impl IntoIterator<Item = Rule>) {
        self.rules.extend(rules);
        self.enabled.resize(self.rules.len(), true);
        self.reindex();
    }

    /// Removes the rule with the given id, returning `true` if found.
    pub fn remove(&mut self, id: &RuleId) -> bool {
        let Some(pos) = self.position(id) else {
            return false;
        };
        self.rules.remove(pos);
        self.enabled.remove(pos);
        self.reindex();
        true
    }

    fn position(&self, id: &RuleId) -> Option<usize> {
        self.rules.iter().position(|r| r.id() == id)
    }

    /// The rule with the given id, if present (enabled or not).
    pub fn rule(&self, id: &RuleId) -> Option<&Rule> {
        self.position(id).map(|i| &self.rules[i])
    }

    /// Replaces the rule with the given id in place (same evaluation
    /// position, enablement preserved), returning `true` if found. The
    /// replacement keeps its own id — callers may rename a rule this
    /// way, but the lookup key is `id` as stored today.
    pub fn update(&mut self, id: &RuleId, rule: Rule) -> bool {
        let Some(pos) = self.position(id) else {
            return false;
        };
        self.rules[pos] = rule;
        self.reindex();
        true
    }

    /// Enables or disables the rule with the given id, returning `true`
    /// if found. Disabled rules stop firing on the next check.
    pub fn set_enabled(&mut self, id: &RuleId, enabled: bool) -> bool {
        let Some(pos) = self.position(id) else {
            return false;
        };
        if self.enabled[pos] != enabled {
            self.enabled[pos] = enabled;
            self.reindex();
        }
        true
    }

    /// Whether the rule with the given id is enabled (`None` if absent).
    pub fn is_enabled(&self, id: &RuleId) -> Option<bool> {
        self.position(id).map(|i| self.enabled[i])
    }

    /// The rules, in evaluation order (including disabled rules).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules, including disabled ones.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Number of enabled rules.
    pub fn enabled_count(&self) -> usize {
        self.enabled.iter().filter(|&&e| e).count()
    }

    /// Returns `true` if the rulebase has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates the rules whose signature admits this command; returns
    /// all violations. An empty result is the algorithm's
    /// `Valid(S_current, a_next)`. Allocation-free for up to four
    /// violations (see [`Violations`]).
    pub fn check(
        &self,
        command: &Command,
        state: &LabState,
        catalog: &DeviceCatalog,
    ) -> Violations {
        let mut out = Violations::new();
        self.check_into(command, state, catalog, &mut out);
        out
    }

    /// Like [`Rulebase::check`] but fills a caller-owned buffer, so a
    /// per-command loop can reuse one `Violations` (and its spill
    /// capacity) across iterations. Clears `out` first.
    pub fn check_into(
        &self,
        command: &Command,
        state: &LabState,
        catalog: &DeviceCatalog,
        out: &mut Violations,
    ) {
        out.clear();
        let ctx = RuleCtx { catalog };
        let actor = catalog.device_type(&command.actor).map(ActorClass::of);
        for &i in self.index.bucket(command.action.class()) {
            let rule = &self.rules[i as usize];
            if !rule.signature().matches_actor(actor) {
                continue;
            }
            if let Some(v) = rule.check(command, state, &ctx) {
                out.push(v);
            }
        }
    }

    /// Like [`Rulebase::check`] but stops at the first violation — the
    /// fast path used in deployment, since RABIT stops the experiment on
    /// the first alert anyway.
    pub fn check_first(
        &self,
        command: &Command,
        state: &LabState,
        catalog: &DeviceCatalog,
    ) -> Option<Violation> {
        let ctx = RuleCtx { catalog };
        let actor = catalog.device_type(&command.actor).map(ActorClass::of);
        self.index
            .bucket(command.action.class())
            .iter()
            .map(|&i| &self.rules[i as usize])
            .filter(|rule| rule.signature().matches_actor(actor))
            .find_map(|rule| rule.check(command, state, &ctx))
    }

    /// Reference path: evaluates **every** rule linearly, ignoring the
    /// dispatch index. Used by benches and differential tests to pin the
    /// indexed path against the pre-index semantics.
    pub fn check_linear(
        &self,
        command: &Command,
        state: &LabState,
        catalog: &DeviceCatalog,
    ) -> Vec<Violation> {
        let ctx = RuleCtx { catalog };
        self.rules
            .iter()
            .zip(&self.enabled)
            .filter(|(_, &enabled)| enabled)
            .filter_map(|(rule, _)| rule.check(command, state, &ctx))
            .collect()
    }

    /// Reference path twin of [`Rulebase::check_first`]: linear scan,
    /// no index.
    pub fn check_first_linear(
        &self,
        command: &Command,
        state: &LabState,
        catalog: &DeviceCatalog,
    ) -> Option<Violation> {
        let ctx = RuleCtx { catalog };
        self.rules
            .iter()
            .zip(&self.enabled)
            .filter(|(_, &enabled)| enabled)
            .find_map(|(rule, _)| rule.check(command, state, &ctx))
    }

    /// Starts a batched mutation session: the same mutators as the
    /// direct methods, but dispatch-index maintenance is deferred to
    /// one rebuild when the guard drops. The rule service applies
    /// hundreds of commands per copy-on-write commit; reindexing once
    /// per commit instead of once per op is most of its wire-speed
    /// budget. The guard holds `&mut self`, so the stale index is
    /// unobservable — no check can run until the guard is gone.
    pub fn batch_edit(&mut self) -> BatchEdit<'_> {
        BatchEdit {
            rulebase: self,
            dirty: false,
        }
    }
}

/// A batched mutation session over a [`Rulebase`] — see
/// [`Rulebase::batch_edit`]. Dropping the guard rebuilds the dispatch
/// index once (only if a mutation actually changed anything).
#[derive(Debug)]
pub struct BatchEdit<'a> {
    rulebase: &'a mut Rulebase,
    dirty: bool,
}

impl BatchEdit<'_> {
    /// The rule with the given id, if present (enabled or not).
    pub fn rule(&self, id: &RuleId) -> Option<&Rule> {
        self.rulebase.rule(id)
    }

    /// Whether the rule with the given id is enabled (`None` if absent).
    pub fn is_enabled(&self, id: &RuleId) -> Option<bool> {
        self.rulebase.is_enabled(id)
    }

    /// Adds one rule (enabled); index rebuild deferred.
    pub fn push(&mut self, rule: Rule) {
        self.rulebase.rules.push(rule);
        self.rulebase.enabled.push(true);
        self.dirty = true;
    }

    /// Removes the rule with the given id, returning `true` if found;
    /// index rebuild deferred.
    pub fn remove(&mut self, id: &RuleId) -> bool {
        let Some(pos) = self.rulebase.position(id) else {
            return false;
        };
        self.rulebase.rules.remove(pos);
        self.rulebase.enabled.remove(pos);
        self.dirty = true;
        true
    }

    /// Replaces the rule with the given id in place, returning `true`
    /// if found; index rebuild deferred.
    pub fn update(&mut self, id: &RuleId, rule: Rule) -> bool {
        let Some(pos) = self.rulebase.position(id) else {
            return false;
        };
        self.rulebase.rules[pos] = rule;
        self.dirty = true;
        true
    }

    /// Enables or disables the rule with the given id, returning `true`
    /// if found; index rebuild deferred (and skipped when nothing
    /// actually flips).
    pub fn set_enabled(&mut self, id: &RuleId, enabled: bool) -> bool {
        let Some(pos) = self.rulebase.position(id) else {
            return false;
        };
        if self.rulebase.enabled[pos] != enabled {
            self.rulebase.enabled[pos] = enabled;
            self.dirty = true;
        }
        true
    }
}

impl Drop for BatchEdit<'_> {
    fn drop(&mut self) {
        if self.dirty {
            self.rulebase.reindex();
        }
    }
}

impl Extend<Rule> for Rulebase {
    fn extend<I: IntoIterator<Item = Rule>>(&mut self, iter: I) {
        self.rules.extend(iter);
        self.enabled.resize(self.rules.len(), true);
        self.reindex();
    }
}

impl FromIterator<Rule> for Rulebase {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        Rulebase::from_rules(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DeviceMeta;
    use rabit_devices::{ActionKind, DeviceId, DeviceState, DeviceType, StateKey};

    fn catalog() -> DeviceCatalog {
        DeviceCatalog::new()
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("arm", DeviceType::RobotArm))
            .with(
                DeviceMeta::new("centrifuge", DeviceType::ActionDevice)
                    .with_door()
                    .with_tag("centrifuge"),
            )
    }

    fn closed_door_state() -> LabState {
        let mut s = LabState::new();
        s.insert("doser", DeviceState::new().with(StateKey::DoorOpen, false));
        s.insert(
            "arm",
            DeviceState::new()
                .with(StateKey::Holding, None::<DeviceId>)
                .with(StateKey::InsideOf, None::<DeviceId>),
        );
        s
    }

    #[test]
    fn sizes() {
        assert_eq!(Rulebase::standard().len(), 11);
        assert_eq!(Rulebase::hein_lab().len(), 15);
        assert!(Rulebase::new().is_empty());
    }

    #[test]
    fn check_collects_all_violations() {
        let rb = Rulebase::hein_lab();
        let cat = catalog();
        let state = closed_door_state();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        let violations = rb.check(&cmd, &state, &cat);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, RuleId::General(1));
        assert_eq!(
            rb.check_first(&cmd, &state, &cat).unwrap().rule,
            RuleId::General(1)
        );
    }

    #[test]
    fn empty_rulebase_detects_nothing() {
        let rb = Rulebase::new();
        let cat = catalog();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        assert!(rb.check(&cmd, &closed_door_state(), &cat).is_empty());
        assert!(rb.check_first(&cmd, &closed_door_state(), &cat).is_none());
    }

    #[test]
    fn removal_by_id() {
        let mut rb = Rulebase::standard();
        assert!(rb.remove(&RuleId::General(1)));
        assert_eq!(rb.len(), 10);
        assert!(!rb.remove(&RuleId::General(1)));
        let cat = catalog();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        assert!(rb.check(&cmd, &closed_door_state(), &cat).is_empty());
    }

    #[test]
    fn disabled_rules_stop_firing_on_both_paths() {
        let mut rb = Rulebase::hein_lab();
        let cat = catalog();
        let state = closed_door_state();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        assert_eq!(rb.check(&cmd, &state, &cat).len(), 1);
        assert!(rb.set_enabled(&RuleId::General(1), false));
        assert_eq!(rb.is_enabled(&RuleId::General(1)), Some(false));
        assert_eq!(rb.len(), 15, "disabled rules stay in the table");
        assert_eq!(rb.enabled_count(), 14);
        assert!(rb.check(&cmd, &state, &cat).is_empty());
        assert!(rb.check_linear(&cmd, &state, &cat).is_empty());
        assert!(rb.check_first(&cmd, &state, &cat).is_none());
        assert!(rb.check_first_linear(&cmd, &state, &cat).is_none());
        // Re-enable: fires again.
        assert!(rb.set_enabled(&RuleId::General(1), true));
        assert_eq!(rb.enabled_count(), 15);
        assert_eq!(rb.check(&cmd, &state, &cat).len(), 1);
        // Unknown id: untouched.
        assert!(!rb.set_enabled(&RuleId::General(99), false));
        assert_eq!(rb.is_enabled(&RuleId::General(99)), None);
    }

    #[test]
    fn update_replaces_rule_in_place() {
        let mut rb = Rulebase::standard();
        assert!(rb.rule(&RuleId::General(1)).is_some());
        let relaxed = Rule::new(
            RuleId::General(1),
            "relaxed door rule (never fires)",
            |_, _, _| None,
        );
        assert!(rb.update(&RuleId::General(1), relaxed));
        assert_eq!(rb.len(), 11);
        assert_eq!(
            rb.rule(&RuleId::General(1)).unwrap().description(),
            "relaxed door rule (never fires)"
        );
        let cat = catalog();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        assert!(rb.check(&cmd, &closed_door_state(), &cat).is_empty());
        assert!(!rb.update(&RuleId::General(99), rb.rules()[0].clone()));
    }

    #[test]
    fn collect_and_extend() {
        let rules = crate::general::general_rules();
        let rb: Rulebase = rules.into_iter().collect();
        assert_eq!(rb.len(), 11);
        let mut rb2 = Rulebase::new();
        rb2.extend(crate::custom::hein_custom_rules());
        assert_eq!(rb2.len(), 4);
        let rb3 = Rulebase::new().with_rule(crate::general::rule_4_no_double_pick());
        assert_eq!(rb3.len(), 1);
    }

    #[test]
    fn indexed_and_linear_paths_agree() {
        use rabit_geometry::Vec3;
        let rb = Rulebase::hein_lab();
        let cat = catalog();
        let state = closed_door_state();
        let commands = vec![
            Command::new(
                "arm",
                ActionKind::MoveInsideDevice {
                    device: "doser".into(),
                },
            ),
            Command::new(
                "arm",
                ActionKind::MoveToLocation {
                    target: Vec3::new(0.5, 0.0, 0.3),
                },
            ),
            Command::new(
                "arm",
                ActionKind::PickObject {
                    object: "vial".into(),
                },
            ),
            Command::new(
                "arm",
                ActionKind::PlaceObject {
                    object: "vial".into(),
                    into: Some("centrifuge".into()),
                },
            ),
            Command::new("doser", ActionKind::SetDoor { open: true }),
            Command::new("doser", ActionKind::SetDoor { open: false }),
            Command::new("centrifuge", ActionKind::StartAction { value: 50.0 }),
            Command::new(
                "doser",
                ActionKind::DoseSolid {
                    amount_mg: 3.0,
                    into: "vial".into(),
                },
            ),
            Command::new("arm", ActionKind::MoveHome),
            Command::new(
                "unknown_device",
                ActionKind::Custom {
                    name: "calibrate".into(),
                    params: Vec::new(),
                },
            ),
        ];
        for cmd in &commands {
            let indexed: Vec<Violation> = rb.check(cmd, &state, &cat).into_vec();
            let linear = rb.check_linear(cmd, &state, &cat);
            assert_eq!(indexed, linear, "index diverged on {cmd}");
            assert_eq!(
                rb.check_first(cmd, &state, &cat),
                rb.check_first_linear(cmd, &state, &cat),
                "check_first diverged on {cmd}"
            );
        }
    }

    #[test]
    fn index_skips_rules_outside_signature() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let rule = Rule::new(RuleId::Custom("counting".into()), "counts calls", {
            move |_, _, _| {
                calls2.fetch_add(1, Ordering::SeqCst);
                None
            }
        })
        .with_actions(&[rabit_devices::ActionClass::OpenDoor]);
        let rb = Rulebase::new().with_rule(rule);
        let cat = catalog();
        let state = closed_door_state();
        let pick = Command::new(
            "arm",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        );
        rb.check(&pick, &state, &cat);
        assert_eq!(calls.load(Ordering::SeqCst), 0, "signature must skip rule");
        let open = Command::new("doser", ActionKind::SetDoor { open: true });
        rb.check(&open, &state, &cat);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "matching class must run");
        // The linear reference path ignores the index entirely.
        rb.check_linear(&pick, &state, &cat);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn actor_signature_filters_by_device_type() {
        let rule = Rule::new(
            RuleId::Custom("arm_only".into()),
            "always fires",
            |_, _, _| Some("fired".into()),
        )
        .with_signature(
            crate::rule::RuleSignature::any().for_actors(&[crate::rule::ActorClass::RobotArm]),
        );
        let rb = Rulebase::new().with_rule(rule);
        let cat = catalog();
        let state = closed_door_state();
        let from_arm = Command::new("arm", ActionKind::MoveHome);
        assert_eq!(rb.check(&from_arm, &state, &cat).len(), 1);
        let from_doser = Command::new("doser", ActionKind::SetDoor { open: true });
        assert!(rb.check(&from_doser, &state, &cat).is_empty());
        // Unknown actors conservatively match every rule.
        let from_unknown = Command::new("ghost", ActionKind::MoveHome);
        assert_eq!(rb.check(&from_unknown, &state, &cat).len(), 1);
    }

    #[test]
    fn check_into_reuses_buffer() {
        let rb = Rulebase::hein_lab();
        let cat = catalog();
        let state = closed_door_state();
        let bad = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        let good = Command::new("arm", ActionKind::MoveHome);
        let mut buf = crate::rule::Violations::new();
        rb.check_into(&bad, &state, &cat, &mut buf);
        assert_eq!(buf.len(), 1);
        rb.check_into(&good, &state, &cat, &mut buf);
        assert!(buf.is_empty(), "check_into must clear the buffer first");
    }

    #[test]
    fn multiple_violations_reported_together() {
        // Placing an empty, uncapped vial into a misaligned centrifuge
        // violates C2, C3, and C4 at once.
        let rb = Rulebase::hein_lab();
        let cat = catalog();
        let mut state = closed_door_state();
        state.insert(
            "vial",
            DeviceState::new()
                .with(StateKey::SolidMg, 0.0)
                .with(StateKey::LiquidMl, 0.0)
                .with(StateKey::HasStopper, false),
        );
        state.insert(
            "centrifuge",
            DeviceState::new().with(StateKey::RedDotNorth, false),
        );
        let cmd = Command::new(
            "arm",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("centrifuge".into()),
            },
        );
        let violations = rb.check(&cmd, &state, &cat);
        assert_eq!(violations.len(), 3);
        let ids: Vec<String> = violations.iter().map(|v| v.rule.to_string()).collect();
        assert!(ids.contains(&"custom:2".to_string()));
        assert!(ids.contains(&"custom:3".to_string()));
        assert!(ids.contains(&"custom:4".to_string()));
    }
}
