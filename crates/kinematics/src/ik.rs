//! Inverse kinematics: damped-least-squares position IK.
//!
//! RABIT replays *move to location* commands; the arm controller must turn
//! a Cartesian target into joint angles. This module provides the numeric
//! IK the simulated arms use, with the two failure behaviours the paper
//! observed for infeasible targets (§IV, category 4):
//!
//! * ViperX "failed to compute the trajectory and **silently ignored** the
//!   command";
//! * Ned2 "**throws an exception** and halts immediately".
//!
//! Both behaviours are driven by the same [`IkError`]; the arm wrappers in
//! the stage crates decide whether to surface or swallow it.

#![allow(clippy::needless_range_loop)] // index-paired math over fixed-size arrays

use crate::arm::ArmModel;
use crate::chain::JointConfig;
use rabit_geometry::Vec3;

/// Why inverse kinematics failed.
#[derive(Debug, Clone, PartialEq)]
pub enum IkError {
    /// The target is farther than the arm can reach; no solution exists.
    OutOfReach {
        /// Distance from the base to the target (metres).
        distance: f64,
        /// The arm's maximum reach (metres).
        max_reach: f64,
    },
    /// Iteration did not converge within the tolerance (target may be
    /// reachable but awkward, or in a singular region).
    NotConverged {
        /// Residual position error after the final iteration (metres).
        residual: f64,
    },
    /// The target contains non-finite coordinates.
    InvalidTarget,
}

impl std::fmt::Display for IkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IkError::OutOfReach {
                distance,
                max_reach,
            } => write!(
                f,
                "target {distance:.3} m from base exceeds reach {max_reach:.3} m"
            ),
            IkError::NotConverged { residual } => {
                write!(f, "IK did not converge; residual {residual:.4} m")
            }
            IkError::InvalidTarget => write!(f, "target position is not finite"),
        }
    }
}

impl std::error::Error for IkError {}

/// Tuning parameters for [`solve_position`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IkParams {
    /// Maximum Newton-style iterations.
    pub max_iters: usize,
    /// Convergence tolerance on position error (metres).
    pub tolerance: f64,
    /// Damping factor λ for the damped-least-squares step.
    pub damping: f64,
    /// Finite-difference step for the numeric Jacobian (radians).
    pub fd_step: f64,
}

impl Default for IkParams {
    fn default() -> Self {
        IkParams {
            max_iters: 200,
            tolerance: 1e-4,
            damping: 0.05,
            fd_step: 1e-6,
        }
    }
}

/// Solves position-only IK: find joint angles whose tool position reaches
/// `target`, starting the iteration from `seed`.
///
/// Uses a numerically differentiated 3×6 Jacobian and damped least squares
/// (`Δq = Jᵀ (J Jᵀ + λ² I)⁻¹ e`), clamping each step into the joint limits.
///
/// # Errors
///
/// * [`IkError::InvalidTarget`] for non-finite targets;
/// * [`IkError::OutOfReach`] when the target provably exceeds the arm's
///   reach (checked before iterating);
/// * [`IkError::NotConverged`] when iteration stalls.
pub fn solve_position(
    arm: &ArmModel,
    seed: &JointConfig,
    target: Vec3,
    params: &IkParams,
) -> Result<JointConfig, IkError> {
    if !target.is_finite() {
        return Err(IkError::InvalidTarget);
    }
    let base = arm.chain().base().translation;
    let distance = base.distance(target);
    let max_reach = arm.max_reach();
    if distance > max_reach {
        return Err(IkError::OutOfReach {
            distance,
            max_reach,
        });
    }

    // Multi-start: DLS with joint-limit clamping can pin against a limit.
    // Retry from deterministic perturbations of the seed before giving up.
    let mut best: Result<JointConfig, IkError> = Err(IkError::NotConverged {
        residual: f64::INFINITY,
    });
    for restart in 0..5u32 {
        let mut start = *seed;
        if restart > 0 {
            for i in 0..6 {
                // ±0.4/0.8 rad wiggles, alternating sign per joint/restart.
                let sign = if (i + restart as usize).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                let mag = 0.4 * restart as f64;
                start = start.with_angle(i, arm.limits()[i].clamp(start.angle(i) + sign * mag));
            }
        }
        match solve_from(arm, &start, target, params) {
            Ok(q) => return Ok(q),
            Err(e) => {
                let keep = match (&best, &e) {
                    (
                        Err(IkError::NotConverged { residual: old }),
                        IkError::NotConverged { residual: new },
                    ) => new < old,
                    _ => false,
                };
                if keep
                    || matches!(best, Err(IkError::NotConverged { residual }) if residual.is_infinite())
                {
                    best = Err(e);
                }
            }
        }
    }
    best
}

/// A single DLS descent from one seed.
fn solve_from(
    arm: &ArmModel,
    seed: &JointConfig,
    target: Vec3,
    params: &IkParams,
) -> Result<JointConfig, IkError> {
    let mut q = *seed;
    let mut best_q = q;
    let mut best_err = f64::INFINITY;

    for _ in 0..params.max_iters {
        let current = arm.tool_position(&q);
        let e = target - current;
        let err = e.norm();
        if err < best_err {
            best_err = err;
            best_q = q;
        }
        if err <= params.tolerance {
            return Ok(q);
        }

        let jac = position_jacobian(arm, &q, params.fd_step);
        // Error-adaptive damping: heavy far from the target (stability),
        // light near it (fast convergence instead of stalling).
        let lambda = (params.damping * err / (err + 0.02)).max(1e-4);
        let dq = dls_step(&jac, e, lambda);

        let mut next = q;
        for i in 0..6 {
            let a = arm.limits()[i].clamp(q.angle(i) + dq[i]);
            next = next.with_angle(i, a);
        }
        // Stalled (e.g. pinned at joint limits): stop early.
        if next.max_joint_delta(&q) < 1e-12 {
            break;
        }
        q = next;
    }

    if best_err <= params.tolerance {
        Ok(best_q)
    } else {
        Err(IkError::NotConverged { residual: best_err })
    }
}

/// Numeric 3×6 position Jacobian via central differences.
fn position_jacobian(arm: &ArmModel, q: &JointConfig, h: f64) -> [[f64; 6]; 3] {
    let mut jac = [[0.0; 6]; 3];
    for j in 0..6 {
        let qp = q.with_angle(j, q.angle(j) + h);
        let qm = q.with_angle(j, q.angle(j) - h);
        let dp = arm.tool_position(&qp);
        let dm = arm.tool_position(&qm);
        let grad = (dp - dm) / (2.0 * h);
        jac[0][j] = grad.x;
        jac[1][j] = grad.y;
        jac[2][j] = grad.z;
    }
    jac
}

/// One damped-least-squares step: `Δq = Jᵀ (J Jᵀ + λ² I)⁻¹ e`.
fn dls_step(jac: &[[f64; 6]; 3], e: Vec3, damping: f64) -> [f64; 6] {
    // A = J Jᵀ + λ² I  (3×3 symmetric positive definite).
    let mut a = [[0.0f64; 3]; 3];
    for r in 0..3 {
        for c in 0..3 {
            let mut s = 0.0;
            for k in 0..6 {
                s += jac[r][k] * jac[c][k];
            }
            a[r][c] = s;
        }
        a[r][r] += damping * damping;
    }
    let y = solve3(&a, [e.x, e.y, e.z]);
    // Δq = Jᵀ y.
    let mut dq = [0.0; 6];
    for (j, out) in dq.iter_mut().enumerate() {
        *out = jac[0][j] * y[0] + jac[1][j] * y[1] + jac[2][j] * y[2];
    }
    dq
}

/// Solves a 3×3 linear system with partial-pivot Gaussian elimination.
/// The DLS matrix is SPD so the system is always solvable.
fn solve3(a: &[[f64; 3]; 3], b: [f64; 3]) -> [f64; 3] {
    let mut m = [[0.0f64; 4]; 3];
    for r in 0..3 {
        m[r][..3].copy_from_slice(&a[r]);
        m[r][3] = b[r];
    }
    for col in 0..3 {
        // Pivot.
        let piv = (col..3)
            .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
            .unwrap();
        m.swap(col, piv);
        let p = m[col][col];
        for r in 0..3 {
            if r != col && p.abs() > 0.0 {
                let f = m[r][col] / p;
                for c in col..4 {
                    m[r][c] -= f * m[col][c];
                }
            }
        }
    }
    let mut x = [0.0; 3];
    for r in 0..3 {
        x[r] = if m[r][r].abs() > 0.0 {
            m[r][3] / m[r][r]
        } else {
            0.0
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn reaches_a_nearby_target() {
        let arm = presets::ur3e();
        let seed = arm.home_configuration();
        let start = arm.tool_position(&seed);
        let target = start + Vec3::new(0.05, -0.04, 0.03);
        let q = solve_position(&arm, &seed, target, &IkParams::default()).unwrap();
        assert!(arm.tool_position(&q).distance(target) < 1e-3);
        assert!(arm.within_limits(&q));
    }

    #[test]
    fn reaches_a_grid_pickup_position() {
        let arm = presets::viperx300();
        let seed = arm.home_configuration();
        // The Fig. 6 ViperX grid pickup location.
        let target = Vec3::new(0.537, 0.018, 0.12);
        let q = solve_position(&arm, &seed, target, &IkParams::default()).unwrap();
        assert!(arm.tool_position(&q).distance(target) < 1e-3);
    }

    #[test]
    fn out_of_reach_is_reported_before_iterating() {
        let arm = presets::ned2();
        let target = Vec3::new(5.0, 5.0, 5.0); // "very high, clearly infeasible"
        let err = solve_position(
            &arm,
            &arm.home_configuration(),
            target,
            &IkParams::default(),
        )
        .unwrap_err();
        match err {
            IkError::OutOfReach {
                distance,
                max_reach,
            } => {
                assert!(distance > max_reach);
            }
            other => panic!("expected OutOfReach, got {other:?}"),
        }
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn invalid_target_rejected() {
        let arm = presets::ur3e();
        let err = solve_position(
            &arm,
            &arm.home_configuration(),
            Vec3::new(f64::NAN, 0.0, 0.0),
            &IkParams::default(),
        )
        .unwrap_err();
        assert_eq!(err, IkError::InvalidTarget);
    }

    #[test]
    fn unreachable_but_within_sphere_does_not_converge() {
        let arm = presets::ur3e();
        // Directly inside the base column: within the reach sphere but not
        // attainable by the tool without self-intersection of the model's
        // kinematics; expect a NotConverged (or a solve, depending on
        // geometry) — assert it never returns a config that misses.
        let target = arm.chain().base().translation + Vec3::new(0.0, 0.0, -0.5);
        match solve_position(
            &arm,
            &arm.home_configuration(),
            target,
            &IkParams::default(),
        ) {
            Ok(q) => assert!(arm.tool_position(&q).distance(target) < 1e-3),
            Err(IkError::NotConverged { residual }) => assert!(residual > 0.0),
            Err(IkError::OutOfReach { .. }) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn solve3_solves_spd_system() {
        let a = [[4.0, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 2.0]];
        let b = [1.0, 2.0, 3.0];
        let x = solve3(&a, b);
        for r in 0..3 {
            let got: f64 = (0..3).map(|c| a[r][c] * x[c]).sum();
            assert!((got - b[r]).abs() < 1e-9);
        }
    }

    #[test]
    fn jacobian_matches_finite_difference_of_tool_position() {
        let arm = presets::ur3e();
        let q = arm.home_configuration();
        let jac = position_jacobian(&arm, &q, 1e-6);
        // Column 0 should predict the motion caused by a small joint-0 turn.
        let dq = 1e-4;
        let q2 = q.with_angle(0, q.angle(0) + dq);
        let moved = arm.tool_position(&q2) - arm.tool_position(&q);
        let predicted = Vec3::new(jac[0][0], jac[1][0], jac[2][0]) * dq;
        assert!((moved - predicted).norm() < 1e-6);
    }
}
