//! Property-based tests over the device-state layer.

use proptest::prelude::*;
use rabit_devices::{DeviceId, DeviceState, LabState, StateKey, Value, Vial};
use rabit_geometry::Vec3;

fn state_key() -> impl Strategy<Value = StateKey> {
    prop_oneof![
        Just(StateKey::DoorOpen),
        Just(StateKey::ActionActive),
        Just(StateKey::ActionValue),
        Just(StateKey::SolidMg),
        Just(StateKey::LiquidMl),
        Just(StateKey::HasStopper),
        Just(StateKey::AtSleep),
        "[a-z]{1,8}".prop_map(StateKey::Custom),
    ]
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        (-1e3..1e3f64).prop_map(Value::Number),
        (-2.0..2.0f64, -2.0..2.0f64, 0.0..2.0f64)
            .prop_map(|(x, y, z)| Value::Position(Vec3::new(x, y, z))),
        prop_oneof![
            Just(Value::Id(None)),
            "[a-z]{1,6}".prop_map(|s| Value::Id(Some(DeviceId::new(s)))),
        ],
    ]
}

fn device_state() -> impl Strategy<Value = DeviceState> {
    prop::collection::vec((state_key(), value()), 0..6)
        .prop_map(|pairs| pairs.into_iter().collect())
}

fn lab_state() -> impl Strategy<Value = LabState> {
    prop::collection::vec(("[a-z]{1,6}", device_state()), 0..5).prop_map(|devs| {
        devs.into_iter()
            .map(|(id, st)| (DeviceId::new(id), st))
            .collect()
    })
}

proptest! {
    /// Overlay semantics: every reported variable wins; everything else
    /// is retained.
    #[test]
    fn overlay_reported_wins_and_rest_is_retained(
        believed in lab_state(),
        reported in lab_state()
    ) {
        let mut merged = believed.clone();
        merged.overlay(&reported);
        // Reported values are present verbatim.
        for (dev, st) in reported.iter() {
            for (key, val) in st.iter() {
                prop_assert_eq!(merged.get(dev, key), Some(val));
            }
        }
        // Believed-only values survive.
        for (dev, st) in believed.iter() {
            for (key, val) in st.iter() {
                if reported.get(dev, key).is_none() {
                    prop_assert_eq!(merged.get(dev, key), Some(val));
                }
            }
        }
    }

    /// A snapshot never contradicts itself, at any tolerance.
    #[test]
    fn self_diff_is_empty(state in lab_state(), tol in 0.0..1.0f64) {
        prop_assert!(state.diff_reported(&state, tol).is_empty());
        prop_assert!(state.diff(&state, tol).is_empty());
    }

    /// `diff_reported` only ever cites variables the reported side has,
    /// and loosening the tolerance never creates new findings.
    #[test]
    fn diff_reported_is_sound_and_monotone(
        expected in lab_state(),
        reported in lab_state(),
        tol in 0.0..0.5f64
    ) {
        let strict = expected.diff_reported(&reported, tol);
        for d in &strict {
            prop_assert!(reported.get(&d.device, &d.key).is_some());
            prop_assert!(expected.get(&d.device, &d.key).is_some());
        }
        let loose = expected.diff_reported(&reported, tol + 0.5);
        prop_assert!(loose.len() <= strict.len());
    }

    /// Overlaying the reported snapshot resolves every reported
    /// discrepancy: the merged state agrees with the report.
    #[test]
    fn overlay_resolves_all_reported_diffs(
        expected in lab_state(),
        reported in lab_state()
    ) {
        let mut merged = expected.clone();
        merged.overlay(&reported);
        prop_assert!(merged.diff_reported(&reported, 0.0).is_empty());
    }

    /// LabState survives a JSON round trip (up to sub-nanometre float
    /// drift: serde_json can shift a value by one ulp near decimal ties).
    #[test]
    fn lab_state_serde_roundtrip(state in lab_state()) {
        let json = serde_json::to_string(&state).unwrap();
        let back: LabState = serde_json::from_str(&json).unwrap();
        let diffs = back.diff(&state, 1e-9);
        prop_assert!(diffs.is_empty(), "roundtrip drift: {diffs:?}");
    }

    /// Vial contents conservation: arbitrary add/take sequences keep the
    /// contents within [0, capacity], and every gram is accounted for.
    #[test]
    fn vial_contents_are_conserved(ops in prop::collection::vec((any::<bool>(), 0.0..30.0f64), 1..40)) {
        let mut vial = Vial::new("v", Vec3::ZERO).with_capacities(10.0, 20.0);
        let mut ledger = 0.0; // what we believe is inside
        for (add, amount) in ops {
            if add {
                let spilled = vial.add_solid(amount);
                prop_assert!(spilled >= 0.0 && spilled <= amount + 1e-9);
                ledger += amount - spilled;
            } else {
                let taken = vial.take_solid(amount);
                prop_assert!(taken >= 0.0 && taken <= amount + 1e-9);
                ledger -= taken;
            }
            prop_assert!((vial.solid_mg() - ledger).abs() < 1e-6);
            prop_assert!(vial.solid_mg() >= -1e-9);
            prop_assert!(vial.solid_mg() <= 10.0 + 1e-9);
        }
    }
}
