//! Rule types: identities, outcomes, violations, applicability
//! signatures, and the [`Rule`] object.

use crate::catalog::DeviceCatalog;
use rabit_devices::{ActionClass, Command, DeviceType, LabState};
use std::fmt;
use std::sync::Arc;

/// Identifies a rule.
///
/// Marked `#[non_exhaustive]`: new rule provenances (e.g. LLM-proposed
/// rules awaiting human review) can be added without a breaking change,
/// so downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// General rule *n* of Table III (1-11).
    General(u8),
    /// A lab-specific custom rule; Hein rules are `custom:1` … `custom:4`
    /// of Table IV.
    Custom(String),
    /// A RABIT extension added during the evaluation (held-object
    /// geometry, time/space multiplexing).
    Extension(String),
    /// A rule mined from trace data (RAD).
    Mined(String),
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleId::General(n) => write!(f, "general:{n}"),
            RuleId::Custom(name) => write!(f, "custom:{name}"),
            RuleId::Extension(name) => write!(f, "extension:{name}"),
            RuleId::Mined(name) => write!(f, "mined:{name}"),
        }
    }
}

/// A detected rule violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// A coarse actor classification used by [`RuleSignature`] device-type
/// predicates. Mirrors [`DeviceType`] with every `Custom(..)` category
/// collapsed into one bit, so signatures stay a plain bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ActorClass {
    /// [`DeviceType::Container`].
    Container = 0,
    /// [`DeviceType::RobotArm`].
    RobotArm,
    /// [`DeviceType::DosingSystem`].
    DosingSystem,
    /// [`DeviceType::ActionDevice`].
    ActionDevice,
    /// Any [`DeviceType::Custom`] category.
    Custom,
}

impl ActorClass {
    /// Number of actor classes.
    pub const COUNT: usize = 5;

    /// The class of a catalog device type.
    pub fn of(device_type: &DeviceType) -> Self {
        match device_type {
            DeviceType::Container => ActorClass::Container,
            DeviceType::RobotArm => ActorClass::RobotArm,
            DeviceType::DosingSystem => ActorClass::DosingSystem,
            DeviceType::ActionDevice => ActorClass::ActionDevice,
            DeviceType::Custom(_) => ActorClass::Custom,
        }
    }
}

/// A rule's static applicability signature: the action classes and actor
/// device types it can possibly fire on. The [`Rulebase`] builds a
/// dispatch index from these at construction, so `check` only visits
/// rules whose signature matches the command — a rule whose signature
/// excludes a command is guaranteed (by its author) to return `None` for
/// it.
///
/// The default signature matches everything, so rules built without an
/// explicit signature (custom labs, RAD-mined rules) are always
/// evaluated, exactly as before the index existed.
///
/// [`Rulebase`]: crate::Rulebase
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSignature {
    /// Bit `ActionClass::index()` set ⇒ the rule can fire on that class.
    action_mask: u32,
    /// Bit `ActorClass as u8` set ⇒ the rule can fire for actors of that
    /// class. Commands whose actor is unknown to the catalog match every
    /// rule (conservative).
    actor_mask: u8,
}

const ALL_ACTIONS: u32 = (1 << ActionClass::COUNT as u32) - 1;
const ALL_ACTORS: u8 = (1 << ActorClass::COUNT as u8) - 1;

impl Default for RuleSignature {
    fn default() -> Self {
        RuleSignature::any()
    }
}

impl RuleSignature {
    /// Matches every command (the conservative default).
    pub const fn any() -> Self {
        RuleSignature {
            action_mask: ALL_ACTIONS,
            actor_mask: ALL_ACTORS,
        }
    }

    /// Matches only the given action classes (any actor).
    pub fn actions(classes: &[ActionClass]) -> Self {
        let mut mask = 0u32;
        for c in classes {
            mask |= 1 << c.index() as u32;
        }
        RuleSignature {
            action_mask: mask,
            actor_mask: ALL_ACTORS,
        }
    }

    /// Restricts the signature to actors of the given classes
    /// (builder style).
    pub fn for_actors(mut self, classes: &[ActorClass]) -> Self {
        let mut mask = 0u8;
        for c in classes {
            mask |= 1 << *c as u8;
        }
        self.actor_mask = mask;
        self
    }

    /// Whether the signature admits this action class.
    #[inline]
    pub fn matches_action(&self, class: ActionClass) -> bool {
        self.action_mask & (1 << class.index() as u32) != 0
    }

    /// Whether the signature admits an actor of this class. `None`
    /// (actor not in the catalog) conservatively matches everything.
    #[inline]
    pub fn matches_actor(&self, class: Option<ActorClass>) -> bool {
        match class {
            Some(c) => self.actor_mask & (1 << c as u8) != 0,
            None => true,
        }
    }

    /// The admitted action classes, in index order.
    pub fn action_classes(&self) -> impl Iterator<Item = ActionClass> + '_ {
        ActionClass::ALL
            .into_iter()
            .filter(|c| self.matches_action(*c))
    }
}

/// Inline capacity of [`Violations`] — real commands rarely break more
/// than a few rules at once (the worst observed case, the Table IV
/// centrifuge misuse, breaks three).
const VIOLATIONS_INLINE: usize = 4;

/// A small-vec of [`Violation`]s: the first four live inline, the rest
/// spill to the heap. [`Rulebase::check`] returns this, so the hot path
/// (no violations, or up to four) performs no allocation at all.
///
/// [`Rulebase::check`]: crate::Rulebase::check
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Violations {
    inline: [Option<Violation>; VIOLATIONS_INLINE],
    spill: Vec<Violation>,
    len: usize,
}

impl Violations {
    /// An empty buffer. Performs no allocation.
    pub fn new() -> Self {
        Violations::default()
    }

    /// Number of recorded violations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether any violation was recorded — `false` is the algorithm's
    /// `Valid(S_current, a_next)`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a violation.
    pub fn push(&mut self, v: Violation) {
        if self.len < VIOLATIONS_INLINE {
            self.inline[self.len] = Some(v);
        } else {
            self.spill.push(v);
        }
        self.len += 1;
    }

    /// Clears the buffer, keeping any spilled heap capacity for reuse.
    pub fn clear(&mut self) {
        for slot in &mut self.inline {
            *slot = None;
        }
        self.spill.clear();
        self.len = 0;
    }

    /// The violation at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&Violation> {
        if index >= self.len {
            None
        } else if index < VIOLATIONS_INLINE {
            self.inline[index].as_ref()
        } else {
            self.spill.get(index - VIOLATIONS_INLINE)
        }
    }

    /// The first violation, if any.
    pub fn first(&self) -> Option<&Violation> {
        self.get(0)
    }

    /// Iterates the violations in evaluation order.
    pub fn iter(&self) -> impl Iterator<Item = &Violation> {
        self.inline
            .iter()
            .take(self.len.min(VIOLATIONS_INLINE))
            .filter_map(Option::as_ref)
            .chain(self.spill.iter())
    }

    /// Moves the violations into a plain `Vec` (allocates — the cold,
    /// alert-raising path).
    pub fn into_vec(mut self) -> Vec<Violation> {
        let mut out = Vec::with_capacity(self.len);
        for slot in &mut self.inline {
            if let Some(v) = slot.take() {
                out.push(v);
            }
        }
        out.append(&mut self.spill);
        out
    }
}

impl std::ops::Index<usize> for Violations {
    type Output = Violation;
    fn index(&self, index: usize) -> &Violation {
        self.get(index)
            .unwrap_or_else(|| panic!("violation index {index} out of bounds (len {})", self.len))
    }
}

impl<'a> IntoIterator for &'a Violations {
    type Item = &'a Violation;
    type IntoIter = Box<dyn Iterator<Item = &'a Violation> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl From<Violations> for Vec<Violation> {
    fn from(v: Violations) -> Vec<Violation> {
        v.into_vec()
    }
}

impl FromIterator<Violation> for Violations {
    fn from_iter<I: IntoIterator<Item = Violation>>(iter: I) -> Self {
        let mut out = Violations::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

/// The context every rule check receives.
#[derive(Debug, Clone, Copy)]
pub struct RuleCtx<'a> {
    /// The static device catalog (from JSON configuration).
    pub catalog: &'a DeviceCatalog,
}

/// A checker function: given the command about to execute, the current
/// lab state, and the catalog, return a violation if the precondition
/// fails.
type CheckFn = dyn Fn(&Command, &LabState, &RuleCtx<'_>) -> Option<String> + Send + Sync;

/// One safety rule.
///
/// Rules are precondition checks: the Fig. 2 algorithm's
/// `Valid(S_current, a_next)` is the conjunction of all rules in the
/// rulebase.
#[derive(Clone)]
pub struct Rule {
    id: RuleId,
    description: String,
    signature: RuleSignature,
    check: Arc<CheckFn>,
}

impl Rule {
    /// Creates a rule from its id, Table III/IV wording, and checker.
    /// The signature defaults to [`RuleSignature::any`] — the rule is
    /// evaluated on every command until narrowed with
    /// [`Rule::with_actions`] or [`Rule::with_signature`].
    pub fn new(
        id: RuleId,
        description: impl Into<String>,
        check: impl Fn(&Command, &LabState, &RuleCtx<'_>) -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        Rule {
            id,
            description: description.into(),
            signature: RuleSignature::any(),
            check: Arc::new(check),
        }
    }

    /// Narrows the rule to the given action classes (builder style).
    /// The author asserts the checker returns `None` for every command
    /// whose action class is not listed.
    pub fn with_actions(mut self, classes: &[ActionClass]) -> Self {
        self.signature = RuleSignature::actions(classes);
        self
    }

    /// Replaces the rule's applicability signature (builder style).
    pub fn with_signature(mut self, signature: RuleSignature) -> Self {
        self.signature = signature;
        self
    }

    /// The rule's applicability signature.
    pub fn signature(&self) -> &RuleSignature {
        &self.signature
    }

    /// The rule's id.
    pub fn id(&self) -> &RuleId {
        &self.id
    }

    /// The rule's wording (as in the paper's tables).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Checks the rule against a pending command. Returns a violation if
    /// the precondition fails, `None` if it holds or does not apply.
    pub fn check(
        &self,
        command: &Command,
        state: &LabState,
        ctx: &RuleCtx<'_>,
    ) -> Option<Violation> {
        (self.check)(command, state, ctx).map(|message| Violation {
            rule: self.id.clone(),
            message,
        })
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rule")
            .field("id", &self.id)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::ActionKind;

    #[test]
    fn rule_id_display() {
        assert_eq!(RuleId::General(3).to_string(), "general:3");
        assert_eq!(RuleId::Custom("1".into()).to_string(), "custom:1");
        assert_eq!(
            RuleId::Extension("time_multiplexing".into()).to_string(),
            "extension:time_multiplexing"
        );
        assert_eq!(
            RuleId::Mined("door_before_enter".into()).to_string(),
            "mined:door_before_enter"
        );
    }

    #[test]
    fn rule_check_wraps_message() {
        let rule = Rule::new(RuleId::General(4), "no double pick", |cmd, _, _| {
            matches!(cmd.action, ActionKind::PickObject { .. })
                .then(|| "already holding".to_string())
        });
        let catalog = DeviceCatalog::new();
        let ctx = RuleCtx { catalog: &catalog };
        let state = LabState::new();
        let pick = Command::new("arm", ActionKind::PickObject { object: "v".into() });
        let v = rule.check(&pick, &state, &ctx).unwrap();
        assert_eq!(v.rule, RuleId::General(4));
        assert!(v.to_string().contains("general:4"));
        let open = Command::new("d", ActionKind::SetDoor { open: true });
        assert!(rule.check(&open, &state, &ctx).is_none());
        assert_eq!(rule.description(), "no double pick");
        assert!(format!("{rule:?}").contains("General(4)"));
    }

    fn violation(n: usize) -> Violation {
        Violation {
            rule: RuleId::General(n as u8),
            message: format!("violation #{n}"),
        }
    }

    #[test]
    fn violations_spill_past_inline_capacity() {
        let mut vs = Violations::new();
        // Push well past the inline capacity of 4 so the tail spills.
        for n in 0..7 {
            vs.push(violation(n));
            assert_eq!(vs.len(), n + 1);
        }
        assert!(!vs.is_empty());
        // Every accessor sees the same 7 violations in push order.
        assert_eq!(vs.first(), Some(&violation(0)));
        for n in 0..7 {
            assert_eq!(vs.get(n), Some(&violation(n)));
            assert_eq!(&vs[n], &violation(n));
        }
        assert_eq!(vs.get(7), None);
        let from_iter: Vec<Violation> = vs.iter().cloned().collect();
        let expected: Vec<Violation> = (0..7).map(violation).collect();
        assert_eq!(from_iter, expected);
        assert_eq!(vs.clone().into_vec(), expected);
        assert_eq!(Vec::from(vs), expected);
    }

    #[test]
    fn violations_clear_resets_spill() {
        let mut vs: Violations = (0..6).map(violation).collect();
        assert_eq!(vs.len(), 6);
        vs.clear();
        assert!(vs.is_empty());
        assert_eq!(vs.first(), None);
        assert_eq!(vs.iter().count(), 0);
        // Reusable after clearing — inline first, then spill again.
        for n in 0..5 {
            vs.push(violation(n));
        }
        assert_eq!(vs.len(), 5);
        assert_eq!(vs.into_vec(), (0..5).map(violation).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn violations_index_out_of_bounds_panics() {
        let vs: Violations = (0..2).map(violation).collect();
        let _ = &vs[2];
    }

    #[test]
    fn rule_ids_order() {
        let mut ids = [
            RuleId::General(11),
            RuleId::General(1),
            RuleId::Custom("2".into()),
        ];
        ids.sort();
        assert_eq!(ids[0], RuleId::General(1));
        assert_eq!(ids[1], RuleId::General(11));
    }
}
