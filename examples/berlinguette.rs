//! RABIT generalized to the Berlinguette Lab (paper §V-B): a different
//! arm, a decapper, a spray-coating station with ultrasonic nozzles, an
//! XRF microscope — all categorized into the same four device types and
//! guarded by the same rulebase plus one lab-specific rule.
//!
//! ```text
//! cargo run --example berlinguette
//! ```

use rabit::production::berlinguette::{film_coating_workflow, BerlinguetteLab};
use rabit::tracer::{Tracer, Workflow};

fn main() {
    // --- The thin-film coating workflow, guarded end to end. ---
    let mut lab = BerlinguetteLab::new();
    let mut rabit = lab.rabit_with_simulator(false);
    let wf = film_coating_workflow();
    println!("film-coating workflow: {} device commands", wf.len());
    let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
    assert!(report.completed(), "alert: {:?}", report.alert);
    let vial = lab.lab.device(&"vial_b".into()).unwrap().as_vial().unwrap();
    println!(
        "completed: {:.1} mg precursor + {:.1} mL solvent processed, {} damage events\n",
        vial.solid_mg(),
        vial.liquid_ml(),
        lab.lab.damage_log().len()
    );

    // --- The transplanted Hein rule and the lab's own rule both bite. ---
    let mut lab = BerlinguetteLab::new();
    let mut rabit = lab.rabit();
    let cold_liquid = Workflow::new("cold_liquid").dose_liquid("spray_pump", 2.0, "vial_b");
    let alert = Tracer::guarded(&mut lab.lab, &mut rabit)
        .run(&cold_liquid)
        .alert
        .unwrap();
    println!("Hein convention transplanted: {alert}");

    let mut lab = BerlinguetteLab::new();
    let mut rabit = lab.rabit();
    let cold_spray = Workflow::new("cold_spray").start_action("nozzle_a", 40.0);
    let alert = Tracer::guarded(&mut lab.lab, &mut rabit)
        .run(&cold_spray)
        .alert
        .unwrap();
    println!("lab-specific rule:           {alert}");

    // --- Sensors as a new device class. ---
    let mut lab = BerlinguetteLab::new();
    lab.set_person_present(true);
    let mut rabit = lab.rabit();
    let with_person = Workflow::new("person_on_deck").go_home("ur5e");
    let alert = Tracer::guarded(&mut lab.lab, &mut rabit)
        .run(&with_person)
        .alert
        .unwrap();
    println!("sensor-backed safety:        {alert}");
}
