//! Virtual lab time.
//!
//! RABIT's latency-overhead experiment (§II-C) needs reproducible timing:
//! physical commands take ~2 s, RABIT's checks ~0.03 s, the simulator GUI
//! ~2 s. Sleeping for real would make the benchmark suite take hours, so
//! the stages accumulate *virtual seconds* on a [`SimClock`]; the criterion
//! benches separately measure the real compute cost of RABIT's checking.

/// A monotonically increasing virtual clock (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    now_s: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Advances the clock.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or non-finite (time cannot run
    /// backwards).
    pub fn advance(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "clock advance must be finite and non-negative, got {seconds}"
        );
        self.now_s += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance(2.0);
        c.advance(0.03);
        assert!((c.now_s() - 2.03).abs() < 1e-12);
        c.advance(0.0);
        assert!((c.now_s() - 2.03).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_advance_panics() {
        SimClock::new().advance(f64::NAN);
    }
}
