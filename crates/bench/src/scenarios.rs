//! The controlled experiments (§IV, first half): one deliberately unsafe
//! scenario per rulebase rule, executed on the testbed stage, checking
//! that RABIT detects every violation.
//!
//! "We deliberately executed unsafe scenarios designed to trigger each
//! rule in the rulebase. … RABIT successfully detected unsafe behavior in
//! all these scenarios."

use rabit_core::Alert;
use rabit_devices::{ActionKind, Command, Substance};
use rabit_geometry::Vec3;
use rabit_rulebase::RuleId;
use rabit_testbed::{RabitStage, Testbed};
use rabit_tracer::{Tracer, Workflow};

/// One controlled unsafe scenario.
pub struct RuleScenario {
    /// The rule this scenario is designed to trigger.
    pub rule: RuleId,
    /// The rule's Table III/IV wording.
    pub description: &'static str,
    /// What the scenario does.
    pub scenario: &'static str,
    /// Environment preparation before the workflow runs.
    prepare: fn(&mut Testbed),
    /// The unsafe workflow fragment.
    workflow: fn(&Testbed) -> Workflow,
}

/// Outcome of one controlled scenario.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The targeted rule.
    pub rule: RuleId,
    /// Whether RABIT raised any alert.
    pub detected: bool,
    /// Whether the targeted rule is among the cited violations.
    pub right_rule: bool,
    /// The alert text.
    pub alert: Option<String>,
}

fn noop(_: &mut Testbed) {}

fn fill_vial(tb: &mut Testbed) {
    if let Some(rabit_core::LabDevice::Vial(v)) = tb.lab.device_mut(&"vial".into()) {
        v.add_solid(5.0);
        v.add_liquid(5.0);
    }
}

fn misalign_centrifuge(tb: &mut Testbed) {
    if let Some(rabit_core::LabDevice::Centrifuge(c)) = tb.lab.device_mut(&"centrifuge".into()) {
        c.set_red_dot_north(false);
    }
}

/// A preamble that parks Ned2 and readies ViperX (keeps the time
/// multiplexing extension quiet so the targeted rule is the violation).
fn preamble() -> Workflow {
    Workflow::new("scenario")
        .go_to_sleep("ned2")
        .go_home("viperx")
}

/// Picks the vial from grid NW (assumes the arm starts at home).
fn with_vial_in_hand(tb: &Testbed) -> Workflow {
    let grid = tb.locations.grid_nw_viperx;
    preamble()
        .move_to("viperx", grid.pickup_safe_height)
        .pick_up("viperx", "vial", grid.pickup)
        .move_to("viperx", grid.pickup_safe_height)
}

/// Builds the full controlled-scenario suite: one per rule of
/// Tables III and IV (plus the believed-state setup each needs).
pub fn rule_scenarios() -> Vec<RuleScenario> {
    vec![
        RuleScenario {
            rule: RuleId::General(1),
            description: "Robot arm cannot move into a device whose door is closed",
            scenario: "move ViperX inside the dosing device while its door is closed",
            prepare: noop,
            workflow: |_| preamble().move_inside("viperx", "dosing_device"),
        },
        RuleScenario {
            rule: RuleId::General(2),
            description: "Device door cannot be closed when the robot is inside the device",
            scenario: "close the dosing-device door while ViperX is inside",
            prepare: noop,
            workflow: |_| {
                preamble()
                    .set_door("dosing_device", true)
                    .move_inside("viperx", "dosing_device")
                    .set_door("dosing_device", false)
            },
        },
        RuleScenario {
            rule: RuleId::General(3),
            description: "Robot arm can move to any location not occupied by any object",
            scenario: "move ViperX inside the grid (the paper's controlled simulator example)",
            prepare: noop,
            workflow: |_| preamble().move_to("viperx", Vec3::new(0.55, 0.0, 0.05)),
        },
        RuleScenario {
            rule: RuleId::General(4),
            description: "Robot arm can pick up an object when it isn't holding something",
            scenario: "command a second pick while ViperX already holds the vial",
            prepare: noop,
            workflow: |tb| {
                with_vial_in_hand(tb).then(Command::new(
                    "viperx",
                    ActionKind::PickObject {
                        object: "vial".into(),
                    },
                ))
            },
        },
        RuleScenario {
            rule: RuleId::General(5),
            description: "Action device can perform actions when a container is inside it",
            scenario: "start the thermoshaker with nothing inside",
            prepare: noop,
            workflow: |_| preamble().start_action("thermoshaker", 300.0),
        },
        RuleScenario {
            rule: RuleId::General(6),
            description: "Action device can perform actions when a container is not empty",
            scenario: "place the empty vial on the hotplate and start heating",
            prepare: noop,
            workflow: |tb| {
                with_vial_in_hand(tb)
                    .move_to("viperx", Vec3::new(0.45, 0.37, 0.25))
                    .then(Command::new(
                        "viperx",
                        ActionKind::PlaceObject {
                            object: "vial".into(),
                            into: Some("hotplate".into()),
                        },
                    ))
                    .start_action("hotplate", 60.0)
            },
        },
        RuleScenario {
            rule: RuleId::General(7),
            description: "Transfer requires both stoppers off",
            scenario: "transfer from the vial while it is capped",
            prepare: fill_vial,
            workflow: |_| {
                preamble()
                    .cap("vial")
                    .transfer("vial", "vial", Substance::Liquid, 1.0)
            },
        },
        RuleScenario {
            rule: RuleId::General(8),
            description: "Transfer only into a container with room to receive",
            scenario: "dose 50 mg into a 10 mg vial (P's overdose scenario)",
            prepare: noop,
            workflow: |tb| {
                let dose = tb.locations.dosing_viperx;
                with_vial_in_hand(tb)
                    .set_door("dosing_device", true)
                    .move_to("viperx", dose.approach)
                    .move_inside("viperx", "dosing_device")
                    .then(Command::new(
                        "viperx",
                        ActionKind::PlaceObject {
                            object: "vial".into(),
                            into: Some("dosing_device".into()),
                        },
                    ))
                    .move_out("viperx")
                    .set_door("dosing_device", false)
                    .dose_solid("dosing_device", 50.0, "vial")
            },
        },
        RuleScenario {
            rule: RuleId::General(9),
            description: "Devices with doors start running only when their doors are closed",
            scenario: "dose while the dosing-device door is open",
            prepare: noop,
            workflow: |_| {
                preamble()
                    .set_door("dosing_device", true)
                    .dose_solid("dosing_device", 2.0, "vial")
            },
        },
        RuleScenario {
            rule: RuleId::General(10),
            description: "Device doors stay closed while the device is running",
            scenario: "open the dosing-device door mid-dose",
            prepare: noop,
            workflow: |tb| {
                let dose = tb.locations.dosing_viperx;
                with_vial_in_hand(tb)
                    .set_door("dosing_device", true)
                    .move_to("viperx", dose.approach)
                    .move_inside("viperx", "dosing_device")
                    .then(Command::new(
                        "viperx",
                        ActionKind::PlaceObject {
                            object: "vial".into(),
                            into: Some("dosing_device".into()),
                        },
                    ))
                    .move_out("viperx")
                    .set_door("dosing_device", false)
                    .start_action("dosing_device", 2.0)
                    .set_door("dosing_device", true)
            },
        },
        RuleScenario {
            rule: RuleId::General(11),
            description: "Action value must not exceed the device's predefined threshold",
            scenario: "heat the hotplate to 500 °C (threshold 150 °C)",
            prepare: fill_vial,
            workflow: |tb| {
                with_vial_in_hand(tb)
                    .move_to("viperx", Vec3::new(0.45, 0.37, 0.25))
                    .then(Command::new(
                        "viperx",
                        ActionKind::PlaceObject {
                            object: "vial".into(),
                            into: Some("hotplate".into()),
                        },
                    ))
                    .start_action("hotplate", 500.0)
            },
        },
        RuleScenario {
            rule: RuleId::Custom("1".to_string()),
            description: "Add liquid to a container only if it already has solid",
            scenario: "dose solvent into the still-empty vial",
            prepare: noop,
            workflow: |_| preamble().dose_liquid("syringe_pump", 2.0, "vial"),
        },
        RuleScenario {
            rule: RuleId::Custom("2".to_string()),
            description: "Centrifuge only containers holding both solid and liquid",
            scenario: "place the empty (capped) vial into the centrifuge",
            prepare: noop,
            workflow: |tb| {
                with_vial_in_hand(tb)
                    .cap("vial")
                    .set_door("centrifuge", true)
                    .move_to("viperx", Vec3::new(-0.25, 0.10, 0.28))
                    .then(Command::new(
                        "viperx",
                        ActionKind::PlaceObject {
                            object: "vial".into(),
                            into: Some("centrifuge".into()),
                        },
                    ))
            },
        },
        RuleScenario {
            rule: RuleId::Custom("3".to_string()),
            description: "Centrifuge only when the red dot faces North",
            scenario: "load the centrifuge after a spin left the dot askew",
            prepare: |tb| {
                fill_vial(tb);
                misalign_centrifuge(tb);
            },
            workflow: |tb| {
                with_vial_in_hand(tb)
                    .cap("vial")
                    .set_door("centrifuge", true)
                    .move_to("viperx", Vec3::new(-0.25, 0.10, 0.28))
                    .then(Command::new(
                        "viperx",
                        ActionKind::PlaceObject {
                            object: "vial".into(),
                            into: Some("centrifuge".into()),
                        },
                    ))
            },
        },
        RuleScenario {
            rule: RuleId::Custom("4".to_string()),
            description: "Centrifuge only containers with a stopper on",
            scenario: "load an uncapped vial into the centrifuge",
            prepare: fill_vial,
            workflow: |tb| {
                with_vial_in_hand(tb)
                    .decap("vial")
                    .set_door("centrifuge", true)
                    .move_to("viperx", Vec3::new(-0.25, 0.10, 0.28))
                    .then(Command::new(
                        "viperx",
                        ActionKind::PlaceObject {
                            object: "vial".into(),
                            into: Some("centrifuge".into()),
                        },
                    ))
            },
        },
    ]
}

/// Runs one scenario under `stage`, checking detection and attribution.
pub fn run_scenario(scenario: &RuleScenario, stage: RabitStage) -> ScenarioOutcome {
    let mut tb = Testbed::new();
    (scenario.prepare)(&mut tb);
    let wf = (scenario.workflow)(&tb);
    let mut rabit = tb.rabit(stage);
    // Believed initial facts that no sensor reports: the vial's contents
    // and stopper state as physically prepared.
    rabit.initialize(&mut tb.lab);
    if let Some(v) = tb
        .lab
        .device(&"vial".into())
        .and_then(rabit_core::LabDevice::as_vial)
    {
        rabit.believe(
            &"vial".into(),
            rabit_devices::StateKey::SolidMg,
            v.solid_mg(),
        );
        rabit.believe(
            &"vial".into(),
            rabit_devices::StateKey::LiquidMl,
            v.liquid_ml(),
        );
        rabit.believe(
            &"vial".into(),
            rabit_devices::StateKey::HasStopper,
            v.has_stopper(),
        );
    }
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    let (detected, right_rule) = match &report.alert {
        Some(Alert::InvalidCommand { violations, .. }) => {
            (true, violations.iter().any(|v| v.rule == scenario.rule))
        }
        Some(alert) => (alert.is_rabit_detection(), false),
        None => (false, false),
    };
    ScenarioOutcome {
        rule: scenario.rule.clone(),
        detected,
        right_rule,
        alert: report.alert.map(|a| a.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_scenario_is_detected_with_the_right_rule() {
        for scenario in rule_scenarios() {
            let outcome = run_scenario(&scenario, RabitStage::Modified);
            assert!(
                outcome.detected,
                "{}: not detected ({:?})",
                scenario.rule, outcome.alert
            );
            assert!(
                outcome.right_rule,
                "{}: detected but attributed elsewhere: {:?}",
                scenario.rule, outcome.alert
            );
        }
    }

    #[test]
    fn scenarios_cover_all_fifteen_rules() {
        let scenarios = rule_scenarios();
        assert_eq!(scenarios.len(), 15);
        let generals = scenarios
            .iter()
            .filter(|s| matches!(s.rule, RuleId::General(_)))
            .count();
        assert_eq!(generals, 11);
    }

    #[test]
    fn scenarios_also_detected_with_simulator_attached() {
        for scenario in rule_scenarios() {
            let outcome = run_scenario(&scenario, RabitStage::ModifiedWithSimulator);
            assert!(
                outcome.detected,
                "{}: not detected with simulator ({:?})",
                scenario.rule, outcome.alert
            );
        }
    }
}
