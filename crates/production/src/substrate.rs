//! Deployment substrates over the production deck.
//!
//! The Hein Lab deck has no cardboard intermediate: a workflow is vetted
//! in the Extended Simulator and then runs on the real equipment. Its
//! promotion pipeline therefore has two stages — the core pipeline
//! explicitly permits skipping one (stages must only be non-decreasing):
//!
//! * [`ProductionDeck::simulator_substrate`] — the deck's recipes wired
//!   into a sim-backed [`SimulatorSubstrate`] (stage 1);
//! * [`ProductionDeck`] itself implements [`Substrate`] as the stage-3
//!   backend (PRODUCTION latency, deployed rules, no virtual validator);
//! * [`ProductionDeck::pipeline`] assembles the two into a
//!   [`StagePipeline`].

use crate::deck::{production_rulebase, ProductionDeck};
use rabit_core::{Lab, Stage, StagePipeline, Substrate};
use rabit_rulebase::{DeviceCatalog, RulebaseSnapshot};
use rabit_sim::SimulatorSubstrate;

/// The assembled deck is the stage-3 substrate: deployed rules,
/// PRODUCTION latency, fresh labs per run, no virtual validator.
impl Substrate for ProductionDeck {
    fn name(&self) -> &str {
        "production"
    }

    fn stage(&self) -> Stage {
        Stage::Production
    }

    fn build_lab(&self) -> Lab {
        ProductionDeck::build_lab(self.latency())
    }

    fn rulebase(&self) -> RulebaseSnapshot {
        production_rulebase().into()
    }

    fn catalog(&self) -> DeviceCatalog {
        self.catalog.clone()
    }
}

impl ProductionDeck {
    /// The sim-backed stage-1 substrate over the production deck: fresh
    /// SIMULATED-latency labs from the deck recipe, the deployed
    /// rulebase, and a fresh headless Extended Simulator per engine.
    pub fn simulator_substrate() -> SimulatorSubstrate {
        let mut substrate = SimulatorSubstrate::new("production:simulator")
            .with_world(ProductionDeck::simulator_world())
            .with_lab(|| ProductionDeck::build_lab(Stage::Simulator.latency()))
            .with_rulebase(production_rulebase)
            .with_catalog(ProductionDeck::build_catalog);
        for (id, model) in ProductionDeck::simulator_arms() {
            substrate = substrate.with_arm(id, model);
        }
        substrate
    }

    /// The deck's promotion pipeline: Extended Simulator → production
    /// (no physical testbed stage exists for this deck).
    pub fn pipeline() -> StagePipeline {
        StagePipeline::new()
            .with_substrate(Box::new(ProductionDeck::simulator_substrate()))
            .with_substrate(Box::new(ProductionDeck::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solubility::{solubility_workflow, SolubilityParams};
    use rabit_devices::LatencyModel;

    #[test]
    fn deck_is_the_stage_three_substrate() {
        let deck = ProductionDeck::new();
        assert_eq!(Substrate::name(&deck), "production");
        assert_eq!(deck.stage(), Stage::Production);
        assert_eq!(deck.latency(), LatencyModel::PRODUCTION);
        assert_eq!(Substrate::rulebase(&deck).len(), 16);
        assert!(deck.validator().is_none());
        assert_eq!(deck.position_noise().sigma(), 0.0005);
    }

    #[test]
    fn pipeline_deploys_the_solubility_workflow() {
        let pipeline = ProductionDeck::pipeline();
        assert_eq!(pipeline.len(), 2, "sim + production, no testbed stage");
        let wf = solubility_workflow(&SolubilityParams::default());
        let report = pipeline.promote(wf.name(), wf.commands());
        assert!(
            report.deployed(),
            "blocked at {:?}: {:?}",
            report.blocked_at(),
            report.stages.last().map(|s| &s.report.alert)
        );
        assert!(report.stage(Stage::Testbed).is_none());
        // The simulator stage swept trajectories before any motor turned.
        let sim_stage = report.stage(Stage::Simulator).unwrap();
        assert!(sim_stage.report.cache_hits + sim_stage.report.cache_misses > 0);
        // Production is 15× the simulator's per-run overhead in setup
        // cost alone.
        assert!(report.total_cost_s() > Stage::Production.setup_cost_s());
    }
}
