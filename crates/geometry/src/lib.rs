//! 3D geometry substrate for RABIT.
//!
//! RABIT models every lab device as a 3D cuboid and every robot-arm link as
//! a capsule (a line segment with radius). Collision detection between a
//! moving arm and the stationary devices — the heart of the paper's
//! *Extended Simulator* (Fig. 3) — reduces to a handful of geometric
//! queries implemented here:
//!
//! * [`Vec3`], [`Mat3`], [`Pose`] — vectors, rotations, and rigid
//!   transforms;
//! * [`Aabb`] and [`Obb`] — axis-aligned and oriented cuboids used to
//!   model devices, walls, the mounting platform, and "software-defined
//!   walls" for space multiplexing;
//! * [`Segment`], [`Capsule`], [`Sphere`] — robot links and held objects;
//! * [`collide`] — distance and intersection queries between all of the
//!   above, including swept (trajectory) variants;
//! * [`broadphase`] — a flat AABB BVH that prunes the candidate set
//!   before narrow-phase capsule tests;
//! * [`calibrate`] — the Kabsch rigid-transform fit used in the paper's
//!   attempt to map two robot arms into a common frame of reference
//!   (§IV, category 2), together with its ~3 cm error analysis;
//! * [`noise`] — Gaussian positional noise models for the low-fidelity
//!   testbed arms.
//!
//! # Example
//!
//! ```
//! use rabit_geometry::{Aabb, Capsule, Vec3, collide};
//!
//! // A dosing device modelled as a cuboid, and a robot forearm as a capsule.
//! let device = Aabb::from_center_half_extents(
//!     Vec3::new(0.15, 0.45, 0.10),
//!     Vec3::new(0.08, 0.08, 0.10),
//! );
//! let forearm = Capsule::new(
//!     Vec3::new(0.0, 0.0, 0.3),
//!     Vec3::new(0.14, 0.40, 0.15),
//!     0.03,
//! );
//! assert!(collide::capsule_intersects_aabb(&forearm, &device));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
pub mod broadphase;
pub mod calibrate;
pub mod collide;
pub mod distance;
mod mat;
pub mod noise;
mod obb;
mod pose;
mod shapes;
mod vec;

pub use aabb::Aabb;
pub use mat::Mat3;
pub use obb::Obb;
pub use pose::Pose;
pub use shapes::{Capsule, Segment, Sphere};
pub use vec::Vec3;

/// Numerical tolerance used by geometric predicates in this crate.
pub const EPSILON: f64 = 1e-9;
