//! Fleet determinism: a 32-workflow fleet must yield identical
//! per-workflow alerts, traces, and damage logs at 1, 4, and 8 threads.
//!
//! This is the reproducibility contract of `rabit_core::fleet` —
//! thread scheduling may change wall-clock order, but never results.

use rabit::buginject::RabitStage;
use rabit::devices::{ActionKind, Command};
use rabit::geometry::Vec3;
use rabit::testbed::{workflows, Testbed};
use rabit::tracer::{run_fleet, FleetReport, Workflow};
use rabit::util::Rng;

const FLEET_SIZE: usize = 32;

/// Deterministically mutated variants of the Fig. 5 workflow: a few are
/// left safe, the rest get seeded naive-programmer edits so the fleet
/// exercises completed runs, blocked runs, and damaging runs alike.
fn fleet_workflows() -> Vec<Workflow> {
    let template = Testbed::new();
    let mut rng = Rng::seed_from_u64(0xF1EE7);
    (0..FLEET_SIZE)
        .map(|i| {
            let mut wf = workflows::fig5_safe_workflow(&template.locations);
            if i % 4 != 0 {
                // Up to two random edits per workflow.
                for _ in 0..rng.random_range(1..3usize) {
                    mutate(&mut wf, &mut rng);
                }
            }
            wf
        })
        .collect()
}

fn mutate(wf: &mut Workflow, rng: &mut Rng) {
    if wf.is_empty() {
        return;
    }
    let target = Vec3::new(
        rng.random_range(-0.6..1.4),
        rng.random_range(-0.6..0.7),
        rng.random_range(-0.1..0.9),
    );
    match rng.random_range(0..4u32) {
        0 => {
            let i = rng.random_range(0..wf.len());
            wf.delete(i);
        }
        1 => {
            let (a, b) = (rng.random_range(0..wf.len()), rng.random_range(0..wf.len()));
            wf.swap(a, b);
        }
        2 => {
            let i = rng.random_range(0..wf.len());
            let actor = wf.commands()[i].actor.clone();
            wf.replace(
                i,
                Command::new(actor, ActionKind::MoveToLocation { target }),
            );
        }
        _ => {
            let i = rng.random_range(0..wf.len() + 1);
            let actor = if rng.random_bool(0.5) {
                "viperx"
            } else {
                "ned2"
            };
            wf.insert(
                i,
                Command::new(actor, ActionKind::MoveToLocation { target }),
            );
        }
    }
}

/// Runs the fleet at a given thread count. Every third run attaches the
/// Extended Simulator so the broad-phase path is exercised under
/// parallelism too.
fn run_at(workflows: &[Workflow], threads: usize) -> FleetReport {
    run_fleet(workflows, threads, |i| {
        let tb = Testbed::new();
        let stage = if i % 3 == 0 {
            RabitStage::ModifiedWithSimulator
        } else {
            RabitStage::Modified
        };
        let rabit = tb.rabit(stage);
        (tb.lab, Some(rabit))
    })
}

/// Everything observable about a run, as comparable strings:
/// (workflow, commands executed, alert, JSONL trace, damage log).
type RunFingerprint = (String, usize, Option<String>, String, Vec<String>);

fn fingerprint(report: &FleetReport) -> Vec<RunFingerprint> {
    report
        .runs
        .iter()
        .map(|r| {
            (
                r.workflow.clone(),
                r.report.executed,
                r.report.alert.as_ref().map(|a| a.to_string()),
                r.report.trace.to_jsonl(),
                r.damage.iter().map(|d| d.to_string()).collect(),
            )
        })
        .collect()
}

#[test]
fn fleet_results_identical_across_thread_counts() {
    let wfs = fleet_workflows();
    assert_eq!(wfs.len(), FLEET_SIZE);

    let serial = run_at(&wfs, 1);
    let reference = fingerprint(&serial);

    // The scenario must be non-trivial: some runs complete, some halt.
    assert!(serial.completed_runs() > 0, "no run completed");
    assert!(
        serial.completed_runs() < FLEET_SIZE,
        "every run completed — mutations too tame"
    );

    for threads in [4, 8] {
        let parallel = run_at(&wfs, threads);
        assert_eq!(parallel.threads, threads);
        let got = fingerprint(&parallel);
        assert_eq!(got.len(), reference.len());
        for (i, (want, have)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(want, have, "run {i} differs at {threads} threads");
        }
        // Merged views agree too.
        assert_eq!(parallel.alert_summary(), serial.alert_summary());
        assert_eq!(parallel.completed_runs(), serial.completed_runs());
        assert_eq!(parallel.total_damage(), serial.total_damage());
    }
}

#[test]
fn fleet_is_repeatable_within_one_thread_count() {
    let wfs = fleet_workflows();
    let a = run_at(&wfs, 8);
    let b = run_at(&wfs, 8);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
