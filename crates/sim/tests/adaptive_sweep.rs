//! Differential test: the adaptive conservative-advancement sweep must
//! be invisible. An adaptive [`ExtendedSimulator`] and a dense-sampling
//! one, driven with identical command streams over identical worlds,
//! must return bit-identical verdicts — including the full
//! [`CollisionReport`] payload (obstacle, link, contact point, and the
//! triggering sample's fraction) — and mirror the same arm pose at
//! every step. The adaptive kernel may only differ in *how much work*
//! it does: both kernels must partition the same polling grid between
//! checked and skipped samples.
//!
//! [`CollisionReport`]: rabit_core::CollisionReport

use rabit_core::{TrajectoryValidator, TrajectoryVerdict};
use rabit_devices::{ActionKind, Command, DeviceId, DeviceState, LabState, StateKey};
use rabit_geometry::{Aabb, Sphere, Vec3};
use rabit_kinematics::presets;
use rabit_sim::{ExtendedSimulator, ObstacleShape, SimConfig, SimWorld, VerticalCylinder};
use rabit_util::Rng;

const WORLDS: usize = 120;
const COMMANDS_PER_WORLD: usize = 3;

fn sim(world: SimWorld, dense_sampling: bool) -> ExtendedSimulator {
    ExtendedSimulator::new(
        world,
        SimConfig {
            gui: false,
            // No verdict cache: every command must really sweep.
            verdict_cache: false,
            dense_sampling,
            ..SimConfig::default()
        },
    )
    .with_arm("ur3e", presets::ur3e())
}

fn state() -> LabState {
    let mut s = LabState::new();
    s.insert(
        "ur3e",
        DeviceState::new().with(StateKey::Holding, None::<DeviceId>),
    );
    s
}

fn shape(rng: &mut Rng, c: Vec3) -> ObstacleShape {
    match rng.random_range(0..10u32) {
        // Mostly cuboids — the paper's device model.
        0..=6 => ObstacleShape::Cuboid(Aabb::from_center_half_extents(
            c,
            Vec3::new(
                rng.random_range(0.02..0.12),
                rng.random_range(0.02..0.12),
                rng.random_range(0.02..0.12),
            ),
        )),
        7 => ObstacleShape::Hemisphere {
            base_center: c,
            radius: rng.random_range(0.03..0.15),
        },
        8 => ObstacleShape::Sphere(Sphere::new(c, rng.random_range(0.03..0.15))),
        _ => ObstacleShape::Cylinder(VerticalCylinder {
            base: c,
            radius: rng.random_range(0.03..0.1),
            height: rng.random_range(0.05..0.3),
        }),
    }
}

/// A cluttered deck: obstacles scattered through the arm's workspace
/// shell so trajectories graze, clear, and strike them in roughly equal
/// measure.
fn random_world(rng: &mut Rng) -> SimWorld {
    let mut w = SimWorld::new();
    let n = rng.random_range(1..7usize);
    for i in 0..n {
        let c = Vec3::new(
            rng.random_range(-0.6..0.6),
            rng.random_range(-0.6..0.6),
            rng.random_range(0.0..0.6),
        );
        w = w.with_shaped_obstacle(format!("dev{i}"), shape(rng, c));
    }
    w
}

fn random_command(rng: &mut Rng) -> Command {
    match rng.random_range(0..8u32) {
        0 => Command::new("ur3e", ActionKind::MoveHome),
        1 => Command::new("ur3e", ActionKind::MoveToSleep),
        _ => {
            // Targets in the reachable shell, biased toward the clutter.
            let r = rng.random_range(0.2..0.5);
            let theta = rng.random_range(0.0..std::f64::consts::TAU);
            let target = Vec3::new(
                r * theta.cos(),
                r * theta.sin(),
                rng.random_range(0.05..0.5),
            );
            Command::new("ur3e", ActionKind::MoveToLocation { target })
        }
    }
}

/// Drives the same command stream through a dense and an adaptive
/// simulator over clones of the same world, asserting bit-identical
/// verdicts and mirrored poses at every step. Returns the counter
/// triples `(checked, skipped)` for (dense, adaptive) plus the verdict
/// mix observed.
fn drive_pair(
    world: SimWorld,
    commands: &[Command],
    label: &str,
) -> ((u64, u64), (u64, u64), usize, usize) {
    let st = state();
    let mut dense = sim(world.clone(), true);
    let mut adaptive = sim(world, false);
    let (mut safe, mut collisions) = (0, 0);
    for (k, cmd) in commands.iter().enumerate() {
        let vd = dense.validate(cmd, &st);
        let va = adaptive.validate(cmd, &st);
        assert_eq!(va, vd, "{label}, command {k}: {cmd:?}");
        match &vd {
            TrajectoryVerdict::Safe => safe += 1,
            TrajectoryVerdict::Collision(_) => collisions += 1,
            _ => {}
        }
        assert_eq!(
            adaptive.arm_configuration(&"ur3e".into()),
            dense.arm_configuration(&"ur3e".into()),
            "{label}, command {k}: poses diverged"
        );
    }
    (
        (dense.samples_checked(), dense.samples_skipped()),
        (adaptive.samples_checked(), adaptive.samples_skipped()),
        safe,
        collisions,
    )
}

#[test]
fn adaptive_matches_dense_over_many_random_worlds() {
    let mut rng = Rng::seed_from_u64(0xADA_517);
    let (mut safe, mut collisions) = (0usize, 0usize);
    let (mut dense_checked, mut adaptive_checked, mut adaptive_skipped) = (0u64, 0u64, 0u64);
    for w in 0..WORLDS {
        let commands: Vec<Command> = (0..COMMANDS_PER_WORLD)
            .map(|_| random_command(&mut rng))
            .collect();
        let ((dc, ds), (ac, askip), s, c) =
            drive_pair(random_world(&mut rng), &commands, &format!("world {w}"));
        assert_eq!(ds, 0, "dense sampling must not skip");
        assert_eq!(
            ac + askip,
            dc,
            "world {w}: both kernels must partition the same polling grid"
        );
        dense_checked += dc;
        adaptive_checked += ac;
        adaptive_skipped += askip;
        safe += s;
        collisions += c;
    }
    // The suite must actually exercise both outcomes and real skipping,
    // otherwise agreement is vacuous.
    assert!(safe > 20, "only {safe} safe verdicts across the suite");
    assert!(
        collisions > 20,
        "only {collisions} collision verdicts across the suite"
    );
    assert!(
        adaptive_skipped * 2 > adaptive_checked,
        "adaptive kernel barely skipped: {adaptive_skipped} skipped vs \
         {adaptive_checked} checked ({dense_checked} dense)"
    );
}

#[test]
fn near_graze_boundary_is_bit_identical() {
    // Slide a slab through the swept volume of one fixed move in 1 mm
    // steps, from clearly colliding to clearly free. Every position —
    // including the grazing transition — must agree bit for bit, and the
    // scan must actually cross the safe/collision boundary.
    let arm = presets::ur3e();
    let home_tool = arm.tool_position(&arm.home_configuration());
    let target = home_tool + Vec3::new(0.0, 0.25, 0.0);
    let mid = home_tool.lerp(target, 0.5);
    let (mut safe, mut collisions) = (0, 0);
    for step in 0..120 {
        // The slab's top face scans from 7 cm below the mid-path tool
        // point to 5 cm above it, one millimetre at a time.
        let top = mid.z - 0.07 + step as f64 * 0.001;
        let world = SimWorld::new().with_obstacle(
            "slab",
            Aabb::from_center_half_extents(
                Vec3::new(mid.x, mid.y, top - 0.05),
                Vec3::new(0.3, 0.3, 0.05),
            ),
        );
        let cmd = Command::new("ur3e", ActionKind::MoveToLocation { target });
        let (_, _, s, c) = drive_pair(world, std::slice::from_ref(&cmd), &format!("step {step}"));
        safe += s;
        collisions += c;
    }
    assert!(safe > 0, "the scan never cleared the slab");
    assert!(collisions > 0, "the scan never struck the slab");
}

#[test]
fn mid_run_world_mutation_is_seen_by_both_kernels() {
    // Mutating the world between commands bumps its epoch; the adaptive
    // kernel's temporal-coherence caches must notice and neither serve
    // stale candidates (missing the new obstacle) nor diverge from the
    // dense kernel afterwards.
    let arm = presets::ur3e();
    let home_tool = arm.tool_position(&arm.home_configuration());
    let away = home_tool + Vec3::new(-0.05, 0.18, 0.08);
    let st = state();
    let mut dense = sim(SimWorld::new(), true);
    let mut adaptive = sim(SimWorld::new(), false);

    let go = Command::new("ur3e", ActionKind::MoveToLocation { target: away });
    assert_eq!(adaptive.validate(&go, &st), TrajectoryVerdict::Safe);
    assert_eq!(dense.validate(&go, &st), TrajectoryVerdict::Safe);

    // Drop a crate onto the midpoint of the return path.
    let obstacle =
        Aabb::from_center_half_extents(home_tool.lerp(away, 0.5), Vec3::new(0.06, 0.06, 0.06));
    adaptive.world_mut().add_obstacle("dropped_crate", obstacle);
    dense.world_mut().add_obstacle("dropped_crate", obstacle);

    let back = Command::new("ur3e", ActionKind::MoveToLocation { target: home_tool });
    let va = adaptive.validate(&back, &st);
    let vd = dense.validate(&back, &st);
    assert_eq!(va, vd, "post-mutation verdicts diverged");
    match va {
        TrajectoryVerdict::Collision(report) => {
            assert_eq!(report.device.as_str(), "dropped_crate");
        }
        other => panic!("expected a collision with the dropped crate, got {other:?}"),
    }
}
