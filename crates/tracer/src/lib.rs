//! The RATracer-equivalent interception layer.
//!
//! The paper instruments Python experiment scripts with RATracer, which
//! intercepts every device command at run time; RABIT is wired in so that
//! each traced command is checked before it is forwarded (§II-C). This
//! crate provides:
//!
//! * [`Workflow`] — the command sequences experiment scripts produce,
//!   with builder methods mirroring the lab's Python wrappers and the
//!   mutation operators of the uncontrolled bug study;
//! * [`Tracer`] — guarded (check-then-forward) and pass-through modes;
//! * [`Trace`] / [`TraceEvent`] — the serializable command log (the RAD
//!   on-disk format);
//! * [`fleet`] — parallel execution of many independent `(Lab, Workflow)`
//!   runs with deterministic, thread-count-independent results.
//!
//! # Example
//!
//! ```
//! use rabit_tracer::Workflow;
//!
//! let wf = Workflow::new("demo").set_door("doser", true);
//! assert_eq!(wf.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod fleet;
pub mod script;
mod trace;
#[allow(clippy::module_inception)]
mod tracer;
mod workflow;

pub use concurrent::{run_concurrent, ConcurrentReport, StreamReport};
pub use fleet::{
    run_fleet, run_fleet_on, run_fleet_on_faulted, run_fleet_on_live, FleetJob, FleetReport,
    FleetRun,
};
pub use script::{parse_script, AliasTable, ScriptError};
pub use trace::{Trace, TraceEvent, TraceOutcome};
pub use tracer::{TraceMode, TraceReport, Tracer};
pub use workflow::Workflow;
