//! Validates every `BENCH_*.json` artifact in the working directory.
//!
//! Each artifact must parse as JSON and carry the shared envelope
//! (`name` / `config` / `results`, see [`rabit_bench::schema`]). CI runs
//! this after the bench smoke pass, so a bench that regresses its output
//! shape fails the build instead of silently breaking the README perf
//! table.
//!
//! Exits non-zero and lists the offending files if any artifact is
//! missing the envelope; also fails when no `BENCH_*.json` exists at all
//! (the check would otherwise pass vacuously from the wrong directory).

use rabit_bench::schema;
use rabit_util::Json;

fn main() {
    let mut names: Vec<String> = std::fs::read_dir(".")
        .expect("read working directory")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();

    if names.is_empty() {
        eprintln!("bench_schema: no BENCH_*.json artifacts found in the working directory");
        std::process::exit(1);
    }

    let mut failures = Vec::new();
    for name in &names {
        let verdict = std::fs::read_to_string(name)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|text| Json::parse(&text).map_err(|e| format!("invalid JSON: {e:?}")))
            .and_then(|json| schema::validate(&json));
        match verdict {
            Ok(()) => println!("ok   {name}"),
            Err(why) => {
                println!("FAIL {name}: {why}");
                failures.push(name.clone());
            }
        }
    }

    if failures.is_empty() {
        println!("{} artifact(s) valid", names.len());
    } else {
        eprintln!(
            "bench_schema: {}/{} artifact(s) failed: {}",
            failures.len(),
            names.len(),
            failures.join(", ")
        );
        std::process::exit(1);
    }
}
