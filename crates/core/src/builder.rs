//! Builder-style engine assembly.
//!
//! [`RabitBuilder`] replaces the old three-step construction dance —
//! `Rabit::new(...)`, then `.with_validator(...)`, then mutating
//! through `config_mut()` — with one declarative expression:
//!
//! ```
//! use rabit_core::{Rabit, RecoveryPolicy, RetryPolicy, StopPolicy};
//! use rabit_rulebase::{DeviceCatalog, Rulebase};
//!
//! let rabit = Rabit::builder()
//!     .rulebase(Rulebase::standard())
//!     .catalog(DeviceCatalog::new())
//!     .stop_policy(StopPolicy::FailSafe)
//!     .recovery(RecoveryPolicy::Retry(RetryPolicy::default()))
//!     .build();
//! assert_eq!(rabit.config().stop_policy, StopPolicy::FailSafe);
//! ```

use crate::alert::StopPolicy;
use crate::engine::{Rabit, RabitConfig};
use crate::faults::{FaultPlan, RecoveryPolicy};
use crate::trajcheck::TrajectoryValidator;
use rabit_rulebase::{DeviceCatalog, Rulebase, RulebaseSnapshot};

/// Assembles a [`Rabit`] engine: rulebase → catalog → config →
/// validator → fault plan. Every component has a sensible default (the
/// standard rulebase, an empty catalog, the default configuration, no
/// validator, no faults), so a builder chain only names what it
/// changes. Start one with [`Rabit::builder`].
pub struct RabitBuilder {
    rulebase: RulebaseSnapshot,
    catalog: DeviceCatalog,
    config: RabitConfig,
    validator: Option<Box<dyn TrajectoryValidator>>,
    fault_plan: FaultPlan,
}

impl RabitBuilder {
    /// A builder with all defaults (equivalent to
    /// `Rabit::new(Rulebase::standard(), DeviceCatalog::new(),
    /// RabitConfig::default())`).
    pub fn new() -> Self {
        RabitBuilder {
            rulebase: RulebaseSnapshot::pinned(Rulebase::standard()),
            catalog: DeviceCatalog::new(),
            config: RabitConfig::default(),
            validator: None,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Sets the rulebase the engine enforces: either an owned
    /// [`Rulebase`] (pinned at epoch 0) or an epoch-stamped
    /// [`RulebaseSnapshot`] published by a live rule store.
    pub fn rulebase(mut self, rulebase: impl Into<RulebaseSnapshot>) -> Self {
        self.rulebase = rulebase.into();
        self
    }

    /// Sets the device catalog the engine consults.
    pub fn catalog(mut self, catalog: DeviceCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Replaces the whole engine configuration.
    pub fn config(mut self, config: RabitConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the `S_actual ≠ S_expected` numeric tolerance.
    pub fn state_tolerance(mut self, tolerance: f64) -> Self {
        self.config.state_tolerance = tolerance;
        self
    }

    /// Sets what the engine does on alert.
    pub fn stop_policy(mut self, policy: StopPolicy) -> Self {
        self.config.stop_policy = policy;
        self
    }

    /// Stops rule evaluation at the first violation (the deployment
    /// fast path).
    pub fn first_violation_only(mut self, on: bool) -> Self {
        self.config.first_violation_only = on;
        self
    }

    /// Skips the post-execution malfunction check (ablation knob).
    pub fn skip_malfunction_check(mut self, on: bool) -> Self {
        self.config.skip_malfunction_check = on;
        self
    }

    /// Sets how the engine treats transient faults.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.config.recovery = policy;
        self
    }

    /// Attaches a trajectory validator (`SimAvailable` becomes true).
    pub fn validator(mut self, validator: Box<dyn TrajectoryValidator>) -> Self {
        self.validator = Some(validator);
        self
    }

    /// Carries a fault plan the engine arms on `initialize`.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Rabit {
        let mut rabit = Rabit::new(self.rulebase, self.catalog, self.config);
        if let Some(validator) = self.validator {
            rabit = rabit.with_validator(validator);
        }
        rabit.with_fault_plan(self.fault_plan)
    }
}

impl Default for RabitBuilder {
    fn default() -> Self {
        RabitBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultSchedule, RetryPolicy};
    use crate::trajcheck::ApproveAll;

    #[test]
    fn builder_defaults_match_plain_construction() {
        let built = Rabit::builder().build();
        let plain = Rabit::new(
            Rulebase::standard(),
            DeviceCatalog::new(),
            RabitConfig::default(),
        );
        assert_eq!(built.rulebase().len(), plain.rulebase().len());
        assert_eq!(
            built.config().state_tolerance,
            plain.config().state_tolerance
        );
        assert!(built.fault_plan().is_empty());
    }

    #[test]
    fn builder_threads_every_component() {
        let plan = FaultPlan::seeded(5).with(
            FaultKind::DropCommand,
            FaultSchedule::EveryNth {
                period: 2,
                offset: 0,
            },
        );
        let rabit = Rabit::builder()
            .rulebase(Rulebase::standard())
            .catalog(DeviceCatalog::new())
            .state_tolerance(0.25)
            .stop_policy(StopPolicy::FailSafe)
            .first_violation_only(true)
            .skip_malfunction_check(false)
            .recovery(RecoveryPolicy::Quarantine(RetryPolicy::default()))
            .validator(Box::new(ApproveAll))
            .fault_plan(plan.clone())
            .build();
        assert_eq!(rabit.config().state_tolerance, 0.25);
        assert_eq!(rabit.config().stop_policy, StopPolicy::FailSafe);
        assert!(rabit.config().first_violation_only);
        assert!(matches!(
            rabit.config().recovery,
            RecoveryPolicy::Quarantine(_)
        ));
        assert_eq!(rabit.fault_plan(), &plan);
        assert_eq!(rabit.validator_cache_stats(), (0, 0));
    }
}
