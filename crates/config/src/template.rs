//! Configuration templates and the pilot-study error corpus.
//!
//! The paper's pilot study handed participant P "the configuration file
//! templates" to fill in (§V-A). [`testbed_template_json`] is that
//! template, filled with the testbed's values, and [`pilot_corpus`]
//! replays the error classes P actually made.

use crate::schema::LabConfig;

/// The filled-in testbed configuration (matches `rabit-testbed`'s deck).
pub fn testbed_template_json() -> String {
    r#"{
  "lab_name": "Hein Lab testbed",
  "workspace": {"min": [-1.6, -1.6, 0.0], "max": [1.6, 1.6, 1.2]},
  "devices": [
    {
      "id": "viperx",
      "type": "robot_arm",
      "class_name": "InterbotixManipulatorXS",
      "home_location": [0.30, 0.0, 0.30],
      "sleep_location": [0.12, -0.32, 0.15],
      "sleep_volume": {"min": [0.0, -0.45, 0.0], "max": [0.25, -0.20, 0.30]},
      "allowed_region": {"min": [-0.6, -0.6, 0.0], "max": [0.70, 0.7, 0.8]},
      "action_commands": ["move_to_location", "pick_object", "place_object", "go_to_home_pose", "go_to_sleep_pose"],
      "status_commands": ["get_joint_states"],
      "connection": {"address": "/dev/ttyDXL", "protocol": "dynamixel"}
    },
    {
      "id": "ned2",
      "type": "robot_arm",
      "class_name": "NiryoRobot",
      "home_location": [0.85, 0.0, 0.25],
      "sleep_location": [0.82, -0.32, 0.12],
      "sleep_volume": {"min": [0.70, -0.45, 0.0], "max": [0.95, -0.20, 0.25]},
      "allowed_region": {"min": [0.70, -0.6, 0.0], "max": [1.6, 0.7, 0.8]},
      "action_commands": ["move_pose", "pick_from_pose", "place_from_pose"],
      "status_commands": ["get_pose"],
      "connection": {"address": "169.254.200.200", "protocol": "pyniryo"}
    },
    {
      "id": "dosing_device",
      "type": "dosing_system",
      "class_name": "DosingDevice",
      "has_door": true,
      "footprint": {"min": [0.05, 0.42, 0.0], "max": [0.25, 0.57, 0.30]},
      "action_commands": ["set_door", "run_action", "stop_action"],
      "status_commands": ["get_door_state", "get_dosing_state"],
      "connection": {"address": "COM4", "protocol": "serial"}
    },
    {
      "id": "syringe_pump",
      "type": "dosing_system",
      "class_name": "SyringePump",
      "footprint": {"min": [-0.30, 0.35, 0.0], "max": [-0.15, 0.50, 0.25]},
      "action_commands": ["dose_liquid"],
      "status_commands": ["get_pump_state"]
    },
    {
      "id": "centrifuge",
      "type": "action_device",
      "class_name": "Centrifuge",
      "has_door": true,
      "tags": ["centrifuge"],
      "action_threshold": 6000.0,
      "footprint": {"min": [-0.35, -0.15, 0.0], "max": [-0.15, 0.05, 0.20]},
      "action_commands": ["set_door", "start_action", "stop_action"],
      "status_commands": ["get_state"]
    },
    {
      "id": "hotplate",
      "type": "action_device",
      "class_name": "IkaHotplate",
      "action_threshold": 150.0,
      "footprint": {"min": [0.50, 0.30, 0.0], "max": [0.65, 0.45, 0.12]},
      "action_commands": ["start_action", "stop_action"],
      "status_commands": ["get_temperature"]
    },
    {
      "id": "thermoshaker",
      "type": "action_device",
      "class_name": "Thermoshaker",
      "action_threshold": 1500.0,
      "footprint": {"min": [-0.45, -0.40, 0.0], "max": [-0.25, -0.25, 0.18]},
      "action_commands": ["start_action", "stop_action"],
      "status_commands": ["get_state"]
    },
    {
      "id": "grid",
      "type": "custom:grid",
      "footprint": {"min": [0.45, -0.06, 0.0], "max": [0.63, 0.08, 0.10]}
    },
    {
      "id": "vial",
      "type": "container",
      "class_name": "Vial"
    }
  ],
  "custom_rules": [
    {"kind": "liquid_after_solid"},
    {"kind": "centrifuge_needs_solid_and_liquid"},
    {"kind": "centrifuge_red_dot_north"},
    {"kind": "centrifuge_needs_stopper"}
  ]
}"#
    .to_string()
}

/// Parses the template (always valid).
pub fn testbed_template() -> LabConfig {
    LabConfig::from_json(&testbed_template_json()).expect("template is valid JSON")
}

/// The Berlinguette Lab configuration (§V-B): adapting RABIT to a new
/// lab "by describing only the items specific to that environment" — a
/// different arm, the decapper, the spray station, the XRF pair, and a
/// proximity sensor, all expressed in the same schema.
pub fn berlinguette_template_json() -> String {
    r#"{
  "lab_name": "Berlinguette Lab",
  "workspace": {"min": [-1.4, -1.4, 0.0], "max": [1.4, 1.4, 1.5]},
  "devices": [
    {
      "id": "ur5e",
      "type": "robot_arm",
      "class_name": "URDriver",
      "home_location": [-0.6450, -0.1333, 0.3999],
      "sleep_location": [-0.1776, -0.1333, 0.2909],
      "sleep_volume": {"min": [-0.30, -0.30, 0.0], "max": [0.0, -0.02, 0.35]},
      "action_commands": ["move_to_location", "pick_object", "place_object"],
      "status_commands": ["get_joint_states"]
    },
    {
      "id": "dosing_device",
      "type": "dosing_system",
      "class_name": "DosingDevice",
      "has_door": true,
      "footprint": {"min": [0.05, 0.45, 0.0], "max": [0.25, 0.62, 0.28]},
      "action_commands": ["set_door", "run_action", "stop_action"],
      "status_commands": ["get_door_state", "get_dosing_state"]
    },
    {
      "id": "spray_pump",
      "type": "dosing_system",
      "class_name": "SyringePump",
      "footprint": {"min": [-0.10, -0.62, 0.0], "max": [0.05, -0.47, 0.18]},
      "action_commands": ["dose_liquid"],
      "status_commands": ["get_pump_state"]
    },
    {
      "id": "decapper",
      "type": "action_device",
      "class_name": "Decapper",
      "action_threshold": 10.0,
      "hosts_container": false,
      "footprint": {"min": [-0.30, 0.30, 0.0], "max": [-0.14, 0.46, 0.20]},
      "action_commands": ["start_action", "stop_action"],
      "status_commands": ["get_state"]
    },
    {
      "id": "spin_coater",
      "type": "action_device",
      "class_name": "SpinCoater",
      "action_threshold": 6000.0,
      "footprint": {"min": [-0.55, -0.10, 0.0], "max": [-0.35, 0.10, 0.15]},
      "action_commands": ["start_action", "stop_action"],
      "status_commands": ["get_rpm"]
    },
    {
      "id": "spray_hotplate",
      "type": "action_device",
      "class_name": "IkaHotplate",
      "tags": ["spray_hotplate"],
      "action_threshold": 300.0,
      "footprint": {"min": [0.30, -0.50, 0.0], "max": [0.46, -0.34, 0.06]},
      "action_commands": ["start_action", "stop_action"],
      "status_commands": ["get_temperature"]
    },
    {
      "id": "nozzle_a",
      "type": "action_device",
      "class_name": "UltrasonicNozzle",
      "tags": ["nozzle"],
      "action_threshold": 120.0,
      "hosts_container": false,
      "footprint": {"min": [0.50, -0.45, 0.0], "max": [0.56, -0.39, 0.25]},
      "action_commands": ["start_action", "stop_action"],
      "status_commands": ["get_state"]
    },
    {
      "id": "nozzle_b",
      "type": "action_device",
      "class_name": "UltrasonicNozzle",
      "tags": ["nozzle"],
      "action_threshold": 120.0,
      "hosts_container": false,
      "footprint": {"min": [0.58, -0.45, 0.0], "max": [0.64, -0.39, 0.25]},
      "action_commands": ["start_action", "stop_action"],
      "status_commands": ["get_state"]
    },
    {
      "id": "xrf_source",
      "type": "action_device",
      "class_name": "XrfSource",
      "tags": ["xrf"],
      "action_threshold": 50.0,
      "hosts_container": false,
      "footprint": {"min": [0.55, 0.15, 0.0], "max": [0.75, 0.35, 0.30]},
      "action_commands": ["start_action", "stop_action"],
      "status_commands": ["get_kv"]
    },
    {
      "id": "xrf_stage",
      "type": "action_device",
      "class_name": "XrfStage",
      "tags": ["xrf"],
      "action_threshold": 360.0,
      "footprint": {"min": [0.55, 0.15, 0.0], "max": [0.75, 0.35, 0.05]},
      "action_commands": ["start_action", "stop_action"],
      "status_commands": ["get_angle"]
    },
    {
      "id": "deck_sensor",
      "type": "custom:proximity_sensor",
      "class_name": "LidarCurtain",
      "tags": ["proximity_sensor"],
      "status_commands": ["get_occupancy"]
    },
    {
      "id": "rack",
      "type": "custom:grid",
      "footprint": {"min": [0.50, -0.10, 0.0], "max": [0.65, 0.05, 0.08]}
    },
    {
      "id": "vial_b",
      "type": "container",
      "class_name": "Vial"
    }
  ],
  "custom_rules": [
    {"kind": "liquid_after_solid"}
  ]
}"#
    .to_string()
}

/// Parses the Berlinguette template (always valid).
pub fn berlinguette_template() -> LabConfig {
    LabConfig::from_json(&berlinguette_template_json()).expect("template is valid JSON")
}

/// One pilot-study configuration error.
#[derive(Debug, Clone, PartialEq)]
pub struct PilotError {
    /// Which mistake class this reproduces.
    pub name: &'static str,
    /// What participant P did.
    pub description: &'static str,
    /// The corrupted JSON text.
    pub json: String,
    /// Whether the corruption is a JSON *syntax* error (caught by the
    /// parser) as opposed to a semantic error (caught by the validator).
    pub syntax_error: bool,
}

/// The error corpus: every mistake class observed in the pilot study,
/// applied to the testbed template.
pub fn pilot_corpus() -> Vec<PilotError> {
    let base = testbed_template_json();
    vec![
        PilotError {
            name: "sign_flip",
            description: "entered a negative sign instead of a positive sign in a location",
            json: base.replace(
                "\"home_location\": [0.30, 0.0, 0.30]",
                "\"home_location\": [0.30, 0.0, -0.30]",
            ),
            syntax_error: false,
        },
        PilotError {
            name: "missing_comma",
            description: "a JSON syntax error: dropped comma between fields",
            json: base.replace(
                "\"type\": \"dosing_system\",",
                "\"type\": \"dosing_system\"",
            ),
            syntax_error: true,
        },
        PilotError {
            name: "trailing_brace",
            description: "a JSON syntax error: unbalanced braces",
            json: format!("{base}}}"),
            syntax_error: true,
        },
        PilotError {
            name: "wrong_type_name",
            description: "misspelled the device type",
            json: base.replace("\"type\": \"action_device\"", "\"type\": \"action-device\""),
            syntax_error: false,
        },
        PilotError {
            name: "door_on_container",
            description: "gave a container a door property",
            json: base.replace(
                "\"type\": \"container\",",
                "\"type\": \"container\", \"has_door\": true,",
            ),
            syntax_error: false,
        },
        PilotError {
            name: "negative_threshold",
            description: "entered a negative firmware threshold",
            json: base.replace(
                "\"action_threshold\": 150.0",
                "\"action_threshold\": -150.0",
            ),
            syntax_error: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{to_catalog, validate, IssueLevel};

    #[test]
    fn template_parses_and_validates_cleanly() {
        let cfg = testbed_template();
        assert_eq!(cfg.devices.len(), 9);
        let errors: Vec<_> = validate(&cfg)
            .into_iter()
            .filter(|i| i.level == IssueLevel::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
        let (catalog, rules) = to_catalog(&cfg).unwrap();
        assert_eq!(catalog.len(), 9);
        assert_eq!(rules.len(), 4);
        assert_eq!(catalog.robot_arms().count(), 2);
    }

    #[test]
    fn template_matches_the_testbed_catalog() {
        // The JSON-built catalog must agree with the hand-built testbed
        // on the load-bearing facts.
        let (catalog, _) = to_catalog(&testbed_template()).unwrap();
        let tb = rabit_testbed::Testbed::new();
        for id in ["viperx", "ned2", "dosing_device", "centrifuge", "hotplate"] {
            let from_json = catalog.get(&id.into()).unwrap();
            let from_code = tb.catalog.get(&id.into()).unwrap();
            assert_eq!(from_json.device_type, from_code.device_type, "{id} type");
            assert_eq!(from_json.has_door, from_code.has_door, "{id} door");
            assert_eq!(
                from_json.action_threshold, from_code.action_threshold,
                "{id} threshold"
            );
        }
    }

    #[test]
    fn berlinguette_template_parses_and_validates() {
        let cfg = berlinguette_template();
        assert_eq!(cfg.lab_name, "Berlinguette Lab");
        assert_eq!(cfg.devices.len(), 13);
        let errors: Vec<_> = validate(&cfg)
            .into_iter()
            .filter(|i| i.level == IssueLevel::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
        let (catalog, rules) = to_catalog(&cfg).unwrap();
        assert_eq!(catalog.len(), 13);
        assert_eq!(rules.len(), 1);
        // The nozzle/XRF-source exemption came through from JSON.
        assert!(!catalog.get(&"nozzle_a".into()).unwrap().hosts_container);
        assert!(catalog.get(&"xrf_stage".into()).unwrap().hosts_container);
        assert!(catalog.has_tag(&"deck_sensor".into(), "proximity_sensor"));
    }

    #[test]
    fn every_pilot_error_is_caught() {
        for e in pilot_corpus() {
            match LabConfig::from_json(&e.json) {
                Err(parse_err) => {
                    assert!(
                        e.syntax_error,
                        "{}: unexpected syntax failure: {parse_err}",
                        e.name
                    );
                }
                Ok(cfg) => {
                    assert!(!e.syntax_error, "{}: syntax error parsed fine", e.name);
                    let errors: Vec<_> = validate(&cfg)
                        .into_iter()
                        .filter(|i| i.level == IssueLevel::Error)
                        .collect();
                    assert!(!errors.is_empty(), "{}: validator missed it", e.name);
                }
            }
        }
    }

    #[test]
    fn corpus_covers_both_error_classes() {
        let corpus = pilot_corpus();
        assert!(corpus.iter().any(|e| e.syntax_error));
        assert!(corpus.iter().any(|e| !e.syntax_error));
        assert_eq!(corpus.len(), 6);
        // All distinct corruptions.
        let base = testbed_template_json();
        for e in &corpus {
            assert_ne!(e.json, base, "{} is a no-op", e.name);
        }
    }
}
