//! The Robot Arm Dataset (RAD) substrate.
//!
//! The paper's rulebase construction starts from RAD — "three months of
//! command trace data captured in the Hein Lab" — mined for rules
//! "implied by the sequences of commands" (§II-A). The real dataset is a
//! lab artifact; this crate substitutes it with:
//!
//! * [`gen`] — a deterministic synthetic corpus generator producing
//!   RAD-shaped sessions that embody the lab's conventions (doors opened
//!   before entry, solids before liquids, doors closed while dosing);
//! * [`mine()`](mine()) — the rule miner: state-guard and ordering patterns with
//!   support/confidence thresholds, convertible into enforceable
//!   [`rabit_rulebase::Rule`]s, plus precision/recall scoring against the
//!   ground truth.
//!
//! # Example
//!
//! ```
//! use rabit_rad::{generate_corpus, mine, MineParams, RadGenParams};
//!
//! let corpus = generate_corpus(&RadGenParams { sessions: 50, ..RadGenParams::default() });
//! let rules = mine(&corpus, &MineParams::default());
//! assert!(!rules.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod mine;

pub use gen::{generate_corpus, generate_lab_corpus, RadGenParams};
pub use mine::{mine, score, GuardedAction, MineParams, MinedRule, Toggle};
