//! Dependency-free utility substrate for the RABIT workspace.
//!
//! The deployment environments RABIT targets (air-gapped lab controllers,
//! hermetic CI) cannot reach a package registry, so everything the
//! workspace needs beyond `std` lives here: a small, fast, seeded PRNG
//! ([`rng::Rng`]) and a JSON value/parser/printer ([`json::Json`]) used
//! for configuration files, trace serialisation, and benchmark reports.

pub mod json;
pub mod rng;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::Rng;
