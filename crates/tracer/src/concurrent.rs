//! Concurrent workflow execution under space multiplexing.
//!
//! Time multiplexing serialises the arms; the software wall exists so
//! that arms can move *concurrently*, "pushing for more concurrency in
//! their experiments" (§IV). This module executes several command
//! streams — one per arm — with a deterministic discrete-event scheduler:
//! at every step the stream with the smallest local clock issues its next
//! command through the guarded engine, and the command's duration
//! advances only that stream's clock. The makespan (the slowest stream's
//! clock) is what a wall-clock observer of the concurrent lab would see;
//! the serialised time (every command end to end) is what time
//! multiplexing would cost.

use crate::trace::{Trace, TraceEvent, TraceOutcome};
use crate::workflow::Workflow;
use rabit_core::{Alert, Lab, Rabit};

/// Per-stream outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// The stream's (workflow's) name.
    pub name: String,
    /// The stream's local clock at the end (seconds).
    pub local_time_s: f64,
    /// Commands executed from this stream.
    pub executed: usize,
}

/// Outcome of a concurrent run.
#[derive(Debug)]
pub struct ConcurrentReport {
    /// Per-stream outcomes, in input order.
    pub streams: Vec<StreamReport>,
    /// The alert that stopped everything, if any.
    pub alert: Option<Alert>,
    /// Wall-clock makespan of the concurrent execution (seconds): the
    /// largest stream clock.
    pub makespan_s: f64,
    /// The same work executed one command at a time (seconds) — the time
    /// multiplexing would cost.
    pub serialized_s: f64,
    /// The interleaved command trace (timestamps are stream-local issue
    /// times).
    pub trace: Trace,
}

impl ConcurrentReport {
    /// Whether every stream ran to completion.
    pub fn completed(&self) -> bool {
        self.alert.is_none()
    }

    /// Fraction of wall-clock time concurrency saves over serialising.
    pub fn concurrency_gain(&self) -> f64 {
        if self.serialized_s <= 0.0 {
            0.0
        } else {
            1.0 - self.makespan_s / self.serialized_s
        }
    }
}

/// Executes `streams` concurrently under the guarded engine.
///
/// Commands are interleaved earliest-stream-first (ties broken by input
/// order), which is deterministic; each command is rule-checked against
/// the engine's current believed state exactly as in a serial run. The
/// first alert stops every stream, matching `alertAndStop`.
pub fn run_concurrent(lab: &mut Lab, rabit: &mut Rabit, streams: &[Workflow]) -> ConcurrentReport {
    rabit.initialize(lab);
    let mut cursors = vec![0usize; streams.len()];
    let mut clocks = vec![0.0f64; streams.len()];
    let mut executed = vec![0usize; streams.len()];
    let mut trace = Trace::new("concurrent");
    let mut alert = None;
    let mut serialized = 0.0;
    let mut seq = 0usize;

    loop {
        // The earliest stream that still has work.
        let next = (0..streams.len())
            .filter(|&i| cursors[i] < streams[i].len())
            .min_by(|&a, &b| clocks[a].total_cmp(&clocks[b]));
        let Some(i) = next else { break };
        let command = &streams[i].commands()[cursors[i]];
        cursors[i] += 1;

        let t0 = lab.clock().now_s();
        let issue_time = clocks[i];
        let result = rabit.step(lab, command);
        let dt = lab.clock().now_s() - t0;
        clocks[i] += dt;
        serialized += dt;

        let outcome = match &result {
            Ok(outcome) if outcome.executed() => {
                executed[i] += 1;
                TraceOutcome::Forwarded
            }
            Ok(_) => TraceOutcome::Skipped {
                reason: format!("{} quarantined", command.actor),
            },
            Err(Alert::DeviceFault { error, .. }) => TraceOutcome::Faulted {
                error: error.to_string(),
            },
            Err(Alert::DeviceMalfunction { diffs, .. }) => {
                executed[i] += 1;
                TraceOutcome::MalfunctionDetected {
                    detail: diffs
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; "),
                }
            }
            Err(a) => TraceOutcome::Blocked {
                alert: a.headline().to_string(),
            },
        };
        trace.record(TraceEvent {
            seq,
            time_s: issue_time,
            command: command.clone(),
            outcome,
        });
        seq += 1;
        if let Err(a) = result {
            alert = Some(a);
            break;
        }
    }

    let makespan_s = clocks.iter().copied().fold(0.0, f64::max);
    ConcurrentReport {
        streams: streams
            .iter()
            .zip(clocks.iter().zip(executed.iter()))
            .map(|(wf, (&local_time_s, &executed))| StreamReport {
                name: wf.name().to_string(),
                local_time_s,
                executed,
            })
            .collect(),
        alert,
        makespan_s,
        serialized_s: serialized,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_core::RabitConfig;
    use rabit_devices::{DeviceType, RobotArm};
    use rabit_geometry::{Aabb, Vec3};
    use rabit_rulebase::{extensions, DeviceCatalog, DeviceMeta, Rulebase};

    fn two_arm_lab() -> Lab {
        Lab::new()
            .with_device(RobotArm::new(
                "viperx",
                Vec3::new(0.3, 0.0, 0.3),
                Vec3::new(0.1, -0.3, 0.2),
            ))
            .with_device(RobotArm::new(
                "ned2",
                Vec3::new(1.2, 0.0, 0.3),
                Vec3::new(1.4, -0.3, 0.2),
            ))
    }

    fn catalog() -> DeviceCatalog {
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("viperx", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2))
                    .with_allowed_region(Aabb::new(
                        Vec3::new(-0.5, -0.5, 0.0),
                        Vec3::new(0.7, 0.5, 1.0),
                    )),
            )
            .with(
                DeviceMeta::new("ned2", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(1.2, 0.0, 0.3), Vec3::new(1.4, -0.3, 0.2))
                    .with_allowed_region(Aabb::new(
                        Vec3::new(0.8, -0.5, 0.0),
                        Vec3::new(2.0, 0.5, 1.0),
                    )),
            )
    }

    fn space_mux_rabit() -> Rabit {
        let mut rulebase = Rulebase::standard();
        rulebase.push(extensions::space_multiplexing_rule());
        Rabit::new(rulebase, catalog(), RabitConfig::default())
    }

    fn time_mux_rabit() -> Rabit {
        let mut rulebase = Rulebase::standard();
        rulebase.push(extensions::time_multiplexing_rule());
        Rabit::new(rulebase, catalog(), RabitConfig::default())
    }

    fn viperx_stream() -> Workflow {
        Workflow::new("viperx_side")
            .move_to("viperx", Vec3::new(0.4, 0.2, 0.3))
            .move_to("viperx", Vec3::new(0.2, -0.2, 0.4))
            .move_to("viperx", Vec3::new(0.5, 0.0, 0.3))
            .go_home("viperx")
    }

    fn ned2_stream() -> Workflow {
        Workflow::new("ned2_side")
            .move_to("ned2", Vec3::new(1.3, 0.2, 0.3))
            .move_to("ned2", Vec3::new(1.1, -0.2, 0.4))
            .go_home("ned2")
    }

    #[test]
    fn concurrent_streams_run_under_the_software_wall() {
        let mut lab = two_arm_lab();
        let mut rabit = space_mux_rabit();
        let report = run_concurrent(&mut lab, &mut rabit, &[viperx_stream(), ned2_stream()]);
        assert!(report.completed(), "alert: {:?}", report.alert);
        assert_eq!(report.streams[0].executed, 4);
        assert_eq!(report.streams[1].executed, 3);
        // The makespan is the slower side, not the sum.
        let slower = report
            .streams
            .iter()
            .map(|s| s.local_time_s)
            .fold(0.0, f64::max);
        assert!((report.makespan_s - slower).abs() < 1e-9);
        assert!(report.makespan_s < report.serialized_s);
        assert!(
            report.concurrency_gain() > 0.25,
            "{}",
            report.concurrency_gain()
        );
        // The trace interleaves the two streams.
        assert_eq!(report.trace.len(), 7);
    }

    #[test]
    fn time_multiplexing_rejects_the_same_concurrency() {
        let mut lab = two_arm_lab();
        let mut rabit = time_mux_rabit();
        let report = run_concurrent(&mut lab, &mut rabit, &[viperx_stream(), ned2_stream()]);
        let alert = report
            .alert
            .expect("neither arm is asleep: motion must be blocked");
        assert!(alert.to_string().contains("time_multiplexing"), "{alert}");
    }

    #[test]
    fn wall_violations_stop_all_streams() {
        let mut lab = two_arm_lab();
        let mut rabit = space_mux_rabit();
        // Ned2's second move reaches across the wall into ViperX's side.
        let rogue = Workflow::new("rogue_ned2")
            .move_to("ned2", Vec3::new(1.3, 0.2, 0.3))
            .move_to("ned2", Vec3::new(0.4, 0.0, 0.3));
        let report = run_concurrent(&mut lab, &mut rabit, &[viperx_stream(), rogue]);
        let alert = report.alert.expect("the wall crossing must be blocked");
        assert!(alert.to_string().contains("software wall"), "{alert}");
        // Streams stop where they were; total executed < total commands.
        let executed: usize = report.streams.iter().map(|s| s.executed).sum();
        assert!(executed < 6);
    }

    #[test]
    fn single_stream_degenerates_to_serial() {
        let mut lab = two_arm_lab();
        let mut rabit = space_mux_rabit();
        let report = run_concurrent(&mut lab, &mut rabit, &[viperx_stream()]);
        assert!(report.completed());
        assert!((report.makespan_s - report.serialized_s).abs() < 1e-9);
        assert_eq!(report.concurrency_gain(), 0.0);
    }

    #[test]
    fn scheduler_is_deterministic() {
        let run = || {
            let mut lab = two_arm_lab();
            let mut rabit = space_mux_rabit();
            let r = run_concurrent(&mut lab, &mut rabit, &[viperx_stream(), ned2_stream()]);
            (r.makespan_s, r.serialized_s, r.trace.to_jsonl())
        };
        assert_eq!(run(), run());
    }
}
