//! Device identity and the four-type taxonomy.
use std::fmt;

/// A unique device identifier (e.g. `"ur3e"`, `"dosing_device"`,
/// `"vial_NW"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(String);

impl DeviceId {
    /// Creates a device id.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "device id must not be empty");
        DeviceId(name)
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DeviceId {
    fn from(s: &str) -> Self {
        DeviceId::new(s)
    }
}

impl From<String> for DeviceId {
    fn from(s: String) -> Self {
        DeviceId::new(s)
    }
}

impl AsRef<str> for DeviceId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// The paper's four device types, plus an escape hatch for labs with
/// devices "that do not belong to any of the four specified device types"
/// (§II-C).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// Holds substances; typically has a stopper (vials, flasks).
    Container,
    /// Moves between locations; picks up, moves, and places objects.
    RobotArm,
    /// Adds substances into containers (solid dosing device, syringe pump).
    DosingSystem,
    /// Has active/inactive states: heating, stirring, shaking, spinning.
    ActionDevice,
    /// A lab-defined category outside the standard four.
    Custom(String),
}

impl DeviceType {
    /// Returns `true` for types that may have a door in front of their
    /// working volume (dosing systems and action devices — paper §II-A:
    /// "Both dosing systems and action devices might have doors").
    pub fn may_have_door(&self) -> bool {
        matches!(self, DeviceType::DosingSystem | DeviceType::ActionDevice)
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceType::Container => f.write_str("container"),
            DeviceType::RobotArm => f.write_str("robot_arm"),
            DeviceType::DosingSystem => f.write_str("dosing_system"),
            DeviceType::ActionDevice => f.write_str("action_device"),
            DeviceType::Custom(name) => write!(f, "custom:{name}"),
        }
    }
}

impl rabit_util::ToJson for DeviceId {
    fn to_json(&self) -> rabit_util::Json {
        rabit_util::Json::Str(self.0.clone())
    }
}

impl rabit_util::FromJson for DeviceId {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        let s = String::from_json(json)?;
        if s.is_empty() {
            return Err(rabit_util::JsonError::decode("device id must not be empty"));
        }
        Ok(DeviceId(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compare_and_display() {
        let a = DeviceId::new("ur3e");
        let b: DeviceId = "ur3e".into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "ur3e");
        assert_eq!(a.as_str(), "ur3e");
        let c: DeviceId = String::from("ned2").into();
        assert_ne!(a, c);
        assert!(c < a); // lexicographic: "ned2" < "ur3e"
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_id_panics() {
        let _ = DeviceId::new("");
    }

    #[test]
    fn door_capability_by_type() {
        assert!(DeviceType::DosingSystem.may_have_door());
        assert!(DeviceType::ActionDevice.may_have_door());
        assert!(!DeviceType::Container.may_have_door());
        assert!(!DeviceType::RobotArm.may_have_door());
        assert!(!DeviceType::Custom("xrf".into()).may_have_door());
    }

    #[test]
    fn type_display() {
        assert_eq!(DeviceType::RobotArm.to_string(), "robot_arm");
        assert_eq!(
            DeviceType::Custom("decapper".into()).to_string(),
            "custom:decapper"
        );
    }
}
