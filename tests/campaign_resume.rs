//! Crash/resume differential suite for the campaign runner.
//!
//! The contract under test: a campaign's merged artifact is a pure
//! function of its plan. Killing a run after `k` trials and resuming it
//! must reproduce the uninterrupted artifact byte-for-byte (seeds are
//! derived from the plan, never from execution order); running the same
//! plan at different thread counts must produce identical outcomes and
//! state files (modulo wall-clock fields); and a corrupt or truncated
//! state file must re-run exactly its own trial, with a warning in the
//! manifest, leaving the artifact unchanged.

use rabit::campaign::{plans, CampaignPlan, CampaignRunner, TrialState, TrialStatus};
use rabit::util::{Json, ToJson};
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rabit-campaign-itest-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run_to_completion(plan: CampaignPlan, tag: &str, threads: usize) -> (CampaignRunner, PathBuf) {
    let dir = temp_dir(tag);
    let runner = CampaignRunner::new(plan, &dir).expect("plan materializes");
    let summary = runner.run(threads, None).expect("campaign runs");
    assert!(summary.complete());
    (runner, dir)
}

/// A state file with its wall-clock field scrubbed: everything that must
/// be identical across thread counts and resumes.
fn deterministic_state(state: &TrialState) -> String {
    let mut json = state.to_json();
    if let Json::Obj(pairs) = &mut json {
        for (key, value) in pairs.iter_mut() {
            if key == "wall_ms" {
                *value = Json::Null;
            }
        }
    }
    json.to_pretty()
}

#[test]
fn kill_and_resume_is_bit_identical_on_the_48_trial_matrix() {
    let plan = plans::detection_matrix_plan();
    let n = plan.materialize().expect("plan materializes").len();
    assert!(n >= 48, "the detection matrix is the ≥48-trial case");

    let (reference, ref_dir) = run_to_completion(plan.clone(), "ref", 4);
    let want = reference.artifact().expect("artifact written").to_pretty();

    // Sweep the kill point across the matrix: early, halfway, late.
    for k in [5, n / 2, n - 8] {
        let dir = temp_dir(&format!("kill-{k}"));
        let runner = CampaignRunner::new(plan.clone(), &dir).expect("plan materializes");
        let first = runner.run(4, Some(k)).expect("interrupted run");
        assert_eq!(first.executed, k);
        assert!(!first.complete());
        assert!(
            !runner.artifact_path().exists(),
            "no artifact until the matrix completes"
        );
        let second = runner.run(4, None).expect("resumed run");
        assert!(second.complete());
        assert_eq!(second.executed, n - k, "resume runs only the remainder");
        let got = runner.artifact().expect("artifact written").to_pretty();
        assert_eq!(
            got, want,
            "artifact after kill@{k} + resume differs from the uninterrupted run"
        );
        // No trial ran twice.
        assert!(runner.states().iter().all(|s| s.attempt == 1));
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&ref_dir);
}

#[test]
fn thread_counts_do_not_change_outcomes_or_state_files() {
    let plan = plans::quick_matrix_plan();
    let (serial, serial_dir) = run_to_completion(plan.clone(), "t1", 1);
    let reference_states: Vec<String> = serial.states().iter().map(deterministic_state).collect();
    let reference_artifact = serial.artifact().unwrap().to_pretty();

    for threads in [4, 8] {
        let (parallel, dir) = run_to_completion(plan.clone(), &format!("t{threads}"), threads);
        let got: Vec<String> = parallel.states().iter().map(deterministic_state).collect();
        assert_eq!(got.len(), reference_states.len());
        for (i, (want, have)) in reference_states.iter().zip(&got).enumerate() {
            assert_eq!(want, have, "state file {i} differs at {threads} threads");
        }
        assert_eq!(
            parallel.artifact().unwrap().to_pretty(),
            reference_artifact,
            "merged artifact differs at {threads} threads"
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&serial_dir);
}

#[test]
fn corrupt_state_files_rerun_only_their_trials() {
    let plan = plans::quick_matrix_plan();
    let (runner, dir) = run_to_completion(plan.clone(), "corrupt", 2);
    let want = runner.artifact().unwrap().to_pretty();
    let states = runner.states();

    // Truncate one state file mid-byte and replace another with garbage
    // that parses as JSON but fails schema validation.
    let trials = runner.trials();
    let truncated_path = dir.join("trials").join(format!("{}.json", trials[1].id));
    let text = fs::read_to_string(&truncated_path).unwrap();
    fs::write(&truncated_path, &text[..text.len() / 2]).unwrap();
    let invalid_path = dir.join("trials").join(format!("{}.json", trials[5].id));
    fs::write(&invalid_path, "{\"schema\": \"rabit.campaign.trial/v1\"}").unwrap();

    let summary = runner.run(2, None).expect("recovery run");
    assert_eq!(
        summary.executed, 2,
        "exactly the two damaged trials re-run, nothing else"
    );
    assert!(summary.complete());
    assert_eq!(
        summary
            .warnings
            .iter()
            .filter(|w| w.contains("corrupt"))
            .count(),
        2,
        "each damaged file leaves a warning: {:?}",
        summary.warnings
    );
    // The warnings are persisted in the manifest.
    let manifest = fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("corrupt"));
    // Results are unchanged; only attempt counters moved.
    assert_eq!(runner.artifact().unwrap().to_pretty(), want);
    let after = runner.states();
    for (i, (before, now)) in states.iter().zip(&after).enumerate() {
        assert_eq!(now.status, TrialStatus::Done);
        assert_eq!(
            deterministic_attempt_free(now),
            deterministic_attempt_free(before),
            "trial {i} result changed"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

/// State with both wall-clock and attempt scrubbed (re-runs bump
/// `attempt` by design).
fn deterministic_attempt_free(state: &TrialState) -> String {
    let mut json = state.to_json();
    if let Json::Obj(pairs) = &mut json {
        for (key, value) in pairs.iter_mut() {
            if key == "wall_ms" || key == "attempt" {
                *value = Json::Null;
            }
        }
    }
    json.to_pretty()
}

#[test]
fn interrupted_and_failed_states_are_reset_with_a_warning() {
    let plan = plans::quick_matrix_plan();
    let (runner, dir) = run_to_completion(plan.clone(), "interrupted", 2);
    let want = runner.artifact().unwrap().to_pretty();
    let trials = runner.trials();

    // Hand-write a Running state (an interrupted trial) and a Failed one.
    let mut states = runner.states();
    states[0].status = TrialStatus::Running;
    states[0].result = None;
    states[2].status = TrialStatus::Failed;
    states[2].result = None;
    for (trial_index, state) in [(0usize, &states[0]), (2, &states[2])] {
        let path = dir
            .join("trials")
            .join(format!("{}.json", trials[trial_index].id));
        fs::write(&path, state.to_json().to_pretty() + "\n").unwrap();
    }

    let summary = runner.run(2, None).expect("recovery run");
    assert_eq!(summary.executed, 2);
    assert!(summary.warnings.iter().any(|w| w.contains("interrupted")));
    assert!(summary.warnings.iter().any(|w| w.contains("failed")));
    assert_eq!(runner.artifact().unwrap().to_pretty(), want);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn seeds_come_from_the_plan_not_execution_order() {
    // Materialize twice, and under a skip list that removes earlier
    // trials: trial 5's seed must not move.
    let plan = plans::quick_matrix_plan();
    let trials = plan.materialize().unwrap();
    let skipped_plan = plan
        .clone()
        .with_skip(trials[0].key())
        .with_skip(trials[1].key());
    let skipped_trials = skipped_plan.materialize().unwrap();
    for (a, b) in trials.iter().zip(&skipped_trials) {
        assert_eq!(
            a.seed, b.seed,
            "skipping earlier trials must not shift later seeds"
        );
    }
    // And the runner persists exactly those seeds.
    let dir = temp_dir("seeds");
    let runner = CampaignRunner::new(plan, &dir).unwrap();
    runner.run(2, None).unwrap();
    for (trial, state) in runner.trials().iter().zip(runner.states()) {
        assert_eq!(trial.seed, state.seed);
    }
    let _ = fs::remove_dir_all(&dir);
}
