//! The study runner: executes each catalogued bug against a deployment
//! substrate and scores detection against the damage oracle.
//!
//! The study's three configurations ([`RabitStage`]) are thin wrappers
//! over [`TestbedSubstrate::study`] profiles; the generic entry points
//! ([`run_bug_on`], [`run_study_on`]) accept *any*
//! [`Substrate`] — the pipeline bench replays the same 16 bugs at every
//! stage of `Testbed::pipeline()` through them.

use crate::catalog::{catalog, Bug, BugCategory};
use rabit_core::{DamageEvent, Severity, Stage, Substrate};
use rabit_testbed::{locations, workflows, RabitStage, TestbedSubstrate};
use rabit_tracer::{run_fleet_on, Tracer, Workflow};

/// Outcome of one bug under one configuration.
#[derive(Debug)]
pub struct BugOutcome {
    /// The bug's id.
    pub id: &'static str,
    /// §IV category.
    pub category: BugCategory,
    /// Table V severity.
    pub severity: Severity,
    /// Whether RABIT raised an alert (device faults do not count — the
    /// paper's detection rate measures RABIT's own checks).
    pub detected: bool,
    /// The alert text, if any (including device faults).
    pub alert: Option<String>,
    /// Whether the alert was a device fault rather than a RABIT check.
    pub device_fault: bool,
    /// Physical damage that occurred during the (guarded) run.
    pub damage: Vec<DamageEvent>,
}

/// Aggregated study results for one substrate.
#[derive(Debug)]
pub struct StudyResult {
    /// Name of the substrate evaluated.
    pub substrate: String,
    /// The deployment stage it ran at.
    pub stage: Stage,
    /// The study configuration, when the substrate is one of the paper's
    /// three testbed deployments.
    pub config: Option<RabitStage>,
    /// Per-bug outcomes, in catalog order.
    pub outcomes: Vec<BugOutcome>,
}

impl StudyResult {
    /// Number of detected bugs.
    pub fn detected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.detected).count()
    }

    /// Detection rate over the 16 bugs.
    pub fn detection_rate(&self) -> f64 {
        self.detected() as f64 / self.outcomes.len() as f64
    }

    /// `(total, detected)` per severity class — one row of Table V.
    pub fn severity_row(&self, severity: Severity) -> (usize, usize) {
        let total = self
            .outcomes
            .iter()
            .filter(|o| o.severity == severity)
            .count();
        let detected = self
            .outcomes
            .iter()
            .filter(|o| o.severity == severity && o.detected)
            .count();
        (total, detected)
    }
}

/// The study profile behind one of the paper's three configurations.
fn study_substrate(stage: RabitStage) -> TestbedSubstrate {
    TestbedSubstrate::study(stage)
}

fn outcome_of(bug: &Bug, alert: Option<&rabit_core::Alert>, damage: &[DamageEvent]) -> BugOutcome {
    let (detected, device_fault) = match alert {
        Some(alert) => (alert.is_rabit_detection(), !alert.is_rabit_detection()),
        None => (false, false),
    };
    BugOutcome {
        id: bug.id,
        category: bug.category,
        severity: bug.severity,
        detected,
        alert: alert.map(ToString::to_string),
        device_fault,
        damage: damage.to_vec(),
    }
}

/// Runs one bug on a fresh lab instantiated from `substrate`. The buggy
/// workflow targets the testbed deck topology, so the substrate must
/// realise it (any stage or configuration profile works).
pub fn run_bug_on(bug: &Bug, substrate: &dyn Substrate) -> BugOutcome {
    let wf = bug.buggy_workflow(&locations());
    let (mut lab, mut rabit) = substrate.instantiate();
    let report = Tracer::guarded(&mut lab, &mut rabit).run(&wf);
    outcome_of(bug, report.alert.as_ref(), lab.damage_log())
}

/// Runs one bug under one of the study's configurations.
pub fn run_bug(bug: &Bug, stage: RabitStage) -> BugOutcome {
    run_bug_on(bug, &study_substrate(stage))
}

/// Runs the whole 16-bug study against one substrate.
pub fn run_study_on(substrate: &dyn Substrate) -> StudyResult {
    let outcomes = catalog()
        .iter()
        .map(|bug| run_bug_on(bug, substrate))
        .collect();
    StudyResult {
        substrate: substrate.name().to_string(),
        stage: substrate.stage(),
        config: None,
        outcomes,
    }
}

/// Runs the whole 16-bug study under one configuration.
pub fn run_study(stage: RabitStage) -> StudyResult {
    StudyResult {
        config: Some(stage),
        ..run_study_on(&study_substrate(stage))
    }
}

/// Runs the study as a guarded fleet, every bug on its own worker (each
/// run instantiates a fresh lab from the substrate, so the runs are
/// fully independent). Results are identical to [`run_study_on`];
/// wall-clock time is not — this is the regression-suite fast path a lab
/// runs before each deployment.
pub fn run_study_parallel_on(substrate: &dyn Substrate, threads: usize) -> StudyResult {
    let bugs = catalog();
    let loc = locations();
    let wfs: Vec<Workflow> = bugs.iter().map(|b| b.buggy_workflow(&loc)).collect();
    let jobs: Vec<(&dyn Substrate, &Workflow)> = wfs.iter().map(|wf| (substrate, wf)).collect();
    let fleet = run_fleet_on(&jobs, threads);
    let outcomes = bugs
        .iter()
        .zip(&fleet.runs)
        .map(|(bug, run)| outcome_of(bug, run.report.alert.as_ref(), &run.damage))
        .collect();
    StudyResult {
        substrate: substrate.name().to_string(),
        stage: substrate.stage(),
        config: None,
        outcomes,
    }
}

/// [`run_study_parallel_on`] for one of the study's configurations, one
/// worker per bug.
pub fn run_study_parallel(stage: RabitStage) -> StudyResult {
    StudyResult {
        config: Some(stage),
        ..run_study_parallel_on(&study_substrate(stage), catalog().len())
    }
}

/// Runs the safe workflows on `substrate` and returns the number of
/// false positives (alerts raised on safe behaviour). The paper:
/// "throughout testing, RABIT never produced any false positives."
pub fn false_positives_on(substrate: &dyn Substrate) -> usize {
    let loc = locations();
    let mut count = 0;
    for builder in [workflows::fig5_safe_workflow, workflows::device_tour] {
        let wf = builder(&loc);
        let (mut lab, mut rabit) = substrate.instantiate();
        let report = Tracer::guarded(&mut lab, &mut rabit).run(&wf);
        if report.alert.is_some() {
            count += 1;
        }
    }
    count
}

/// [`false_positives_on`] for one of the study's configurations.
pub fn false_positives(stage: RabitStage) -> usize {
    false_positives_on(&study_substrate(stage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DetectedFrom;

    #[test]
    fn baseline_detects_8_of_16() {
        let result = run_study(RabitStage::Baseline);
        for (o, bug) in result.outcomes.iter().zip(catalog()) {
            assert_eq!(
                o.detected,
                bug.detected_from.expected_at(RabitStage::Baseline),
                "{}: alert {:?}, damage {:?}",
                o.id,
                o.alert,
                o.damage
            );
        }
        assert_eq!(result.detected(), 8);
        assert!((result.detection_rate() - 0.50).abs() < 1e-9);
    }

    #[test]
    fn modified_detects_12_of_16() {
        let result = run_study(RabitStage::Modified);
        for (o, bug) in result.outcomes.iter().zip(catalog()) {
            assert_eq!(
                o.detected,
                bug.detected_from.expected_at(RabitStage::Modified),
                "{}: alert {:?}, damage {:?}",
                o.id,
                o.alert,
                o.damage
            );
        }
        assert_eq!(result.detected(), 12);
        assert!((result.detection_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn simulator_detects_13_of_16() {
        let result = run_study(RabitStage::ModifiedWithSimulator);
        for (o, bug) in result.outcomes.iter().zip(catalog()) {
            assert_eq!(
                o.detected,
                bug.detected_from
                    .expected_at(RabitStage::ModifiedWithSimulator),
                "{}: alert {:?}, damage {:?}",
                o.id,
                o.alert,
                o.damage
            );
        }
        assert_eq!(result.detected(), 13);
        assert!((result.detection_rate() - 0.8125).abs() < 1e-9);
    }

    #[test]
    fn table_v_rows_reproduce() {
        // Table V reports the modified configuration.
        let result = run_study(RabitStage::Modified);
        assert_eq!(result.severity_row(Severity::Low), (3, 1));
        assert_eq!(result.severity_row(Severity::MediumLow), (1, 1));
        assert_eq!(result.severity_row(Severity::MediumHigh), (6, 4));
        assert_eq!(result.severity_row(Severity::High), (6, 6));
    }

    #[test]
    fn pipeline_stages_detect_13_12_12() {
        // The canonical promotion pipeline replays the suite at every
        // stage: the simulator stage carries the validator (13/16), the
        // physical profiles run the modified rules alone (12/16).
        let pipeline = rabit_testbed::Testbed::pipeline();
        let counts: Vec<usize> = pipeline
            .substrates()
            .iter()
            .map(|s| run_study_on(s.as_ref()).detected())
            .collect();
        assert_eq!(counts, [13, 12, 12]);
    }

    #[test]
    fn parallel_study_matches_serial() {
        let serial = run_study(RabitStage::Modified);
        let parallel = run_study_parallel(RabitStage::Modified);
        assert_eq!(parallel.detected(), serial.detected());
        for (a, b) in serial.outcomes.iter().zip(parallel.outcomes.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.detected, b.detected);
            assert_eq!(a.alert, b.alert);
            assert_eq!(a.damage.len(), b.damage.len());
        }
    }

    #[test]
    fn no_false_positives_in_any_configuration() {
        for stage in [
            RabitStage::Baseline,
            RabitStage::Modified,
            RabitStage::ModifiedWithSimulator,
        ] {
            assert_eq!(false_positives(stage), 0, "false positives at {stage:?}");
        }
    }

    #[test]
    fn detected_bugs_cause_no_damage_when_guarded() {
        // RABIT stops the experiment BEFORE the unsafe command executes,
        // so a detected bug must leave the lab unharmed — except for
        // malfunction-style detections, which fire after execution.
        let result = run_study(RabitStage::Modified);
        for o in &result.outcomes {
            if o.detected {
                assert!(
                    o.damage.is_empty(),
                    "{} was detected yet caused damage: {:?}",
                    o.id,
                    o.damage
                );
            }
        }
    }

    #[test]
    fn undetected_physical_bugs_do_damage() {
        // The undetected residue either damages the lab (Bug B/C/D
        // classes) or halts on a device fault (Ned2).
        let result = run_study(RabitStage::Baseline);
        for o in &result.outcomes {
            if o.detected || o.device_fault {
                continue;
            }
            let expects_damage = !matches!(o.id, "concurrent_motion");
            if expects_damage {
                assert!(
                    !o.damage.is_empty(),
                    "{} went undetected but caused no damage either",
                    o.id
                );
            }
        }
    }

    #[test]
    fn ned2_bug_is_a_device_fault() {
        let bug = catalog()
            .into_iter()
            .find(|b| b.id == "ned2_infeasible_high")
            .unwrap();
        let outcome = run_bug(&bug, RabitStage::Baseline);
        assert!(!outcome.detected);
        assert!(
            outcome.device_fault,
            "Ned2 throws and halts: {:?}",
            outcome.alert
        );
        assert!(outcome.damage.is_empty(), "the exception prevented damage");
        assert_eq!(bug.detected_from, DetectedFrom::Never);
    }

    #[test]
    fn silent_skip_is_caught_only_by_the_simulator() {
        let bug = catalog()
            .into_iter()
            .find(|b| b.id == "silent_skip_path")
            .unwrap();
        let base = run_bug(&bug, RabitStage::Modified);
        assert!(!base.detected, "{:?}", base.alert);
        assert!(
            base.damage.iter().any(|d| d.description.contains("grid")),
            "the skipped waypoint must cause the grid collision: {:?}",
            base.damage
        );
        let with_sim = run_bug(&bug, RabitStage::ModifiedWithSimulator);
        assert!(with_sim.detected, "{:?}", with_sim.alert);
        assert!(with_sim.damage.is_empty());
    }
}
