//! The Fig. 1(b) automated solubility measurement on the production deck,
//! guarded by RABIT.
//!
//! ```text
//! cargo run --example solubility
//! ```

use rabit::production::{solubility, ProductionDeck};
use rabit::tracer::Tracer;

fn main() {
    let params = solubility::SolubilityParams {
        solid_mg: 5.0,
        initial_solvent_ml: 2.0,
        solvent_step_ml: 1.0,
        temperature_c: 60.0,
        iterations: 3,
    };
    let workflow = solubility::solubility_workflow(&params);
    println!(
        "automated solubility measurement: {} device commands\n",
        workflow.len()
    );

    let mut deck = ProductionDeck::new();
    let mut rabit = deck.rabit();
    let report = Tracer::guarded(&mut deck.lab, &mut rabit).run(&workflow);

    // Print the RATracer-style command log (first and last few lines).
    let events = &report.trace.events;
    for event in events.iter().take(12) {
        println!("{event}");
    }
    println!(
        "... ({} more commands) ...",
        events.len().saturating_sub(16)
    );
    for event in events
        .iter()
        .rev()
        .take(4)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        println!("{event}");
    }

    assert!(report.completed(), "alert: {:?}", report.alert);
    let vial = deck.lab.device(&"vial".into()).unwrap().as_vial().unwrap();
    println!(
        "\ncompleted in {:.0} s of lab time (RABIT overhead {:.1} s).",
        report.lab_time_s, report.rabit_overhead_s
    );
    println!(
        "vial contents: {:.1} mg solid, {:.1} mL solvent, stopper {}",
        vial.solid_mg(),
        vial.liquid_ml(),
        if vial.has_stopper() { "on" } else { "off" }
    );
    assert!(deck.lab.damage_log().is_empty());
}
