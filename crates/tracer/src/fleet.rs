//! Fleet execution: many independent `(Lab, Workflow)` runs in parallel.
//!
//! The bug study and the latency experiments replay whole workflow
//! libraries; each replay builds its own virtual lab, runs one workflow
//! through a [`Tracer`], and collects the report. [`run_fleet`] fans those
//! replays out over `rabit_core::fleet`'s deterministic work-stealing
//! pool: results are keyed by workflow index and every run constructs its
//! lab inside its own job, so the per-run alerts and damage logs are
//! identical for any thread count — the property the fleet integration
//! test pins down.

use crate::tracer::{TraceReport, Tracer};
use crate::workflow::Workflow;
use rabit_core::fleet::run_indexed;
use rabit_core::{
    DamageEvent, FaultPlan, Lab, Rabit, RecoveryCounters, Stage, Substrate, SweepStats,
};
use rabit_rulebase::{RulebaseSnapshot, SnapshotCache, SnapshotSource, TenantId};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One fleet run: the workflow's trace report plus the physical damage
/// its lab accumulated.
#[derive(Debug)]
pub struct FleetRun {
    /// Index of the workflow in the fleet (result vectors are keyed by
    /// it).
    pub index: usize,
    /// The workflow's name.
    pub workflow: String,
    /// The deployment stage this run executed at (`None` for plain
    /// [`run_fleet`] setups, which carry no stage identity).
    pub stage: Option<Stage>,
    /// The substrate's name (`None` for plain [`run_fleet`] setups).
    pub substrate: Option<String>,
    /// The tracer's report for this run.
    pub report: TraceReport,
    /// Ground-truth damage the lab recorded during the run.
    pub damage: Vec<DamageEvent>,
    /// Verdict-cache hits of this run's validator (0 without a guarded
    /// engine or a caching validator).
    pub cache_hits: u64,
    /// Verdict-cache misses of this run's validator.
    pub cache_misses: u64,
    /// Trajectory grid samples this run's validator collision-checked
    /// (0 without a sweeping validator).
    pub samples_checked: u64,
    /// Grid samples the validator's adaptive sweep kernel proved
    /// hit-free and skipped (0 for dense validators).
    pub samples_skipped: u64,
    /// Per-primitive signed-distance evaluations the validator issued
    /// for skip decisions.
    pub distance_queries: u64,
    /// Lane slots the validator pushed through its batched (4-wide)
    /// distance kernels, padding included.
    pub distance_evals_batched: u64,
    /// Whole-arm certificate spans the validator's adaptive sweep kernel
    /// accepted.
    pub certificate_spans: u64,
    /// Faults the run's lab actually injected (0 without a fault plan).
    pub faults_injected: u64,
    /// The rulebase epoch this run's engine validated against (0 for
    /// pinned rulebases and pass-through baselines; the published epoch
    /// for live-store fleets via [`run_fleet_on_live`]).
    pub rulebase_epoch: u64,
}

/// The collected fleet: per-run reports plus merge helpers.
#[derive(Debug)]
pub struct FleetReport {
    /// Worker threads the fleet ran on (1 = serial).
    pub threads: usize,
    /// Per-workflow results, in workflow order.
    pub runs: Vec<FleetRun>,
}

impl FleetReport {
    /// Merged alert summary: alert headline → number of runs halted by
    /// it. Runs that completed are not counted here.
    pub fn alert_summary(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for run in &self.runs {
            if let Some(alert) = &run.report.alert {
                *out.entry(alert.headline().to_string()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Number of runs that completed without an alert.
    pub fn completed_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.report.completed()).count()
    }

    /// Total damage events across the whole fleet.
    pub fn total_damage(&self) -> usize {
        self.runs.iter().map(|r| r.damage.len()).sum()
    }

    /// Total simulated lab time across the fleet (seconds).
    pub fn total_lab_time_s(&self) -> f64 {
        self.runs.iter().map(|r| r.report.lab_time_s).sum()
    }

    /// The runs that executed at one deployment stage (empty for fleets
    /// assembled without substrates).
    pub fn runs_at(&self, stage: Stage) -> impl Iterator<Item = &FleetRun> {
        self.runs.iter().filter(move |r| r.stage == Some(stage))
    }

    /// Total faults injected across the fleet.
    pub fn total_faults_injected(&self) -> u64 {
        self.runs.iter().map(|r| r.faults_injected).sum()
    }

    /// Fleet-wide recovery activity, summed over every run.
    pub fn total_recovery(&self) -> RecoveryCounters {
        let mut out = RecoveryCounters::default();
        for run in &self.runs {
            let r = run.report.recovery;
            out.retries += r.retries;
            out.recovered += r.recovered;
            out.quarantined += r.quarantined;
            out.skipped_quarantined += r.skipped_quarantined;
            out.safe_stops += r.safe_stops;
        }
        out
    }

    /// Fleet-wide verdict-cache hit rate, `hits / (hits + misses)`.
    /// `None` when no run performed any cached validation.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits: u64 = self.runs.iter().map(|r| r.cache_hits).sum();
        let misses: u64 = self.runs.iter().map(|r| r.cache_misses).sum();
        if hits + misses == 0 {
            None
        } else {
            Some(hits as f64 / (hits + misses) as f64)
        }
    }

    /// Total trajectory grid samples the fleet's validators
    /// collision-checked.
    pub fn total_samples_checked(&self) -> u64 {
        self.runs.iter().map(|r| r.samples_checked).sum()
    }

    /// Total grid samples the fleet's adaptive sweep kernels skipped.
    pub fn total_samples_skipped(&self) -> u64 {
        self.runs.iter().map(|r| r.samples_skipped).sum()
    }

    /// Total clearance distance evaluations across the fleet.
    pub fn total_distance_queries(&self) -> u64 {
        self.runs.iter().map(|r| r.distance_queries).sum()
    }

    /// Total batched-kernel lane slots across the fleet.
    pub fn total_distance_evals_batched(&self) -> u64 {
        self.runs.iter().map(|r| r.distance_evals_batched).sum()
    }

    /// Total whole-arm certificate spans across the fleet.
    pub fn total_certificate_spans(&self) -> u64 {
        self.runs.iter().map(|r| r.certificate_spans).sum()
    }

    /// Fleet-wide sweep skip rate, `skipped / (checked + skipped)`.
    /// `None` when no validator processed any trajectory sample.
    pub fn sweep_skip_rate(&self) -> Option<f64> {
        let checked = self.total_samples_checked();
        let skipped = self.total_samples_skipped();
        if checked + skipped == 0 {
            None
        } else {
            Some(skipped as f64 / (checked + skipped) as f64)
        }
    }
}

/// Runs every workflow against its own freshly-built lab, on `threads`
/// workers.
///
/// `setup(i)` builds the lab (and optionally a RABIT engine) for
/// workflow `i`; it is called from the worker that executes the run, so
/// labs never cross threads. With `Some(rabit)` the run is guarded
/// (check-then-forward); with `None` it is a pass-through baseline.
///
/// Determinism: for a deterministic `setup`, the returned
/// [`FleetReport::runs`] — traces, alerts, and damage logs — is
/// identical for every `threads >= 1`.
///
/// Guarded runs execute on the deployment fast path:
/// [`RabitConfig::first_violation_only`] is switched on, so rule
/// evaluation stops at the first violation (the run stops on the first
/// alert anyway).
///
/// [`RabitConfig::first_violation_only`]: rabit_core::RabitConfig::first_violation_only
pub fn run_fleet<S>(workflows: &[Workflow], threads: usize, setup: S) -> FleetReport
where
    S: Fn(usize) -> (Lab, Option<Rabit>) + Sync,
{
    let runs = run_indexed(workflows.len(), threads, |i| {
        let (mut lab, rabit) = setup(i);
        let (report, cache_hits, cache_misses, sweep, rulebase_epoch) = match rabit {
            Some(mut rabit) => {
                rabit.config_mut().first_violation_only = true;
                let report = Tracer::guarded(&mut lab, &mut rabit).run(&workflows[i]);
                let (hits, misses) = rabit.validator_cache_stats();
                let sweep = rabit.validator_sweep_stats();
                let epoch = rabit.rulebase_epoch();
                drop(rabit);
                (report, hits, misses, sweep, epoch)
            }
            None => (
                Tracer::pass_through(&mut lab).run(&workflows[i]),
                0,
                0,
                SweepStats::default(),
                rabit_rulebase::STATIC_EPOCH,
            ),
        };
        FleetRun {
            index: i,
            workflow: workflows[i].name().to_string(),
            stage: None,
            substrate: None,
            report,
            damage: lab.damage_log().to_vec(),
            cache_hits,
            cache_misses,
            samples_checked: sweep.samples_checked,
            samples_skipped: sweep.samples_skipped,
            distance_queries: sweep.distance_queries,
            distance_evals_batched: sweep.distance_evals_batched,
            certificate_spans: sweep.certificate_spans,
            faults_injected: lab.fault_stats().total_injected(),
            rulebase_epoch,
        }
    });
    FleetReport { threads, runs }
}

/// Runs each `(substrate, workflow)` job guarded on `threads` workers.
///
/// This is [`run_fleet`] made generic over deployment substrates: every
/// job instantiates a fresh `(Lab, Rabit)` pair from its substrate —
/// rulebase, catalog, latency, and (if the substrate attaches one)
/// trajectory validator included — so a single fleet can mix stages:
/// simulator replays next to testbed runs next to production profiles.
/// Runs are tagged with their substrate's name and [`Stage`]
/// (see [`FleetReport::runs_at`]).
///
/// Determinism: substrates build state inside the executing worker, so
/// reports are identical for every `threads >= 1`, exactly as for
/// [`run_fleet`].
pub fn run_fleet_on(jobs: &[(&dyn Substrate, &Workflow)], threads: usize) -> FleetReport {
    fleet_on_with(jobs, threads, None, None)
}

/// [`run_fleet_on`] against a live rule store: every job asks `source`
/// for `tenant`'s latest published snapshot *when the job starts
/// executing*, so a rule commit that lands mid-fleet governs the jobs
/// that start after it while jobs already in flight finish on the epoch
/// they captured. Each run records the epoch it validated against in
/// [`FleetRun::rulebase_epoch`].
///
/// With a source whose snapshot never changes (a pinned
/// [`rabit_rulebase::RulebaseSnapshot`], or a store nobody commits to),
/// every job sees the same single epoch and the fleet's verdicts are
/// bit-identical to [`run_fleet_on`] over substrates returning that
/// same rulebase.
pub fn run_fleet_on_live(
    jobs: &[(&dyn Substrate, &Workflow)],
    threads: usize,
    source: &dyn SnapshotSource,
    tenant: &TenantId,
) -> FleetReport {
    fleet_on_with(jobs, threads, None, Some((source, tenant)))
}

/// [`run_fleet_on`] under a fault plan: every job instantiates through
/// [`Substrate::instantiate_with`] using `plan.for_run(i)`, so run `i`
/// always draws the same injections no matter which worker executes it
/// or how many threads the fleet uses. Pass [`FaultPlan::none`] to get
/// exactly [`run_fleet_on`].
pub fn run_fleet_on_faulted(
    jobs: &[(&dyn Substrate, &Workflow)],
    threads: usize,
    plan: &FaultPlan,
) -> FleetReport {
    fleet_on_with(jobs, threads, Some(plan), None)
}

fn fleet_on_with(
    jobs: &[(&dyn Substrate, &Workflow)],
    threads: usize,
    plan: Option<&FaultPlan>,
    live: Option<(&dyn SnapshotSource, &TenantId)>,
) -> FleetReport {
    // One fleet-wide `(tenant, epoch)` snapshot cache: while the epoch
    // is unchanged, jobs reuse the same published `Arc` instead of
    // re-resolving the store per job — a 64-run fleet hits the store
    // once, not 64 times. The cache probes the source's epoch on every
    // job, so a commit landing mid-fleet still reaches later jobs.
    let snapshot_cache = Mutex::new(SnapshotCache::new());
    let runs = run_indexed(jobs.len(), threads, |i| {
        let (substrate, workflow) = jobs[i];
        let job = FleetJob {
            substrate,
            workflow,
            fault: plan.map(|p| p.for_run(i as u64)),
            guarded: true,
            // Live fleets resolve the snapshot here — at job start, on
            // the executing worker — so commits landing mid-fleet are
            // picked up by later jobs only.
            snapshot: live.map(|(source, tenant)| {
                snapshot_cache
                    .lock()
                    .expect("fleet snapshot cache poisoned")
                    .get(source, tenant)
            }),
        };
        let (mut run, _lab) = job.execute();
        run.index = i;
        run
    });
    FleetReport { threads, runs }
}

/// One self-contained trial: a substrate, a workflow, an optional fault
/// plan, and an execution mode. [`execute`](FleetJob::execute) is the
/// single code path behind [`run_fleet_on`]/[`run_fleet_on_faulted`],
/// exposed so external runners (the campaign crate) can execute exactly
/// the same trial semantics one job at a time and still inspect the
/// finished lab afterwards.
pub struct FleetJob<'a> {
    /// The deployment substrate the trial instantiates from.
    pub substrate: &'a dyn Substrate,
    /// The workflow to replay.
    pub workflow: &'a Workflow,
    /// An already-derived per-run fault plan (callers do their own
    /// `for_run` seed mixing; the plan is armed as-is).
    pub fault: Option<FaultPlan>,
    /// `true` = guarded (check-then-forward through a fresh RABIT
    /// engine); `false` = pass-through baseline.
    pub guarded: bool,
    /// A rulebase snapshot overriding the substrate's own (live-store
    /// fleets resolve one per job via [`run_fleet_on_live`]); `None`
    /// instantiates with the substrate's pinned rulebase.
    pub snapshot: Option<RulebaseSnapshot>,
}

impl FleetJob<'_> {
    /// Runs the trial and returns its [`FleetRun`] (with `index` 0 —
    /// callers that fan out assign their own) plus the finished lab,
    /// so post-run ground truth (device poses, damage detail) stays
    /// inspectable.
    pub fn execute(&self) -> (FleetRun, Lab) {
        let (lab, report, cache, sweep, rulebase_epoch) = if self.guarded {
            // No explicit per-run plan → the substrate's own, exactly
            // what `Substrate::instantiate` would arm.
            let fault = match &self.fault {
                Some(plan) => plan.clone(),
                None => self.substrate.fault_plan(),
            };
            let (mut lab, mut rabit) = match &self.snapshot {
                Some(snapshot) => self.substrate.instantiate_on(snapshot.clone(), &fault),
                None => self.substrate.instantiate_with(&fault),
            };
            rabit.config_mut().first_violation_only = true;
            let report = Tracer::guarded(&mut lab, &mut rabit).run(self.workflow);
            let cache = rabit.validator_cache_stats();
            let sweep = rabit.validator_sweep_stats();
            let epoch = rabit.rulebase_epoch();
            (lab, report, cache, sweep, epoch)
        } else {
            let mut lab = self.substrate.build_lab();
            if let Some(plan) = &self.fault {
                if !plan.is_empty() {
                    lab.arm_faults(plan.session());
                }
            }
            let report = Tracer::pass_through(&mut lab).run(self.workflow);
            (
                lab,
                report,
                (0, 0),
                SweepStats::default(),
                rabit_rulebase::STATIC_EPOCH,
            )
        };
        let run = FleetRun {
            index: 0,
            workflow: self.workflow.name().to_string(),
            stage: Some(self.substrate.stage()),
            substrate: Some(self.substrate.name().to_string()),
            report,
            damage: lab.damage_log().to_vec(),
            cache_hits: cache.0,
            cache_misses: cache.1,
            samples_checked: sweep.samples_checked,
            samples_skipped: sweep.samples_skipped,
            distance_queries: sweep.distance_queries,
            distance_evals_batched: sweep.distance_evals_batched,
            certificate_spans: sweep.certificate_spans,
            faults_injected: lab.fault_stats().total_injected(),
            rulebase_epoch,
        };
        // The damage log and fault stats are already captured; hand the
        // lab back for post-run ground-truth reads.
        (run, lab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_core::RabitConfig;
    use rabit_devices::{DeviceType, DosingDevice, RobotArm, Vial};
    use rabit_geometry::{Aabb, Vec3};
    use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rulebase};

    fn lab() -> Lab {
        Lab::new()
            .with_device(RobotArm::new(
                "viperx",
                Vec3::new(0.3, 0.0, 0.3),
                Vec3::new(0.1, -0.3, 0.2),
            ))
            .with_device(DosingDevice::new(
                "doser",
                Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
            ))
            .with_device(Vial::new("vial", Vec3::new(0.537, 0.018, 0.12)))
    }

    fn rabit() -> Rabit {
        let catalog = DeviceCatalog::new()
            .with(
                DeviceMeta::new("viperx", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
            )
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("vial", DeviceType::Container));
        Rabit::new(Rulebase::standard(), catalog, RabitConfig::default())
    }

    fn workflows() -> Vec<Workflow> {
        vec![
            Workflow::new("safe")
                .set_door("doser", true)
                .move_inside("viperx", "doser")
                .move_out("viperx")
                .set_door("doser", false),
            // Bug A shape: the door never opens.
            Workflow::new("bug_a")
                .move_inside("viperx", "doser")
                .move_out("viperx"),
            Workflow::new("safe2").set_door("doser", true),
        ]
    }

    #[test]
    fn guarded_fleet_reports_per_run_alerts() {
        let wfs = workflows();
        let fleet = run_fleet(&wfs, 2, |_| (lab(), Some(rabit())));
        assert_eq!(fleet.runs.len(), 3);
        assert_eq!(fleet.completed_runs(), 2);
        assert!(fleet.runs[0].report.completed());
        assert!(!fleet.runs[1].report.completed());
        assert_eq!(fleet.total_damage(), 0, "guarded fleet takes no damage");
        let summary = fleet.alert_summary();
        assert_eq!(summary.values().sum::<usize>(), 1);
    }

    #[test]
    fn unguarded_fleet_takes_damage() {
        let wfs = workflows();
        let fleet = run_fleet(&wfs, 2, |_| (lab(), None));
        assert_eq!(fleet.completed_runs(), 3, "nothing halts pass-through");
        assert_eq!(fleet.total_damage(), 1, "bug_a breaks the door");
        assert_eq!(fleet.runs[1].damage.len(), 1);
    }

    struct MiniSubstrate {
        stage: rabit_core::Stage,
    }

    impl rabit_core::Substrate for MiniSubstrate {
        fn name(&self) -> &str {
            "mini"
        }
        fn stage(&self) -> rabit_core::Stage {
            self.stage
        }
        fn build_lab(&self) -> Lab {
            Lab::new()
                .with_device(
                    RobotArm::new(
                        "viperx",
                        Vec3::new(0.3, 0.0, 0.3),
                        Vec3::new(0.1, -0.3, 0.2),
                    )
                    .with_latency(self.latency()),
                )
                .with_device(DosingDevice::new(
                    "doser",
                    Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
                ))
                .with_device(Vial::new("vial", Vec3::new(0.537, 0.018, 0.12)))
        }
        fn rulebase(&self) -> rabit_rulebase::RulebaseSnapshot {
            Rulebase::standard().into()
        }
        fn catalog(&self) -> DeviceCatalog {
            DeviceCatalog::new()
                .with(
                    DeviceMeta::new("viperx", DeviceType::RobotArm)
                        .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
                )
                .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
                .with(DeviceMeta::new("vial", DeviceType::Container))
        }
    }

    #[test]
    fn substrate_fleet_mixes_stages() {
        let sim = MiniSubstrate {
            stage: Stage::Simulator,
        };
        let prod = MiniSubstrate {
            stage: Stage::Production,
        };
        let wfs = workflows();
        let jobs: Vec<(&dyn Substrate, &Workflow)> = vec![
            (&sim, &wfs[0]),
            (&prod, &wfs[0]),
            (&sim, &wfs[1]),
            (&prod, &wfs[2]),
        ];
        let fleet = run_fleet_on(&jobs, 2);
        assert_eq!(fleet.runs.len(), 4);
        assert_eq!(fleet.runs_at(Stage::Simulator).count(), 2);
        assert_eq!(fleet.runs_at(Stage::Production).count(), 2);
        assert_eq!(fleet.completed_runs(), 3, "bug_a alerts at its stage");
        let blocked = &fleet.runs[2];
        assert_eq!(blocked.stage, Some(Stage::Simulator));
        assert_eq!(blocked.substrate.as_deref(), Some("mini"));
        assert!(!blocked.report.completed());
        assert_eq!(fleet.total_damage(), 0, "guarded fleet takes no damage");
        // The same stage latency ran faster in simulation than production.
        assert!(fleet.runs[0].report.lab_time_s < fleet.runs[1].report.lab_time_s);
    }

    #[test]
    fn fleet_job_matches_fleet_semantics() {
        let sub = MiniSubstrate {
            stage: Stage::Testbed,
        };
        let wfs = workflows();
        // Guarded single job ≡ the same job inside run_fleet_on.
        let jobs: Vec<(&dyn Substrate, &Workflow)> = vec![(&sub, &wfs[1])];
        let fleet = run_fleet_on(&jobs, 1);
        let (solo, lab) = FleetJob {
            substrate: &sub,
            workflow: &wfs[1],
            fault: None,
            guarded: true,
            snapshot: None,
        }
        .execute();
        assert_eq!(
            solo.report.completed(),
            fleet.runs[0].report.completed(),
            "guarded FleetJob and run_fleet_on agree on the outcome"
        );
        assert_eq!(solo.damage.len(), fleet.runs[0].damage.len());
        assert!(lab.device(&"viperx".into()).is_some(), "lab stays readable");
        // Unguarded pass-through lets bug_a damage the door.
        let (unguarded, _) = FleetJob {
            substrate: &sub,
            workflow: &wfs[1],
            fault: None,
            guarded: false,
            snapshot: None,
        }
        .execute();
        assert!(unguarded.report.completed(), "nothing halts pass-through");
        assert_eq!(unguarded.damage.len(), 1, "bug_a breaks the door");
    }

    #[test]
    fn fleet_results_keyed_by_workflow_index() {
        let wfs = workflows();
        let fleet = run_fleet(&wfs, 3, |_| (lab(), Some(rabit())));
        for (i, run) in fleet.runs.iter().enumerate() {
            assert_eq!(run.index, i);
            assert_eq!(run.workflow, wfs[i].name());
        }
    }
}
