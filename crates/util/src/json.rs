//! A minimal JSON value, parser, and printer.
//!
//! Replaces `serde_json` for the workspace's needs: configuration files
//! ([`crate::json::Json::parse`] reports line/column for the pilot
//! study's "JSON syntax errors" class), trace JSONL serialisation, and
//! benchmark reports. Types that cross a JSON boundary implement
//! [`ToJson`]/[`FromJson`] by hand.
//!
//! Conventions mirror the formats the repo has always used: structs are
//! objects, unit enum variants are strings, data-carrying variants are
//! single-key objects (`{"Blocked": {"alert": "..."}}`).

use std::fmt;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] carrying the 1-based line and column of
    /// the first offending character.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.peek().is_some() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Serialises compactly (single line).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises pretty-printed with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
                write_string(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's shortest-roundtrip float formatting; integral values
        // print without a fractional part and parse back exactly.
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/inf; `null` is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// A parse or decode error with a source position (1-based; decode
/// errors raised away from text carry line 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    line: usize,
    column: usize,
    message: String,
}

impl JsonError {
    /// A decode (schema-mismatch) error with no source position.
    pub fn decode(message: impl Into<String>) -> Self {
        JsonError {
            line: 0,
            column: 0,
            message: message.into(),
        }
    }

    /// 1-based line of the offending character (0 for decode errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the offending character (0 for decode errors).
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.message, self.line, self.column
            )
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> JsonError {
        let (mut line, mut column) = (1, 1);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble the UTF-8 sequence (input was &str, so
                    // it is valid by construction).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    self.pos = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low half.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.error("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.error("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.error("invalid unicode escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to JSON.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes `self` from JSON.
    ///
    /// # Errors
    ///
    /// Returns a decode [`JsonError`] when the value's shape does not
    /// match.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool()
            .ok_or_else(|| JsonError::decode(format!("expected bool, got {json}")))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64()
            .ok_or_else(|| JsonError::decode(format!("expected number, got {json}")))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let n = f64::from_json(json)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(JsonError::decode(format!(
                "expected unsigned integer, got {n}"
            )));
        }
        Ok(n as usize)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for u64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(usize::from_json(json)? as u64)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::decode(format!("expected string, got {json}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or_else(|| JsonError::decode(format!("expected array, got {json}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl ToJson for [f64; 3] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|&v| Json::Num(v)).collect())
    }
}

impl FromJson for [f64; 3] {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let items = json
            .as_arr()
            .ok_or_else(|| JsonError::decode(format!("expected [x, y, z], got {json}")))?;
        if items.len() != 3 {
            return Err(JsonError::decode(format!(
                "expected 3 coordinates, got {}",
                items.len()
            )));
        }
        Ok([
            f64::from_json(&items[0])?,
            f64::from_json(&items[1])?,
            f64::from_json(&items[2])?,
        ])
    }
}

/// Decodes a required object field.
///
/// # Errors
///
/// Returns a decode error if the key is missing or mistyped.
pub fn field<T: FromJson>(json: &Json, key: &str) -> Result<T, JsonError> {
    let v = json
        .get(key)
        .ok_or_else(|| JsonError::decode(format!("missing field '{key}'")))?;
    T::from_json(v).map_err(|e| JsonError::decode(format!("field '{key}': {e}")))
}

/// Decodes an optional object field (absent or `null` gives the default).
///
/// # Errors
///
/// Returns a decode error if the key is present but mistyped.
pub fn field_or_default<T: FromJson + Default>(json: &Json, key: &str) -> Result<T, JsonError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(T::default()),
        Some(v) => T::from_json(v).map_err(|e| JsonError::decode(format!("field '{key}': {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("3.25").unwrap(), Json::Num(3.25));
        assert_eq!(Json::parse("-1e3").unwrap(), Json::Num(-1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::Str("line1\nline2\t\"quoted\" \\ \u{1F600} \u{08}".into());
        let text = original.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            Json::parse(r#""A😀""#).unwrap(),
            Json::Str("A\u{1F600}".into())
        );
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = Json::parse("{\"a\": 1,\n \"b\" 2}").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.column() > 1);
        assert!(err.to_string().contains("line 2"));
        let err2 = Json::parse("[1, 2").unwrap_err();
        assert!(err2.line() >= 1);
        assert!(Json::parse("[1, 2] tail").is_err());
        assert!(Json::parse("{\"a\" : }").is_err());
    }

    #[test]
    fn compact_and_pretty_both_reparse() {
        let v = Json::obj([
            ("name", Json::Str("fleet".into())),
            ("runs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("ok", Json::Bool(true)),
            ("empty", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"runs\""));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for n in [0.0, -0.5, 1.0 / 3.0, 1e-12, 123456789.123456, 5.0] {
            let text = Json::Num(n).to_compact();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(n), "{text}");
        }
        // Non-finite numbers degrade to null rather than invalid JSON.
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn field_helpers() {
        let v = Json::parse(r#"{"x": 3, "s": "hi", "opt": null}"#).unwrap();
        assert_eq!(field::<f64>(&v, "x").unwrap(), 3.0);
        assert_eq!(field::<String>(&v, "s").unwrap(), "hi");
        assert_eq!(field_or_default::<String>(&v, "opt").unwrap(), "");
        assert_eq!(field_or_default::<String>(&v, "absent").unwrap(), "");
        assert!(field::<f64>(&v, "absent").is_err());
        assert!(field::<f64>(&v, "s").is_err());
        let err = field::<f64>(&v, "missing").unwrap_err();
        assert_eq!(err.line(), 0);
    }

    #[test]
    fn vec_and_option_and_array_conversions() {
        let v = vec![1.0, 2.0, 3.0].to_json();
        assert_eq!(Vec::<f64>::from_json(&v).unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(Option::<f64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_json(&Json::Num(2.0)).unwrap(),
            Some(2.0)
        );
        let p: [f64; 3] = [0.1, 0.2, 0.3];
        assert_eq!(<[f64; 3]>::from_json(&p.to_json()).unwrap(), p);
        assert!(<[f64; 3]>::from_json(&Json::parse("[1, 2]").unwrap()).is_err());
        assert!(usize::from_json(&Json::Num(-1.0)).is_err());
        assert!(usize::from_json(&Json::Num(1.5)).is_err());
        assert_eq!(u64::from_json(&Json::Num(7.0)).unwrap(), 7);
    }
}
