//! Epoch-stamped, copy-on-write rulebase snapshots and tenant identity.
//!
//! The rule service (`rabit-service`) promotes the rulebase from a value
//! baked into a substrate at `instantiate` time to a versioned store
//! shared by many labs. The handle the rest of the system consumes is
//! defined here, at the bottom of the dependency graph, so every layer —
//! engine, substrates, fleets, broker — can speak the same type:
//!
//! * [`TenantId`] — names one lab (tenant) inside a shared store;
//! * [`RulebaseSnapshot`] — an immutable, epoch-stamped `Arc` handle to a
//!   [`Rulebase`]. Cloning is a reference-count bump; an in-flight
//!   validation that captured a snapshot keeps checking against exactly
//!   the rules it started with, no matter how many commits land
//!   meanwhile;
//! * [`SnapshotSource`] — the "give me this tenant's latest published
//!   snapshot" capability, implemented by `rabit_service::RuleStore`
//!   (and trivially by a pinned snapshot for static setups).

use crate::rulebase::Rulebase;
use std::fmt;
use std::sync::Arc;

/// Identifies one tenant (one lab) inside a shared rule store.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(String);

impl TenantId {
    /// A tenant id from any string-ish name.
    pub fn new(name: impl Into<String>) -> Self {
        TenantId(name.into())
    }

    /// The tenant every single-lab setup implicitly lives in.
    pub fn default_tenant() -> Self {
        TenantId("default".to_string())
    }

    /// The tenant's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(s: &str) -> Self {
        TenantId::new(s)
    }
}

impl From<String> for TenantId {
    fn from(s: String) -> Self {
        TenantId(s)
    }
}

/// The epoch a pinned (static, never-committed) snapshot carries.
pub const STATIC_EPOCH: u64 = 0;

/// An immutable, epoch-stamped handle to a published [`Rulebase`].
///
/// Snapshots are the copy-on-write unit of the rule service: every
/// commit builds a fresh `Rulebase`, stamps it with the tenant's next
/// epoch, and publishes it behind a new `Arc`. Holders of older
/// snapshots are unaffected — a validation that started on epoch *N*
/// finishes on epoch *N* — while anything that re-reads the store picks
/// up the latest epoch.
///
/// `Deref`s to [`Rulebase`], so `snapshot.check(...)`, `snapshot.len()`
/// etc. work directly.
#[derive(Debug, Clone)]
pub struct RulebaseSnapshot {
    epoch: u64,
    tenant: TenantId,
    rulebase: Arc<Rulebase>,
}

impl RulebaseSnapshot {
    /// A static snapshot: the rulebase pinned at [`STATIC_EPOCH`] under
    /// the default tenant. This is what every pre-service construction
    /// path (`Rabit::new`, plain substrates) produces, so a store used
    /// with a single static epoch is bit-identical to no store at all.
    pub fn pinned(rulebase: Rulebase) -> Self {
        RulebaseSnapshot {
            epoch: STATIC_EPOCH,
            tenant: TenantId::default_tenant(),
            rulebase: Arc::new(rulebase),
        }
    }

    /// A snapshot published by a store commit: an explicit tenant and
    /// epoch around an already-shared rulebase.
    pub fn published(tenant: TenantId, epoch: u64, rulebase: Arc<Rulebase>) -> Self {
        RulebaseSnapshot {
            epoch,
            tenant,
            rulebase,
        }
    }

    /// The epoch this snapshot was published at ([`STATIC_EPOCH`] for
    /// pinned snapshots). Verdict caches compose this with their world
    /// epoch so a rule commit can never serve a stale entry.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The tenant this snapshot belongs to.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// The shared rulebase.
    pub fn rulebase(&self) -> &Rulebase {
        &self.rulebase
    }

    /// Whether two snapshots share the same published rulebase object
    /// (same `Arc`, not just equal contents).
    pub fn same_publication(&self, other: &RulebaseSnapshot) -> bool {
        Arc::ptr_eq(&self.rulebase, &other.rulebase)
    }

    /// Copy-on-write local mutation: forks the shared rulebase if other
    /// holders exist and bumps the epoch, so any verdict cache keyed on
    /// the rulebase epoch treats the locally-modified rulebase as a new
    /// generation. Used by `Rabit::rulebase_mut` (the evaluation adds
    /// extension rules between configurations); store-published
    /// snapshots should be mutated through the store instead.
    pub fn make_mut(&mut self) -> &mut Rulebase {
        self.epoch += 1;
        Arc::make_mut(&mut self.rulebase)
    }
}

impl std::ops::Deref for RulebaseSnapshot {
    type Target = Rulebase;
    fn deref(&self) -> &Rulebase {
        &self.rulebase
    }
}

impl From<Rulebase> for RulebaseSnapshot {
    fn from(rulebase: Rulebase) -> Self {
        RulebaseSnapshot::pinned(rulebase)
    }
}

/// Anything that can hand out the latest published snapshot for a
/// tenant: the live `RuleStore`, or a pinned snapshot for static setups.
/// Fleet runners take a `&dyn SnapshotSource` so every job validates
/// against the snapshot that is current *when the job starts*, which is
/// exactly the live-CRUD semantics: in-flight jobs keep their epoch, new
/// jobs pick up the latest.
pub trait SnapshotSource: Send + Sync {
    /// The tenant's latest published snapshot. Unknown tenants fall back
    /// to an empty pinned rulebase (detects nothing) — stores that want
    /// to reject unknown tenants do so on their typed CRUD surface.
    fn snapshot(&self, tenant: &TenantId) -> RulebaseSnapshot;

    /// The tenant's current epoch, if the source can answer more cheaply
    /// than materialising a full snapshot (an atomic load for the live
    /// store, a field read for a pinned snapshot). `None` — the default —
    /// means "unknown, always fetch", which disables [`SnapshotCache`]
    /// reuse but never changes semantics.
    fn snapshot_epoch(&self, _tenant: &TenantId) -> Option<u64> {
        None
    }
}

/// A pinned snapshot is its own (single-tenant, never-changing) source.
impl SnapshotSource for RulebaseSnapshot {
    fn snapshot(&self, _tenant: &TenantId) -> RulebaseSnapshot {
        self.clone()
    }

    fn snapshot_epoch(&self, _tenant: &TenantId) -> Option<u64> {
        Some(self.epoch)
    }
}

/// A single-entry `(requested tenant, epoch)` → [`RulebaseSnapshot`]
/// cache over a [`SnapshotSource`].
///
/// Fleet runners resolve the *same* tenant for every job in a fleet, so
/// one entry is enough to collapse a 64-run fleet's 64 store hits into
/// one fetch plus 63 epoch probes ([`SnapshotSource::snapshot_epoch`],
/// an atomic load on the live store). The cache is keyed on the tenant
/// *as requested* — not the tenant stamped on the returned snapshot —
/// so pinned sources, which answer every tenant with their own single
/// publication, hit too. Any epoch change (a commit landing mid-fleet)
/// misses and re-fetches, preserving the live-CRUD contract that each
/// job validates against the snapshot current when it starts. Sources
/// that do not implement the epoch probe always miss, which is safe.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    entry: Option<(TenantId, u64, RulebaseSnapshot)>,
    hits: u64,
    fetches: u64,
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> Self {
        SnapshotCache::default()
    }

    /// The tenant's latest snapshot, reusing the cached publication when
    /// the source reports an unchanged epoch.
    pub fn get(&mut self, source: &dyn SnapshotSource, tenant: &TenantId) -> RulebaseSnapshot {
        if let Some(epoch) = source.snapshot_epoch(tenant) {
            if let Some((cached_tenant, cached_epoch, snapshot)) = &self.entry {
                if cached_tenant == tenant && *cached_epoch == epoch {
                    self.hits += 1;
                    return snapshot.clone();
                }
            }
            let snapshot = source.snapshot(tenant);
            self.fetches += 1;
            self.entry = Some((tenant.clone(), epoch, snapshot.clone()));
            return snapshot;
        }
        // No cheap epoch probe: every call is a fetch.
        self.fetches += 1;
        source.snapshot(tenant)
    }

    /// How many calls were served from the cached entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// How many calls resolved the source's full snapshot path.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_snapshot_is_epoch_zero_default_tenant() {
        let snap = RulebaseSnapshot::pinned(Rulebase::standard());
        assert_eq!(snap.epoch(), STATIC_EPOCH);
        assert_eq!(snap.tenant(), &TenantId::default_tenant());
        assert_eq!(snap.len(), 11, "deref reaches the rulebase");
        let from: RulebaseSnapshot = Rulebase::standard().into();
        assert_eq!(from.epoch(), STATIC_EPOCH);
    }

    #[test]
    fn clones_share_the_publication() {
        let snap = RulebaseSnapshot::pinned(Rulebase::hein_lab());
        let other = snap.clone();
        assert!(snap.same_publication(&other));
        let rebuilt = RulebaseSnapshot::pinned(Rulebase::hein_lab());
        assert!(!snap.same_publication(&rebuilt));
    }

    #[test]
    fn make_mut_forks_and_bumps_the_epoch() {
        let snap = RulebaseSnapshot::pinned(Rulebase::standard());
        let mut fork = snap.clone();
        fork.make_mut()
            .push(crate::general::rule_4_no_double_pick());
        assert_eq!(fork.epoch(), STATIC_EPOCH + 1);
        assert_eq!(fork.len(), 12);
        // The original holder is unaffected: copy-on-write.
        assert_eq!(snap.epoch(), STATIC_EPOCH);
        assert_eq!(snap.len(), 11);
        assert!(!snap.same_publication(&fork));
    }

    #[test]
    fn pinned_snapshot_is_a_source() {
        let snap = RulebaseSnapshot::pinned(Rulebase::standard());
        let via_source = snap.snapshot(&TenantId::new("anything"));
        assert!(snap.same_publication(&via_source));
        assert_eq!(via_source.epoch(), snap.epoch());
    }

    #[test]
    fn snapshot_cache_reuses_until_the_epoch_moves() {
        /// A source that counts full snapshot materialisations.
        struct Counting {
            snap: RulebaseSnapshot,
            epoch: std::sync::atomic::AtomicU64,
            fetches: std::sync::atomic::AtomicU64,
        }
        impl SnapshotSource for Counting {
            fn snapshot(&self, tenant: &TenantId) -> RulebaseSnapshot {
                self.fetches
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                RulebaseSnapshot::published(
                    tenant.clone(),
                    self.epoch.load(std::sync::atomic::Ordering::Relaxed),
                    Arc::new(self.snap.rulebase().clone()),
                )
            }
            fn snapshot_epoch(&self, _tenant: &TenantId) -> Option<u64> {
                Some(self.epoch.load(std::sync::atomic::Ordering::Relaxed))
            }
        }
        let source = Counting {
            snap: RulebaseSnapshot::pinned(Rulebase::standard()),
            epoch: std::sync::atomic::AtomicU64::new(3),
            fetches: std::sync::atomic::AtomicU64::new(0),
        };
        let tenant = TenantId::new("lab");
        let mut cache = SnapshotCache::new();
        let first = cache.get(&source, &tenant);
        let second = cache.get(&source, &tenant);
        assert!(first.same_publication(&second), "epoch 3 reused");
        assert_eq!(source.fetches.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!((cache.hits(), cache.fetches()), (1, 1));
        // A different tenant misses (single entry, keyed on the request).
        let _other = cache.get(&source, &TenantId::new("other"));
        assert_eq!(source.fetches.load(std::sync::atomic::Ordering::Relaxed), 2);
        // An epoch bump misses and picks up the new publication.
        source.epoch.store(4, std::sync::atomic::Ordering::Relaxed);
        let third = cache.get(&source, &tenant);
        assert_eq!(third.epoch(), 4);
        assert!(!third.same_publication(&second));
        assert_eq!(source.fetches.load(std::sync::atomic::Ordering::Relaxed), 3);
    }

    #[test]
    fn snapshot_cache_hits_on_pinned_sources() {
        let pinned = RulebaseSnapshot::pinned(Rulebase::standard());
        let mut cache = SnapshotCache::new();
        let a = cache.get(&pinned, &TenantId::new("any"));
        let b = cache.get(&pinned, &TenantId::new("any"));
        assert!(a.same_publication(&b));
        assert_eq!((cache.hits(), cache.fetches()), (1, 1));
    }

    #[test]
    fn tenant_id_round_trips() {
        let t = TenantId::new("hein-lab");
        assert_eq!(t.as_str(), "hein-lab");
        assert_eq!(t.to_string(), "hein-lab");
        assert_eq!(TenantId::from("hein-lab"), t);
        assert_eq!(TenantId::from("hein-lab".to_string()), t);
        assert!(TenantId::new("a") < TenantId::new("b"));
    }
}
