//! Real compute cost of the full 16-bug uncontrolled study — the
//! regression-suite workload a lab would run before each deployment.

use criterion::{criterion_group, criterion_main, Criterion};
use rabit_buginject::{run_study, RabitStage};
use std::hint::black_box;

fn bench_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("study");
    group.sample_size(10);
    group.bench_function("sixteen_bugs_modified", |b| {
        b.iter(|| {
            let result = run_study(black_box(RabitStage::Modified));
            assert_eq!(result.detected(), 12);
            black_box(result.detected())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_study);
criterion_main!(benches);
