//! The Extended Simulator (stage 1 of RABIT's three-stage framework).
//!
//! The paper extends the vendor's URSim with 3D cuboid device models and
//! continuous trajectory polling (§III, Fig. 3). This crate is that
//! simulator, built from scratch on `rabit-kinematics`:
//!
//! * [`SimWorld`] — named cuboid obstacles (devices, platform, walls);
//! * [`ExtendedSimulator`] — kinematic arms mirrored against the world,
//!   implementing [`rabit_core::TrajectoryValidator`] so it can be
//!   attached to the engine as the Fig. 2 `ValidTrajectory` hook;
//! * GUI vs headless check latencies reproducing the ~2 s / ~112%
//!   overhead finding (§II-C) and the planned GUI bypass.
//!
//! # Example
//!
//! ```
//! use rabit_sim::{ExtendedSimulator, SimConfig, SimWorld};
//! use rabit_kinematics::presets;
//!
//! let world = SimWorld::new().with_platform(1.5);
//! let sim = ExtendedSimulator::new(world, SimConfig::default())
//!     .with_arm("ur3e", presets::ur3e());
//! assert_eq!(sim.checks_performed(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shapes;
mod simulator;
mod substrate;
mod world;

pub use shapes::{ObstacleShape, VerticalCylinder};
pub use simulator::{ExtendedSimulator, SimConfig, GUI_CHECK_LATENCY_S, HEADLESS_CHECK_LATENCY_S};
pub use substrate::SimulatorSubstrate;
pub use world::{ClearanceScratch, ExclusionMask, HitDetail, NamedBox, SimWorld};
