//! The three-stage deployment framework in action (paper Table I and
//! §III): a researcher drafts a new workflow, debugs it against the
//! Extended Simulator (fast, nothing can break), shakes out the remaining
//! bugs on the low-fidelity testbed (slow, cardboard breaks), and only
//! then promotes it to production speeds.
//!
//! ```text
//! cargo run --example three_stage
//! ```

use rabit::devices::{ActionKind, Command, LatencyModel};
use rabit::geometry::Vec3;
use rabit::testbed::{RabitStage, Testbed};
use rabit::tracer::{TraceReport, Tracer, Workflow};

/// Draft 1: the researcher mistyped the dosing approach — the waypoint
/// lands inside the dosing device's volume.
fn draft_v1(tb: &Testbed) -> Workflow {
    let grid = tb.locations.grid_nw_viperx;
    Workflow::new("coating_draft_v1")
        .go_to_sleep("ned2")
        .go_home("viperx")
        .move_to("viperx", grid.pickup_safe_height)
        .pick_up("viperx", "vial", grid.pickup)
        .move_to("viperx", grid.pickup_safe_height)
        .move_to("viperx", Vec3::new(0.15, 0.50, 0.15)) // typo: inside the doser
        .go_home("viperx")
}

/// Draft 2: waypoint fixed, but the researcher forgot to park ViperX
/// before moving Ned2 — the two-arm conflict the testbed exists to catch.
fn draft_v2(tb: &Testbed) -> Workflow {
    let grid = tb.locations.grid_nw_viperx;
    Workflow::new("coating_draft_v2")
        .go_to_sleep("ned2")
        .go_home("viperx")
        .move_to("viperx", grid.pickup_safe_height)
        .pick_up("viperx", "vial", grid.pickup)
        .move_to("viperx", grid.pickup_safe_height)
        .place_at("viperx", "vial", grid.pickup)
        .move_to("viperx", grid.pickup_safe_height)
        // Forgot: .go_to_sleep("viperx")
        .move_to("ned2", tb.locations.random_location_ned2)
        .go_home("ned2")
}

/// Draft 3: both fixes applied — ready for promotion.
fn draft_v3(tb: &Testbed) -> Workflow {
    let grid = tb.locations.grid_nw_viperx;
    Workflow::new("coating_v3")
        .go_to_sleep("ned2")
        .go_home("viperx")
        .move_to("viperx", grid.pickup_safe_height)
        .pick_up("viperx", "vial", grid.pickup)
        .move_to("viperx", grid.pickup_safe_height)
        .place_at("viperx", "vial", grid.pickup)
        .move_to("viperx", grid.pickup_safe_height)
        .go_home("viperx")
        .go_to_sleep("viperx")
        .move_to("ned2", Vec3::new(0.95, 0.2, 0.3))
        .go_home("ned2")
        .go_to_sleep("ned2")
}

fn show(stage: &str, report: &TraceReport, damage: usize) {
    match &report.alert {
        Some(alert) => println!(
            "  [{stage}] STOPPED after {} commands: {alert}",
            report.executed
        ),
        None => println!(
            "  [{stage}] completed: {} commands in {:.0} s of lab time, {damage} damage event(s)",
            report.executed, report.lab_time_s
        ),
    }
}

fn main() {
    // ---- Stage 1: the Extended Simulator. Everything virtual, nothing
    //      breaks, iterations are near-instant. ----
    println!("stage 1 — Extended Simulator (virtual, fast, safe):");
    let mut tb = Testbed::with_latency(LatencyModel::SIMULATED);
    let wf = draft_v1(&tb);
    let mut rabit = tb.rabit(RabitStage::ModifiedWithSimulator);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    show("simulator", &report, tb.lab.damage_log().len());
    assert!(
        report.alert.is_some(),
        "the typo must be caught in simulation"
    );

    let mut tb = Testbed::with_latency(LatencyModel::SIMULATED);
    let wf = draft_v2(&tb);
    let mut rabit = tb.rabit(RabitStage::ModifiedWithSimulator);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    show("simulator", &report, tb.lab.damage_log().len());

    // ---- Stage 2: the physical testbed. Cardboard mockups, toy arms —
    //      intentionally unsafe runs are affordable here, including with
    //      RABIT switched off to verify the bug is real. ----
    println!("\nstage 2 — low-fidelity testbed (cardboard, cheap to break):");
    let mut tb = Testbed::new();
    let wf = draft_v2(&tb);
    let unguarded = Tracer::pass_through(&mut tb.lab).run(&wf);
    show("testbed, RABIT off", &unguarded, tb.lab.damage_log().len());
    assert!(
        !tb.lab.damage_log().is_empty(),
        "v2 really collides the arms when unguarded"
    );

    let mut tb = Testbed::new();
    let wf = draft_v2(&tb);
    let mut rabit = tb.rabit(RabitStage::Modified);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    show("testbed, RABIT on", &report, tb.lab.damage_log().len());
    assert!(report.alert.is_some() && tb.lab.damage_log().is_empty());

    let mut tb = Testbed::new();
    let wf = draft_v3(&tb);
    let mut rabit = tb.rabit(RabitStage::Modified);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    show("testbed, RABIT on", &report, tb.lab.damage_log().len());
    assert!(report.completed(), "v3 is clean");

    // ---- Stage 3: production speeds, full guard stack. ----
    println!("\nstage 3 — production (slow, expensive, guarded):");
    let mut tb = Testbed::with_latency(LatencyModel::PRODUCTION);
    let wf = draft_v3(&tb);
    let mut rabit = tb.rabit(RabitStage::ModifiedWithSimulator);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    show("production", &report, tb.lab.damage_log().len());
    assert!(report.completed());
    println!(
        "\npromoted: two bugs caught across stages 1-2, zero damage anywhere, \
         v3 deployed with {:.1} s of RABIT overhead.",
        report.rabit_overhead_s
    );

    // One command per stage cost comparison (the Table I story).
    let example = |latency: LatencyModel| -> f64 {
        let mut tb = Testbed::with_latency(latency);
        let wf = Workflow::new("one_move").then(Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.4, 0.1, 0.3),
            },
        ));
        Tracer::pass_through(&mut tb.lab).run(&wf).lab_time_s
    };
    println!(
        "\none arm move costs {:.2} s simulated, {:.2} s on the testbed, {:.2} s in production.",
        example(LatencyModel::SIMULATED),
        example(LatencyModel::TESTBED),
        example(LatencyModel::PRODUCTION)
    );
}
