//! # RABIT — a Robot Arm Bug Intervention Tool for Self-Driving Labs
//!
//! Facade crate re-exporting the full RABIT stack. See the README for a
//! tour and `DESIGN.md` for the crate inventory.
//!
//! ```
//! use rabit::geometry::Vec3;
//!
//! let grid = Vec3::new(0.537, 0.018, 0.12);
//! assert!(grid.is_finite());
//! ```

#![forbid(unsafe_code)]

pub use rabit_geometry as geometry;

/// Re-export of the bug-injection framework.
pub use rabit_buginject as buginject;
/// Re-export of the resumable campaign runner.
pub use rabit_campaign as campaign;
/// Re-export of the JSON configuration subsystem.
pub use rabit_config as config;
/// Re-export of the core engine.
pub use rabit_core as core;
/// Re-export of the device models.
pub use rabit_devices as devices;
/// Re-export of the kinematics substrate.
pub use rabit_kinematics as kinematics;
/// Re-export of the production stage.
pub use rabit_production as production;
/// Re-export of the RAD dataset substrate.
pub use rabit_rad as rad;
/// Re-export of the rulebase.
pub use rabit_rulebase as rulebase;
/// Re-export of the versioned multi-tenant rule service.
pub use rabit_service as service;
/// Re-export of the Extended Simulator.
pub use rabit_sim as sim;
/// Re-export of the testbed stage.
pub use rabit_testbed as testbed;
/// Re-export of the tracer (RATracer equivalent).
pub use rabit_tracer as tracer;
/// Re-export of the dependency-free utility substrate (PRNG, JSON).
pub use rabit_util as util;
