//! The simulated world: named obstacles.
//!
//! The Extended Simulator models "each device on the experiment deck as a
//! 3D cuboid object" (paper §III, Fig. 3), plus the mounting platform and
//! walls that URSim itself "does not account for". The open-challenge
//! shape extension ([`ObstacleShape`]) additionally supports hemispheres,
//! cylinders, and composites for devices that "do not comply with RABIT's
//! cuboid specification" (§V-A).

use crate::shapes::{DistancePrim, ObstacleShape};
use rabit_geometry::broadphase::{Bvh, PacketLists, QueryCache};
use rabit_geometry::{distance, Aabb, Capsule, Vec3};

/// A named obstacle (historically a cuboid; any [`ObstacleShape`] today).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedBox {
    /// Obstacle name (device id, `"platform"`, `"wall_north"`, …).
    pub name: String,
    /// The obstacle's shape.
    pub shape: ObstacleShape,
}

impl NamedBox {
    /// Creates a named cuboid obstacle.
    pub fn new(name: impl Into<String>, volume: Aabb) -> Self {
        NamedBox {
            name: name.into(),
            shape: ObstacleShape::Cuboid(volume),
        }
    }

    /// Creates a named obstacle of any shape.
    pub fn with_shape(name: impl Into<String>, shape: ObstacleShape) -> Self {
        NamedBox {
            name: name.into(),
            shape,
        }
    }

    /// A conservative axis-aligned bound of the shape.
    pub fn bounding_box(&self) -> Aabb {
        self.shape.bounding_box()
    }
}

/// The static world the simulator checks trajectories against.
///
/// Obstacles keep their insertion order — [`SimWorld::first_hit`] reports
/// the *first inserted* obstacle that is hit, whether or not the
/// broad-phase index is used. The index (a flat AABB BVH over the
/// obstacles' bounding boxes) is rebuilt eagerly on every mutation, so
/// queries stay `&self` and two worlds with equal obstacle lists compare
/// equal.
#[derive(Debug, Clone, Default)]
pub struct SimWorld {
    obstacles: Vec<NamedBox>,
    index: Bvh,
    /// Primitive-level distance index (SoA layout + its own BVH) driving
    /// the batched clearance kernels. Rebuilt alongside `index`.
    dist: DistanceIndex,
    /// Monotonic mutation counter: bumped on every obstacle change, so
    /// downstream caches (the simulator's verdict cache) can key on it
    /// and invalidate without diffing obstacle lists.
    epoch: u64,
}

/// The distance decomposition of the obstacle set: every shape flattened
/// into box and capsule/sphere primitives stored structure-of-arrays
/// (see [`rabit_geometry::distance::ObstacleSoA`]), plus a BVH over the
/// per-primitive broad-phase bounds. Box primitives occupy primitive ids
/// `0..n_boxes`, capsule primitives follow — so an ascending candidate
/// list splits into the two kernel batches with one partition point.
#[derive(Debug, Clone, Default)]
struct DistanceIndex {
    soa: distance::ObstacleSoA,
    /// Primitive id → owning obstacle index.
    owners: Vec<u32>,
    /// Per-primitive broad-phase bounds (matching the owning part's
    /// [`ObstacleShape::bounding_box`] contribution).
    bounds: Vec<Aabb>,
    bvh: Bvh,
    n_boxes: usize,
}

impl PartialEq for SimWorld {
    fn eq(&self, other: &Self) -> bool {
        // Equality is over the obstacle list only: the index is a pure
        // function of it, and the epoch is a mutation counter, not part
        // of the world's observable geometry.
        self.obstacles == other.obstacles
    }
}

impl SimWorld {
    /// An empty world.
    pub fn new() -> Self {
        SimWorld::default()
    }

    /// Adds a cuboid obstacle (builder style).
    pub fn with_obstacle(mut self, name: impl Into<String>, volume: Aabb) -> Self {
        self.add_obstacle(name, volume);
        self
    }

    /// Adds an obstacle of any shape (builder style) — hemispheric
    /// centrifuges, bumped thermoshakers, cylindrical nozzles.
    pub fn with_shaped_obstacle(mut self, name: impl Into<String>, shape: ObstacleShape) -> Self {
        self.obstacles.push(NamedBox::with_shape(name, shape));
        self.reindex();
        self
    }

    /// Adds the mounting platform: a slab below `z = 0` spanning
    /// `extent` metres in x/y around the origin. URSim "does not account
    /// for collisions when the robot arm moves through its mounting
    /// platform" — the Extended Simulator does.
    pub fn with_platform(self, extent: f64) -> Self {
        self.with_obstacle(
            "platform",
            Aabb::new(
                Vec3::new(-extent, -extent, -0.2),
                Vec3::new(extent, extent, 0.0),
            ),
        )
    }

    /// Adds four walls enclosing a square workspace of half-width
    /// `half` metres and height `height`.
    pub fn with_walls(self, half: f64, height: f64) -> Self {
        let t = 0.05; // wall thickness
        self.with_obstacle(
            "wall_north",
            Aabb::new(
                Vec3::new(-half, half, 0.0),
                Vec3::new(half, half + t, height),
            ),
        )
        .with_obstacle(
            "wall_south",
            Aabb::new(
                Vec3::new(-half, -half - t, 0.0),
                Vec3::new(half, -half, height),
            ),
        )
        .with_obstacle(
            "wall_east",
            Aabb::new(
                Vec3::new(half, -half, 0.0),
                Vec3::new(half + t, half, height),
            ),
        )
        .with_obstacle(
            "wall_west",
            Aabb::new(
                Vec3::new(-half - t, -half, 0.0),
                Vec3::new(-half, half, height),
            ),
        )
    }

    /// Adds an obstacle.
    pub fn add_obstacle(&mut self, name: impl Into<String>, volume: Aabb) {
        self.obstacles.push(NamedBox::new(name, volume));
        self.reindex();
    }

    /// Removes all obstacles with the given name; returns how many were
    /// removed.
    pub fn remove_obstacle(&mut self, name: &str) -> usize {
        let before = self.obstacles.len();
        self.obstacles.retain(|o| o.name != name);
        if self.obstacles.len() != before {
            self.reindex();
        }
        before - self.obstacles.len()
    }

    /// The obstacles.
    pub fn obstacles(&self) -> &[NamedBox] {
        &self.obstacles
    }

    /// The world's mutation epoch. Every obstacle addition or removal
    /// bumps it; two calls returning the same epoch on the same world
    /// guarantee the obstacle set has not changed in between.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rebuilds the broad-phase index and the primitive-level distance
    /// index after a mutation.
    fn reindex(&mut self) {
        self.epoch += 1;
        let bounds: Vec<Aabb> = self.obstacles.iter().map(|o| o.bounding_box()).collect();
        self.index = Bvh::build(&bounds);
        let di = &mut self.dist;
        di.soa.clear();
        di.owners.clear();
        di.bounds.clear();
        // Two passes keep all box primitives in the low primitive ids, so
        // candidate lists (always ascending) split into the two kernel
        // batches at a single partition point.
        for (i, o) in self.obstacles.iter().enumerate() {
            o.shape.for_each_distance_prim(&mut |prim| {
                if let DistancePrim::Box(aabb) = prim {
                    di.soa.push_box(&aabb);
                    di.owners.push(i as u32);
                    di.bounds.push(aabb);
                }
            });
        }
        di.n_boxes = di.owners.len();
        for (i, o) in self.obstacles.iter().enumerate() {
            o.shape.for_each_distance_prim(&mut |prim| match prim {
                DistancePrim::Box(_) => {}
                DistancePrim::Capsule {
                    segment,
                    radius,
                    bound,
                } => {
                    di.soa.push_capsule(&segment, radius);
                    di.owners.push(i as u32);
                    di.bounds.push(bound);
                }
                DistancePrim::Sphere {
                    center,
                    radius,
                    bound,
                } => {
                    di.soa.push_sphere(center, radius);
                    di.owners.push(i as u32);
                    di.bounds.push(bound);
                }
            });
        }
        di.bvh = Bvh::build(&di.bounds);
    }

    /// Resolves `exclude` names into an [`ExclusionMask`] over the current
    /// obstacle indices. Build it once per trajectory and pass it to the
    /// `*_masked` query variants: the sweep's inner loops then test one
    /// bit per obstacle instead of comparing name strings per obstacle per
    /// sample.
    pub fn exclusion_mask(&self, exclude: &[&str]) -> ExclusionMask {
        let mut mask = ExclusionMask::default();
        self.fill_exclusion_mask(exclude, &mut mask);
        mask
    }

    /// As [`SimWorld::exclusion_mask`], reusing a caller-owned mask (no
    /// allocation in steady state; none at all for an empty `exclude`).
    pub fn fill_exclusion_mask(&self, exclude: &[&str], mask: &mut ExclusionMask) {
        mask.epoch = self.epoch;
        mask.any = false;
        mask.bits.clear();
        if exclude.is_empty() {
            return;
        }
        mask.bits.resize(self.obstacles.len().div_ceil(64), 0);
        for (i, o) in self.obstacles.iter().enumerate() {
            if exclude.contains(&o.name.as_str()) {
                mask.bits[i / 64] |= 1 << (i % 64);
                mask.any = true;
            }
        }
    }

    /// The first obstacle any of the given capsules intersects, ignoring
    /// obstacles named in `exclude`. Uses the broad-phase index.
    pub fn first_hit(&self, capsules: &[Capsule], exclude: &[&str]) -> Option<&NamedBox> {
        self.first_hit_counting(capsules, exclude, true).0
    }

    /// As [`SimWorld::first_hit`], but testing every obstacle linearly —
    /// the reference path the differential tests compare the pruned path
    /// against.
    pub fn first_hit_exhaustive(
        &self,
        capsules: &[Capsule],
        exclude: &[&str],
    ) -> Option<&NamedBox> {
        self.first_hit_counting(capsules, exclude, false).0
    }

    /// The first hit plus the number of narrow-phase obstacle tests it
    /// cost. `broad_phase` selects BVH pruning or the exhaustive scan;
    /// both return the identical obstacle (candidates are scanned in
    /// ascending insertion order).
    pub fn first_hit_counting(
        &self,
        capsules: &[Capsule],
        exclude: &[&str],
        broad_phase: bool,
    ) -> (Option<&NamedBox>, u64) {
        let mut scratch = Vec::new();
        self.first_hit_counting_with(capsules, exclude, broad_phase, &mut scratch)
    }

    /// As [`SimWorld::first_hit_counting`], reusing a caller-owned
    /// candidate buffer for the broad-phase query so a sweep over many
    /// trajectory samples performs no per-sample allocation.
    pub fn first_hit_counting_with(
        &self,
        capsules: &[Capsule],
        exclude: &[&str],
        broad_phase: bool,
        scratch: &mut Vec<usize>,
    ) -> (Option<&NamedBox>, u64) {
        let (hit, tested) = self.first_hit_detailed_with(capsules, exclude, broad_phase, scratch);
        (hit.map(|h| h.obstacle), tested)
    }

    /// As [`SimWorld::first_hit_counting_with`], additionally reporting
    /// *which* capsule hit and an approximate contact point — the data a
    /// structured [`CollisionReport`] needs. The contact point is the
    /// point on the hitting capsule's axis closest to the obstacle's
    /// bounding-box center (exact penetration geometry is not needed for
    /// an alert; the operator needs "link 4, above the hotplate").
    ///
    /// [`CollisionReport`]: rabit_core::CollisionReport
    pub fn first_hit_detailed_with(
        &self,
        capsules: &[Capsule],
        exclude: &[&str],
        broad_phase: bool,
        scratch: &mut Vec<usize>,
    ) -> (Option<HitDetail<'_>>, u64) {
        let mask = self.exclusion_mask(exclude);
        self.first_hit_detailed_masked(capsules, &mask, broad_phase, scratch)
    }

    /// As [`SimWorld::first_hit_detailed_with`], resolving exclusions
    /// through a prebuilt [`ExclusionMask`] instead of comparing name
    /// strings per obstacle. The sweep kernel builds the mask once per
    /// trajectory and reuses it for every sample.
    pub fn first_hit_detailed_masked(
        &self,
        capsules: &[Capsule],
        mask: &ExclusionMask,
        broad_phase: bool,
        scratch: &mut Vec<usize>,
    ) -> (Option<HitDetail<'_>>, u64) {
        debug_assert_eq!(mask.epoch, self.epoch, "stale exclusion mask");
        let mut tested = 0;
        let mut narrow = |o: &NamedBox| -> Option<usize> {
            tested += 1;
            capsules.iter().position(|c| o.shape.intersects_capsule(c))
        };
        let hit = if broad_phase {
            union_bound(capsules).and_then(|probe| {
                self.index.query_into(&probe, scratch);
                scratch
                    .iter()
                    .filter(|&&i| !mask.excludes(i))
                    .map(|&i| &self.obstacles[i])
                    .find_map(|o| narrow(o).map(|i| (o, i)))
            })
        } else {
            self.obstacles
                .iter()
                .enumerate()
                .filter(|&(i, _)| !mask.excludes(i))
                .find_map(|(_, o)| narrow(o).map(|i| (o, i)))
        };
        (hit.map(|(o, i)| self.detail_for(capsules, o, i)), tested)
    }

    /// As [`SimWorld::first_hit_detailed_with`] with broad-phase pruning,
    /// but the BVH query runs through a temporal-coherence [`QueryCache`]
    /// (see [`Bvh::query_into_cached`]): consecutive calls with nearly
    /// identical capsule sets — adjacent trajectory samples — are answered
    /// from the previous query's candidate superset without walking the
    /// tree. The hit (and the narrow-phase test count) is identical to the
    /// uncached broad-phase path.
    ///
    /// The cache is only valid against the current obstacle set: callers
    /// must [`QueryCache::clear`] it whenever [`SimWorld::epoch`] changes.
    pub fn first_hit_detailed_cached(
        &self,
        capsules: &[Capsule],
        exclude: &[&str],
        slack: f64,
        cache: &mut QueryCache,
        scratch: &mut Vec<usize>,
    ) -> (Option<HitDetail<'_>>, u64) {
        let mask = self.exclusion_mask(exclude);
        self.first_hit_cached_masked(capsules, &mask, slack, cache, scratch)
    }

    /// As [`SimWorld::first_hit_detailed_cached`] with exclusions resolved
    /// through a prebuilt [`ExclusionMask`].
    pub fn first_hit_cached_masked(
        &self,
        capsules: &[Capsule],
        mask: &ExclusionMask,
        slack: f64,
        cache: &mut QueryCache,
        scratch: &mut Vec<usize>,
    ) -> (Option<HitDetail<'_>>, u64) {
        debug_assert_eq!(mask.epoch, self.epoch, "stale exclusion mask");
        let Some(probe) = union_bound(capsules) else {
            return (None, 0);
        };
        self.index.query_into_cached(&probe, slack, cache, scratch);
        let mut tested = 0;
        let hit = scratch
            .iter()
            .filter(|&&i| !mask.excludes(i))
            .map(|&i| &self.obstacles[i])
            .find_map(|o| {
                tested += 1;
                capsules
                    .iter()
                    .position(|c| o.shape.intersects_capsule(c))
                    .map(|i| (o, i))
            });
        (hit.map(|(o, i)| self.detail_for(capsules, o, i)), tested)
    }

    /// Clearance of a single capsule: a sound lower bound on the distance
    /// from `capsule` to the nearest non-excluded obstacle, clamped to
    /// `cap` (the largest clearance the caller can exploit). Returns the
    /// clearance and the number of per-obstacle distance evaluations
    /// performed.
    ///
    /// Obstacles are pruned through the broad-phase index with the
    /// capsule's bound inflated by `cap`: anything outside that probe is
    /// provably farther than `cap` away, so clamping keeps the result
    /// sound. The scan stops early once the clearance is non-positive
    /// (the capsule touches something — no skip budget either way).
    pub fn clearance_with(
        &self,
        capsule: &Capsule,
        exclude: &[&str],
        cap: f64,
        scratch: &mut Vec<usize>,
    ) -> (f64, u64) {
        if cap <= 0.0 {
            return (cap.min(0.0), 0);
        }
        let mask = self.exclusion_mask(exclude);
        let probe = capsule.bounding_box().inflated(cap);
        self.dist.bvh.query_into(&probe, scratch);
        let (clearance, evals, _) = self.prim_clearance(capsule, &mask, cap, scratch);
        (clearance, evals)
    }

    /// The shared narrow-phase clearance kernel: min distance from
    /// `capsule` to the candidate primitives (ascending prim ids from the
    /// distance-index BVH), clamped to `cap`, skipping masked owners.
    /// Candidates are split at the box/capsule partition point and fed
    /// through the 4-wide SoA kernels; ragged tails are padded by
    /// repeating the last lane (padding lanes are computed but not
    /// min-folded, so results are bit-identical to a scalar scan).
    ///
    /// Each candidate is prefiltered with the cheap box-to-box gap
    /// between its broad-phase bound and the capsule's: the gap is a
    /// lower bound on the exact distance, so a candidate whose gap
    /// cannot lower the running clearance is dropped without an exact
    /// evaluation — and since its exact distance is at least the
    /// running minimum, the returned clearance is identical to a full
    /// scan. This matters because candidate lists come from temporal-
    /// coherence caches and are supersets of the current probe's true
    /// candidates.
    ///
    /// Returns `(clearance, exact_evals, kernel_lane_slots)` and stops
    /// after the first chunk that drives the clearance non-positive.
    fn prim_clearance(
        &self,
        capsule: &Capsule,
        mask: &ExclusionMask,
        cap: f64,
        candidates: &[usize],
    ) -> (f64, u64, u64) {
        let di = &self.dist;
        let split = candidates.partition_point(|&p| p < di.n_boxes);
        let probe_bb = capsule.bounding_box();
        let mut clearance = cap;
        let mut evals = 0u64;
        let mut lanes = 0u64;
        let mut batch = [0u32; 4];
        let mut n = 0usize;

        let flush_boxes =
            |batch: &[u32; 4], n: usize, clearance: &mut f64, evals: &mut u64, lanes: &mut u64| {
                let d = distance::segment_aabb_distance_x4(&di.soa, &capsule.segment, batch);
                for &v in d.iter().take(n) {
                    *clearance = clearance.min(v - capsule.radius);
                }
                *evals += n as u64;
                *lanes += 4;
            };
        for &p in &candidates[..split] {
            if mask.excludes(di.owners[p] as usize) {
                continue;
            }
            if di.bounds[p].distance_to(&probe_bb) >= clearance {
                continue;
            }
            batch[n] = p as u32;
            n += 1;
            if n == 4 {
                flush_boxes(&batch, 4, &mut clearance, &mut evals, &mut lanes);
                n = 0;
                if clearance <= 0.0 {
                    return (clearance, evals, lanes);
                }
            }
        }
        if n > 0 {
            let pad = batch[n - 1];
            batch[n..].fill(pad);
            flush_boxes(&batch, n, &mut clearance, &mut evals, &mut lanes);
            n = 0;
            if clearance <= 0.0 {
                return (clearance, evals, lanes);
            }
        }

        let flush_capsules =
            |batch: &[u32; 4], n: usize, clearance: &mut f64, evals: &mut u64, lanes: &mut u64| {
                let d = distance::segment_capsule_distance_x4(
                    &di.soa,
                    &capsule.segment,
                    capsule.radius,
                    batch,
                );
                for &v in d.iter().take(n) {
                    *clearance = clearance.min(v);
                }
                *evals += n as u64;
                *lanes += 4;
            };
        for &p in &candidates[split..] {
            if mask.excludes(di.owners[p] as usize) {
                continue;
            }
            if di.bounds[p].distance_to(&probe_bb) >= clearance {
                continue;
            }
            batch[n] = (p - di.n_boxes) as u32;
            n += 1;
            if n == 4 {
                flush_capsules(&batch, 4, &mut clearance, &mut evals, &mut lanes);
                n = 0;
                if clearance <= 0.0 {
                    return (clearance, evals, lanes);
                }
            }
        }
        if n > 0 {
            let pad = batch[n - 1];
            batch[n..].fill(pad);
            flush_capsules(&batch, n, &mut clearance, &mut evals, &mut lanes);
        }
        (clearance, evals, lanes)
    }

    /// Distance from `probe` to the nearest obstacle surface, or `+∞` for
    /// an empty world. This is the whole-arm certificate's world query:
    /// anything (arm link, held object) contained in `probe` is at least
    /// this far from every obstacle.
    pub fn free_distance(&self, probe: &Aabb) -> f64 {
        let mut free = f64::INFINITY;
        for p in 0..self.dist.owners.len() {
            free = free.min(self.prim_probe_distance(p, probe));
        }
        free
    }

    /// As [`SimWorld::free_distance`], clamped to `cap`, skipping masked
    /// obstacles, and pruned through the distance-index BVH (primitives
    /// farther than `cap` are provably irrelevant under the clamp).
    /// Returns the free distance and the number of exact evaluations.
    pub fn free_distance_masked(
        &self,
        probe: &Aabb,
        mask: &ExclusionMask,
        cap: f64,
        scratch: &mut Vec<usize>,
    ) -> (f64, u64) {
        debug_assert_eq!(mask.epoch, self.epoch, "stale exclusion mask");
        if cap <= 0.0 {
            return (cap.min(0.0), 0);
        }
        let inflated = probe.inflated(cap);
        self.dist.bvh.query_into(&inflated, scratch);
        let mut free = cap;
        let mut evals = 0;
        for &p in scratch.iter() {
            if mask.excludes(self.dist.owners[p] as usize) {
                continue;
            }
            // Same gap prefilter as `prim_clearance`: a primitive whose
            // broad-phase bound already sits beyond the running minimum
            // cannot lower it.
            if self.dist.bounds[p].distance_to(probe) >= free {
                continue;
            }
            evals += 1;
            free = free.min(self.prim_probe_distance(p, probe));
            if free <= 0.0 {
                break;
            }
        }
        (free, evals)
    }

    /// Exact distance from one distance-index primitive to an AABB probe
    /// (surface to surface; box primitives via the box-box gap, capsule
    /// and sphere primitives via the closed-form segment–AABB distance
    /// minus the primitive radius).
    fn prim_probe_distance(&self, prim: usize, probe: &Aabb) -> f64 {
        let di = &self.dist;
        if prim < di.n_boxes {
            probe.distance_to(&di.soa.box_aabb(prim))
        } else {
            let (seg, r) = di.soa.capsule(prim - di.n_boxes);
            distance::segment_aabb_distance(&seg, probe) - r
        }
    }

    /// Batched clearance for a whole capsule chain: fills `out[l]` with a
    /// sound lower bound on the distance from `capsules[l]` to the
    /// nearest non-excluded obstacle, clamped to `caps[l]`. Returns the
    /// number of exact distance evaluations performed.
    ///
    /// One broad-phase query serves every capsule: the probe is the union
    /// of each capsule's bound inflated by its cap, routed through the
    /// temporal-coherence `cache` with `slack` so consecutive trajectory
    /// samples reuse the previous candidate superset without walking the
    /// tree. Candidates are then prefiltered per capsule with the cheap
    /// box-to-box gap ([`Aabb::distance_to`]) before paying for an exact
    /// shape distance.
    ///
    /// Clearance is computed with the same distance arithmetic the narrow
    /// phase uses for intersection, so `out[l] > 0.0` *proves* the narrow
    /// phase would find no hit for `capsules[l]`: any intersecting
    /// obstacle overlaps the capsule's bound (candidates always include
    /// it, whatever the cap) and would have driven the clearance to zero
    /// or below. The adaptive sweep kernel relies on this to elide
    /// narrow-phase scans on provably clear samples.
    ///
    /// Like [`QueryCache`] users elsewhere, callers must clear the cache
    /// whenever [`SimWorld::epoch`] changes.
    #[allow(clippy::too_many_arguments)]
    pub fn clearances_into(
        &self,
        capsules: &[Capsule],
        exclude: &[&str],
        caps: &[f64],
        slack: f64,
        cache: &mut QueryCache,
        scratch: &mut ClearanceScratch,
        out: &mut [f64],
    ) -> u64 {
        let mask = self.exclusion_mask(exclude);
        self.clearances_into_masked(capsules, &mask, caps, slack, cache, scratch, out)
            .0
    }

    /// As [`SimWorld::clearances_into`], resolving exclusions through a
    /// prebuilt [`ExclusionMask`] and additionally reporting the number of
    /// lane slots pushed through the 4-wide SoA kernels (including
    /// padding): the `(exact_evals, kernel_lane_slots)` pair.
    #[allow(clippy::too_many_arguments)]
    pub fn clearances_into_masked(
        &self,
        capsules: &[Capsule],
        mask: &ExclusionMask,
        caps: &[f64],
        slack: f64,
        cache: &mut QueryCache,
        scratch: &mut ClearanceScratch,
        out: &mut [f64],
    ) -> (u64, u64) {
        assert_eq!(capsules.len(), caps.len(), "one cap per capsule");
        assert_eq!(capsules.len(), out.len(), "one slot per capsule");
        debug_assert_eq!(mask.epoch, self.epoch, "stale exclusion mask");
        scratch.probes.clear();
        scratch.slots.clear();
        for (l, (c, &cap)) in capsules.iter().zip(caps).enumerate() {
            if cap <= 0.0 {
                out[l] = cap.min(0.0);
                continue;
            }
            scratch.probes.push(c.bounding_box().inflated(cap));
            scratch.slots.push(l);
        }
        if scratch.probes.is_empty() {
            return (0, 0);
        }
        self.dist
            .bvh
            .query_packet_cached(&scratch.probes, slack, cache, &mut scratch.lists);
        let mut evals = 0;
        let mut lanes = 0;
        for (p, &l) in scratch.slots.iter().enumerate() {
            let (clearance, e, ln) =
                self.prim_clearance(&capsules[l], mask, caps[l], scratch.lists.list(p));
            out[l] = clearance;
            evals += e;
            lanes += ln;
        }
        (evals, lanes)
    }

    fn detail_for<'a>(
        &self,
        capsules: &[Capsule],
        obstacle: &'a NamedBox,
        capsule_index: usize,
    ) -> HitDetail<'a> {
        let contact = capsules[capsule_index]
            .segment
            .closest_point_to(obstacle.bounding_box().center())
            .0;
        HitDetail {
            obstacle,
            capsule_index,
            contact,
        }
    }
}

/// The union of the capsules' bounding boxes (the broad-phase probe), or
/// `None` for an empty capsule set.
fn union_bound(capsules: &[Capsule]) -> Option<Aabb> {
    let mut probe: Option<Aabb> = None;
    for c in capsules {
        let b = c.bounding_box();
        probe = Some(probe.map_or(b, |p| p.union(&b)));
    }
    probe
}

/// A bitset of excluded obstacle indices, resolved once from exclusion
/// names by [`SimWorld::exclusion_mask`]. The `*_masked` query variants
/// test one bit per candidate instead of comparing name strings per
/// obstacle per trajectory sample. The mask is stamped with the world
/// epoch it was resolved against; queries debug-assert the stamp so a
/// stale mask cannot silently misattribute obstacle indices after a
/// mutation.
#[derive(Debug, Clone, Default)]
pub struct ExclusionMask {
    bits: Vec<u64>,
    epoch: u64,
    any: bool,
}

impl ExclusionMask {
    /// Whether the obstacle at `index` is excluded.
    #[inline]
    pub fn excludes(&self, index: usize) -> bool {
        self.any && (self.bits[index / 64] >> (index % 64)) & 1 != 0
    }

    /// The world epoch this mask was resolved against
    /// (see [`SimWorld::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Reusable buffers for [`SimWorld::clearances_into`]: the per-capsule
/// broad-phase probes, the packet-position → output-slot mapping, and the
/// per-probe candidate lists. One instance per sweep keeps the batched
/// clearance path allocation-free in steady state.
#[derive(Debug, Clone, Default)]
pub struct ClearanceScratch {
    probes: Vec<Aabb>,
    slots: Vec<usize>,
    lists: PacketLists,
}

/// A narrow-phase hit with link-level detail: the obstacle, which of the
/// query capsules struck it, and an approximate contact point.
#[derive(Debug, Clone, PartialEq)]
pub struct HitDetail<'a> {
    /// The obstacle that was hit.
    pub obstacle: &'a NamedBox,
    /// Index of the hitting capsule within the query slice.
    pub capsule_index: usize,
    /// Approximate contact point (on the capsule's axis, nearest the
    /// obstacle's bounding-box center).
    pub contact: Vec3,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_obstacles() {
        let w = SimWorld::new()
            .with_platform(1.0)
            .with_walls(1.0, 0.8)
            .with_obstacle("doser", Aabb::new(Vec3::ZERO, Vec3::splat(0.2)));
        assert_eq!(w.obstacles().len(), 6);
        assert!(w.obstacles().iter().any(|o| o.name == "platform"));
        assert!(w.obstacles().iter().any(|o| o.name == "wall_east"));
    }

    #[test]
    fn first_hit_finds_and_excludes() {
        let w = SimWorld::new()
            .with_obstacle("doser", Aabb::new(Vec3::ZERO, Vec3::splat(0.2)))
            .with_obstacle(
                "grid",
                Aabb::new(Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.7, 0.2, 0.1)),
            );
        let inside_doser = vec![Capsule::new(
            Vec3::new(0.1, 0.1, 0.1),
            Vec3::new(0.1, 0.1, 0.3),
            0.02,
        )];
        assert_eq!(w.first_hit(&inside_doser, &[]).unwrap().name, "doser");
        assert!(w.first_hit(&inside_doser, &["doser"]).is_none());
        let free = vec![Capsule::new(
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(1.2, 1.0, 1.0),
            0.02,
        )];
        assert!(w.first_hit(&free, &[]).is_none());
    }

    #[test]
    fn platform_catches_low_capsules() {
        let w = SimWorld::new().with_platform(1.0);
        let low = vec![Capsule::new(
            Vec3::new(0.2, 0.2, 0.05),
            Vec3::new(0.3, 0.2, -0.01),
            0.02,
        )];
        assert_eq!(w.first_hit(&low, &[]).unwrap().name, "platform");
    }

    #[test]
    fn shaped_obstacles_participate_in_first_hit() {
        use crate::shapes::ObstacleShape;
        // A hemispheric centrifuge: its bounding-box corners are free.
        let w = SimWorld::new().with_shaped_obstacle(
            "centrifuge",
            ObstacleShape::Hemisphere {
                base_center: Vec3::new(0.3, 0.3, 0.0),
                radius: 0.15,
            },
        );
        let over_dome = vec![Capsule::new(
            Vec3::new(0.3, 0.3, 0.10),
            Vec3::new(0.3, 0.3, 0.20),
            0.02,
        )];
        assert_eq!(w.first_hit(&over_dome, &[]).unwrap().name, "centrifuge");
        // At the bounding-box corner height: free for a hemisphere.
        let corner = vec![Capsule::new(
            Vec3::new(0.42, 0.42, 0.12),
            Vec3::new(0.42, 0.42, 0.2),
            0.02,
        )];
        assert!(w.first_hit(&corner, &[]).is_none());
        // The obstacle's bounding box is available for inspection.
        assert!(w.obstacles()[0]
            .bounding_box()
            .contains_point(Vec3::new(0.3, 0.3, 0.1)));
    }

    #[test]
    fn detailed_hit_reports_capsule_and_contact() {
        let w = SimWorld::new().with_obstacle("doser", Aabb::new(Vec3::ZERO, Vec3::splat(0.2)));
        let capsules = vec![
            // Capsule 0 is clear of the box.
            Capsule::new(Vec3::new(1.0, 1.0, 1.0), Vec3::new(1.2, 1.0, 1.0), 0.02),
            // Capsule 1 passes through it.
            Capsule::new(Vec3::new(0.1, 0.1, -0.1), Vec3::new(0.1, 0.1, 0.3), 0.02),
        ];
        for broad in [true, false] {
            let mut scratch = Vec::new();
            let (hit, _) = w.first_hit_detailed_with(&capsules, &[], broad, &mut scratch);
            let hit = hit.expect("capsule 1 intersects the doser");
            assert_eq!(hit.obstacle.name, "doser");
            assert_eq!(hit.capsule_index, 1);
            // Contact is on capsule 1's axis, nearest the box center.
            assert!(hit.contact.distance(Vec3::new(0.1, 0.1, 0.1)) < 1e-9);
        }
    }

    #[test]
    fn clearance_is_a_sound_capped_lower_bound() {
        let w = SimWorld::new()
            .with_platform(1.0)
            .with_obstacle("doser", Aabb::new(Vec3::ZERO, Vec3::splat(0.2)));
        let mut scratch = Vec::new();
        // A capsule surface 0.33 above the doser top, 0.53 above the platform.
        let cap = Capsule::new(Vec3::new(0.1, 0.1, 0.55), Vec3::new(0.1, 0.1, 0.6), 0.02);
        let (d, evals) = w.clearance_with(&cap, &[], 1.0, &mut scratch);
        assert!(evals >= 1);
        assert!((d - 0.33).abs() < 1e-9, "clearance to doser top, got {d}");
        // Excluding the doser leaves the platform.
        let (d, _) = w.clearance_with(&cap, &["doser"], 1.0, &mut scratch);
        assert!((d - 0.53).abs() < 1e-9, "clearance to platform, got {d}");
        // The cap clamps (and prunes): a tiny cap returns the cap itself.
        let (d, evals) = w.clearance_with(&cap, &[], 0.05, &mut scratch);
        assert_eq!(d, 0.05);
        assert_eq!(evals, 0, "everything prunes at cap 0.05");
        // Touching/penetrating: non-positive clearance.
        let touching = Capsule::new(Vec3::new(0.1, 0.1, 0.15), Vec3::new(0.1, 0.1, 0.3), 0.02);
        let (d, _) = w.clearance_with(&touching, &[], 1.0, &mut scratch);
        assert!(d <= 0.0);
    }

    #[test]
    fn batched_clearances_match_per_capsule_queries() {
        use rabit_geometry::broadphase::QueryCache;
        let w = SimWorld::new()
            .with_platform(1.0)
            .with_obstacle("doser", Aabb::new(Vec3::ZERO, Vec3::splat(0.2)))
            .with_obstacle(
                "grid",
                Aabb::new(Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.7, 0.2, 0.1)),
            );
        let mut cache = QueryCache::new();
        let mut s1 = ClearanceScratch::default();
        let mut s2 = Vec::new();
        // A descending pair of capsules: one over the doser, one touching
        // the grid at the end. Batched clearances must agree with the
        // per-capsule query at every step, including the touching case
        // and a zero-cap slot.
        for k in 0..30 {
            let z = 0.5 - k as f64 * 0.015;
            let caps = vec![
                Capsule::new(Vec3::new(0.1, 0.1, z), Vec3::new(0.1, 0.1, z + 0.1), 0.02),
                Capsule::new(
                    Vec3::new(0.6, 0.1, z - 0.3),
                    Vec3::new(0.6, 0.1, z - 0.2),
                    0.02,
                ),
            ];
            let budgets = [0.4, 0.25];
            let mut out = [0.0; 2];
            w.clearances_into(
                &caps,
                &["doser"],
                &budgets,
                0.1,
                &mut cache,
                &mut s1,
                &mut out,
            );
            for l in 0..2 {
                let (want, _) = w.clearance_with(&caps[l], &["doser"], budgets[l], &mut s2);
                assert!(
                    (out[l] - want).abs() < 1e-12,
                    "step {k} capsule {l}: batched {} vs direct {want}",
                    out[l]
                );
            }
        }
        assert!(cache.hits() > 0, "coherent sweep should reuse the superset");
        // Non-positive caps are clamped without touching the index.
        let caps = vec![Capsule::new(
            Vec3::new(0.1, 0.1, 0.4),
            Vec3::new(0.1, 0.1, 0.5),
            0.02,
        )];
        let mut out = [1.0];
        let evals = w.clearances_into(&caps, &[], &[-0.2], 0.1, &mut cache, &mut s1, &mut out);
        assert_eq!(evals, 0);
        assert_eq!(out[0], -0.2);
    }

    #[test]
    fn cached_first_hit_matches_uncached() {
        use rabit_geometry::broadphase::QueryCache;
        let w = SimWorld::new()
            .with_platform(1.0)
            .with_walls(1.0, 0.8)
            .with_obstacle("doser", Aabb::new(Vec3::ZERO, Vec3::splat(0.2)));
        let mut cache = QueryCache::new();
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        // A descending sweep that eventually hits the doser.
        for k in 0..40 {
            let z = 0.6 - k as f64 * 0.012;
            let caps = vec![Capsule::new(
                Vec3::new(0.1, 0.1, z),
                Vec3::new(0.1, 0.1, z + 0.1),
                0.02,
            )];
            let (cached, tc) = w.first_hit_detailed_cached(&caps, &[], 0.1, &mut cache, &mut s1);
            let (fresh, tf) = w.first_hit_detailed_with(&caps, &[], true, &mut s2);
            assert_eq!(cached, fresh, "step {k}");
            assert_eq!(tc, tf, "step {k} narrow-phase count");
        }
        assert!(cache.hits() > 0, "coherent sweep should reuse the superset");
        // Empty capsule set: no probe, no hit.
        let (none, t) = w.first_hit_detailed_cached(&[], &[], 0.1, &mut cache, &mut s1);
        assert!(none.is_none());
        assert_eq!(t, 0);
    }

    #[test]
    fn removal() {
        let mut w = SimWorld::new().with_platform(1.0);
        assert_eq!(w.remove_obstacle("platform"), 1);
        assert_eq!(w.remove_obstacle("platform"), 0);
        assert!(w.obstacles().is_empty());
    }
}
