//! Configuration validation and catalog construction.
//!
//! The pilot study (§V-A) spent "around four hours debugging the entered
//! information": a sign flipped on a location, JSON syntax errors, and
//! misinterpreted device information. The paper concludes that "more
//! precise JSON schema specifications could have helped avoid sign
//! errors" — this validator is that specification, made executable.

use crate::schema::LabConfig;
use rabit_devices::{DeviceId, DeviceType};
use rabit_geometry::Vec3;
use rabit_rulebase::{custom, DeviceCatalog, DeviceMeta, Rule};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IssueLevel {
    /// Suspicious but not fatal.
    Warning,
    /// The configuration cannot be used.
    Error,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigIssue {
    /// Severity.
    pub level: IssueLevel,
    /// The offending device id, if device-scoped.
    pub device: Option<String>,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ConfigIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.level {
            IssueLevel::Warning => "warning",
            IssueLevel::Error => "error",
        };
        match &self.device {
            Some(d) => write!(f, "[{tag}] {d}: {}", self.message),
            None => write!(f, "[{tag}] {}", self.message),
        }
    }
}

fn parse_type(raw: &str) -> Option<DeviceType> {
    match raw {
        "container" => Some(DeviceType::Container),
        "robot_arm" => Some(DeviceType::RobotArm),
        "dosing_system" => Some(DeviceType::DosingSystem),
        "action_device" => Some(DeviceType::ActionDevice),
        other => other
            .strip_prefix("custom:")
            .map(|name| DeviceType::Custom(name.to_string())),
    }
}

/// Validates a configuration, returning every finding (empty = clean).
pub fn validate(config: &LabConfig) -> Vec<ConfigIssue> {
    let mut issues = Vec::new();
    let err = |device: Option<&str>, message: String| ConfigIssue {
        level: IssueLevel::Error,
        device: device.map(str::to_string),
        message,
    };
    let warn = |device: Option<&str>, message: String| ConfigIssue {
        level: IssueLevel::Warning,
        device: device.map(str::to_string),
        message,
    };

    if config.devices.is_empty() {
        issues.push(err(None, "configuration declares no devices".to_string()));
    }

    // Duplicate ids.
    let mut seen = std::collections::BTreeSet::new();
    for d in &config.devices {
        if !seen.insert(&d.id) {
            issues.push(err(Some(&d.id), "duplicate device id".to_string()));
        }
    }

    let workspace = config.workspace.map(|b| b.to_aabb());
    let in_workspace = |p: Vec3| workspace.is_none_or(|w| w.contains_point(p));

    for d in &config.devices {
        let id = Some(d.id.as_str());
        if d.id.is_empty() {
            issues.push(err(None, "device with empty id".to_string()));
            continue;
        }
        let Some(device_type) = parse_type(&d.device_type) else {
            issues.push(err(
                id,
                format!(
                    "unknown device type '{}' (expected container, robot_arm, \
                     dosing_system, action_device, or custom:<name>)",
                    d.device_type
                ),
            ));
            continue;
        };
        if d.has_door && !device_type.may_have_door() {
            issues.push(err(
                id,
                format!("{device_type} devices cannot have doors (§II-A)"),
            ));
        }
        if let Some(t) = d.action_threshold {
            if !(t.is_finite() && t > 0.0) {
                issues.push(err(
                    id,
                    format!("action threshold must be positive, got {t}"),
                ));
            }
        }
        // Location sanity: the sign-error guard.
        for (label, p) in [
            ("home_location", d.home_location),
            ("sleep_location", d.sleep_location),
        ] {
            if let Some(p) = p {
                let v = Vec3::from_array(p);
                if !v.is_finite() {
                    issues.push(err(id, format!("{label} has non-finite coordinates")));
                } else {
                    if v.z < 0.0 {
                        issues.push(err(
                            id,
                            format!(
                                "{label} {v} is below the platform — check for a \
                                 flipped sign (the pilot study's P entered a \
                                 negative sign instead of a positive one)"
                            ),
                        ));
                    }
                    if !in_workspace(v) {
                        issues.push(err(
                            id,
                            format!("{label} {v} falls outside the declared workspace"),
                        ));
                    }
                }
            }
        }
        for (label, b) in [
            ("footprint", d.footprint),
            ("sleep_volume", d.sleep_volume),
            ("allowed_region", d.allowed_region),
        ] {
            if let Some(b) = b {
                let aabb = b.to_aabb();
                if aabb.volume() <= 0.0 {
                    issues.push(warn(id, format!("{label} has zero volume")));
                }
                if let Some(w) = workspace {
                    if !w.intersects(&aabb) {
                        issues.push(err(
                            id,
                            format!("{label} lies entirely outside the workspace"),
                        ));
                    }
                }
            }
        }
        match device_type {
            DeviceType::RobotArm => {
                if d.home_location.is_none() || d.sleep_location.is_none() {
                    issues.push(err(
                        id,
                        "robot arms need home_location and sleep_location".to_string(),
                    ));
                }
                if d.footprint.is_some() {
                    issues.push(warn(
                        id,
                        "robot arms are dynamic; a static footprint will be ignored".to_string(),
                    ));
                }
            }
            DeviceType::DosingSystem | DeviceType::ActionDevice if d.footprint.is_none() => {
                issues.push(warn(
                    id,
                    "stationary device without a footprint cannot be collision-checked".to_string(),
                ));
            }
            _ => {}
        }
        if d.status_commands.is_empty()
            && matches!(
                device_type,
                DeviceType::DosingSystem | DeviceType::ActionDevice
            )
        {
            issues.push(warn(
                id,
                "no status commands declared; malfunction detection will be blind".to_string(),
            ));
        }
    }

    for rule in &config.custom_rules {
        if build_custom_rule(&rule.kind).is_none() {
            issues.push(err(
                None,
                format!("unknown custom rule kind '{}'", rule.kind),
            ));
        }
    }

    issues
}

/// Instantiates one custom rule by kind.
pub fn build_custom_rule(kind: &str) -> Option<Rule> {
    match kind {
        "liquid_after_solid" => Some(custom::rule_c1_liquid_after_solid()),
        "centrifuge_needs_solid_and_liquid" => {
            Some(custom::rule_c2_centrifuge_needs_solid_and_liquid())
        }
        "centrifuge_red_dot_north" => Some(custom::rule_c3_centrifuge_red_dot_north()),
        "centrifuge_needs_stopper" => Some(custom::rule_c4_centrifuge_needs_stopper()),
        _ => None,
    }
}

/// Errors returned by [`to_catalog`].
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidConfig {
    /// The validation errors (warnings excluded).
    pub errors: Vec<ConfigIssue>,
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} configuration error(s); first: {}",
            self.errors.len(),
            self.errors[0]
        )
    }
}

impl std::error::Error for InvalidConfig {}

/// Builds the rulebase-facing [`DeviceCatalog`] (plus the configured
/// custom rules) from a validated configuration.
///
/// # Errors
///
/// Returns every [`IssueLevel::Error`] finding if validation fails.
pub fn to_catalog(config: &LabConfig) -> Result<(DeviceCatalog, Vec<Rule>), InvalidConfig> {
    let errors: Vec<ConfigIssue> = validate(config)
        .into_iter()
        .filter(|i| i.level == IssueLevel::Error)
        .collect();
    if !errors.is_empty() {
        return Err(InvalidConfig { errors });
    }

    let mut catalog = DeviceCatalog::new();
    for d in &config.devices {
        let device_type = parse_type(&d.device_type).expect("validated");
        let mut meta = DeviceMeta::new(DeviceId::new(d.id.clone()), device_type);
        if d.has_door {
            meta = meta.with_door();
        }
        for tag in &d.tags {
            meta = meta.with_tag(tag.clone());
        }
        if let Some(t) = d.action_threshold {
            meta = meta.with_threshold(t);
        }
        if !d.hosts_container {
            meta = meta.without_container_hosting();
        }
        if let (Some(h), Some(s)) = (d.home_location, d.sleep_location) {
            meta = meta.with_arm_positions(Vec3::from_array(h), Vec3::from_array(s));
        }
        if let Some(v) = d.sleep_volume {
            meta = meta.with_sleep_volume(v.to_aabb());
        }
        if let Some(r) = d.allowed_region {
            meta = meta.with_allowed_region(r.to_aabb());
        }
        catalog.insert(meta);
    }

    let rules = config
        .custom_rules
        .iter()
        .map(|r| build_custom_rule(&r.kind).expect("validated"))
        .collect();
    Ok((catalog, rules))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{BoxConfig, CustomRuleConfig};

    fn good_config() -> LabConfig {
        LabConfig::from_json(
            r#"{
            "lab_name": "Test",
            "workspace": {"min": [-1.0, -1.0, 0.0], "max": [1.0, 1.0, 1.0]},
            "devices": [
                {"id": "arm", "type": "robot_arm",
                 "home_location": [0.3, 0.0, 0.3],
                 "sleep_location": [0.1, -0.3, 0.2]},
                {"id": "doser", "type": "dosing_system", "has_door": true,
                 "status_commands": ["get_door", "get_state"],
                 "footprint": {"min": [0.0, 0.3, 0.0], "max": [0.2, 0.5, 0.3]}},
                {"id": "centrifuge", "type": "action_device", "has_door": true,
                 "tags": ["centrifuge"], "action_threshold": 15000.0,
                 "status_commands": ["get_state"],
                 "footprint": {"min": [-0.4, -0.2, 0.0], "max": [-0.2, 0.0, 0.2]}},
                {"id": "vial", "type": "container"}
            ],
            "custom_rules": [
                {"kind": "liquid_after_solid"},
                {"kind": "centrifuge_needs_stopper"}
            ]
        }"#,
        )
        .unwrap()
    }

    #[test]
    fn good_config_validates_cleanly() {
        let issues = validate(&good_config());
        let errors: Vec<_> = issues
            .iter()
            .filter(|i| i.level == IssueLevel::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn catalog_construction() {
        let (catalog, rules) = to_catalog(&good_config()).unwrap();
        assert_eq!(catalog.len(), 4);
        assert!(catalog.has_door(&"doser".into()));
        assert!(catalog.has_tag(&"centrifuge".into(), "centrifuge"));
        assert_eq!(
            catalog.get(&"centrifuge".into()).unwrap().action_threshold,
            Some(15_000.0)
        );
        assert!(catalog.is_robot_arm(&"arm".into()));
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn sign_error_is_caught() {
        // P's mistake: a flipped sign on a location.
        let mut cfg = good_config();
        cfg.devices[0].home_location = Some([0.3, 0.0, -0.3]);
        let issues = validate(&cfg);
        assert!(
            issues
                .iter()
                .any(|i| i.level == IssueLevel::Error && i.message.contains("flipped sign")),
            "{issues:?}"
        );
        assert!(to_catalog(&cfg).is_err());
    }

    #[test]
    fn out_of_workspace_location_is_caught() {
        let mut cfg = good_config();
        cfg.devices[0].home_location = Some([5.0, 0.0, 0.3]);
        let issues = validate(&cfg);
        assert!(issues
            .iter()
            .any(|i| i.message.contains("outside the declared workspace")));
    }

    #[test]
    fn impossible_doors_are_caught() {
        let mut cfg = good_config();
        cfg.devices[3].has_door = true; // a vial with a door
        let issues = validate(&cfg);
        assert!(issues
            .iter()
            .any(|i| i.message.contains("cannot have doors")));
    }

    #[test]
    fn unknown_type_and_rule_kind() {
        let mut cfg = good_config();
        cfg.devices[1].device_type = "dosing-system".to_string(); // typo
        cfg.custom_rules.push(CustomRuleConfig {
            kind: "no_such_rule".to_string(),
        });
        let issues = validate(&cfg);
        assert!(issues
            .iter()
            .any(|i| i.message.contains("unknown device type")));
        assert!(issues
            .iter()
            .any(|i| i.message.contains("unknown custom rule kind")));
    }

    #[test]
    fn arm_without_positions_is_an_error() {
        let mut cfg = good_config();
        cfg.devices[0].sleep_location = None;
        let issues = validate(&cfg);
        assert!(issues
            .iter()
            .any(|i| i.level == IssueLevel::Error && i.message.contains("home_location")));
    }

    #[test]
    fn duplicate_ids_and_empty_configs() {
        let mut cfg = good_config();
        cfg.devices.push(cfg.devices[0].clone());
        assert!(validate(&cfg)
            .iter()
            .any(|i| i.message.contains("duplicate")));
        let empty = LabConfig {
            lab_name: "x".into(),
            workspace: None,
            devices: vec![],
            custom_rules: vec![],
        };
        assert!(validate(&empty)
            .iter()
            .any(|i| i.message.contains("no devices")));
    }

    #[test]
    fn warnings_do_not_block_catalog_construction() {
        let mut cfg = good_config();
        cfg.devices[1].status_commands.clear(); // warning only
        cfg.devices[1].footprint = Some(BoxConfig {
            min: [0.0, 0.3, 0.0],
            max: [0.0, 0.3, 0.0], // zero volume: warning
        });
        let issues = validate(&cfg);
        assert!(
            issues.iter().all(|i| i.level == IssueLevel::Warning),
            "{issues:?}"
        );
        assert!(to_catalog(&cfg).is_ok());
    }

    #[test]
    fn issue_display() {
        let i = ConfigIssue {
            level: IssueLevel::Error,
            device: Some("arm".into()),
            message: "boom".into(),
        };
        assert_eq!(i.to_string(), "[error] arm: boom");
        let g = ConfigIssue {
            level: IssueLevel::Warning,
            device: None,
            message: "hm".into(),
        };
        assert_eq!(g.to_string(), "[warning] hm");
    }
}
