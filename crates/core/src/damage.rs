//! Ground-truth physical damage: what actually happens when an unsafe
//! command is *not* stopped.
//!
//! The evaluation classifies bugs by "increasing severity and the
//! potential damage they could cause" (Table V). The [`Lab`] environment
//! records a [`DamageEvent`] whenever an executed command physically
//! damages something, independent of whether RABIT flagged it — this is
//! the oracle the detection-rate experiments compare against.
//!
//! [`Lab`]: crate::Lab

use rabit_devices::DeviceId;
use std::fmt;

/// The four severity classes of Table V, in increasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// "Wasting chemical materials (e.g., spilling solid out of the vial)".
    Low,
    /// "Breakage of glassware (e.g., robot arm dropping a test tube)".
    MediumLow,
    /// "Robot arm causing harm to the environment or inexpensive nearby
    /// objects i.e., platform it is mounted on, the nearby walls, or the
    /// grids that hold the vials".
    MediumHigh,
    /// "Robot arm breaking the expensive equipment inside the lab".
    High,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Low => f.write_str("Low"),
            Severity::MediumLow => f.write_str("Medium-Low"),
            Severity::MediumHigh => f.write_str("Medium-High"),
            Severity::High => f.write_str("High"),
        }
    }
}

/// What physically went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum DamageKind {
    /// Substance spilled (overflowing vial, dosing with no vial inside).
    Spill {
        /// Amount spilled (mg or mL).
        amount: f64,
    },
    /// Glassware broke (dropped or crushed vial).
    GlasswareBreak,
    /// A robot arm struck its platform, a wall, or the grid.
    EnvironmentCollision {
        /// What was struck (e.g. "platform", "grid").
        obstacle: String,
    },
    /// A robot arm struck another robot arm.
    ArmCollision {
        /// The other arm involved.
        other: DeviceId,
    },
    /// A robot arm or vial struck expensive lab equipment (dosing device
    /// door, centrifuge, …).
    EquipmentCollision {
        /// The equipment struck.
        equipment: DeviceId,
    },
}

/// One recorded damage event.
#[derive(Debug, Clone, PartialEq)]
pub struct DamageEvent {
    /// The device that caused the damage.
    pub culprit: DeviceId,
    /// What happened.
    pub kind: DamageKind,
    /// Table V severity class.
    pub severity: Severity,
    /// Human-readable description.
    pub description: String,
}

impl DamageEvent {
    /// Creates a damage event, deriving the severity from the kind.
    pub fn new(culprit: DeviceId, kind: DamageKind, description: impl Into<String>) -> Self {
        let severity = match &kind {
            DamageKind::Spill { .. } => Severity::Low,
            DamageKind::GlasswareBreak => Severity::MediumLow,
            DamageKind::EnvironmentCollision { .. } => Severity::MediumHigh,
            DamageKind::ArmCollision { .. } => Severity::MediumHigh,
            DamageKind::EquipmentCollision { .. } => Severity::High,
        };
        DamageEvent {
            culprit,
            kind,
            severity,
            description: description.into(),
        }
    }
}

impl fmt::Display for DamageEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.severity, self.culprit, self.description
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_are_ordered() {
        assert!(Severity::Low < Severity::MediumLow);
        assert!(Severity::MediumLow < Severity::MediumHigh);
        assert!(Severity::MediumHigh < Severity::High);
    }

    #[test]
    fn severity_derivation_matches_table_v() {
        let spill = DamageEvent::new("doser".into(), DamageKind::Spill { amount: 3.0 }, "spill");
        assert_eq!(spill.severity, Severity::Low);
        let glass = DamageEvent::new("arm".into(), DamageKind::GlasswareBreak, "dropped vial");
        assert_eq!(glass.severity, Severity::MediumLow);
        let env = DamageEvent::new(
            "arm".into(),
            DamageKind::EnvironmentCollision {
                obstacle: "platform".into(),
            },
            "hit platform",
        );
        assert_eq!(env.severity, Severity::MediumHigh);
        let arms = DamageEvent::new(
            "ned2".into(),
            DamageKind::ArmCollision {
                other: "viperx".into(),
            },
            "arm collision",
        );
        assert_eq!(arms.severity, Severity::MediumHigh);
        let equip = DamageEvent::new(
            "arm".into(),
            DamageKind::EquipmentCollision {
                equipment: "dosing_device".into(),
            },
            "hit door",
        );
        assert_eq!(equip.severity, Severity::High);
    }

    #[test]
    fn display_is_informative() {
        let e = DamageEvent::new(
            "viperx".into(),
            DamageKind::EquipmentCollision {
                equipment: "dosing_device".into(),
            },
            "collided with the closed glass door",
        );
        let s = e.to_string();
        assert!(s.contains("High"));
        assert!(s.contains("viperx"));
        assert!(s.contains("glass door"));
        assert_eq!(Severity::MediumHigh.to_string(), "Medium-High");
    }
}
