//! The three-stage deployment pipeline as a first-class abstraction.
//!
//! The paper deploys *one* rule engine across three execution
//! environments of increasing fidelity and risk (§III, Table I):
//! the Extended Simulator, the low-fidelity testbed, and the production
//! lab. This module makes that pipeline explicit:
//!
//! * [`Stage`] — the deployment stage itself, with the latency, noise,
//!   cost, and setup profiles the Table I comparison quantifies;
//! * [`Substrate`] — a pluggable backend for one stage: it names itself
//!   and builds its [`Lab`], [`DeviceCatalog`], [`RulebaseSnapshot`], latency and
//!   noise models, and (optionally) a [`TrajectoryValidator`];
//! * [`StagePipeline`] — promotes a workflow through substrates in
//!   deployment order with gating: a workflow that alerts in stage *N*
//!   never reaches stage *N + 1*. Each stage yields a [`StageReport`];
//!   the whole promotion a [`PipelineReport`].

use crate::damage::DamageEvent;
use crate::engine::{Rabit, RabitConfig, RunReport};
use crate::faults::FaultPlan;
use crate::lab::Lab;
use crate::trajcheck::TrajectoryValidator;
use rabit_devices::{Command, LatencyModel};
use rabit_geometry::noise::PositionNoise;
use rabit_rulebase::{DeviceCatalog, RulebaseSnapshot};
use std::fmt;

/// One of RABIT's three deployment stages, in promotion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Stage 1: the Extended Simulator (virtual, free to crash).
    Simulator,
    /// Stage 2: the low-fidelity testbed (cardboard mockups, toy arms).
    Testbed,
    /// Stage 3: the production lab (real chemistry, real damage).
    Production,
}

impl Stage {
    /// All three stages, in deployment order.
    pub fn all() -> [Stage; 3] {
        [Stage::Simulator, Stage::Testbed, Stage::Production]
    }

    /// The stage's name.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Simulator => "Simulator",
            Stage::Testbed => "Testbed",
            Stage::Production => "Production",
        }
    }

    /// The stage a workflow is promoted to after clearing this one
    /// (`None` after production: the workflow is deployed).
    pub fn next(&self) -> Option<Stage> {
        match self {
            Stage::Simulator => Some(Stage::Testbed),
            Stage::Testbed => Some(Stage::Production),
            Stage::Production => None,
        }
    }

    /// The stage's device command-latency model.
    pub fn latency(&self) -> LatencyModel {
        match self {
            Stage::Simulator => LatencyModel::SIMULATED,
            Stage::Testbed => LatencyModel::TESTBED,
            Stage::Production => LatencyModel::PRODUCTION,
        }
    }

    /// Positional repeatability (σ, metres): zero in simulation,
    /// centimetre-scale on the educational arms, sub-millimetre on the
    /// UR3e (vendor repeatability ±0.03 mm, dominated in practice by
    /// calibration drift).
    pub fn precision_sigma_m(&self) -> f64 {
        match self {
            Stage::Simulator => 0.0,
            Stage::Testbed => 0.013,
            Stage::Production => 0.0005,
        }
    }

    /// Cost multiplier of damaging this stage's equipment.
    pub fn damage_cost_multiplier(&self) -> f64 {
        match self {
            Stage::Simulator => 0.0, // nothing physical can break
            Stage::Testbed => 1.0,   // cardboard and toy arms
            Stage::Production => 50.0,
        }
    }

    /// Per-experiment setup/reset cost (seconds): zero for a simulator
    /// restart, minutes of repositioning mockups on the testbed, and the
    /// chemical prep + cleanup of a real run. This, not raw arm speed, is
    /// what makes exploration "High / Medium / Low" across the stages.
    pub fn setup_cost_s(&self) -> f64 {
        match self {
            Stage::Simulator => 0.0,
            Stage::Testbed => 60.0,
            Stage::Production => 900.0,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deployment substrate: everything needed to instantiate one stage of
/// the pipeline for a fresh run.
///
/// A substrate is a *recipe*, not an instance: [`Substrate::build_lab`]
/// and [`Substrate::rabit`] construct fresh state on every call, so the
/// same substrate can back many parallel fleet runs (`Send + Sync` is a
/// supertrait for exactly that reason).
pub trait Substrate: Send + Sync {
    /// The substrate's name (shown in stage and fleet reports).
    fn name(&self) -> &str;

    /// Which deployment stage this substrate realises.
    fn stage(&self) -> Stage;

    /// Builds a fresh lab for one run.
    fn build_lab(&self) -> Lab;

    /// The epoch-stamped rulebase snapshot the stage's engine enforces.
    /// Static substrates return a pinned snapshot (epoch 0); substrates
    /// backed by a live rule store return the store's latest published
    /// snapshot. `impl Into<RulebaseSnapshot>` conversions mean a plain
    /// `Rulebase::...().into()` suffices for the static case.
    fn rulebase(&self) -> RulebaseSnapshot;

    /// Builds the device catalog the stage's engine consults.
    fn catalog(&self) -> DeviceCatalog;

    /// The stage's device command-latency model.
    fn latency(&self) -> LatencyModel {
        self.stage().latency()
    }

    /// The stage's arm positional-noise model (σ from
    /// [`Stage::precision_sigma_m`] unless the substrate overrides it).
    fn position_noise(&self) -> PositionNoise {
        PositionNoise::gaussian(self.stage().precision_sigma_m())
    }

    /// A fresh trajectory validator, if the substrate attaches one (the
    /// Extended Simulator stage does; physical stages may not).
    fn validator(&self) -> Option<Box<dyn TrajectoryValidator>> {
        None
    }

    /// The engine configuration for this stage.
    fn engine_config(&self) -> RabitConfig {
        RabitConfig::default()
    }

    /// The fault plan this substrate injects into every run (empty by
    /// default: substrates are fault-free unless configured otherwise).
    fn fault_plan(&self) -> FaultPlan {
        FaultPlan::none()
    }

    /// Assembles a fresh RABIT engine from the substrate's rulebase,
    /// catalog, configuration, fault plan, and (optional) validator.
    fn rabit(&self) -> Rabit {
        self.rabit_on(self.rulebase())
    }

    /// Assembles a fresh RABIT engine enforcing an explicit snapshot
    /// instead of the substrate's own — the hook a live rule store uses
    /// to hand a lab the latest published rule generation without
    /// rebuilding the substrate.
    fn rabit_on(&self, snapshot: RulebaseSnapshot) -> Rabit {
        let mut builder = Rabit::builder()
            .rulebase(snapshot)
            .catalog(self.catalog())
            .config(self.engine_config())
            .fault_plan(self.fault_plan());
        if let Some(validator) = self.validator() {
            builder = builder.validator(validator);
        }
        builder.build()
    }

    /// Builds a fresh `(Lab, Rabit)` pair, ready to run a workflow,
    /// armed with the substrate's own fault plan (none by default).
    fn instantiate(&self) -> (Lab, Rabit) {
        self.instantiate_with(&self.fault_plan())
    }

    /// Builds a fresh `(Lab, Rabit)` pair armed with an explicit fault
    /// plan, overriding the substrate's own. An empty plan arms
    /// nothing — the run is byte-for-byte identical to a plain
    /// [`Substrate::instantiate`] on a fault-free substrate.
    fn instantiate_with(&self, plan: &FaultPlan) -> (Lab, Rabit) {
        self.instantiate_on(self.rulebase(), plan)
    }

    /// Builds a fresh `(Lab, Rabit)` pair enforcing an explicit rulebase
    /// snapshot, armed with an explicit fault plan. With the substrate's
    /// own (pinned) snapshot this is exactly
    /// [`Substrate::instantiate_with`]; with a store-published snapshot
    /// it is how live fleets pick up the latest rule generation.
    fn instantiate_on(&self, snapshot: RulebaseSnapshot, plan: &FaultPlan) -> (Lab, Rabit) {
        let mut lab = self.build_lab();
        if !plan.is_empty() {
            lab.arm_faults(plan.session());
        }
        // The engine carries the override too, so the substrate's own
        // plan can never sneak in through `Rabit::initialize`.
        (lab, self.rabit_on(snapshot).with_fault_plan(plan.clone()))
    }
}

/// The outcome of running a workflow on one pipeline stage.
#[derive(Debug)]
pub struct StageReport {
    /// The deployment stage.
    pub stage: Stage,
    /// The substrate's name.
    pub substrate: String,
    /// The engine's run report (including validator cache statistics).
    pub report: RunReport,
    /// Ground-truth damage the stage's lab recorded.
    pub damage: Vec<DamageEvent>,
    /// Whether the workflow cleared this stage (no alert) and was
    /// promoted to the next one (or, at the last stage, deployed).
    pub promoted: bool,
}

impl StageReport {
    /// Whether RABIT's own checks halted the workflow here (device
    /// faults halt too but are not RABIT detections).
    pub fn detected(&self) -> bool {
        self.report
            .alert
            .as_ref()
            .is_some_and(|a| a.is_rabit_detection())
    }
}

/// The aggregate outcome of promoting one workflow through the pipeline.
#[derive(Debug)]
pub struct PipelineReport {
    /// The workflow's name.
    pub workflow: String,
    /// Per-stage reports, in deployment order. Stages after the blocking
    /// one are absent: the workflow never reached them.
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// Whether the workflow cleared every stage (deployment-ready).
    pub fn deployed(&self) -> bool {
        !self.stages.is_empty() && self.stages.iter().all(|s| s.promoted)
    }

    /// The stage that blocked the workflow, if any.
    pub fn blocked_at(&self) -> Option<Stage> {
        self.stages.iter().find(|s| !s.promoted).map(|s| s.stage)
    }

    /// The report for one stage, if the workflow reached it.
    pub fn stage(&self, stage: Stage) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Total virtual lab time across the stages that ran (seconds),
    /// including each stage's per-experiment setup cost.
    pub fn total_cost_s(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.report.lab_time_s + s.stage.setup_cost_s())
            .sum()
    }

    /// Total damage events across all stages that ran.
    pub fn total_damage(&self) -> usize {
        self.stages.iter().map(|s| s.damage.len()).sum()
    }
}

/// A promotion pipeline: an ordered sequence of substrates a workflow
/// must clear one by one.
///
/// Substrates must be pushed in non-decreasing [`Stage`] order (a
/// pipeline may legitimately skip a stage — a deck with no physical
/// testbed promotes straight from simulator to production — but never
/// run one backwards).
#[derive(Default)]
pub struct StagePipeline {
    substrates: Vec<Box<dyn Substrate>>,
}

impl StagePipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        StagePipeline::default()
    }

    /// Appends a substrate (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the substrate's stage precedes the last one pushed:
    /// pipelines run in deployment order only.
    pub fn with_substrate(mut self, substrate: Box<dyn Substrate>) -> Self {
        self.push(substrate);
        self
    }

    /// Appends a substrate.
    ///
    /// # Panics
    ///
    /// Panics if the substrate's stage precedes the last one pushed.
    pub fn push(&mut self, substrate: Box<dyn Substrate>) {
        if let Some(last) = self.substrates.last() {
            assert!(
                last.stage() <= substrate.stage(),
                "pipeline stages must be in deployment order: {} after {}",
                substrate.stage(),
                last.stage(),
            );
        }
        self.substrates.push(substrate);
    }

    /// The substrates, in deployment order.
    pub fn substrates(&self) -> &[Box<dyn Substrate>] {
        &self.substrates
    }

    /// Number of stages in the pipeline.
    pub fn len(&self) -> usize {
        self.substrates.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.substrates.is_empty()
    }

    /// Promotes a workflow through the stages in order. Each stage gets a
    /// fresh lab and engine from its substrate; a stage that raises any
    /// alert blocks the workflow — later stages never run.
    pub fn promote(&self, workflow: &str, commands: &[Command]) -> PipelineReport {
        let mut stages = Vec::new();
        for substrate in &self.substrates {
            let (mut lab, mut rabit) = substrate.instantiate();
            let report = rabit.run(&mut lab, commands);
            let promoted = report.completed();
            stages.push(StageReport {
                stage: substrate.stage(),
                substrate: substrate.name().to_string(),
                report,
                damage: lab.damage_log().to_vec(),
                promoted,
            });
            if !promoted {
                break;
            }
        }
        PipelineReport {
            workflow: workflow.to_string(),
            stages,
        }
    }
}

impl fmt::Debug for StagePipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.substrates.iter().map(|s| (s.stage(), s.name())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::{ActionKind, DeviceType, DosingDevice, RobotArm};
    use rabit_geometry::{Aabb, Vec3};
    use rabit_rulebase::DeviceMeta;

    /// A minimal one-arm/one-doser substrate used by the pipeline tests.
    struct MiniSubstrate {
        stage: Stage,
    }

    impl Substrate for MiniSubstrate {
        fn name(&self) -> &str {
            "mini"
        }
        fn stage(&self) -> Stage {
            self.stage
        }
        fn build_lab(&self) -> Lab {
            Lab::new()
                .with_device(
                    RobotArm::new("arm", Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2))
                        .with_latency(self.latency()),
                )
                .with_device(DosingDevice::new(
                    "doser",
                    Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
                ))
        }
        fn rulebase(&self) -> RulebaseSnapshot {
            rabit_rulebase::Rulebase::standard().into()
        }
        fn catalog(&self) -> DeviceCatalog {
            DeviceCatalog::new()
                .with(
                    DeviceMeta::new("arm", DeviceType::RobotArm)
                        .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
                )
                .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
        }
    }

    fn pipeline() -> StagePipeline {
        StagePipeline::new()
            .with_substrate(Box::new(MiniSubstrate {
                stage: Stage::Simulator,
            }))
            .with_substrate(Box::new(MiniSubstrate {
                stage: Stage::Testbed,
            }))
            .with_substrate(Box::new(MiniSubstrate {
                stage: Stage::Production,
            }))
    }

    #[test]
    fn stage_order_and_profiles() {
        assert_eq!(Stage::all().len(), 3);
        assert_eq!(Stage::Simulator.next(), Some(Stage::Testbed));
        assert_eq!(Stage::Production.next(), None);
        assert!(Stage::Simulator < Stage::Production);
        assert_eq!(Stage::Simulator.damage_cost_multiplier(), 0.0);
        assert!(Stage::Production.setup_cost_s() > Stage::Testbed.setup_cost_s());
        assert_eq!(Stage::Testbed.to_string(), "Testbed");
        // The noise model defaults track the stage σ.
        let s = MiniSubstrate {
            stage: Stage::Testbed,
        };
        assert_eq!(
            s.position_noise().sigma(),
            Stage::Testbed.precision_sigma_m()
        );
    }

    #[test]
    fn safe_workflow_is_deployed_through_all_stages() {
        let commands = vec![
            Command::new("doser", ActionKind::SetDoor { open: true }),
            Command::new("doser", ActionKind::SetDoor { open: false }),
        ];
        let report = pipeline().promote("safe", &commands);
        assert_eq!(report.stages.len(), 3);
        assert!(report.deployed());
        assert_eq!(report.blocked_at(), None);
        assert_eq!(report.total_damage(), 0);
        // Setup costs accumulate per stage that ran.
        assert!(report.total_cost_s() >= 960.0);
        assert!(report.stage(Stage::Production).is_some());
    }

    #[test]
    fn alerting_workflow_never_reaches_the_next_stage() {
        // Bug A shape: enter the doser with the door closed.
        let commands = vec![Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        )];
        let report = pipeline().promote("bug_a", &commands);
        assert_eq!(report.stages.len(), 1, "blocked at the first stage");
        assert!(!report.deployed());
        assert_eq!(report.blocked_at(), Some(Stage::Simulator));
        assert!(report.stages[0].detected());
        assert!(report.stage(Stage::Testbed).is_none(), "never ran");
    }

    #[test]
    #[should_panic(expected = "deployment order")]
    fn out_of_order_pipeline_panics() {
        let _ = StagePipeline::new()
            .with_substrate(Box::new(MiniSubstrate {
                stage: Stage::Production,
            }))
            .with_substrate(Box::new(MiniSubstrate {
                stage: Stage::Simulator,
            }));
    }

    #[test]
    fn substrate_objects_are_shareable() {
        fn assert_sync<T: Send + Sync + ?Sized>() {}
        assert_sync::<dyn Substrate>();
    }
}
