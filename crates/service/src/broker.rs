//! The asynchronous rule-command broker.
//!
//! [`ServiceBroker`] fronts a shared [`RuleStore`] with a pool of worker
//! threads and **per-tenant FIFO queues**: commands for one tenant are
//! applied strictly in submission order (so a tenant's epoch history is
//! the same for any worker count), while commands for different tenants
//! commit in parallel. This is the determinism contract the
//! differential suite checks at 1, 4, and 8 threads — it holds exactly
//! because epochs are per tenant, so cross-tenant commit interleaving
//! is unobservable.
//!
//! Everything is hermetic `std`: threads, `Mutex` + `Condvar` for the
//! queues, and an `mpsc` channel per submission for the reply
//! ([`Ticket`]).

use crate::store::{CreateRuleRequest, RuleCommit, RuleStore, ServiceError, UpdateRuleRequest};
use rabit_rulebase::{RuleId, TenantId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One rule mutation, addressed to a tenant by the broker envelope.
#[derive(Debug, Clone)]
pub enum RuleOp {
    /// Add a rule ([`RuleStore::create_rule`]).
    Create(CreateRuleRequest),
    /// Partially update a rule ([`RuleStore::update_rule`]).
    Update(RuleId, UpdateRuleRequest),
    /// Switch a rule on ([`RuleStore::set_rule_enabled`]).
    Enable(RuleId),
    /// Switch a rule off ([`RuleStore::set_rule_enabled`]).
    Disable(RuleId),
    /// Remove a rule ([`RuleStore::remove_rule`]).
    Remove(RuleId),
}

/// A tenant-addressed [`RuleOp`] — the broker's submission unit.
#[derive(Debug, Clone)]
pub struct RuleCommand {
    /// The tenant the operation addresses.
    pub tenant: TenantId,
    /// The operation.
    pub op: RuleOp,
}

impl RuleCommand {
    /// A command for `tenant`.
    pub fn new(tenant: impl Into<TenantId>, op: RuleOp) -> Self {
        RuleCommand {
            tenant: tenant.into(),
            op,
        }
    }
}

/// The receipt channel for one submitted command: [`Ticket::wait`]
/// blocks until the broker has committed (or rejected) it.
#[derive(Debug)]
pub struct Ticket {
    reply: mpsc::Receiver<Result<RuleCommit, ServiceError>>,
}

impl Ticket {
    /// Blocks until the command's outcome is known.
    ///
    /// # Panics
    ///
    /// Panics if the broker was dropped before processing the command
    /// (a programming error: tickets must be waited on before drop).
    pub fn wait(self) -> Result<RuleCommit, ServiceError> {
        self.reply
            .recv()
            .expect("broker dropped with queued command")
    }
}

/// One queued job: the command plus its reply channel.
struct Job {
    command: RuleCommand,
    reply: mpsc::Sender<Result<RuleCommit, ServiceError>>,
}

/// Queue state shared between submitters and workers.
#[derive(Default)]
struct BrokerState {
    /// Per-tenant FIFO queues of pending jobs.
    queues: BTreeMap<TenantId, VecDeque<Job>>,
    /// Tenants a worker is currently applying a job for. A tenant in
    /// this set is skipped by other workers — that exclusivity is what
    /// turns the per-tenant queues into per-tenant serial order.
    busy: BTreeSet<TenantId>,
    /// Jobs submitted and not yet replied to (drives [`ServiceBroker::flush`]).
    in_flight: usize,
    /// Set once, by `Drop`: workers exit when no work remains.
    shutdown: bool,
}

/// The asynchronous command broker over a shared [`RuleStore`].
///
/// Dropping the broker finishes every queued command, then joins the
/// workers.
pub struct ServiceBroker {
    store: Arc<RuleStore>,
    state: Arc<(Mutex<BrokerState>, Condvar)>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceBroker {
    /// Spawns a broker with `threads` workers (min 1) over the store.
    pub fn new(store: Arc<RuleStore>, threads: usize) -> Self {
        let state = Arc::new((Mutex::new(BrokerState::default()), Condvar::new()));
        let workers = (0..threads.max(1))
            .map(|_| {
                let store = Arc::clone(&store);
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&store, &state))
            })
            .collect();
        ServiceBroker {
            store,
            state,
            workers,
        }
    }

    /// The shared store (snapshots read from it reflect every commit
    /// the broker has applied so far).
    pub fn store(&self) -> &Arc<RuleStore> {
        &self.store
    }

    /// Enqueues a command; per-tenant submission order is commit order.
    /// Returns a [`Ticket`] resolving to the commit receipt.
    pub fn submit(&self, command: RuleCommand) -> Ticket {
        let (tx, rx) = mpsc::channel();
        {
            let (lock, condvar) = &*self.state;
            let mut state = lock.lock().expect("broker state poisoned");
            state.in_flight += 1;
            state
                .queues
                .entry(command.tenant.clone())
                .or_default()
                .push_back(Job { command, reply: tx });
            condvar.notify_all();
        }
        Ticket { reply: rx }
    }

    /// Blocks until every command submitted so far has committed (or
    /// been rejected). Snapshots taken from the store afterwards see
    /// all of them.
    pub fn flush(&self) {
        let (lock, condvar) = &*self.state;
        let state = lock.lock().expect("broker state poisoned");
        let _unused = condvar
            .wait_while(state, |s| s.in_flight > 0)
            .expect("broker state poisoned");
    }
}

impl Drop for ServiceBroker {
    fn drop(&mut self) {
        {
            let (lock, condvar) = &*self.state;
            let mut state = lock.lock().expect("broker state poisoned");
            state.shutdown = true;
            condvar.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _unused = worker.join();
        }
    }
}

/// Worker loop: claim the first unclaimed tenant with pending work,
/// apply exactly one job, release the tenant, repeat.
fn worker_loop(store: &RuleStore, state: &(Mutex<BrokerState>, Condvar)) {
    let (lock, condvar) = state;
    loop {
        let job = {
            let mut guard = lock.lock().expect("broker state poisoned");
            loop {
                if let Some(tenant) = guard
                    .queues
                    .iter()
                    .find(|(tenant, queue)| !queue.is_empty() && !guard.busy.contains(*tenant))
                    .map(|(tenant, _)| tenant.clone())
                {
                    let job = guard
                        .queues
                        .get_mut(&tenant)
                        .and_then(VecDeque::pop_front)
                        .expect("queue emptied while holding the lock");
                    guard.busy.insert(tenant);
                    break job;
                }
                if guard.shutdown {
                    return;
                }
                guard = condvar.wait(guard).expect("broker state poisoned");
            }
        };
        let tenant = job.command.tenant;
        let result = match job.command.op {
            RuleOp::Create(request) => store.create_rule(&tenant, request),
            RuleOp::Update(rule, request) => store.update_rule(&tenant, &rule, request),
            RuleOp::Enable(rule) => store.set_rule_enabled(&tenant, &rule, true),
            RuleOp::Disable(rule) => store.set_rule_enabled(&tenant, &rule, false),
            RuleOp::Remove(rule) => store.remove_rule(&tenant, &rule),
        };
        // A dropped ticket just discards the receipt; the commit stands.
        let _unused = job.reply.send(result);
        let mut guard = lock.lock().expect("broker state poisoned");
        guard.busy.remove(&tenant);
        guard.in_flight -= 1;
        if guard.queues.get(&tenant).is_some_and(|q| q.is_empty()) {
            guard.queues.remove(&tenant);
        }
        // Wake both idle workers (tenant released) and flush() waiters.
        condvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_rulebase::{Rule, Rulebase};

    fn noop_rule(name: &str) -> Rule {
        Rule::new(
            RuleId::Custom(name.to_string()),
            "never fires",
            |_, _, _| None,
        )
    }

    #[test]
    fn broker_commits_in_per_tenant_submission_order() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("a", Rulebase::standard());
        store.seed_tenant("b", Rulebase::standard());
        let broker = ServiceBroker::new(Arc::clone(&store), 4);
        let mut tickets = Vec::new();
        for i in 0..8 {
            for tenant in ["a", "b"] {
                tickets.push(broker.submit(RuleCommand::new(
                    tenant,
                    RuleOp::Create(CreateRuleRequest::new(noop_rule(&format!("r{i}")))),
                )));
            }
        }
        let receipts: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        // Per tenant, the i-th submission published epoch i+1.
        for (i, pair) in receipts.chunks(2).enumerate() {
            for receipt in pair {
                let receipt = receipt.as_ref().expect("create commits");
                assert_eq!(receipt.epoch, i as u64 + 1);
            }
        }
        assert_eq!(store.epoch_of(&TenantId::new("a")), Some(8));
        assert_eq!(store.epoch_of(&TenantId::new("b")), Some(8));
    }

    #[test]
    fn flush_makes_all_commits_visible() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("lab", Rulebase::standard());
        let broker = ServiceBroker::new(Arc::clone(&store), 2);
        for i in 0..16 {
            drop(broker.submit(RuleCommand::new(
                "lab",
                RuleOp::Create(CreateRuleRequest::new(noop_rule(&format!("r{i}")))),
            )));
        }
        broker.flush();
        assert_eq!(store.epoch_of(&TenantId::new("lab")), Some(16));
        assert_eq!(
            store.snapshot_for(&TenantId::new("lab")).unwrap().len(),
            11 + 16
        );
    }

    #[test]
    fn rejected_commands_report_typed_errors() {
        let store = Arc::new(RuleStore::new());
        store.seed_tenant("lab", Rulebase::standard());
        let broker = ServiceBroker::new(Arc::clone(&store), 1);
        let err = broker
            .submit(RuleCommand::new(
                "ghost",
                RuleOp::Disable(RuleId::General(1)),
            ))
            .wait()
            .expect_err("unseeded tenant");
        assert_eq!(err, ServiceError::UnknownTenant(TenantId::new("ghost")));
        assert_eq!(store.epoch_of(&TenantId::new("lab")), Some(0));
    }
}
