//! Rigid transforms (rotation + translation).

use crate::{Mat3, Vec3};

/// A rigid transform: rotation followed by translation.
///
/// Poses express device placements on the experiment deck, robot-arm link
/// frames (via forward kinematics), and the mapping between the separate
/// per-arm coordinate systems used on the testbed.
///
/// # Example
///
/// ```
/// use rabit_geometry::{Mat3, Pose, Vec3};
///
/// // Ned2's frame is 0.8 m along X from ViperX's frame, rotated 180°.
/// let ned2_in_viperx = Pose::new(
///     Mat3::rotation_z(std::f64::consts::PI),
///     Vec3::new(0.8, 0.0, 0.0),
/// );
/// let p_ned2 = Vec3::new(0.1, 0.0, 0.2);
/// let p_viperx = ned2_in_viperx.transform_point(p_ned2);
/// assert!((p_viperx - Vec3::new(0.7, 0.0, 0.2)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose {
    /// Rotation part.
    pub rotation: Mat3,
    /// Translation part.
    pub translation: Vec3,
}

impl Pose {
    /// The identity transform.
    pub const IDENTITY: Pose = Pose {
        rotation: Mat3::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Creates a pose from a rotation and translation.
    pub const fn new(rotation: Mat3, translation: Vec3) -> Self {
        Pose {
            rotation,
            translation,
        }
    }

    /// A pure translation.
    pub const fn from_translation(translation: Vec3) -> Self {
        Pose {
            rotation: Mat3::IDENTITY,
            translation,
        }
    }

    /// A pure rotation.
    pub const fn from_rotation(rotation: Mat3) -> Self {
        Pose {
            rotation,
            translation: Vec3::ZERO,
        }
    }

    /// Applies the transform to a point.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Applies only the rotation part (for directions).
    #[inline]
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        self.rotation * v
    }

    /// Composition: `self ∘ other` (apply `other` first, then `self`).
    pub fn compose(&self, other: &Pose) -> Pose {
        Pose {
            rotation: self.rotation * other.rotation,
            translation: self.rotation * other.translation + self.translation,
        }
    }

    /// Inverse transform. Assumes the rotation part is orthonormal.
    pub fn inverse(&self) -> Pose {
        let rt = self.rotation.transpose();
        Pose {
            rotation: rt,
            translation: -(rt * self.translation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn assert_vec_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn identity_is_noop() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_close(Pose::IDENTITY.transform_point(p), p);
    }

    #[test]
    fn rotation_then_translation() {
        let pose = Pose::new(Mat3::rotation_z(FRAC_PI_2), Vec3::new(1.0, 0.0, 0.0));
        // X axis rotates to Y, then shifts by (1,0,0).
        assert_vec_close(pose.transform_point(Vec3::X), Vec3::new(1.0, 1.0, 0.0));
        // Directions ignore the translation.
        assert_vec_close(pose.transform_vector(Vec3::X), Vec3::Y);
    }

    #[test]
    fn inverse_roundtrip() {
        let pose = Pose::new(
            Mat3::rotation_axis_angle(Vec3::new(1.0, 1.0, 0.2), 0.9).unwrap(),
            Vec3::new(0.3, -0.7, 1.1),
        );
        let p = Vec3::new(0.5, 0.6, 0.7);
        let q = pose.inverse().transform_point(pose.transform_point(p));
        assert_vec_close(q, p);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a = Pose::new(Mat3::rotation_x(0.4), Vec3::new(0.1, 0.0, 0.0));
        let b = Pose::new(Mat3::rotation_z(1.2), Vec3::new(0.0, 0.2, 0.0));
        let p = Vec3::new(0.3, 0.4, 0.5);
        assert_vec_close(
            a.compose(&b).transform_point(p),
            a.transform_point(b.transform_point(p)),
        );
    }

    #[test]
    fn pure_constructors() {
        let t = Pose::from_translation(Vec3::X);
        assert_vec_close(t.transform_point(Vec3::ZERO), Vec3::X);
        let r = Pose::from_rotation(Mat3::rotation_z(FRAC_PI_2));
        assert_vec_close(r.transform_point(Vec3::X), Vec3::Y);
    }
}
