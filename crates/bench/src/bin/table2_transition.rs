//! Regenerates Table II: example actions, preconditions, action labels,
//! and postconditions for a robot-arm device — printed from the live
//! state-transition table.

use rabit_bench::report::render_table;
use rabit_rulebase::table::table_ii_rows;

fn main() {
    println!("Table II — example robot-arm actions with pre/postconditions\n");
    let rows: Vec<Vec<String>> = table_ii_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.action.to_string(),
                r.precondition.to_string(),
                r.label.to_string(),
                r.postcondition.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Action", "Precondition", "Label", "Postcondition"], &rows)
    );
}
