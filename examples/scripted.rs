//! From script text to a guarded run: parse a RATracer-style command
//! script (with vendor-specific command spellings resolved through the
//! alias table — the §V-C "multiple commands per action" challenge) and
//! execute it under RABIT on the testbed.
//!
//! ```text
//! cargo run --example scripted
//! ```

use rabit::testbed::{RabitStage, Testbed};
use rabit::tracer::{parse_script, AliasTable, Tracer};

const SCRIPT: &str = r#"
# Testbed warm-up written against three different vendor APIs:
# Interbotix spellings for ViperX, pyniryo spellings for Ned2, and the
# lab's own wrappers for the dosing device.
ned2.sleep()
dosing_device.set_door_open()
vial.decap()
viperx.home()
viperx.move_to_location(0.537, 0.018, 0.23)
viperx.move_to_location(0.537, 0.018, 0.18)
viperx.pick_up_object(vial)
viperx.move_to_location(0.537, 0.018, 0.23)
viperx.place_object(vial)
viperx.home()
dosing_device.set_door_closed()
viperx.sleep()

# Ned2 takes over once ViperX is parked (time multiplexing).
ned2.home()
ned2.move_pose(0.537, 0.018, 0.23)
ned2.home()
ned2.sleep()
"#;

fn main() {
    let aliases = AliasTable::standard();
    let workflow = parse_script("scripted_demo", SCRIPT, &aliases)
        .unwrap_or_else(|e| panic!("script error: {e}"));
    println!(
        "parsed {} commands from {} script lines\n",
        workflow.len(),
        SCRIPT.lines().count()
    );

    let mut tb = Testbed::new();
    let mut rabit = tb.rabit(RabitStage::Modified);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&workflow);
    for event in &report.trace.events {
        println!("{event}");
    }
    assert!(report.completed(), "alert: {:?}", report.alert);
    println!(
        "\ncompleted in {:.0} s of lab time; no alerts, no damage.",
        report.lab_time_s
    );

    // The same script with one corrupted coordinate is stopped cold: the
    // pickup height mistyped as 0.03 would drive the gripper into the
    // platform (the Bug-D/Fig.-6 mistake class).
    let buggy = SCRIPT.replace(
        "viperx.move_to_location(0.537, 0.018, 0.18)",
        "viperx.move_to_location(0.537, 0.018, 0.03)",
    );
    let workflow = parse_script("scripted_bug", &buggy, &aliases).unwrap();
    let mut tb = Testbed::new();
    let mut rabit = tb.rabit(RabitStage::Modified);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&workflow);
    println!(
        "\nwith the pickup height mistyped: {}",
        report.alert.expect("RABIT must halt the buggy script")
    );
    assert!(tb.lab.damage_log().is_empty());
}
