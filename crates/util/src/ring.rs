//! Bounded lock-light ring queues and a lost-wakeup-proof parker.
//!
//! The rule-service broker needs a queue that many submitter threads
//! can push into while worker threads drain it, without every
//! participant convoying on one global mutex. [`RingBuffer`] is a
//! bounded multi-producer/multi-consumer ring in the Vyukov style:
//! a `head`/`tail` pair of atomic cursors plus a per-slot sequence
//! number that tells producers and consumers, without any shared lock,
//! whose turn a slot is. The only lock in the structure is a tiny
//! per-slot `Mutex<Option<T>>` used purely as a safe-Rust stand-in for
//! an `UnsafeCell` write — it is never contended, because the sequence
//! protocol guarantees exactly one thread touches a slot at a time.
//!
//! [`Parker`] is the companion blocking primitive: a generation
//! counter under a `Mutex` + `Condvar`. Waiters read a ticket *before*
//! re-checking their wake condition and then sleep only while the
//! generation still equals that ticket, so a wakeup that races the
//! check can never be lost, and spurious condvar wakeups simply
//! re-evaluate the predicate (the wait always sits inside a
//! `while`-loop over the generation).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// One ring slot: the sequence cursor that encodes whose turn the slot
/// is, plus the (uncontended) value cell.
///
/// The protocol, for a ring of capacity `cap` and a slot at index
/// `pos & mask`:
/// - `seq == pos` — empty, a producer that reserved `pos` may write;
/// - `seq == pos + 1` — full, a consumer at `pos` may take the value;
/// - `seq == pos + cap` — consumed, i.e. empty for lap `pos + cap`.
#[derive(Debug)]
struct Slot<T> {
    seq: AtomicUsize,
    value: Mutex<Option<T>>,
}

/// A bounded multi-producer/multi-consumer FIFO ring.
///
/// Pushes and pops reserve positions with CAS on the `tail`/`head`
/// cursors; per-position hand-off goes through the slot sequence
/// numbers. Items pushed by one thread are popped in push order, and a
/// batch reserved by [`RingBuffer::try_push_batch`] occupies contiguous
/// positions — no other producer's items interleave inside it.
#[derive(Debug)]
pub struct RingBuffer<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next position to consume.
    head: AtomicUsize,
    /// Next position to produce.
    tail: AtomicUsize,
}

impl<T> RingBuffer<T> {
    /// A ring holding at most `capacity` items (rounded up to the next
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity)
            .map(|pos| Slot {
                seq: AtomicUsize::new(pos),
                value: Mutex::new(None),
            })
            .collect();
        RingBuffer {
            slots,
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots at a moment in time (approximate under
    /// concurrency; exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the ring was empty at a moment in time.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves `n` contiguous positions, or `None` if that would
    /// overfill the ring.
    fn reserve(&self, n: usize) -> Option<usize> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let head = self.head.load(Ordering::Acquire);
            if tail + n > head + self.capacity() {
                return None;
            }
            match self.tail.compare_exchange_weak(
                tail,
                tail + n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(tail),
                Err(current) => tail = current,
            }
        }
    }

    /// Publishes `value` into reserved position `pos`. Waits (spin,
    /// then yield) for the previous lap's consumer to finish releasing
    /// the slot — with multiple consumers, releases can complete out of
    /// order relative to the head cursor.
    fn publish(&self, pos: usize, value: T) {
        let slot = &self.slots[pos & self.mask];
        let mut spins = 0u32;
        while slot.seq.load(Ordering::Acquire) != pos {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        *slot.value.lock().expect("ring slot poisoned") = Some(value);
        slot.seq.store(pos + 1, Ordering::Release);
    }

    /// Pushes one item, returning it back if the ring is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        match self.reserve(1) {
            Some(pos) => {
                self.publish(pos, value);
                Ok(())
            }
            None => Err(value),
        }
    }

    /// Pushes a whole batch **all-or-nothing**: either every item lands
    /// in contiguous positions (preserving their order, with nothing
    /// from other producers interleaved between them) or the ring had
    /// too little room and the batch is handed back untouched.
    pub fn try_push_batch(&self, values: Vec<T>) -> Result<(), Vec<T>> {
        if values.is_empty() {
            return Ok(());
        }
        match self.reserve(values.len()) {
            Some(start) => {
                for (offset, value) in values.into_iter().enumerate() {
                    self.publish(start + offset, value);
                }
                Ok(())
            }
            None => Err(values),
        }
    }

    /// Pops the oldest item, or `None` if the ring is empty (or the
    /// oldest reserved position has not been published yet — callers
    /// park on the producer-side wakeup, which fires after publish).
    pub fn try_pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head + 1 {
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = slot
                            .value
                            .lock()
                            .expect("ring slot poisoned")
                            .take()
                            .expect("published slot holds a value");
                        // Release the slot for lap `head + capacity`.
                        slot.seq.store(head + self.capacity(), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => head = current,
                }
            } else if seq <= head {
                // Empty, or reserved but not yet published.
                return None;
            } else {
                // Another consumer advanced past this position; our
                // head read is stale.
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains up to `max` items into `out`, returning how many landed.
    pub fn pop_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.try_pop() {
                Some(value) => {
                    out.push(value);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }
}

/// A generation-counted blocking primitive that cannot lose wakeups.
///
/// The idiom, on the waiting side:
///
/// ```
/// # use rabit_util::ring::Parker;
/// # let parker = Parker::new();
/// # let work_available = || true;
/// loop {
///     let ticket = parker.ticket();
///     if work_available() {
///         break;
///     }
///     parker.park(ticket);
/// }
/// ```
///
/// Because the ticket is read *before* the condition is checked, an
/// [`Parker::unpark_all`] that lands between the check and the park
/// bumps the generation and [`Parker::park`] returns immediately. The
/// condvar wait itself sits inside a `while generation == ticket` loop,
/// so spurious wakeups just re-test the predicate.
#[derive(Debug, Default)]
pub struct Parker {
    generation: Mutex<u64>,
    condvar: Condvar,
}

impl Parker {
    /// A parker at generation zero.
    pub fn new() -> Self {
        Parker::default()
    }

    /// The current generation — take this *before* checking the wake
    /// condition.
    pub fn ticket(&self) -> u64 {
        *self.generation.lock().expect("parker poisoned")
    }

    /// Sleeps until the generation moves past `ticket`. Returns
    /// immediately if it already has.
    pub fn park(&self, ticket: u64) {
        let mut generation = self.generation.lock().expect("parker poisoned");
        while *generation == ticket {
            generation = self.condvar.wait(generation).expect("parker poisoned");
        }
    }

    /// Bumps the generation and wakes every parked thread.
    pub fn unpark_all(&self) {
        let mut generation = self.generation.lock().expect("parker poisoned");
        *generation = generation.wrapping_add(1);
        self.condvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_producer() {
        let ring = RingBuffer::with_capacity(8);
        for i in 0..8 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.try_push(99), Err(99), "full ring rejects");
        for i in 0..8 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let ring = RingBuffer::<u32>::with_capacity(5);
        assert_eq!(ring.capacity(), 8);
        let tiny = RingBuffer::<u32>::with_capacity(0);
        assert_eq!(tiny.capacity(), 2);
    }

    #[test]
    fn batch_push_is_all_or_nothing() {
        let ring = RingBuffer::with_capacity(8);
        ring.try_push_batch((0..6).collect::<Vec<_>>()).unwrap();
        let rejected = ring
            .try_push_batch((6..12).collect::<Vec<_>>())
            .expect_err("6 more cannot fit in 2 free slots");
        assert_eq!(rejected, (6..12).collect::<Vec<_>>());
        ring.try_push_batch(vec![6, 7]).unwrap();
        for i in 0..8 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        // Oversized batches can never succeed and fail fast.
        assert!(ring.try_push_batch((0..9).collect::<Vec<_>>()).is_err());
        // Empty batches are a no-op.
        ring.try_push_batch(Vec::<i32>::new()).unwrap();
    }

    #[test]
    fn ring_wraps_across_many_laps() {
        let ring = RingBuffer::with_capacity(4);
        let mut next = 0u32;
        let mut expect = 0u32;
        for _ in 0..37 {
            for _ in 0..3 {
                ring.try_push(next).unwrap();
                next += 1;
            }
            for _ in 0..3 {
                assert_eq!(ring.try_pop(), Some(expect));
                expect += 1;
            }
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn pop_into_respects_the_limit() {
        let ring = RingBuffer::with_capacity(8);
        for i in 0..6 {
            ring.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(ring.pop_into(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(ring.pop_into(&mut out, 4), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ring.pop_into(&mut out, 4), 0);
    }

    #[test]
    fn parker_ticket_taken_before_check_never_misses_a_wakeup() {
        let parker = Arc::new(Parker::new());
        // Unpark BEFORE the park: the stale ticket must not block.
        let ticket = parker.ticket();
        parker.unpark_all();
        parker.park(ticket); // returns immediately; a hang fails the test

        // And the blocking path actually blocks until unparked.
        let flag = Arc::new(AtomicUsize::new(0));
        let handle = {
            let parker = Arc::clone(&parker);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || loop {
                let ticket = parker.ticket();
                if flag.load(Ordering::Acquire) == 1 {
                    return;
                }
                parker.park(ticket);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        flag.store(1, Ordering::Release);
        parker.unpark_all();
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_producers_single_consumer_preserve_per_producer_order() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        let ring = Arc::new(RingBuffer::with_capacity(64));
        let mut seen: Vec<Vec<usize>> = vec![Vec::new(); PRODUCERS];
        std::thread::scope(|scope| {
            for producer in 0..PRODUCERS {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for seq in 0..PER_PRODUCER {
                        let mut item = (producer, seq);
                        loop {
                            match ring.try_push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            let mut received = 0;
            while received < PRODUCERS * PER_PRODUCER {
                if let Some((producer, seq)) = ring.try_pop() {
                    seen[producer].push(seq);
                    received += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        for (producer, sequence) in seen.iter().enumerate() {
            assert_eq!(sequence.len(), PER_PRODUCER, "producer {producer} complete");
            assert!(
                sequence.windows(2).all(|w| w[0] < w[1]),
                "producer {producer} order preserved"
            );
        }
    }
}
