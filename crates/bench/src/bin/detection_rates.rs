//! Regenerates the §IV summary: detection rate 8/16 (50%) with baseline
//! RABIT, 12/16 (75%) after modification, 13/16 (81%) with the Extended
//! Simulator — and zero false positives throughout.

use rabit_bench::report::render_table;
use rabit_buginject::{false_positives, run_study, RabitStage};

fn main() {
    println!("§IV summary — detection-rate progression over the 16-bug study\n");
    let configs = [
        (RabitStage::Baseline, "initial RABIT", "8/16 (50%)"),
        (RabitStage::Modified, "after modifications", "12/16 (75%)"),
        (
            RabitStage::ModifiedWithSimulator,
            "with Extended Simulator",
            "13/16 (81%)",
        ),
    ];
    let mut rows = Vec::new();
    for (stage, label, paper) in configs {
        let result = run_study(stage);
        let fp = false_positives(stage);
        rows.push(vec![
            label.to_string(),
            format!(
                "{}/16 ({:.0}%)",
                result.detected(),
                result.detection_rate() * 100.0
            ),
            paper.to_string(),
            fp.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Detected (measured)",
                "Paper",
                "False positives"
            ],
            &rows
        )
    );
    println!("Paper: \"throughout testing, RABIT never produced any false positives.\"");
}
