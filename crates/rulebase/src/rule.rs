//! Rule types: identities, outcomes, violations, and the [`Rule`] object.

use crate::catalog::DeviceCatalog;
use rabit_devices::{Command, LabState};
use std::fmt;
use std::sync::Arc;

/// Identifies a rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// General rule *n* of Table III (1-11).
    General(u8),
    /// A lab-specific custom rule; Hein rules are `custom:1` … `custom:4`
    /// of Table IV.
    Custom(String),
    /// A RABIT extension added during the evaluation (held-object
    /// geometry, time/space multiplexing).
    Extension(String),
    /// A rule mined from trace data (RAD).
    Mined(String),
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleId::General(n) => write!(f, "general:{n}"),
            RuleId::Custom(name) => write!(f, "custom:{name}"),
            RuleId::Extension(name) => write!(f, "extension:{name}"),
            RuleId::Mined(name) => write!(f, "mined:{name}"),
        }
    }
}

/// A detected rule violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// The context every rule check receives.
#[derive(Debug, Clone, Copy)]
pub struct RuleCtx<'a> {
    /// The static device catalog (from JSON configuration).
    pub catalog: &'a DeviceCatalog,
}

/// A checker function: given the command about to execute, the current
/// lab state, and the catalog, return a violation if the precondition
/// fails.
type CheckFn = dyn Fn(&Command, &LabState, &RuleCtx<'_>) -> Option<String> + Send + Sync;

/// One safety rule.
///
/// Rules are precondition checks: the Fig. 2 algorithm's
/// `Valid(S_current, a_next)` is the conjunction of all rules in the
/// rulebase.
#[derive(Clone)]
pub struct Rule {
    id: RuleId,
    description: String,
    check: Arc<CheckFn>,
}

impl Rule {
    /// Creates a rule from its id, Table III/IV wording, and checker.
    pub fn new(
        id: RuleId,
        description: impl Into<String>,
        check: impl Fn(&Command, &LabState, &RuleCtx<'_>) -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        Rule {
            id,
            description: description.into(),
            check: Arc::new(check),
        }
    }

    /// The rule's id.
    pub fn id(&self) -> &RuleId {
        &self.id
    }

    /// The rule's wording (as in the paper's tables).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Checks the rule against a pending command. Returns a violation if
    /// the precondition fails, `None` if it holds or does not apply.
    pub fn check(
        &self,
        command: &Command,
        state: &LabState,
        ctx: &RuleCtx<'_>,
    ) -> Option<Violation> {
        (self.check)(command, state, ctx).map(|message| Violation {
            rule: self.id.clone(),
            message,
        })
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rule")
            .field("id", &self.id)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::ActionKind;

    #[test]
    fn rule_id_display() {
        assert_eq!(RuleId::General(3).to_string(), "general:3");
        assert_eq!(RuleId::Custom("1".into()).to_string(), "custom:1");
        assert_eq!(
            RuleId::Extension("time_multiplexing".into()).to_string(),
            "extension:time_multiplexing"
        );
        assert_eq!(
            RuleId::Mined("door_before_enter".into()).to_string(),
            "mined:door_before_enter"
        );
    }

    #[test]
    fn rule_check_wraps_message() {
        let rule = Rule::new(RuleId::General(4), "no double pick", |cmd, _, _| {
            matches!(cmd.action, ActionKind::PickObject { .. })
                .then(|| "already holding".to_string())
        });
        let catalog = DeviceCatalog::new();
        let ctx = RuleCtx { catalog: &catalog };
        let state = LabState::new();
        let pick = Command::new("arm", ActionKind::PickObject { object: "v".into() });
        let v = rule.check(&pick, &state, &ctx).unwrap();
        assert_eq!(v.rule, RuleId::General(4));
        assert!(v.to_string().contains("general:4"));
        let open = Command::new("d", ActionKind::SetDoor { open: true });
        assert!(rule.check(&open, &state, &ctx).is_none());
        assert_eq!(rule.description(), "no double pick");
        assert!(format!("{rule:?}").contains("General(4)"));
    }

    #[test]
    fn rule_ids_order() {
        let mut ids = [
            RuleId::General(11),
            RuleId::General(1),
            RuleId::Custom("2".into()),
        ];
        ids.sort();
        assert_eq!(ids[0], RuleId::General(1));
        assert_eq!(ids[1], RuleId::General(11));
    }
}
