//! The runtime [`Device`] trait, errors, latencies, and malfunction
//! injection.

use crate::command::ActionKind;
use crate::id::{DeviceId, DeviceType};
use crate::state::DeviceState;
use rabit_geometry::Aabb;
use std::fmt;

/// Errors a device can raise while executing a command.
///
/// These model *firmware-level* refusals — the first line of defence the
/// paper describes ("device-specific thresholds embedded inside device
/// firmware", §I) — plus mechanical failure modes used by the evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The action is not supported by this device type (e.g. asking a
    /// hotplate to pick up a vial).
    UnsupportedAction {
        /// The acting device.
        device: DeviceId,
        /// The rejected action label.
        action: &'static str,
    },
    /// A firmware threshold was exceeded (e.g. the IKA hotplate's safe
    /// temperature limit).
    FirmwareLimit {
        /// The acting device.
        device: DeviceId,
        /// Requested value.
        requested: f64,
        /// Firmware maximum.
        limit: f64,
    },
    /// The command is inconsistent with the device's own state in a way
    /// its firmware detects (e.g. a dosing device asked to dose while
    /// already dosing).
    InvalidState {
        /// The acting device.
        device: DeviceId,
        /// Human-readable reason.
        reason: String,
    },
    /// The device's controller could not compute a trajectory and raised
    /// an exception — the Ned2 behaviour for infeasible targets.
    TrajectoryFault {
        /// The acting device.
        device: DeviceId,
        /// Why the trajectory failed.
        reason: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnsupportedAction { device, action } => {
                write!(f, "{device}: unsupported action '{action}'")
            }
            DeviceError::FirmwareLimit {
                device,
                requested,
                limit,
            } => {
                write!(
                    f,
                    "{device}: requested {requested} exceeds firmware limit {limit}"
                )
            }
            DeviceError::InvalidState { device, reason } => {
                write!(f, "{device}: invalid state: {reason}")
            }
            DeviceError::TrajectoryFault { device, reason } => {
                write!(f, "{device}: trajectory fault: {reason}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Injectable malfunctions, used by the evaluation to make
/// `S_actual ≠ S_expected` (Fig. 2, Lines 14-15) without physical damage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Malfunction {
    /// The device acknowledges commands but its actuator does nothing
    /// (e.g. a stuck door, the ViperX silently skipping a move).
    SilentNoop,
    /// Numeric state reads are offset by this amount (drifted sensor).
    SensorOffset(f64),
    /// A robot arm's gripper fails to retain objects: any pick appears to
    /// succeed but the object is immediately dropped.
    DropsObject,
}

/// Simulated command latencies, in seconds of lab time.
///
/// RABIT's latency-overhead experiment (§II-C) compares per-command device
/// execution time (~2 s for physical motion) against RABIT's checking
/// overhead (~0.03 s) and the Extended Simulator's GUI overhead (~2 s).
/// Devices report how long each action takes so the harness can accumulate
/// virtual lab time deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Seconds for a motion action (arm move, door actuation).
    pub motion_s: f64,
    /// Seconds for a process action (dosing, heating ramp start).
    pub process_s: f64,
    /// Seconds for a status query (the `FetchState()` building block).
    pub status_s: f64,
}

impl LatencyModel {
    /// Typical production-lab latencies: ~2 s motions, 1 s process
    /// actions, 10 ms status reads.
    pub const PRODUCTION: LatencyModel = LatencyModel {
        motion_s: 2.0,
        process_s: 1.0,
        status_s: 0.01,
    };

    /// Testbed latencies: slower, jerkier educational arms.
    pub const TESTBED: LatencyModel = LatencyModel {
        motion_s: 3.0,
        process_s: 1.0,
        status_s: 0.02,
    };

    /// Simulator latencies: no physics, everything is quick.
    pub const SIMULATED: LatencyModel = LatencyModel {
        motion_s: 0.05,
        process_s: 0.01,
        status_s: 0.001,
    };

    /// Zero-cost model for pure logic tests.
    pub const ZERO: LatencyModel = LatencyModel {
        motion_s: 0.0,
        process_s: 0.0,
        status_s: 0.0,
    };

    /// The simulated duration of `action` on a device using this model.
    pub fn action_latency(&self, action: &ActionKind) -> f64 {
        if action.is_robot_motion() || matches!(action, ActionKind::SetDoor { .. }) {
            self.motion_s
        } else {
            self.process_s
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::PRODUCTION
    }
}

/// A runtime lab device: the object RABIT fetches state from and forwards
/// validated commands to.
///
/// `Send + Sync` is required so labs (and the substrates that build them)
/// can be shared across fleet worker threads; devices hold no interior
/// mutability, so any ordinary device satisfies this automatically.
pub trait Device: Send + Sync {
    /// The device's unique id.
    fn id(&self) -> &DeviceId;

    /// Which of the four taxonomy types (or a custom type) this device is.
    fn device_type(&self) -> DeviceType;

    /// Status command: a full snapshot of the device's state variables.
    /// This is the per-device building block of `FetchState()` in Fig. 2.
    fn fetch_state(&self) -> DeviceState;

    /// Executes an action, updating internal state.
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceError`] for firmware refusals or unsupported
    /// actions. **No safety checking happens here** — that is RABIT's
    /// job; firmware checks are deliberately narrow (paper §I).
    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError>;

    /// The stationary cuboid this device occupies on the deck, if it is
    /// stationary (robot arms return `None`; their volume is dynamic).
    fn footprint(&self) -> Option<Aabb> {
        None
    }

    /// The device's command-latency model.
    fn latency(&self) -> LatencyModel {
        LatencyModel::default()
    }

    /// Injects (or clears) a malfunction. Default: ignored, for devices
    /// that do not support injection.
    fn inject_malfunction(&mut self, _malfunction: Option<Malfunction>) {}
}

/// Helper shared by the concrete devices: apply a sensor-offset
/// malfunction to a numeric reading.
pub(crate) fn offset_reading(value: f64, malfunction: Option<Malfunction>) -> f64 {
    match malfunction {
        Some(Malfunction::SensorOffset(off)) => value + off,
        _ => value,
    }
}

/// Helper shared by the concrete devices: should this execute be silently
/// swallowed?
pub(crate) fn is_silent_noop(malfunction: Option<Malfunction>) -> bool {
    matches!(malfunction, Some(Malfunction::SilentNoop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_geometry::Vec3;

    #[test]
    fn latency_classification() {
        let m = LatencyModel::PRODUCTION;
        assert_eq!(
            m.action_latency(&ActionKind::MoveToLocation { target: Vec3::ZERO }),
            2.0
        );
        assert_eq!(m.action_latency(&ActionKind::SetDoor { open: true }), 2.0);
        assert_eq!(
            m.action_latency(&ActionKind::StartAction { value: 60.0 }),
            1.0
        );
        assert_eq!(m.action_latency(&ActionKind::Cap), 1.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn latency_presets_are_ordered() {
        assert!(LatencyModel::SIMULATED.motion_s < LatencyModel::PRODUCTION.motion_s);
        assert!(LatencyModel::PRODUCTION.motion_s <= LatencyModel::TESTBED.motion_s);
        assert_eq!(LatencyModel::ZERO.status_s, 0.0);
        assert_eq!(LatencyModel::default(), LatencyModel::PRODUCTION);
    }

    #[test]
    fn error_display() {
        let e = DeviceError::FirmwareLimit {
            device: DeviceId::new("hotplate"),
            requested: 400.0,
            limit: 340.0,
        };
        assert!(e.to_string().contains("exceeds firmware limit"));
        let e = DeviceError::UnsupportedAction {
            device: DeviceId::new("x"),
            action: "cap_vial",
        };
        assert!(e.to_string().contains("unsupported"));
        let e = DeviceError::TrajectoryFault {
            device: DeviceId::new("ned2"),
            reason: "target out of reach".into(),
        };
        assert!(e.to_string().contains("trajectory fault"));
    }

    #[test]
    fn malfunction_helpers() {
        assert_eq!(
            offset_reading(10.0, Some(Malfunction::SensorOffset(2.0))),
            12.0
        );
        assert_eq!(offset_reading(10.0, Some(Malfunction::SilentNoop)), 10.0);
        assert_eq!(offset_reading(10.0, None), 10.0);
        assert!(is_silent_noop(Some(Malfunction::SilentNoop)));
        assert!(!is_silent_noop(Some(Malfunction::DropsObject)));
        assert!(!is_silent_noop(None));
    }
}
