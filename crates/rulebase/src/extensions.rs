//! RABIT extensions added during the paper's evaluation (§IV):
//! time multiplexing, space multiplexing, and the sleeping-arm obstacle.
//!
//! After Bug B (two robot arms colliding near the grid), the authors
//! "multiplex robot arm movements in either time or space":
//!
//! * **time multiplexing** — "at any given time, only one robot is in
//!   motion whereas other robot arms are in their sleep position and
//!   modeled as 3D cuboid spaces";
//! * **space multiplexing** — "a software-defined wall between the two
//!   robot arms … providing each robot with its own dedicated space".

use crate::rule::{ActorClass, Rule, RuleId, RuleSignature};
use crate::rulebase::Rulebase;
use rabit_devices::{ActionClass, ActionKind, StateKey};

/// Which evaluation extensions to layer on top of the Hein-Lab
/// rulebase. The testbed and production crates used to assemble these
/// combinations by hand in near-identical `rulebase_for` functions; this
/// set plus [`extended_hein_rulebase`] is the single shared builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtensionSet {
    /// [`held_object_clearance_rule`] — the post-Bug-D modification.
    pub held_object: bool,
    /// [`time_multiplexing_rule`] — the post-Bug-B modification.
    pub time_multiplexing: bool,
    /// [`sleep_volume_rule`] — sleeping arms as cuboid obstacles.
    pub sleep_volumes: bool,
}

impl ExtensionSet {
    /// No extensions: the plain Hein-Lab rulebase (the paper's baseline).
    pub fn none() -> Self {
        ExtensionSet::default()
    }

    /// Every evaluation extension (the post-§IV modified testbed).
    pub fn all() -> Self {
        ExtensionSet {
            held_object: true,
            time_multiplexing: true,
            sleep_volumes: true,
        }
    }

    /// Only the held-object clearance rule (the production deck runs a
    /// single arm, so the multi-arm multiplexing rules stay off).
    pub fn held_object_only() -> Self {
        ExtensionSet {
            held_object: true,
            ..ExtensionSet::default()
        }
    }

    /// The selected extension rules, in the canonical evaluation order
    /// (held-object, time multiplexing, sleep volumes — the order the
    /// testbed historically pushed them, preserved so verdicts stay
    /// bit-identical).
    pub fn rules(&self) -> Vec<Rule> {
        let mut rules = Vec::new();
        if self.held_object {
            rules.push(held_object_clearance_rule());
        }
        if self.time_multiplexing {
            rules.push(time_multiplexing_rule());
        }
        if self.sleep_volumes {
            rules.push(sleep_volume_rule());
        }
        rules
    }
}

/// The shared catalog→rulebase builder: [`Rulebase::hein_lab`] plus the
/// selected [`ExtensionSet`]. Both `rabit_testbed::rulebase_for` and
/// `rabit_production::production_rulebase` are thin wrappers over this.
pub fn extended_hein_rulebase(set: ExtensionSet) -> Rulebase {
    let mut rb = Rulebase::hein_lab();
    rb.extend(set.rules());
    rb
}

/// Time multiplexing: a robot arm may only move when every *other* robot
/// arm is parked at its sleep position.
pub fn time_multiplexing_rule() -> Rule {
    Rule::new(
        RuleId::Extension("time_multiplexing".to_string()),
        "Only one arm moves at a time; all other arms must be asleep",
        |cmd, state, ctx| {
            if !cmd.action.is_robot_motion() || !ctx.catalog.is_robot_arm(&cmd.actor) {
                return None;
            }
            // Going to sleep is always allowed — it is how the other arm
            // yields the workspace.
            if matches!(cmd.action, ActionKind::MoveToSleep) {
                return None;
            }
            for arm in ctx.catalog.robot_arms() {
                if arm.id == cmd.actor {
                    continue;
                }
                if state.get_bool(&arm.id, &StateKey::AtSleep) != Some(true) {
                    return Some(format!(
                        "{} may not move: {} is not at its sleep position",
                        cmd.actor, arm.id
                    ));
                }
            }
            None
        },
    )
    .with_signature(
        RuleSignature::actions(&ActionClass::ROBOT_MOTION).for_actors(&[ActorClass::RobotArm]),
    )
}

/// Sleeping-arm obstacle: a sleeping arm occupies its catalogued sleep
/// cuboid, so motion targets inside that cuboid are blocked — sleeping
/// arms are treated "identically to other devices".
pub fn sleep_volume_rule() -> Rule {
    Rule::new(
        RuleId::Extension("sleep_volume".to_string()),
        "Sleeping arms occupy their sleep cuboid like any other device",
        |cmd, state, ctx| {
            let ActionKind::MoveToLocation { target } = &cmd.action else {
                return None;
            };
            for arm in ctx.catalog.robot_arms() {
                if arm.id == cmd.actor {
                    continue;
                }
                if state.get_bool(&arm.id, &StateKey::AtSleep) == Some(true) {
                    if let Some(vol) = &arm.sleep_volume {
                        if vol.contains_point(*target) {
                            return Some(format!(
                                "{} target {target} lies inside sleeping {}'s volume",
                                cmd.actor, arm.id
                            ));
                        }
                    }
                }
            }
            None
        },
    )
    .with_actions(&[ActionClass::MoveToLocation])
}

/// Held-object geometry: "a robot arm's dimensions may change if it is
/// holding an object" (§IV, category 4). The post-Bug-D modification: a
/// move while holding must keep the *held object* clear of the platform,
/// not just the gripper.
pub fn held_object_clearance_rule() -> Rule {
    Rule::new(
        RuleId::Extension("held_object_clearance".to_string()),
        "A held object must clear the platform, not just the gripper",
        |cmd, state, _| {
            let ActionKind::MoveToLocation { target } = &cmd.action else {
                return None;
            };
            let held = state.get_id(&cmd.actor, &StateKey::Holding).flatten()?;
            if target.z <= rabit_devices::physical::HELD_OBJECT_CLEARANCE_M {
                Some(format!(
                    "{} target {target} would crash held object {held} into the platform",
                    cmd.actor
                ))
            } else {
                None
            }
        },
    )
    .with_actions(&[ActionClass::MoveToLocation])
}

/// Space multiplexing: each arm is confined to its own region by a
/// software-defined wall; any motion target outside the arm's region is
/// blocked, and arms in disjoint regions may move concurrently.
pub fn space_multiplexing_rule() -> Rule {
    Rule::new(
        RuleId::Extension("space_multiplexing".to_string()),
        "Each arm stays on its side of the software-defined wall",
        |cmd, _state, ctx| {
            let ActionKind::MoveToLocation { target } = &cmd.action else {
                return None;
            };
            let region = ctx
                .catalog
                .get(&cmd.actor)
                .and_then(|m| m.allowed_region.as_ref())?;
            if region.contains_point(*target) {
                None
            } else {
                Some(format!(
                    "{} target {target} crosses the software wall out of its region",
                    cmd.actor
                ))
            }
        },
    )
    .with_actions(&[ActionClass::MoveToLocation])
}

/// Multi-door devices: the §V-C open challenge — "devices might have
/// multiple doors, for instance, for two robot arms to approach the
/// device simultaneously". Generalises rules III-1 and III-2 to per-door,
/// per-arm form over a `MultiDoorDevice`: each arm is assigned a door, an
/// arm may only enter while *its* door is open, and a door may not close
/// while the arm assigned to it is inside. Two arms can therefore work
/// the chamber at the same time through different doors.
pub mod multi_door {
    use crate::rule::{Rule, RuleId};
    use rabit_devices::multidoor::door_key;
    use rabit_devices::{ActionKind, DeviceId, StateKey};

    /// Builds the entry + closing rules for `device` with the given
    /// arm-to-door assignments.
    pub fn multi_door_rules(device: DeviceId, assignments: &[(DeviceId, String)]) -> Vec<Rule> {
        let assignments: Vec<(DeviceId, String)> = assignments.to_vec();

        let entry_device = device.clone();
        let entry_assignments = assignments.clone();
        let entry = Rule::new(
            RuleId::Extension(format!("multi_door_entry:{device}")),
            "An arm enters a multi-door device only through its own, open door",
            move |cmd, state, _| {
                let ActionKind::MoveInsideDevice { device: target } = &cmd.action else {
                    return None;
                };
                if target != &entry_device {
                    return None;
                }
                let Some((_, door)) = entry_assignments.iter().find(|(arm, _)| arm == &cmd.actor)
                else {
                    return Some(format!(
                        "{} has no assigned door on {entry_device}",
                        cmd.actor
                    ));
                };
                match state.get_bool(&entry_device, &door_key(door)) {
                    Some(true) => None,
                    _ => Some(format!(
                        "{} attempted to enter {entry_device} while its door '{door}' is not open",
                        cmd.actor
                    )),
                }
            },
        )
        .with_actions(&[rabit_devices::ActionClass::MoveInsideDevice]);

        let close_device = device.clone();
        let close_assignments = assignments;
        let closing = Rule::new(
            RuleId::Extension(format!("multi_door_close:{device}")),
            "A door may not close while the arm assigned to it is inside",
            move |cmd, state, _| {
                if cmd.actor != close_device {
                    return None;
                }
                let ActionKind::Custom { name, .. } = &cmd.action else {
                    return None;
                };
                let door = name.strip_prefix(rabit_devices::multidoor::CLOSE_DOOR_PREFIX)?;
                for (arm, assigned) in &close_assignments {
                    if assigned == door
                        && state.get_id(arm, &StateKey::InsideOf).flatten() == Some(&close_device)
                    {
                        return Some(format!(
                            "closing {close_device}'s door '{door}' while {arm} is inside"
                        ));
                    }
                }
                None
            },
        )
        .with_actions(&[rabit_devices::ActionClass::Custom]);

        vec![entry, closing]
    }
}

/// Human proximity: the sensor-backed rule the Berlinguette visit
/// motivates (§V-B) — no robot arm moves while any proximity sensor
/// reports its watched region occupied. Sensors become "a new device
/// class" and their readings feed a rule instead of a hard interlock.
pub fn human_proximity_rule() -> Rule {
    Rule::new(
        RuleId::Extension("human_proximity".to_string()),
        "No arm moves while a proximity sensor reports a person in the workspace",
        |cmd, state, ctx| {
            if !cmd.action.is_robot_motion() || !ctx.catalog.is_robot_arm(&cmd.actor) {
                return None;
            }
            let occupied_key = StateKey::Custom(rabit_devices::OCCUPIED_KEY.to_string());
            for meta in ctx.catalog.iter() {
                if meta.has_tag("proximity_sensor")
                    && state.get_bool(&meta.id, &occupied_key) == Some(true)
                {
                    return Some(format!(
                        "{} may not move: sensor {} reports its region occupied",
                        cmd.actor, meta.id
                    ));
                }
            }
            None
        },
    )
    .with_signature(
        RuleSignature::actions(&ActionClass::ROBOT_MOTION).for_actors(&[ActorClass::RobotArm]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{DeviceCatalog, DeviceMeta};
    use crate::rule::RuleCtx;
    use rabit_devices::{Command, DeviceState, DeviceType, LabState};
    use rabit_geometry::{Aabb, Vec3};

    fn catalog() -> DeviceCatalog {
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("viperx", DeviceType::RobotArm)
                    .with_sleep_volume(Aabb::new(Vec3::ZERO, Vec3::splat(0.2)))
                    .with_allowed_region(Aabb::new(
                        Vec3::new(-1.0, -1.0, 0.0),
                        Vec3::new(0.4, 1.0, 1.0),
                    )),
            )
            .with(
                DeviceMeta::new("ned2", DeviceType::RobotArm)
                    .with_sleep_volume(Aabb::new(
                        Vec3::new(0.8, 0.0, 0.0),
                        Vec3::new(1.0, 0.2, 0.2),
                    ))
                    .with_allowed_region(Aabb::new(
                        Vec3::new(0.5, -1.0, 0.0),
                        Vec3::new(2.0, 1.0, 1.0),
                    )),
            )
    }

    fn state(viperx_asleep: bool, ned2_asleep: bool) -> LabState {
        let mut s = LabState::new();
        s.insert(
            "viperx",
            DeviceState::new().with(StateKey::AtSleep, viperx_asleep),
        );
        s.insert(
            "ned2",
            DeviceState::new().with(StateKey::AtSleep, ned2_asleep),
        );
        s
    }

    fn check(rule: &Rule, cmd: &Command, st: &LabState) -> Option<String> {
        let catalog = catalog();
        let ctx = RuleCtx { catalog: &catalog };
        rule.check(cmd, st, &ctx).map(|v| v.message)
    }

    #[test]
    fn time_multiplexing_blocks_concurrent_motion() {
        let rule = time_multiplexing_rule();
        let move_cmd = Command::new(
            "ned2",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.443, -0.010, 0.292),
            },
        );
        // Bug B: ViperX is stationed above the grid (not asleep).
        let st = state(false, false);
        assert!(check(&rule, &move_cmd, &st)
            .unwrap()
            .contains("not at its sleep position"));
        // With ViperX asleep, Ned2 may move.
        let st = state(true, false);
        assert!(check(&rule, &move_cmd, &st).is_none());
    }

    #[test]
    fn time_multiplexing_always_allows_going_to_sleep() {
        let rule = time_multiplexing_rule();
        let st = state(false, false);
        let sleep = Command::new("ned2", ActionKind::MoveToSleep);
        assert!(check(&rule, &sleep, &st).is_none());
    }

    #[test]
    fn time_multiplexing_ignores_non_motion_and_non_arms() {
        let rule = time_multiplexing_rule();
        let st = state(false, false);
        let door = Command::new("doser", ActionKind::SetDoor { open: true });
        assert!(check(&rule, &door, &st).is_none());
        let not_arm = Command::new("doser", ActionKind::MoveHome);
        assert!(
            check(&rule, &not_arm, &st).is_none(),
            "doser is not a catalogued arm"
        );
    }

    #[test]
    fn sleep_volume_blocks_targets_inside_sleeping_arm() {
        let rule = sleep_volume_rule();
        // Ned2 asleep in its corner cuboid; ViperX aims into it.
        let st = state(false, true);
        let cmd = Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.9, 0.1, 0.1),
            },
        );
        assert!(check(&rule, &cmd, &st).unwrap().contains("sleeping ned2"));
        // Awake arms are not cuboids (their real volume is dynamic).
        let st = state(false, false);
        assert!(check(&rule, &cmd, &st).is_none());
        // Targets outside the sleep cuboid are fine.
        let st = state(false, true);
        let cmd = Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.3, 0.1, 0.5),
            },
        );
        assert!(check(&rule, &cmd, &st).is_none());
    }

    #[test]
    fn held_object_clearance_detects_bug_d() {
        use rabit_devices::DeviceId;
        let rule = held_object_clearance_rule();
        let mut st = state(false, false);
        // Bug D: pickup z lowered to 0.08 — safe for the bare arm, fatal
        // for a held vial.
        let low = Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.15, 0.45, 0.08),
            },
        );
        // Not holding: this extension rule stays silent.
        st.set(&"viperx".into(), StateKey::Holding, None::<DeviceId>);
        assert!(check(&rule, &low, &st).is_none());
        // Holding a vial: violation.
        st.set(
            &"viperx".into(),
            StateKey::Holding,
            Some(DeviceId::new("vial")),
        );
        assert!(check(&rule, &low, &st)
            .unwrap()
            .contains("crash held object"));
        // A normal-height move while holding is fine.
        let ok = Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.15, 0.45, 0.19),
            },
        );
        assert!(check(&rule, &ok, &st).is_none());
    }

    #[test]
    fn multi_door_rules_allow_concurrent_per_door_access() {
        use super::multi_door::multi_door_rules;
        use rabit_devices::multidoor::door_key;
        use rabit_devices::DeviceId;

        let rules = multi_door_rules(
            "glovebox".into(),
            &[
                (DeviceId::new("viperx"), "north".to_string()),
                (DeviceId::new("ned2"), "south".to_string()),
            ],
        );
        assert_eq!(rules.len(), 2);
        let catalog = DeviceCatalog::new()
            .with(DeviceMeta::new("viperx", DeviceType::RobotArm))
            .with(DeviceMeta::new("ned2", DeviceType::RobotArm))
            .with(DeviceMeta::new(
                "glovebox",
                DeviceType::Custom("multi_door_chamber".into()),
            ));
        let ctx = RuleCtx { catalog: &catalog };
        let mut st = LabState::new();
        st.insert(
            "glovebox",
            DeviceState::new()
                .with(door_key("north"), true)
                .with(door_key("south"), false),
        );
        st.insert(
            "viperx",
            DeviceState::new().with(StateKey::InsideOf, None::<DeviceId>),
        );
        st.insert(
            "ned2",
            DeviceState::new().with(StateKey::InsideOf, None::<DeviceId>),
        );

        let enter = |arm: &str| {
            Command::new(
                arm,
                ActionKind::MoveInsideDevice {
                    device: "glovebox".into(),
                },
            )
        };
        // ViperX's north door is open: entry allowed.
        assert!(rules[0].check(&enter("viperx"), &st, &ctx).is_none());
        // Ned2's south door is closed: blocked — even though north is open
        // (single-door RABIT could not make this distinction).
        assert!(rules[0]
            .check(&enter("ned2"), &st, &ctx)
            .unwrap()
            .message
            .contains("'south'"));
        // Open south: both arms may now work the chamber concurrently.
        st.set(&"glovebox".into(), door_key("south"), true);
        assert!(rules[0].check(&enter("ned2"), &st, &ctx).is_none());

        // Closing: ViperX inside via north; closing north is blocked,
        // closing south is fine.
        st.set(
            &"viperx".into(),
            StateKey::InsideOf,
            Some(DeviceId::new("glovebox")),
        );
        let close_north = rabit_devices::multidoor::close_door_command("glovebox", "north");
        let close_south = rabit_devices::multidoor::close_door_command("glovebox", "south");
        assert!(rules[1]
            .check(&close_north, &st, &ctx)
            .unwrap()
            .message
            .contains("viperx is inside"));
        assert!(rules[1].check(&close_south, &st, &ctx).is_none());

        // An unassigned arm has no door and may not enter at all.
        let rules2 = multi_door_rules(
            "glovebox".into(),
            &[(DeviceId::new("viperx"), "north".to_string())],
        );
        assert!(rules2[0]
            .check(&enter("ned2"), &st, &ctx)
            .unwrap()
            .message
            .contains("no assigned door"));
    }

    #[test]
    fn human_proximity_blocks_motion_while_occupied() {
        let rule = human_proximity_rule();
        let catalog = DeviceCatalog::new()
            .with(DeviceMeta::new("viperx", DeviceType::RobotArm))
            .with(
                DeviceMeta::new("deck_sensor", DeviceType::Custom("proximity_sensor".into()))
                    .with_tag("proximity_sensor"),
            );
        let ctx = RuleCtx { catalog: &catalog };
        let occupied_key = StateKey::Custom(rabit_devices::OCCUPIED_KEY.to_string());
        let mut st = LabState::new();
        st.insert(
            "deck_sensor",
            DeviceState::new().with(occupied_key.clone(), true),
        );
        let mv = Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.3, 0.0, 0.3),
            },
        );
        let v = rule
            .check(&mv, &st, &ctx)
            .expect("occupied region blocks motion");
        assert!(v.message.contains("occupied"));
        // Clear region: motion allowed again.
        st.set(&"deck_sensor".into(), occupied_key, false);
        assert!(rule.check(&mv, &st, &ctx).is_none());
        // Non-motion commands are unaffected even while occupied.
        st.set(
            &"deck_sensor".into(),
            StateKey::Custom(rabit_devices::OCCUPIED_KEY.to_string()),
            true,
        );
        let door = Command::new("doser", ActionKind::SetDoor { open: true });
        assert!(rule.check(&door, &st, &ctx).is_none());
    }

    #[test]
    fn space_multiplexing_confines_each_arm() {
        let rule = space_multiplexing_rule();
        let st = state(false, false);
        // ViperX inside its own region: ok even while Ned2 moves.
        let ok = Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.2, 0.0, 0.3),
            },
        );
        assert!(check(&rule, &ok, &st).is_none());
        // ViperX reaching across the wall into Ned2's region: blocked.
        let cross = Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.9, 0.0, 0.3),
            },
        );
        assert!(check(&rule, &cross, &st).unwrap().contains("software wall"));
        // Devices without a region are unconstrained.
        let unknown = Command::new(
            "other",
            ActionKind::MoveToLocation {
                target: Vec3::new(5.0, 5.0, 5.0),
            },
        );
        assert!(check(&rule, &unknown, &st).is_none());
    }
}
