//! JSON configuration for RABIT.
//!
//! "The JSON format provides a simple and standardized way to represent
//! information, making it easy for researchers to modify and update the
//! device information." (§II-C) The pilot study showed the cost of that
//! flexibility: sign errors and syntax slips took hours to debug, and the
//! paper concludes that "more precise JSON schema specifications could
//! have helped". This crate is that conclusion implemented:
//!
//! * [`LabConfig`] — the schema (devices, types, doors, thresholds,
//!   footprints, connection parameters, custom rules);
//! * [`validate`] / [`to_catalog`] — the executable schema specification
//!   turning a config into a [`rabit_rulebase::DeviceCatalog`] + custom
//!   rules, rejecting the pilot study's error classes;
//! * [`template`] — the filled-in testbed template and the pilot-study
//!   error corpus.
//!
//! # Example
//!
//! ```
//! use rabit_config::{template, to_catalog};
//!
//! let cfg = template::testbed_template();
//! let (catalog, custom_rules) = to_catalog(&cfg)?;
//! assert_eq!(custom_rules.len(), 4);
//! assert!(catalog.has_door(&"dosing_device".into()));
//! # Ok::<(), rabit_config::InvalidConfig>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod schema;
pub mod template;
mod validate;

pub use schema::{BoxConfig, ConnectionConfig, CustomRuleConfig, DeviceConfig, LabConfig, Point};
pub use validate::{
    build_custom_rule, to_catalog, validate, ConfigIssue, InvalidConfig, IssueLevel,
};
