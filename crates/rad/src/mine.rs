//! Rule mining from command traces.
//!
//! "We mined the dataset to identify rules implied by the sequences of
//! commands. We identified rules that ought to apply to all self-driving
//! labs, e.g., device doors must be opened before a robot arm can enter
//! them, as well as rules that seemed unique to the lab from which the
//! data were collected, e.g., solids must be added to containers before
//! liquids." (§II-A)
//!
//! The miner recovers two rule classes:
//!
//! * **state-guard rules** — "action *G* on device *d* happens only while
//!   toggle *T* is in state *s*", mined by replaying each trace against a
//!   small toggle vocabulary (doors, running state) and measuring the
//!   guard's confidence;
//! * **ordering rules** — "the first solid dose precedes the first liquid
//!   dose into the same container", mined per container per trace.

use rabit_devices::{ActionKind, Command, DeviceId, LabState, StateKey};
use rabit_rulebase::{Rule, RuleId};
use rabit_tracer::Trace;
use std::collections::BTreeMap;
use std::fmt;

/// A toggle dimension the miner tracks while replaying traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Toggle {
    /// Door open (true) / closed (false).
    Door,
    /// Device action running (true) / stopped (false).
    Running,
}

impl fmt::Display for Toggle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Toggle::Door => f.write_str("door_open"),
            Toggle::Running => f.write_str("running"),
        }
    }
}

/// The guarded-action classes the miner counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GuardedAction {
    /// A robot arm moving inside the device.
    EnterDevice,
    /// The device dosing or starting its action.
    StartRunning,
    /// The device's door being opened.
    OpenDoor,
}

impl fmt::Display for GuardedAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardedAction::EnterDevice => f.write_str("move_robot_inside"),
            GuardedAction::StartRunning => f.write_str("start_running"),
            GuardedAction::OpenDoor => f.write_str("open_door"),
        }
    }
}

/// One mined rule with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum MinedRule {
    /// `action` on a device only happens while `toggle` is `required`.
    StateGuard {
        /// The guarded action class.
        action: GuardedAction,
        /// The guarding toggle.
        toggle: Toggle,
        /// The toggle state the evidence supports.
        required: bool,
        /// Number of observed guarded actions.
        support: usize,
        /// Fraction of observations satisfying the guard.
        confidence: f64,
    },
    /// In each trace, the first solid dose into a container precedes the
    /// first liquid dose into it.
    SolidBeforeLiquid {
        /// Number of (trace, container) pairs with both substances.
        support: usize,
        /// Fraction in the conventional order.
        confidence: f64,
    },
}

impl MinedRule {
    /// The rule's support count.
    pub fn support(&self) -> usize {
        match self {
            MinedRule::StateGuard { support, .. }
            | MinedRule::SolidBeforeLiquid { support, .. } => *support,
        }
    }

    /// The rule's confidence.
    pub fn confidence(&self) -> f64 {
        match self {
            MinedRule::StateGuard { confidence, .. }
            | MinedRule::SolidBeforeLiquid { confidence, .. } => *confidence,
        }
    }

    /// A short name for reports.
    pub fn name(&self) -> String {
        match self {
            MinedRule::StateGuard {
                action,
                toggle,
                required,
                ..
            } => {
                format!("{action}_requires_{toggle}={required}")
            }
            MinedRule::SolidBeforeLiquid { .. } => "solid_before_liquid".to_string(),
        }
    }

    /// Converts a mined rule into an enforceable rulebase [`Rule`].
    pub fn to_rule(&self) -> Rule {
        let id = RuleId::Mined(self.name());
        match self.clone() {
            MinedRule::StateGuard {
                action,
                toggle,
                required,
                ..
            } => Rule::new(
                id,
                format!("mined: {action} only while {toggle} = {required}"),
                move |cmd: &Command, state: &LabState, ctx| {
                    let (device, matches_class): (DeviceId, bool) = match (&cmd.action, action) {
                        (ActionKind::MoveInsideDevice { device }, GuardedAction::EnterDevice) => {
                            (device.clone(), true)
                        }
                        (
                            ActionKind::StartAction { .. } | ActionKind::DoseSolid { .. },
                            GuardedAction::StartRunning,
                        ) => (cmd.actor.clone(), true),
                        (ActionKind::SetDoor { open: true }, GuardedAction::OpenDoor) => {
                            (cmd.actor.clone(), true)
                        }
                        _ => (cmd.actor.clone(), false),
                    };
                    if !matches_class {
                        return None;
                    }
                    let observed = match toggle {
                        Toggle::Door => {
                            if !ctx.catalog.has_door(&device) {
                                return None;
                            }
                            state.get_bool(&device, &StateKey::DoorOpen)
                        }
                        Toggle::Running => state.get_bool(&device, &StateKey::ActionActive),
                    };
                    match observed {
                        Some(s) if s == required => None,
                        _ => Some(format!(
                            "mined guard violated: {action} on {device} while {toggle} ≠ {required}"
                        )),
                    }
                },
            ),
            MinedRule::SolidBeforeLiquid { .. } => Rule::new(
                id,
                "mined: solids are added to containers before liquids",
                |cmd: &Command, state: &LabState, _| {
                    let receiver = match &cmd.action {
                        ActionKind::DoseLiquid { into, .. } => into,
                        _ => return None,
                    };
                    let solid = state
                        .get_number(receiver, &StateKey::SolidMg)
                        .unwrap_or(0.0);
                    (solid <= 0.0)
                        .then(|| format!("mined: liquid into {receiver} before any solid"))
                },
            ),
        }
    }
}

/// Miner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MineParams {
    /// Minimum observations before a pattern is considered.
    pub min_support: usize,
    /// Minimum confidence for a rule to be emitted.
    pub min_confidence: f64,
}

impl Default for MineParams {
    fn default() -> Self {
        MineParams {
            min_support: 20,
            min_confidence: 0.9,
        }
    }
}

/// Mines rules from a trace corpus.
pub fn mine(corpus: &[Trace], params: &MineParams) -> Vec<MinedRule> {
    let mut guard_counts: BTreeMap<(GuardedAction, Toggle, bool), (usize, usize)> = BTreeMap::new();
    let mut ordering_support = 0usize;
    let mut ordering_ok = 0usize;

    for trace in corpus {
        // Replay toggle state per device.
        let mut door_open: BTreeMap<DeviceId, bool> = BTreeMap::new();
        let mut running: BTreeMap<DeviceId, bool> = BTreeMap::new();
        // Ordering bookkeeping per container.
        let mut solid_seen: BTreeMap<DeviceId, usize> = BTreeMap::new();
        let mut liquid_seen: BTreeMap<DeviceId, usize> = BTreeMap::new();

        for (idx, cmd) in trace.executed_commands().enumerate() {
            // Record guarded observations BEFORE applying the command's
            // own toggle effect.
            let observations: Vec<(GuardedAction, &DeviceId)> = match &cmd.action {
                ActionKind::MoveInsideDevice { device } => {
                    vec![(GuardedAction::EnterDevice, device)]
                }
                ActionKind::StartAction { .. } | ActionKind::DoseSolid { .. } => {
                    vec![(GuardedAction::StartRunning, &cmd.actor)]
                }
                ActionKind::SetDoor { open: true } => vec![(GuardedAction::OpenDoor, &cmd.actor)],
                _ => vec![],
            };
            for (action, device) in observations {
                if let Some(&open) = door_open.get(device) {
                    for required in [true, false] {
                        let e = guard_counts
                            .entry((action, Toggle::Door, required))
                            .or_default();
                        e.0 += 1;
                        if open == required {
                            e.1 += 1;
                        }
                    }
                }
                if let Some(&run) = running.get(device) {
                    for required in [true, false] {
                        let e = guard_counts
                            .entry((action, Toggle::Running, required))
                            .or_default();
                        e.0 += 1;
                        if run == required {
                            e.1 += 1;
                        }
                    }
                }
            }

            // Apply toggle effects.
            match &cmd.action {
                ActionKind::SetDoor { open } => {
                    door_open.insert(cmd.actor.clone(), *open);
                }
                ActionKind::StartAction { .. } => {
                    running.insert(cmd.actor.clone(), true);
                }
                ActionKind::StopAction => {
                    running.insert(cmd.actor.clone(), false);
                }
                ActionKind::DoseSolid { into, .. } => {
                    solid_seen.entry(into.clone()).or_insert(idx);
                }
                ActionKind::DoseLiquid { into, .. } => {
                    liquid_seen.entry(into.clone()).or_insert(idx);
                }
                _ => {}
            }
        }

        for (container, &l) in &liquid_seen {
            if let Some(&s) = solid_seen.get(container) {
                ordering_support += 1;
                if s < l {
                    ordering_ok += 1;
                }
            }
        }
    }

    let mut out = Vec::new();
    for ((action, toggle, required), (support, ok)) in guard_counts {
        let confidence = if support == 0 {
            0.0
        } else {
            ok as f64 / support as f64
        };
        if support >= params.min_support && confidence >= params.min_confidence {
            out.push(MinedRule::StateGuard {
                action,
                toggle,
                required,
                support,
                confidence,
            });
        }
    }
    if ordering_support >= params.min_support {
        let confidence = ordering_ok as f64 / ordering_support as f64;
        if confidence >= params.min_confidence {
            out.push(MinedRule::SolidBeforeLiquid {
                support: ordering_support,
                confidence,
            });
        }
    }
    out
}

/// The ground-truth rule names a perfect miner would recover from a
/// conventional corpus — used by the mining-quality experiment.
pub fn ground_truth_names() -> Vec<String> {
    vec![
        "move_robot_inside_requires_door_open=true".to_string(),
        "start_running_requires_door_open=false".to_string(),
        "solid_before_liquid".to_string(),
    ]
}

/// Precision/recall of a mined rule set against the ground truth.
pub fn score(mined: &[MinedRule]) -> (f64, f64) {
    let truth = ground_truth_names();
    let names: Vec<String> = mined.iter().map(MinedRule::name).collect();
    let tp = names.iter().filter(|n| truth.contains(n)).count();
    let precision = if names.is_empty() {
        1.0
    } else {
        tp as f64 / names.len() as f64
    };
    let recall = tp as f64 / truth.len() as f64;
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_corpus, RadGenParams};

    fn mined_default() -> Vec<MinedRule> {
        let corpus = generate_corpus(&RadGenParams::default());
        mine(&corpus, &MineParams::default())
    }

    #[test]
    fn miner_recovers_the_door_rules() {
        let rules = mined_default();
        let names: Vec<String> = rules.iter().map(MinedRule::name).collect();
        assert!(
            names.contains(&"move_robot_inside_requires_door_open=true".to_string()),
            "mined: {names:?}"
        );
        assert!(
            names.contains(&"start_running_requires_door_open=false".to_string()),
            "mined: {names:?}"
        );
    }

    #[test]
    fn miner_recovers_solid_before_liquid() {
        let rules = mined_default();
        assert!(rules
            .iter()
            .any(|r| matches!(r, MinedRule::SolidBeforeLiquid { .. })));
    }

    #[test]
    fn recall_is_full_and_precision_high_on_conventional_corpus() {
        let (precision, recall) = score(&mined_default());
        assert_eq!(recall, 1.0, "all ground-truth rules recovered");
        // Some extra (true-but-uninteresting) guards may be mined, so
        // precision need not be 1.0, but it must be substantial.
        assert!(precision >= 0.5, "precision {precision}");
    }

    #[test]
    fn confidence_threshold_filters_noisy_patterns() {
        // With massive noise the door-close convention breaks down at
        // high confidence thresholds.
        let noisy = generate_corpus(&RadGenParams {
            noise_rate: 0.6,
            ..RadGenParams::default()
        });
        let strict = mine(
            &noisy,
            &MineParams {
                min_confidence: 0.98,
                ..MineParams::default()
            },
        );
        let names: Vec<String> = strict.iter().map(MinedRule::name).collect();
        // Entering through an open door still holds (enter always follows
        // open in the template)…
        assert!(names.contains(&"move_robot_inside_requires_door_open=true".to_string()));
        // …but dosing-with-door-closed is violated in noisy sessions
        // (door left open), so it falls below 98% confidence.
        assert!(
            !names.contains(&"start_running_requires_door_open=false".to_string()),
            "mined: {names:?}"
        );
    }

    #[test]
    fn mined_rules_are_enforceable() {
        use rabit_devices::{DeviceState, DeviceType};
        use rabit_rulebase::{DeviceCatalog, DeviceMeta, RuleCtx};

        let rule = MinedRule::StateGuard {
            action: GuardedAction::EnterDevice,
            toggle: Toggle::Door,
            required: true,
            support: 100,
            confidence: 1.0,
        }
        .to_rule();
        let catalog = DeviceCatalog::new()
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("arm", DeviceType::RobotArm));
        let ctx = RuleCtx { catalog: &catalog };
        let mut state = LabState::new();
        state.insert("doser", DeviceState::new().with(StateKey::DoorOpen, false));
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        let v = rule
            .check(&cmd, &state, &ctx)
            .expect("closed door violates the mined rule");
        assert!(v.rule.to_string().starts_with("mined:"));
        state.set(&"doser".into(), StateKey::DoorOpen, true);
        assert!(rule.check(&cmd, &state, &ctx).is_none());
    }

    #[test]
    fn mined_ordering_rule_is_enforceable() {
        use rabit_devices::DeviceState;
        use rabit_rulebase::{DeviceCatalog, RuleCtx};

        let rule = MinedRule::SolidBeforeLiquid {
            support: 50,
            confidence: 1.0,
        }
        .to_rule();
        let catalog = DeviceCatalog::new();
        let ctx = RuleCtx { catalog: &catalog };
        let mut state = LabState::new();
        state.insert("vial", DeviceState::new().with(StateKey::SolidMg, 0.0));
        let dose = Command::new(
            "pump",
            ActionKind::DoseLiquid {
                volume_ml: 1.0,
                into: "vial".into(),
            },
        );
        assert!(rule.check(&dose, &state, &ctx).is_some());
        state.set(&"vial".into(), StateKey::SolidMg, 4.0);
        assert!(rule.check(&dose, &state, &ctx).is_none());
    }

    #[test]
    fn support_threshold_suppresses_small_corpora() {
        let tiny = generate_corpus(&RadGenParams {
            sessions: 2,
            ..RadGenParams::default()
        });
        let rules = mine(
            &tiny,
            &MineParams {
                min_support: 1000,
                ..MineParams::default()
            },
        );
        assert!(rules.is_empty());
    }

    #[test]
    fn scores_handle_empty_input() {
        let (p, r) = score(&[]);
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.0);
    }
}
