//! Real compute cost of the end-to-end engine: one guarded workflow run
//! versus one unguarded run. (The *virtual lab-time* overhead experiment
//! lives in the `latency_overhead` binary; this measures the CPU cost of
//! RABIT's bookkeeping itself.)

use rabit_bench::timing::{bench, group};
use rabit_production::{solubility, ProductionDeck};
use rabit_tracer::Tracer;
use std::hint::black_box;

fn main() {
    let wf = solubility::solubility_workflow(&solubility::SolubilityParams::default());

    group("engine");
    bench("solubility_unguarded", || {
        let mut deck = ProductionDeck::new();
        let report = Tracer::pass_through(&mut deck.lab).run(black_box(&wf));
        assert!(report.completed());
        report.executed
    });
    bench("solubility_guarded", || {
        let mut deck = ProductionDeck::new();
        let mut rabit = deck.rabit();
        let report = Tracer::guarded(&mut deck.lab, &mut rabit).run(black_box(&wf));
        assert!(report.completed());
        report.executed
    });
    bench("solubility_guarded_headless_sim", || {
        let mut deck = ProductionDeck::new();
        let mut rabit = deck.rabit_with_simulator(false);
        let report = Tracer::guarded(&mut deck.lab, &mut rabit).run(black_box(&wf));
        assert!(report.completed());
        report.executed
    });
}
