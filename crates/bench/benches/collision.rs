//! Real compute cost of the geometric queries behind the Extended
//! Simulator's trajectory polling.

use criterion::{criterion_group, criterion_main, Criterion};
use rabit_geometry::{collide, Aabb, Capsule, Segment, Vec3};
use rabit_kinematics::presets;
use std::hint::black_box;

fn bench_collision(c: &mut Criterion) {
    let aabb = Aabb::new(Vec3::new(0.0, 0.3, 0.0), Vec3::new(0.2, 0.5, 0.3));
    let capsule = Capsule::new(Vec3::new(0.5, 0.0, 0.3), Vec3::new(0.4, 0.2, 0.2), 0.03);
    let seg_a = Segment::new(Vec3::ZERO, Vec3::new(1.0, 0.2, 0.1));
    let seg_b = Segment::new(Vec3::new(0.5, -0.5, 0.0), Vec3::new(0.5, 0.5, 0.3));

    let mut group = c.benchmark_group("collide");
    group.bench_function("capsule_aabb_distance", |b| {
        b.iter(|| black_box(collide::capsule_aabb_distance(black_box(&capsule), &aabb)))
    });
    group.bench_function("segment_segment_distance", |b| {
        b.iter(|| black_box(seg_a.distance_to_segment(black_box(&seg_b))))
    });
    group.bench_function("aabb_contains_point", |b| {
        b.iter(|| black_box(aabb.contains_point(black_box(Vec3::new(0.1, 0.4, 0.1)))))
    });
    group.finish();

    // A full per-pose collision check: 7 capsules against 7 obstacles —
    // one polling step of the Extended Simulator.
    let arm = presets::ur3e();
    let q = arm.home_configuration();
    let obstacles: Vec<Aabb> = (0..7)
        .map(|i| {
            let x = -0.6 + 0.2 * i as f64;
            Aabb::new(Vec3::new(x, 0.3, 0.0), Vec3::new(x + 0.15, 0.45, 0.2))
        })
        .collect();
    let mut group = c.benchmark_group("sim_poll");
    group.bench_function("one_pose_vs_deck", |b| {
        b.iter(|| {
            let capsules = arm.link_capsules(black_box(&q), None);
            let mut hits = 0;
            for o in &obstacles {
                for cap in &capsules[1..] {
                    if collide::capsule_intersects_aabb(cap, o) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_collision);
criterion_main!(benches);
