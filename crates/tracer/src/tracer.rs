//! The interception layer.
//!
//! "We reconfigure RATracer such that every time it traces a command, it
//! first checks with RABIT if the command is safe to run: if RABIT raises
//! an alert, the experiment is halted …; otherwise, the command is
//! forwarded to the device and executed." (§II-C)

use crate::trace::{Trace, TraceEvent, TraceOutcome};
use crate::workflow::Workflow;
use rabit_core::{Alert, Lab, Rabit, RecoveryCounters, StepOutcome};

/// How the tracer treats each intercepted command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Check with RABIT before forwarding; halt on alert (the deployed
    /// configuration).
    #[default]
    Guarded,
    /// Forward everything and just record — the original RATracer
    /// behaviour, used to produce RAD-style traces and as the unguarded
    /// baseline of the latency experiment.
    PassThrough,
}

/// The result of tracing one workflow.
#[derive(Debug)]
pub struct TraceReport {
    /// The recorded trace.
    pub trace: Trace,
    /// The alert that halted the run, if any.
    pub alert: Option<Alert>,
    /// Commands that executed on devices.
    pub executed: usize,
    /// Total virtual lab time for the run (seconds).
    pub lab_time_s: f64,
    /// RABIT's share of that time (zero in pass-through mode).
    pub rabit_overhead_s: f64,
    /// Recovery activity during this run (all zero in pass-through mode
    /// or when no recovery policy is configured).
    pub recovery: RecoveryCounters,
}

impl TraceReport {
    /// Whether the workflow ran to completion.
    pub fn completed(&self) -> bool {
        self.alert.is_none()
    }
}

/// The tracer: drives a [`Workflow`] through a [`Lab`], optionally
/// guarded by a [`Rabit`] engine.
pub struct Tracer<'a> {
    lab: &'a mut Lab,
    rabit: Option<&'a mut Rabit>,
    mode: TraceMode,
}

impl<'a> Tracer<'a> {
    /// A guarded tracer: every command is checked by `rabit` first.
    pub fn guarded(lab: &'a mut Lab, rabit: &'a mut Rabit) -> Self {
        Tracer {
            lab,
            rabit: Some(rabit),
            mode: TraceMode::Guarded,
        }
    }

    /// A pass-through tracer: commands are executed and recorded only.
    pub fn pass_through(lab: &'a mut Lab) -> Self {
        Tracer {
            lab,
            rabit: None,
            mode: TraceMode::PassThrough,
        }
    }

    /// Runs the workflow, producing a trace. In guarded mode the run
    /// halts at the first alert (the paper's `alertAndStop`); in
    /// pass-through mode only hard device faults stop it.
    pub fn run(mut self, workflow: &Workflow) -> TraceReport {
        let mut trace = Trace::new(workflow.name());
        let t0 = self.lab.clock().now_s();
        let mut executed = 0;
        let mut halt_alert = None;

        let overhead0 = self.rabit.as_ref().map_or(0.0, |r| r.overhead_s());
        let recovery0 = self
            .rabit
            .as_ref()
            .map_or(RecoveryCounters::default(), |r| r.recovery_counters());
        if let Some(rabit) = self.rabit.as_deref_mut() {
            rabit.initialize(self.lab);
        }

        for (seq, command) in workflow.commands().iter().enumerate() {
            let time_s = self.lab.clock().now_s();
            let outcome = match (self.mode, self.rabit.as_deref_mut()) {
                (TraceMode::Guarded, Some(rabit)) => match rabit.step(self.lab, command) {
                    Ok(StepOutcome::SkippedQuarantined) => TraceOutcome::Skipped {
                        reason: format!("{} quarantined", command.actor),
                    },
                    Ok(StepOutcome::Quarantined) => TraceOutcome::Skipped {
                        reason: format!("{} quarantined after repeated faults", command.actor),
                    },
                    Ok(_) => {
                        executed += 1;
                        TraceOutcome::Forwarded
                    }
                    Err(alert) => {
                        let outcome = match &alert {
                            Alert::DeviceFault { error, .. } => TraceOutcome::Faulted {
                                error: error.to_string(),
                            },
                            Alert::DeviceMalfunction { diffs, .. } => {
                                executed += 1;
                                TraceOutcome::MalfunctionDetected {
                                    detail: diffs
                                        .iter()
                                        .map(ToString::to_string)
                                        .collect::<Vec<_>>()
                                        .join("; "),
                                }
                            }
                            _ => TraceOutcome::Blocked {
                                alert: alert.headline().to_string(),
                            },
                        };
                        halt_alert = Some(alert);
                        outcome
                    }
                },
                _ => match self.lab.apply(command) {
                    Ok(()) => {
                        executed += 1;
                        TraceOutcome::Forwarded
                    }
                    Err(error) => {
                        let outcome = TraceOutcome::Faulted {
                            error: error.to_string(),
                        };
                        halt_alert = Some(Alert::DeviceFault {
                            command: command.clone(),
                            error,
                        });
                        outcome
                    }
                },
            };
            trace.record(TraceEvent {
                seq,
                time_s,
                command: command.clone(),
                outcome,
            });
            if halt_alert.is_some() {
                break;
            }
        }

        let rabit_overhead_s = self.rabit.as_ref().map_or(0.0, |r| r.overhead_s()) - overhead0;
        let recovery = self
            .rabit
            .as_ref()
            .map_or(RecoveryCounters::default(), |r| {
                r.recovery_counters().since(&recovery0)
            });
        TraceReport {
            trace,
            alert: halt_alert,
            executed,
            lab_time_s: self.lab.clock().now_s() - t0,
            rabit_overhead_s,
            recovery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_core::RabitConfig;
    use rabit_devices::{DeviceType, DosingDevice, RobotArm, Vial};
    use rabit_geometry::{Aabb, Vec3};
    use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rulebase};

    fn lab() -> Lab {
        Lab::new()
            .with_device(RobotArm::new(
                "viperx",
                Vec3::new(0.3, 0.0, 0.3),
                Vec3::new(0.1, -0.3, 0.2),
            ))
            .with_device(DosingDevice::new(
                "doser",
                Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
            ))
            .with_device(Vial::new("vial", Vec3::new(0.537, 0.018, 0.12)))
    }

    fn rabit() -> Rabit {
        let catalog = DeviceCatalog::new()
            .with(
                DeviceMeta::new("viperx", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
            )
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("vial", DeviceType::Container));
        Rabit::new(Rulebase::standard(), catalog, RabitConfig::default())
    }

    fn safe_workflow() -> Workflow {
        Workflow::new("safe")
            .set_door("doser", true)
            .move_inside("viperx", "doser")
            .move_out("viperx")
            .set_door("doser", false)
    }

    fn buggy_workflow() -> Workflow {
        // Bug A shape: the door never opens.
        Workflow::new("bug_a")
            .move_inside("viperx", "doser")
            .move_out("viperx")
    }

    #[test]
    fn guarded_safe_run_completes() {
        let mut lab = lab();
        let mut rabit = rabit();
        let report = Tracer::guarded(&mut lab, &mut rabit).run(&safe_workflow());
        assert!(report.completed());
        assert_eq!(report.executed, 4);
        assert_eq!(report.trace.len(), 4);
        assert!(report.rabit_overhead_s > 0.0);
        assert!(lab.damage_log().is_empty());
    }

    #[test]
    fn guarded_buggy_run_halts_without_damage() {
        let mut lab = lab();
        let mut rabit = rabit();
        let report = Tracer::guarded(&mut lab, &mut rabit).run(&buggy_workflow());
        assert!(!report.completed());
        assert_eq!(report.executed, 0);
        assert_eq!(report.trace.len(), 1, "halted at the first command");
        assert!(matches!(
            report.trace.events[0].outcome,
            TraceOutcome::Blocked { .. }
        ));
        assert!(
            lab.damage_log().is_empty(),
            "RABIT prevented the door break"
        );
    }

    #[test]
    fn pass_through_lets_damage_happen() {
        let mut lab = lab();
        let report = Tracer::pass_through(&mut lab).run(&buggy_workflow());
        assert!(report.completed(), "nothing stops the unguarded run");
        assert_eq!(report.executed, 2);
        assert_eq!(report.rabit_overhead_s, 0.0);
        assert_eq!(lab.damage_log().len(), 1, "the door broke");
    }

    #[test]
    fn pass_through_stops_on_device_fault() {
        let mut lab = lab();
        let wf = Workflow::new("fault").then(rabit_devices::Command::new(
            "vial",
            rabit_devices::ActionKind::MoveHome,
        ));
        let report = Tracer::pass_through(&mut lab).run(&wf);
        assert!(!report.completed());
        assert!(matches!(
            report.trace.events[0].outcome,
            TraceOutcome::Faulted { .. }
        ));
    }

    #[test]
    fn trace_times_are_monotone() {
        let mut lab = lab();
        let mut rabit = rabit();
        let report = Tracer::guarded(&mut lab, &mut rabit).run(&safe_workflow());
        let times: Vec<f64> = report.trace.events.iter().map(|e| e.time_s).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(report.lab_time_s >= *times.last().unwrap());
    }
}
