//! Regenerates the §IV summary: detection rate 8/16 (50%) with baseline
//! RABIT, 12/16 (75%) after modification, 13/16 (81%) with the Extended
//! Simulator — and zero false positives throughout.
//!
//! The 16-bug detection matrix comes out of the resumable campaign
//! runner: `rabit_campaign::plans::detection_matrix_plan()` materializes
//! all 48 (bug × study configuration) trials; this bin folds the merged
//! artifact into the progression table. The false-positive check (the
//! safe Fig. 5 workflow per configuration) still runs through the study
//! helper.

use rabit_bench::report::render_table;
use rabit_buginject::{false_positives, RabitStage};
use rabit_campaign::{plans, run_ephemeral, TrialState};

fn detected_on(states: &[TrialState], substrate: &str) -> usize {
    states
        .iter()
        .filter_map(|s| s.result.as_ref())
        .filter(|r| r.substrate.ends_with(substrate) && r.detected)
        .count()
}

fn main() {
    println!("§IV summary — detection-rate progression over the 16-bug study");
    println!("(campaign plan: detection_matrix, 48 trials, resumable)\n");
    let (_, states) =
        run_ephemeral(plans::detection_matrix_plan(), 4).expect("detection campaign runs");
    let configs = [
        (
            RabitStage::Baseline,
            "baseline",
            "initial RABIT",
            "8/16 (50%)",
        ),
        (
            RabitStage::Modified,
            "modified",
            "after modifications",
            "12/16 (75%)",
        ),
        (
            RabitStage::ModifiedWithSimulator,
            "modified+sim",
            "with Extended Simulator",
            "13/16 (81%)",
        ),
    ];
    let mut rows = Vec::new();
    for (stage, tag, label, paper) in configs {
        let detected = detected_on(&states, tag);
        let fp = false_positives(stage);
        rows.push(vec![
            label.to_string(),
            format!("{}/16 ({:.0}%)", detected, detected as f64 / 16.0 * 100.0),
            paper.to_string(),
            fp.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Detected (measured)",
                "Paper",
                "False positives"
            ],
            &rows
        )
    );
    println!("Paper: \"throughout testing, RABIT never produced any false positives.\"");
}
