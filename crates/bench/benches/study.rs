//! Real compute cost of the full 16-bug uncontrolled study — the
//! regression-suite workload a lab would run before each deployment.

use rabit_bench::timing::{bench, group};
use rabit_buginject::{run_study, RabitStage};
use std::hint::black_box;

fn main() {
    group("study");
    bench("sixteen_bugs_modified", || {
        let result = run_study(black_box(RabitStage::Modified));
        assert_eq!(result.detected(), 12);
        result.detected()
    });
}
