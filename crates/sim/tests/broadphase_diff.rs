//! Differential test: the broad-phase (BVH-pruned) collision path must
//! agree with the exhaustive scan pose for pose — over 100+ seeded random
//! worlds, probes, and exclusion lists — while testing fewer obstacles.

use rabit_geometry::{Aabb, Capsule, Sphere, Vec3};
use rabit_sim::{ObstacleShape, SimWorld, VerticalCylinder};
use rabit_util::Rng;

const WORLDS: usize = 120;
const PROBES_PER_WORLD: usize = 24;

fn point(rng: &mut Rng) -> Vec3 {
    Vec3::new(
        rng.random_range(-1.2..1.2),
        rng.random_range(-1.2..1.2),
        rng.random_range(-0.2..1.0),
    )
}

fn shape(rng: &mut Rng) -> ObstacleShape {
    let c = point(rng);
    match rng.random_range(0..10u32) {
        // Mostly cuboids — the paper's device model.
        0..=6 => ObstacleShape::Cuboid(Aabb::from_center_half_extents(
            c,
            Vec3::new(
                rng.random_range(0.02..0.25),
                rng.random_range(0.02..0.25),
                rng.random_range(0.02..0.25),
            ),
        )),
        7 => ObstacleShape::Hemisphere {
            base_center: c,
            radius: rng.random_range(0.03..0.2),
        },
        8 => ObstacleShape::Sphere(Sphere::new(c, rng.random_range(0.03..0.2))),
        _ => ObstacleShape::Cylinder(VerticalCylinder {
            base: c,
            radius: rng.random_range(0.03..0.15),
            height: rng.random_range(0.05..0.4),
        }),
    }
}

fn world(rng: &mut Rng) -> SimWorld {
    let n = rng.random_range(2..64usize);
    let mut w = SimWorld::new();
    for i in 0..n {
        w = w.with_shaped_obstacle(format!("dev{i}"), shape(rng));
    }
    w
}

/// A probe: one to four capsules, like a sampled arm pose.
fn capsules(rng: &mut Rng) -> Vec<Capsule> {
    let n = rng.random_range(1..5usize);
    (0..n)
        .map(|_| Capsule::new(point(rng), point(rng), rng.random_range(0.005..0.08)))
        .collect()
}

#[test]
fn pruned_verdicts_match_exhaustive_pose_for_pose() {
    let mut rng = Rng::seed_from_u64(0xB40AD);
    let mut pruned_tests = 0u64;
    let mut exhaustive_tests = 0u64;
    let mut hits = 0usize;
    for wi in 0..WORLDS {
        let w = world(&mut rng);
        for pi in 0..PROBES_PER_WORLD {
            let caps = capsules(&mut rng);
            // Sometimes exclude a couple of obstacles, as entering a
            // device does.
            let excluded: Vec<String> = if rng.random_bool(0.3) {
                let k = rng.random_range(1..3usize);
                (0..k)
                    .map(|_| format!("dev{}", rng.random_range(0..w.obstacles().len())))
                    .collect()
            } else {
                Vec::new()
            };
            let exclude: Vec<&str> = excluded.iter().map(String::as_str).collect();

            let (fast, nf) = w.first_hit_counting(&caps, &exclude, true);
            let (slow, ns) = w.first_hit_counting(&caps, &exclude, false);
            pruned_tests += nf;
            exhaustive_tests += ns;
            assert_eq!(
                fast.map(|o| o.name.as_str()),
                slow.map(|o| o.name.as_str()),
                "world {wi} probe {pi}: pruned and exhaustive disagree"
            );
            if fast.is_some() {
                hits += 1;
            }
        }
    }
    // The scenario mix must actually exercise both outcomes.
    assert!(
        hits > 100,
        "only {hits} colliding probes — scenario too easy"
    );
    assert!(
        hits < WORLDS * PROBES_PER_WORLD,
        "every probe collided — scenario too dense"
    );
    // And the broad phase must genuinely prune.
    assert!(
        pruned_tests * 2 < exhaustive_tests,
        "broad phase tested {pruned_tests} vs exhaustive {exhaustive_tests}: no pruning"
    );
}

#[test]
fn pruned_and_exhaustive_agree_after_world_mutation() {
    // The index must track add/remove mutations.
    let mut rng = Rng::seed_from_u64(0xB40AD + 1);
    let mut w = world(&mut rng);
    for step in 0..200 {
        match rng.random_range(0..3u32) {
            0 => {
                let c = point(&mut rng);
                w.add_obstacle(
                    format!("extra{step}"),
                    Aabb::from_center_half_extents(c, Vec3::splat(rng.random_range(0.02..0.2))),
                );
            }
            1 => {
                let names: Vec<String> = w.obstacles().iter().map(|o| o.name.clone()).collect();
                if !names.is_empty() {
                    let victim = &names[rng.random_range(0..names.len())];
                    w.remove_obstacle(victim);
                }
            }
            _ => {}
        }
        let caps = capsules(&mut rng);
        assert_eq!(
            w.first_hit(&caps, &[]).map(|o| o.name.clone()),
            w.first_hit_exhaustive(&caps, &[]).map(|o| o.name.clone()),
            "step {step}"
        );
    }
}
