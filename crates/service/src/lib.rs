//! The RABIT rule service: a versioned, multi-tenant rule store with
//! live CRUD and epoch-consistent validation.
//!
//! The paper's rulebase is born static: a lab bakes its rules into a
//! substrate and every run validates against that one value. Real
//! self-driving labs edit their rules while workflows are in flight —
//! an operator stages a new custom rule, disables a false-positive one,
//! tightens a precondition — and the intervention layer must neither
//! miss the change nor tear an in-flight validation between two rule
//! generations. This crate provides that layer:
//!
//! * [`RuleStore`] — per-tenant, epoch-versioned storage. Every commit
//!   (create / update / enable / disable / remove) is copy-on-write: it
//!   publishes a fresh immutable [`RulebaseSnapshot`] at the tenant's
//!   next epoch. In-flight validations keep the snapshot they started
//!   with; the next command picks up the latest — exactly the
//!   "epoch-consistent" contract the differential suite pins down.
//! * [`ServiceBroker`] — an asynchronous command broker over the store:
//!   sharded workers draining per-tenant bounded ring lanes, so one
//!   lab's edits apply in submission order while different labs commit
//!   in parallel, with identical results for any worker count. Batched
//!   admission ([`ServiceBroker::submit_batch`] → [`BatchTicket`])
//!   amortises wakeups and receipt delivery; bounded lanes give typed
//!   backpressure ([`ServiceError::Overloaded`] via
//!   [`ServiceBroker::try_submit_batch`]).
//! * Typed requests and receipts — [`CreateRuleRequest`],
//!   [`UpdateRuleRequest`] (partial, with `is_enabled`), [`RuleCommit`],
//!   [`ServiceError`] — the REST-shaped surface an HTTP frontend would
//!   serialise directly.
//!
//! The store implements [`rabit_rulebase::SnapshotSource`], so
//! `rabit_tracer::run_fleet_on_live` can drive whole fleets against it:
//! each fleet job validates against the snapshot current at its start.
//!
//! # Example
//!
//! ```
//! use rabit_rulebase::{RuleId, Rulebase, SnapshotSource, TenantId};
//! use rabit_service::RuleStore;
//!
//! let store = RuleStore::new();
//! let tenant = TenantId::new("hein");
//! store.seed_tenant(tenant.clone(), Rulebase::hein_lab());
//!
//! // An in-flight validation pins epoch 0...
//! let pinned = store.snapshot(&tenant);
//!
//! // ...a live commit publishes epoch 1...
//! store.set_rule_enabled(&tenant, &RuleId::General(1), false).unwrap();
//!
//! // ...and only new readers see it.
//! assert_eq!(pinned.epoch(), 0);
//! assert_eq!(pinned.enabled_count(), 15);
//! let latest = store.snapshot(&tenant);
//! assert_eq!(latest.epoch(), 1);
//! assert_eq!(latest.enabled_count(), 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod store;

pub use broker::{BatchTicket, BrokerStats, RuleCommand, ServiceBroker, Ticket};
pub use store::{
    CommitOp, CreateRuleRequest, RuleCommit, RuleOp, RuleStore, ServiceError, UpdateRuleRequest,
};

// Re-exported so service users name tenants and snapshots without a
// direct rabit-rulebase dependency.
pub use rabit_rulebase::{RulebaseSnapshot, SnapshotSource, TenantId, STATIC_EPOCH};
