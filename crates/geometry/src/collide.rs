//! Collision and distance queries between lab shapes.
//!
//! The Extended Simulator polls the robot arm's trajectory and compares it
//! with device cuboids (paper §III). Each poll reduces to the queries in
//! this module: capsule-vs-cuboid for arm links against devices, and
//! capsule-vs-capsule for arm-against-arm checks on the testbed.

use crate::{Aabb, Capsule, Obb, Segment, Sphere, Vec3};

/// Minimum distance between a segment and an axis-aligned box
/// (0 when they touch or the segment passes through the box).
///
/// Delegates to the exact closed-form minimizer in [`crate::distance`],
/// which replaced the former 64-iteration ternary search: the convex
/// point–box objective's derivative is piecewise linear along the segment,
/// so the minimizing parameter is solved directly instead of searched for.
pub fn segment_aabb_distance(seg: &Segment, aabb: &Aabb) -> f64 {
    crate::distance::segment_aabb_distance(seg, aabb)
}

/// Minimum distance between a segment and an oriented box.
pub fn segment_obb_distance(seg: &Segment, obb: &Obb) -> f64 {
    // Work in the box's local frame where it is an AABB.
    let local = Segment::new(obb.world_to_local(seg.a), obb.world_to_local(seg.b));
    let aabb = Aabb::from_center_half_extents(Vec3::ZERO, obb.half_extents);
    segment_aabb_distance(&local, &aabb)
}

/// Distance between a capsule surface and an axis-aligned box
/// (negative when they interpenetrate).
pub fn capsule_aabb_distance(cap: &Capsule, aabb: &Aabb) -> f64 {
    segment_aabb_distance(&cap.segment, aabb) - cap.radius
}

/// Returns `true` if a capsule overlaps or touches an axis-aligned box.
pub fn capsule_intersects_aabb(cap: &Capsule, aabb: &Aabb) -> bool {
    capsule_aabb_distance(cap, aabb) <= 0.0
}

/// Distance between a capsule surface and an oriented box
/// (negative when they interpenetrate).
pub fn capsule_obb_distance(cap: &Capsule, obb: &Obb) -> f64 {
    segment_obb_distance(&cap.segment, obb) - cap.radius
}

/// Returns `true` if a capsule overlaps or touches an oriented box.
pub fn capsule_intersects_obb(cap: &Capsule, obb: &Obb) -> bool {
    capsule_obb_distance(cap, obb) <= 0.0
}

/// Distance between a sphere surface and an axis-aligned box
/// (negative when they interpenetrate).
pub fn sphere_aabb_distance(sphere: &Sphere, aabb: &Aabb) -> f64 {
    aabb.distance_to_point(sphere.center) - sphere.radius
}

/// Returns `true` if a sphere overlaps or touches an axis-aligned box.
pub fn sphere_intersects_aabb(sphere: &Sphere, aabb: &Aabb) -> bool {
    sphere_aabb_distance(sphere, aabb) <= 0.0
}

/// Distance between a sphere surface and a capsule surface
/// (negative when they interpenetrate).
pub fn sphere_capsule_distance(sphere: &Sphere, cap: &Capsule) -> f64 {
    cap.segment.distance_to_point(sphere.center) - cap.radius - sphere.radius
}

/// Swept-point check: does the straight path from `from` to `to` pass
/// within `clearance` of the box? This is the query RABIT falls back to
/// when no simulator is attached — "only the target location is checked
/// for potential collisions" uses `clearance = 0` on the single point.
pub fn path_hits_aabb(from: Vec3, to: Vec3, aabb: &Aabb, clearance: f64) -> bool {
    segment_aabb_distance(&Segment::new(from, to), aabb) <= clearance
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn segment_through_box_has_zero_distance() {
        let seg = Segment::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(2.0, 0.5, 0.5));
        assert_eq!(segment_aabb_distance(&seg, &unit_box()), 0.0);
    }

    #[test]
    fn segment_endpoint_inside_box() {
        let seg = Segment::new(Vec3::splat(0.5), Vec3::new(5.0, 5.0, 5.0));
        assert_eq!(segment_aabb_distance(&seg, &unit_box()), 0.0);
    }

    #[test]
    fn segment_parallel_above_box() {
        let seg = Segment::new(Vec3::new(0.0, 0.5, 2.0), Vec3::new(1.0, 0.5, 2.0));
        assert!((segment_aabb_distance(&seg, &unit_box()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn segment_diagonal_near_corner() {
        // Segment passing near the (1,1,1) corner at distance sqrt(3)*0.5 along
        // the diagonal direction... verify against an explicit construction:
        // points on the plane x+y+z = 4.5 closest to corner (1,1,1).
        let seg = Segment::new(Vec3::new(2.5, 1.0, 1.0), Vec3::new(1.0, 2.5, 1.0));
        // Closest point on segment to the corner (1,1,1) is the midpoint
        // (1.75, 1.75, 1.0); distance = sqrt(0.75^2 * 2).
        let expect = (2.0 * 0.75_f64 * 0.75).sqrt();
        assert!((segment_aabb_distance(&seg, &unit_box()) - expect).abs() < 1e-6);
    }

    #[test]
    fn face_gap_fast_path_is_exact() {
        // Segments hovering over (or beside) a slab, footprint-contained:
        // the closed-form face gap must equal the affine minimum exactly
        // and agree with a brute-force scan along the segment.
        let slab = Aabb::new(Vec3::new(-2.0, -2.0, -0.3), Vec3::new(2.0, 2.0, 0.0));
        let cases = [
            // Tilted above the slab: minimum at the lower endpoint.
            (
                Segment::new(Vec3::new(0.1, 0.4, 0.25), Vec3::new(-0.6, 1.2, 0.07)),
                0.07,
            ),
            // Level above.
            (
                Segment::new(Vec3::new(-1.0, 0.0, 0.5), Vec3::new(1.0, 0.5, 0.5)),
                0.5,
            ),
            // Beyond the +x face of a small box (checked below).
        ];
        for (seg, expect) in &cases {
            let d = segment_aabb_distance(seg, &slab);
            assert!((d - expect).abs() < 1e-12, "got {d}, expected {expect}");
            // Brute-force lower bound check.
            let brute = (0..=1000)
                .map(|i| slab.distance_to_point(seg.point_at(i as f64 / 1000.0)))
                .fold(f64::INFINITY, f64::min);
            assert!(
                d <= brute + 1e-12,
                "closed form {d} above brute force {brute}"
            );
        }
        let small = unit_box();
        let side = Segment::new(Vec3::new(1.4, 0.2, 0.3), Vec3::new(1.9, 0.8, 0.7));
        assert!((segment_aabb_distance(&side, &small) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn capsule_box_interpenetration_is_negative() {
        let cap = Capsule::new(Vec3::new(0.5, 0.5, 1.05), Vec3::new(0.5, 0.5, 2.0), 0.1);
        let d = capsule_aabb_distance(&cap, &unit_box());
        assert!(d < 0.0, "expected penetration, got {d}");
        assert!(capsule_intersects_aabb(&cap, &unit_box()));
    }

    #[test]
    fn capsule_box_clearance() {
        let cap = Capsule::new(Vec3::new(0.5, 0.5, 1.5), Vec3::new(0.5, 0.5, 2.0), 0.1);
        let d = capsule_aabb_distance(&cap, &unit_box());
        assert!((d - 0.4).abs() < 1e-9);
        assert!(!capsule_intersects_aabb(&cap, &unit_box()));
    }

    #[test]
    fn held_object_changes_collision_outcome() {
        // The Bug-D scenario in miniature: a wrist passing 0.05 over the
        // platform clears it alone, but not when holding a vial that hangs
        // 0.08 below the gripper (modelled as radius inflation).
        let platform = Aabb::new(Vec3::new(-1.0, -1.0, -0.2), Vec3::new(1.0, 1.0, 0.0));
        let wrist = Capsule::new(Vec3::new(-0.5, 0.0, 0.08), Vec3::new(0.5, 0.0, 0.08), 0.02);
        assert!(!capsule_intersects_aabb(&wrist, &platform));
        let with_vial = wrist.inflated(0.07);
        assert!(capsule_intersects_aabb(&with_vial, &platform));
    }

    #[test]
    fn capsule_obb_matches_aabb_when_axis_aligned() {
        let cap = Capsule::new(Vec3::new(0.5, 0.5, 1.5), Vec3::new(0.5, 0.5, 2.0), 0.1);
        let aabb = unit_box();
        let obb = Obb::from_aabb(&aabb);
        let da = capsule_aabb_distance(&cap, &aabb);
        let db = capsule_obb_distance(&cap, &obb);
        assert!((da - db).abs() < 1e-9);
        assert!(!capsule_intersects_obb(&cap, &obb));
    }

    #[test]
    fn rotated_wall_blocks_path() {
        use crate::Mat3;
        // A thin software wall rotated 45° about Z between two arms.
        let wall = Obb::new(
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(0.02, 1.0, 1.0),
            Mat3::rotation_z(std::f64::consts::FRAC_PI_4),
        );
        let crossing = Capsule::new(Vec3::new(0.0, 1.0, 0.5), Vec3::new(1.0, 0.0, 0.5), 0.03);
        assert!(capsule_intersects_obb(&crossing, &wall));
        let parallel = Capsule::new(Vec3::new(-0.5, -0.5, 0.5), Vec3::new(0.2, 0.2, 0.5), 0.03);
        assert!(!capsule_intersects_obb(&parallel, &wall));
    }

    #[test]
    fn sphere_queries() {
        let b = unit_box();
        let s = Sphere::new(Vec3::new(0.5, 0.5, 1.4), 0.5);
        assert!(sphere_intersects_aabb(&s, &b));
        assert!((sphere_aabb_distance(&s, &b) + 0.1).abs() < 1e-12);
        let far = Sphere::new(Vec3::new(0.5, 0.5, 3.0), 0.5);
        assert!(!sphere_intersects_aabb(&far, &b));
        let cap = Capsule::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), 0.1);
        // Closest segment point to the far sphere center is (0,0,1):
        // ‖(0.5,0.5,2)‖ − 0.1 − 0.5 = √4.5 − 0.6.
        let expect = 4.5_f64.sqrt() - 0.6;
        assert!((sphere_capsule_distance(&far, &cap) - expect).abs() < 1e-9);
    }

    #[test]
    fn path_clearance_check() {
        let b = unit_box();
        // A path flying 0.5 above the box with 0.4 clearance requirement: ok.
        assert!(!path_hits_aabb(
            Vec3::new(-1.0, 0.5, 1.5),
            Vec3::new(2.0, 0.5, 1.5),
            &b,
            0.4
        ));
        // Same path with 0.6 required clearance: violation.
        assert!(path_hits_aabb(
            Vec3::new(-1.0, 0.5, 1.5),
            Vec3::new(2.0, 0.5, 1.5),
            &b,
            0.6
        ));
    }
}
