//! 3×3 rotation/linear-map matrices.

use crate::Vec3;
use std::ops::Mul;

/// A 3×3 matrix stored in row-major order, used primarily for rotations.
///
/// # Example
///
/// ```
/// use rabit_geometry::{Mat3, Vec3};
///
/// let r = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix.
    rows: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Creates a matrix from rows.
    pub const fn from_rows(rows: [[f64; 3]; 3]) -> Self {
        Mat3 { rows }
    }

    /// Creates a matrix whose columns are the given vectors.
    pub fn from_columns(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3 {
            rows: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row > 2` or `col > 2`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col]
    }

    /// The `i`-th row as a vector.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::from_array(self.rows[i])
    }

    /// The `i`-th column as a vector.
    #[inline]
    pub fn column(&self, i: usize) -> Vec3 {
        Vec3::new(self.rows[0][i], self.rows[1][i], self.rows[2][i])
    }

    /// Rotation of `angle` radians about the X axis.
    pub fn rotation_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// Rotation of `angle` radians about the Y axis.
    pub fn rotation_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Rotation of `angle` radians about the Z axis.
    pub fn rotation_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Rotation of `angle` radians about an arbitrary `axis`
    /// (Rodrigues' formula). Returns `None` if `axis` is numerically zero.
    pub fn rotation_axis_angle(axis: Vec3, angle: f64) -> Option<Self> {
        let u = axis.normalized()?;
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        Some(Mat3::from_rows([
            [
                c + u.x * u.x * t,
                u.x * u.y * t - u.z * s,
                u.x * u.z * t + u.y * s,
            ],
            [
                u.y * u.x * t + u.z * s,
                c + u.y * u.y * t,
                u.y * u.z * t - u.x * s,
            ],
            [
                u.z * u.x * t - u.y * s,
                u.z * u.y * t + u.x * s,
                c + u.z * u.z * t,
            ],
        ]))
    }

    /// Matrix transpose. For a rotation matrix this is also its inverse.
    pub fn transpose(&self) -> Mat3 {
        let mut rows = [[0.0; 3]; 3];
        for (r, row) in rows.iter_mut().enumerate() {
            for (c, val) in row.iter_mut().enumerate() {
                *val = self.rows[c][r];
            }
        }
        Mat3 { rows }
    }

    /// Determinant.
    pub fn determinant(&self) -> f64 {
        let m = &self.rows;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Returns `true` if this matrix is (numerically) a proper rotation:
    /// orthonormal with determinant `+1`.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let t = *self * self.transpose();
        let mut max_dev: f64 = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                max_dev = max_dev.max((t.get(r, c) - expect).abs());
            }
        }
        max_dev <= tol && (self.determinant() - 1.0).abs() <= tol
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut rows = [[0.0; 3]; 3];
        for (r, row) in rows.iter_mut().enumerate() {
            for (c, val) in row.iter_mut().enumerate() {
                *val = self.row(r).dot(rhs.column(c));
            }
        }
        Mat3 { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_vec_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn identity_preserves_vectors() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_vec_close(Mat3::IDENTITY * v, v);
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Mat3::rotation_z(FRAC_PI_2);
        assert_vec_close(r * Vec3::X, Vec3::Y);
        assert_vec_close(r * Vec3::Y, -Vec3::X);
        assert_vec_close(r * Vec3::Z, Vec3::Z);
    }

    #[test]
    fn rotation_x_and_y() {
        assert_vec_close(Mat3::rotation_x(FRAC_PI_2) * Vec3::Y, Vec3::Z);
        assert_vec_close(Mat3::rotation_y(FRAC_PI_2) * Vec3::Z, Vec3::X);
    }

    #[test]
    fn axis_angle_matches_basis_rotations() {
        let r1 = Mat3::rotation_axis_angle(Vec3::Z, 0.7).unwrap();
        let r2 = Mat3::rotation_z(0.7);
        for i in 0..3 {
            assert_vec_close(r1.column(i), r2.column(i));
        }
        assert!(Mat3::rotation_axis_angle(Vec3::ZERO, 0.7).is_none());
    }

    #[test]
    fn transpose_is_inverse_of_rotation() {
        let r = Mat3::rotation_axis_angle(Vec3::new(1.0, 2.0, 3.0), 1.1).unwrap();
        let p = r * r.transpose();
        for i in 0..3 {
            assert_vec_close(p.column(i), Mat3::IDENTITY.column(i));
        }
    }

    #[test]
    fn determinant_of_rotation_is_one() {
        let r = Mat3::rotation_axis_angle(Vec3::new(0.3, -1.0, 0.5), PI / 3.0).unwrap();
        assert!((r.determinant() - 1.0).abs() < 1e-12);
        assert!(r.is_rotation(1e-9));
    }

    #[test]
    fn non_rotation_detected() {
        let scale = Mat3::from_rows([[2.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        assert!(!scale.is_rotation(1e-9));
    }

    #[test]
    fn matrix_product_associates_with_vector_product() {
        let a = Mat3::rotation_x(0.3);
        let b = Mat3::rotation_y(0.4);
        let v = Vec3::new(0.1, 0.2, 0.3);
        assert_vec_close((a * b) * v, a * (b * v));
    }

    #[test]
    fn rows_and_columns() {
        let m = Mat3::from_rows([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        assert_eq!(m.row(1), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.column(2), Vec3::new(3.0, 6.0, 9.0));
        assert_eq!(m.get(2, 0), 7.0);
        let c = Mat3::from_columns(m.column(0), m.column(1), m.column(2));
        assert_eq!(c, m);
    }
}
