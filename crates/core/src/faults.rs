//! Parametric fault injection at the Lab/Device boundary.
//!
//! The 16-bug study replays a fixed catalog of failures; this module
//! generalizes it into *fault families* a run can be seeded with: stale
//! or noisy state reads, silently dropped or duplicated commands,
//! per-device latency spikes, and hard device crashes. A [`FaultPlan`]
//! is a pure description (seed + specs); arming a lab turns it into a
//! [`FaultSession`] whose injections are deterministic — the same plan,
//! seed, and workflow always fault the same way, which is what keeps
//! faulted fleet runs reproducible across any worker-thread count.
//!
//! The engine side of the story is [`RecoveryPolicy`]: what `Rabit`
//! does when a *transient* alert (device fault or malfunction) fires —
//! alert immediately (the paper's behaviour), retry with exponential
//! backoff, retry then safe-stop, or quarantine the device and continue
//! degraded. Recovery activity is tallied in [`RecoveryCounters`].

use rabit_devices::{Command, DeviceId, LabState};
use rabit_util::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// One family of injectable fault. Marked `#[non_exhaustive]`: future
/// PRs add families (e.g. partial doses, sensor freezes) without a
/// breaking change, so downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// `fetch_state` serves the *previous* snapshot instead of the
    /// current one (a lagging status endpoint).
    StaleState,
    /// Gaussian noise on every numeric state variable a fetch reports.
    NoisyState {
        /// Standard deviation of the additive noise.
        sigma: f64,
    },
    /// The device acknowledges the command but silently does nothing
    /// (the classic lost-packet failure).
    DropCommand,
    /// The device executes the command twice (a retransmitted packet
    /// the firmware did not deduplicate).
    DuplicateCommand,
    /// The command takes extra wall-clock time to complete.
    LatencySpike {
        /// Extra latency added to the command, in seconds.
        seconds: f64,
    },
    /// The device crashes: the triggering command and every later one
    /// are rejected until the crash window elapses.
    DeviceCrash {
        /// How long the device stays down, in virtual seconds.
        downtime_s: f64,
    },
}

impl FaultKind {
    /// A short machine-readable family name (used as the key in
    /// `BENCH_faults.json`).
    pub fn family(&self) -> &'static str {
        match self {
            FaultKind::StaleState => "stale_state",
            FaultKind::NoisyState { .. } => "noisy_state",
            FaultKind::DropCommand => "drop_command",
            FaultKind::DuplicateCommand => "duplicate_command",
            FaultKind::LatencySpike { .. } => "latency_spike",
            FaultKind::DeviceCrash { .. } => "device_crash",
        }
    }

    /// Whether this kind perturbs state *reads* (as opposed to command
    /// execution).
    pub fn targets_state(&self) -> bool {
        matches!(self, FaultKind::StaleState | FaultKind::NoisyState { .. })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.family())
    }
}

/// When a fault spec fires, counted in *steps*: command faults count
/// `Lab::apply` calls, state faults count `Lab::fetch_state` calls.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSchedule {
    /// Fire at exactly these 0-based step indices.
    AtSteps(Vec<usize>),
    /// Fire every `period`-th step, starting at `offset`.
    EveryNth {
        /// The firing period (must be ≥ 1 to ever fire).
        period: usize,
        /// The first step that fires.
        offset: usize,
    },
    /// Fire independently with this probability per step, drawn from
    /// the session's seeded RNG.
    Bernoulli {
        /// Per-step firing probability in `[0, 1]`.
        probability: f64,
    },
}

impl FaultSchedule {
    fn fires(&self, step: usize, rng: &mut Rng) -> bool {
        match self {
            FaultSchedule::AtSteps(steps) => steps.contains(&step),
            FaultSchedule::EveryNth { period, offset } => {
                *period > 0 && step >= *offset && (step - offset).is_multiple_of(*period)
            }
            FaultSchedule::Bernoulli { probability } => rng.random_bool(*probability),
        }
    }
}

/// One fault to inject: what, to which device, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The targeted device, or `None` for "any device" (command faults
    /// hit whichever device the scheduled command addresses; state
    /// faults hit the whole snapshot).
    pub device: Option<DeviceId>,
    /// The fault family.
    pub kind: FaultKind,
    /// When it fires.
    pub schedule: FaultSchedule,
}

/// A deterministic, seeded description of the faults to inject into one
/// run. Plans are pure data: cloning or sharing one never shares RNG
/// state — each run derives its own [`FaultSession`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: injects nothing. Running with it is byte-for-byte
    /// identical to running without fault support at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying a seed, ready for [`FaultPlan::with_fault`].
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Adds a fault spec (builder style).
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Shorthand for a spec targeting any device.
    pub fn with(self, kind: FaultKind, schedule: FaultSchedule) -> Self {
        self.with_fault(FaultSpec {
            device: None,
            kind,
            schedule,
        })
    }

    /// Shorthand for a spec targeting one device.
    pub fn with_on(
        self,
        device: impl Into<DeviceId>,
        kind: FaultKind,
        schedule: FaultSchedule,
    ) -> Self {
        self.with_fault(FaultSpec {
            device: Some(device.into()),
            kind,
            schedule,
        })
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault specs, in injection-priority order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Derives the same plan reseeded for one run of a fleet: mixing the
    /// run index into the seed keeps every run's injections independent
    /// yet fully determined by `(plan, index)` — the property that makes
    /// faulted fleets reproducible across worker-thread counts.
    pub fn for_run(&self, run_index: u64) -> FaultPlan {
        let mut mixed = FaultPlan::clone(self);
        // SplitMix64-style finalizer over (seed, index).
        let mut z = self.seed.wrapping_add(
            run_index
                .wrapping_add(1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        mixed.seed = z ^ (z >> 31);
        mixed
    }

    /// Starts a runtime session for one run (see [`Lab::arm_faults`]).
    ///
    /// [`Lab::arm_faults`]: crate::Lab::arm_faults
    pub fn session(&self) -> FaultSession {
        FaultSession {
            specs: self.specs.clone(),
            rng: Rng::seed_from_u64(self.seed),
            command_step: 0,
            fetch_step: 0,
            crashed_until: BTreeMap::new(),
            previous: None,
            stats: FaultStats::default(),
        }
    }
}

/// Per-family injection tallies for one session. `crash_rejections`
/// counts the *consequences* of a crash (commands bounced while the
/// device was down), not new injections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Commands silently dropped.
    pub dropped: u64,
    /// Commands executed twice.
    pub duplicated: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// Device crashes triggered.
    pub crashes: u64,
    /// Commands rejected because their device was inside a crash window.
    pub crash_rejections: u64,
    /// Fetches served a stale snapshot.
    pub stale_reads: u64,
    /// Fetches perturbed with sensor noise.
    pub noisy_reads: u64,
}

impl FaultStats {
    /// Total faults injected (crash rejections excluded: they are the
    /// echo of one crash injection, not independent faults).
    pub fn total_injected(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.latency_spikes
            + self.crashes
            + self.stale_reads
            + self.noisy_reads
    }
}

/// What a [`FaultSession`] decided to do with one command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CommandFault {
    /// Execute normally.
    None,
    /// Acknowledge but silently do nothing.
    Drop,
    /// Execute twice.
    Duplicate,
    /// Execute after this much extra latency (seconds).
    Latency(f64),
    /// The device is down (just crashed, or still inside a crash
    /// window) until the given virtual time.
    Crashed {
        /// End of the crash window (virtual seconds).
        until_s: f64,
    },
}

/// The runtime half of a [`FaultPlan`]: owned by a [`Lab`], it holds
/// the seeded RNG, step counters, crash windows, and injection tallies
/// for one run.
///
/// [`Lab`]: crate::Lab
#[derive(Debug)]
pub struct FaultSession {
    specs: Vec<FaultSpec>,
    rng: Rng,
    command_step: usize,
    fetch_step: usize,
    crashed_until: BTreeMap<DeviceId, f64>,
    previous: Option<LabState>,
    stats: FaultStats,
}

impl FaultSession {
    /// Injection tallies so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Decides the fate of one command. Called exactly once per
    /// `Lab::apply`; the first matching spec that fires wins.
    pub(crate) fn intercept_command(&mut self, command: &Command, now_s: f64) -> CommandFault {
        let step = self.command_step;
        self.command_step += 1;

        // An active crash window rejects everything addressed to the
        // device, fault schedules notwithstanding.
        if let Some(&until) = self.crashed_until.get(&command.actor) {
            if now_s < until {
                self.stats.crash_rejections += 1;
                return CommandFault::Crashed { until_s: until };
            }
        }

        for i in 0..self.specs.len() {
            let kind = self.specs[i].kind;
            if kind.targets_state() {
                continue;
            }
            if let Some(device) = &self.specs[i].device {
                if device != &command.actor {
                    continue;
                }
            }
            if !self.specs[i].schedule.fires(step, &mut self.rng) {
                continue;
            }
            match kind {
                FaultKind::DropCommand => {
                    self.stats.dropped += 1;
                    return CommandFault::Drop;
                }
                FaultKind::DuplicateCommand => {
                    self.stats.duplicated += 1;
                    return CommandFault::Duplicate;
                }
                FaultKind::LatencySpike { seconds } => {
                    self.stats.latency_spikes += 1;
                    return CommandFault::Latency(seconds);
                }
                FaultKind::DeviceCrash { downtime_s } => {
                    let until = now_s + downtime_s;
                    self.crashed_until.insert(command.actor.clone(), until);
                    self.stats.crashes += 1;
                    return CommandFault::Crashed { until_s: until };
                }
                _ => {}
            }
        }
        CommandFault::None
    }

    /// Filters one fetched snapshot. Called exactly once per
    /// `Lab::fetch_state` with the freshly-read state; returns what the
    /// engine actually sees (possibly stale or noisy).
    pub(crate) fn intercept_state(&mut self, fresh: LabState) -> LabState {
        let step = self.fetch_step;
        self.fetch_step += 1;
        let mut out = fresh.clone();
        for i in 0..self.specs.len() {
            let kind = self.specs[i].kind;
            if !kind.targets_state() {
                continue;
            }
            if !self.specs[i].schedule.fires(step, &mut self.rng) {
                continue;
            }
            let target = self.specs[i].device.clone();
            match kind {
                FaultKind::StaleState => {
                    let Some(previous) = &self.previous else {
                        continue; // nothing older to serve yet
                    };
                    match &target {
                        None => out = previous.clone(),
                        Some(device) => {
                            if let Some(old) = previous.device(device) {
                                out.insert(device.clone(), old.clone());
                            }
                        }
                    }
                    self.stats.stale_reads += 1;
                }
                FaultKind::NoisyState { sigma } => {
                    let mut perturbed: Vec<(DeviceId, rabit_devices::StateKey, f64)> = Vec::new();
                    for (id, dstate) in out.iter() {
                        if let Some(device) = &target {
                            if device != id {
                                continue;
                            }
                        }
                        for (key, value) in dstate.iter() {
                            if let rabit_devices::Value::Number(n) = value {
                                perturbed.push((id.clone(), key.clone(), *n));
                            }
                        }
                    }
                    for (id, key, n) in perturbed {
                        out.set(&id, key, n + sigma * self.rng.random_normal());
                    }
                    self.stats.noisy_reads += 1;
                }
                _ => {}
            }
        }
        self.previous = Some(fresh);
        out
    }
}

/// How many times to retry a transient alert, and how the backoff
/// between attempts grows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total execution attempts per command (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 0.5,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based), in seconds.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        self.backoff_base_s * self.backoff_factor.powi(retry as i32)
    }
}

/// What the engine does when a *transient* alert — a device fault or a
/// post-execution malfunction — fires. Genuine rule violations
/// ([`Alert::InvalidCommand`], [`Alert::InvalidTrajectory`]) are never
/// retried: they are exactly the bugs RABIT exists to stop.
///
/// [`Alert::InvalidCommand`]: crate::Alert::InvalidCommand
/// [`Alert::InvalidTrajectory`]: crate::Alert::InvalidTrajectory
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum RecoveryPolicy {
    /// Alert and stop at the first transient failure — the paper's
    /// `alertAndStop`, and the default.
    #[default]
    AlertImmediately,
    /// Retry with exponential backoff on the virtual clock; alert only
    /// once attempts are exhausted.
    Retry(RetryPolicy),
    /// Retry, and on exhaustion park every arm at its sleep position
    /// (regardless of [`StopPolicy`]) before alerting — the timeout +
    /// safe-stop policy.
    ///
    /// [`StopPolicy`]: crate::StopPolicy
    RetryThenSafeStop(RetryPolicy),
    /// Retry, and on exhaustion quarantine the offending device: the
    /// command is abandoned, later commands to that device are skipped,
    /// and the run continues degraded instead of halting.
    Quarantine(RetryPolicy),
}

impl RecoveryPolicy {
    /// The retry schedule, or `None` under [`RecoveryPolicy::AlertImmediately`].
    pub fn retry(&self) -> Option<RetryPolicy> {
        match self {
            RecoveryPolicy::AlertImmediately => None,
            RecoveryPolicy::Retry(r)
            | RecoveryPolicy::RetryThenSafeStop(r)
            | RecoveryPolicy::Quarantine(r) => Some(*r),
        }
    }
}

/// Per-run recovery activity, reported in `RunReport::recovery`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Retry attempts performed (each preceded by a backoff).
    pub retries: u64,
    /// Commands that ultimately succeeded after at least one retry.
    pub recovered: u64,
    /// Devices quarantined after exhausting their retries.
    pub quarantined: u64,
    /// Commands skipped because their device was already quarantined.
    pub skipped_quarantined: u64,
    /// Safe-stops performed on retry exhaustion.
    pub safe_stops: u64,
}

impl RecoveryCounters {
    /// Whether any recovery machinery engaged at all.
    pub fn any(&self) -> bool {
        *self != RecoveryCounters::default()
    }

    /// Component-wise difference (`self - earlier`), for deriving
    /// per-run deltas from engine totals.
    pub fn since(&self, earlier: &RecoveryCounters) -> RecoveryCounters {
        RecoveryCounters {
            retries: self.retries - earlier.retries,
            recovered: self.recovered - earlier.recovered,
            quarantined: self.quarantined - earlier.quarantined,
            skipped_quarantined: self.skipped_quarantined - earlier.skipped_quarantined,
            safe_stops: self.safe_stops - earlier.safe_stops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::ActionKind;

    fn cmd(actor: &str) -> Command {
        Command::new(actor, ActionKind::MoveHome)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut session = plan.session();
        for step in 0..10 {
            assert_eq!(
                session.intercept_command(&cmd("arm"), step as f64),
                CommandFault::None
            );
        }
        assert_eq!(session.stats().total_injected(), 0);
    }

    #[test]
    fn schedules_fire_deterministically() {
        let every = FaultSchedule::EveryNth {
            period: 3,
            offset: 1,
        };
        let mut rng = Rng::seed_from_u64(0);
        let fired: Vec<usize> = (0..10).filter(|&s| every.fires(s, &mut rng)).collect();
        assert_eq!(fired, vec![1, 4, 7]);
        let at = FaultSchedule::AtSteps(vec![0, 5]);
        assert!(at.fires(0, &mut rng) && at.fires(5, &mut rng) && !at.fires(3, &mut rng));
        // Bernoulli: same seed, same draws.
        let bern = FaultSchedule::Bernoulli { probability: 0.5 };
        let draw = |seed| -> Vec<bool> {
            let mut rng = Rng::seed_from_u64(seed);
            (0..20).map(|s| bern.fires(s, &mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn drop_fault_targets_only_its_device() {
        let plan = FaultPlan::seeded(1).with_on(
            "doser",
            FaultKind::DropCommand,
            FaultSchedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let mut session = plan.session();
        assert_eq!(
            session.intercept_command(&cmd("arm"), 0.0),
            CommandFault::None
        );
        assert_eq!(
            session.intercept_command(&cmd("doser"), 1.0),
            CommandFault::Drop
        );
        assert_eq!(session.stats().dropped, 1);
    }

    #[test]
    fn crash_window_rejects_until_elapsed() {
        let plan = FaultPlan::seeded(1).with(
            FaultKind::DeviceCrash { downtime_s: 5.0 },
            FaultSchedule::AtSteps(vec![0]),
        );
        let mut session = plan.session();
        assert_eq!(
            session.intercept_command(&cmd("arm"), 10.0),
            CommandFault::Crashed { until_s: 15.0 }
        );
        // Still down at t=12; other devices unaffected.
        assert_eq!(
            session.intercept_command(&cmd("arm"), 12.0),
            CommandFault::Crashed { until_s: 15.0 }
        );
        assert_eq!(
            session.intercept_command(&cmd("doser"), 12.0),
            CommandFault::None
        );
        // Recovered at t=15.
        assert_eq!(
            session.intercept_command(&cmd("arm"), 15.0),
            CommandFault::None
        );
        assert_eq!(session.stats().crashes, 1);
        assert_eq!(session.stats().crash_rejections, 1);
    }

    #[test]
    fn stale_state_serves_previous_snapshot() {
        let plan =
            FaultPlan::seeded(1).with(FaultKind::StaleState, FaultSchedule::AtSteps(vec![1]));
        let mut session = plan.session();
        let mut s0 = LabState::new();
        s0.set(&"hp".into(), rabit_devices::StateKey::ActionValue, 20.0);
        let mut s1 = LabState::new();
        s1.set(&"hp".into(), rabit_devices::StateKey::ActionValue, 60.0);
        // First fetch: nothing older exists, served fresh.
        let r0 = session.intercept_state(s0);
        assert_eq!(
            r0.get_number(&"hp".into(), &rabit_devices::StateKey::ActionValue),
            Some(20.0)
        );
        // Second fetch fires: the engine sees the old 20° reading.
        let r1 = session.intercept_state(s1);
        assert_eq!(
            r1.get_number(&"hp".into(), &rabit_devices::StateKey::ActionValue),
            Some(20.0)
        );
        assert_eq!(session.stats().stale_reads, 1);
    }

    #[test]
    fn noisy_state_perturbs_numbers_only() {
        let plan = FaultPlan::seeded(9).with(
            FaultKind::NoisyState { sigma: 1.0 },
            FaultSchedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let mut session = plan.session();
        let mut s = LabState::new();
        s.set(&"hp".into(), rabit_devices::StateKey::ActionValue, 50.0);
        s.set(&"hp".into(), rabit_devices::StateKey::DoorOpen, true);
        let out = session.intercept_state(s);
        let t = out
            .get_number(&"hp".into(), &rabit_devices::StateKey::ActionValue)
            .unwrap();
        assert_ne!(t, 50.0, "numeric reading perturbed");
        assert!((t - 50.0).abs() < 10.0, "perturbation is sigma-scaled");
        assert_eq!(
            out.get_bool(&"hp".into(), &rabit_devices::StateKey::DoorOpen),
            Some(true),
            "booleans untouched"
        );
        assert_eq!(session.stats().noisy_reads, 1);
    }

    #[test]
    fn for_run_derives_distinct_deterministic_seeds() {
        let plan = FaultPlan::seeded(7).with(
            FaultKind::DropCommand,
            FaultSchedule::Bernoulli { probability: 0.5 },
        );
        let s0 = plan.for_run(0).seed();
        let s1 = plan.for_run(1).seed();
        assert_ne!(s0, s1, "runs get independent seeds");
        assert_eq!(plan.for_run(0).seed(), s0, "and deterministic ones");
        assert_eq!(plan.for_run(0).specs(), plan.specs());
    }

    #[test]
    fn retry_policy_backoff_grows_exponentially() {
        let retry = RetryPolicy {
            max_attempts: 4,
            backoff_base_s: 0.5,
            backoff_factor: 2.0,
        };
        assert_eq!(retry.backoff_s(0), 0.5);
        assert_eq!(retry.backoff_s(1), 1.0);
        assert_eq!(retry.backoff_s(2), 2.0);
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::AlertImmediately);
        assert!(RecoveryPolicy::AlertImmediately.retry().is_none());
        assert_eq!(
            RecoveryPolicy::Retry(retry).retry().unwrap().max_attempts,
            4
        );
    }

    #[test]
    fn recovery_counter_deltas() {
        let total = RecoveryCounters {
            retries: 5,
            recovered: 3,
            quarantined: 1,
            skipped_quarantined: 2,
            safe_stops: 0,
        };
        let earlier = RecoveryCounters {
            retries: 2,
            recovered: 1,
            quarantined: 0,
            skipped_quarantined: 2,
            safe_stops: 0,
        };
        let delta = total.since(&earlier);
        assert_eq!(delta.retries, 3);
        assert_eq!(delta.recovered, 2);
        assert_eq!(delta.quarantined, 1);
        assert_eq!(delta.skipped_quarantined, 0);
        assert!(delta.any());
        assert!(!RecoveryCounters::default().any());
    }
}
