//! Script parsing with command aliases: the §V-C open challenge that
//! "there is a possibility that multiple commands could be used to
//! execute a specific action. For instance, there might be two commands
//! for moving a robot from one location to another. RABIT currently
//! allows only one command per action."
//!
//! Lab scripts drive devices through vendor-specific call names
//! (`move_pose` on the Ned2, `move_to_location` on the ViperX, `set_ep`
//! on the UR). An [`AliasTable`] maps every vendor spelling onto RABIT's
//! canonical action, and [`parse_script`] turns a RATracer-style textual
//! command log into a [`Workflow`] — so one rule covers all spellings of
//! the same action.
//!
//! Grammar per line (blank lines and `#` comments ignored):
//!
//! ```text
//! <device> . <command> ( <arg> , ... )
//! ```
//!
//! Arguments are numbers or bare identifiers (device ids).

use crate::workflow::Workflow;
use rabit_devices::{ActionKind, Command, DeviceId, Substance};
use rabit_geometry::Vec3;
use std::collections::BTreeMap;
use std::fmt;

/// Maps vendor command spellings onto canonical action labels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AliasTable {
    map: BTreeMap<String, String>,
}

impl AliasTable {
    /// An empty table (canonical names only).
    pub fn new() -> Self {
        AliasTable::default()
    }

    /// The aliases observed across the paper's arms: Ned2's `move_pose`,
    /// Interbotix's `go_to_home_pose` spelling variants, and the
    /// syringe-pump's two dosing entry points the pilot participant had
    /// to choose between (§V-A).
    pub fn standard() -> Self {
        let mut t = AliasTable::new();
        for (alias, canonical) in [
            ("move_pose", "move_to_location"),
            ("set_ep", "move_to_location"),
            ("go_to_pose", "move_to_location"),
            ("move_inside", "move_robot_inside"),
            ("move_out", "move_robot_outside"),
            ("sleep", "go_to_sleep_pose"),
            ("home", "go_to_home_pose"),
            ("pick_up_object", "pick_object"),
            ("pick_from_pose", "pick_object"),
            ("place_from_pose", "place_object"),
            ("set_door_open", "open_door"),
            ("set_door_closed", "close_door"),
            ("run_action", "start_action"),
            ("doseSolid", "dose_solid"),
            ("doseSolvent", "dose_liquid"),
            ("doseInitialSolvent", "dose_liquid"),
            ("decap", "decap_vial"),
            ("cap", "cap_vial"),
        ] {
            t.add(alias, canonical);
        }
        t
    }

    /// Adds one alias.
    pub fn add(&mut self, alias: impl Into<String>, canonical: impl Into<String>) {
        self.map.insert(alias.into(), canonical.into());
    }

    /// Resolves a command name to its canonical label.
    pub fn resolve<'a>(&'a self, name: &'a str) -> &'a str {
        self.map.get(name).map(String::as_str).unwrap_or(name)
    }

    /// Number of aliases.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no aliases are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A script parsing error, with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

/// One parsed argument.
#[derive(Debug, Clone, PartialEq)]
enum Arg {
    Number(f64),
    Ident(String),
}

impl Arg {
    fn number(&self) -> Option<f64> {
        match self {
            Arg::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn ident(&self) -> Option<&str> {
        match self {
            Arg::Ident(s) => Some(s),
            _ => None,
        }
    }
}

fn split_args(inner: &str) -> Result<Vec<Arg>, String> {
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|raw| {
            let raw = raw.trim().trim_matches('"').trim_matches('\'');
            if raw.is_empty() {
                return Err("empty argument".to_string());
            }
            if let Ok(n) = raw.parse::<f64>() {
                Ok(Arg::Number(n))
            } else if raw
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                Ok(Arg::Ident(raw.to_string()))
            } else {
                Err(format!("malformed argument '{raw}'"))
            }
        })
        .collect()
}

/// Parses one script line into a [`Command`], resolving aliases.
///
/// # Errors
///
/// Returns a human-readable message for syntax errors, unknown commands,
/// or arity mismatches.
pub fn parse_line(line: &str, aliases: &AliasTable) -> Result<Command, String> {
    let line = line.trim();
    let dot = line.find('.').ok_or("expected '<device>.<command>(...)'")?;
    let device = line[..dot].trim();
    if device.is_empty() {
        return Err("empty device name".to_string());
    }
    let rest = &line[dot + 1..];
    let open = rest
        .find('(')
        .ok_or("expected '(' after the command name")?;
    if !rest.trim_end().ends_with(')') {
        return Err("expected ')' at end of line".to_string());
    }
    let name = rest[..open].trim();
    let inner = &rest.trim_end()[open + 1..rest.trim_end().len() - 1];
    let args = split_args(inner)?;
    let canonical = aliases.resolve(name);

    let need = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "{canonical} expects {n} argument(s), got {}",
                args.len()
            ))
        }
    };
    let num = |i: usize| -> Result<f64, String> {
        args[i]
            .number()
            .ok_or_else(|| format!("argument {} of {canonical} must be a number", i + 1))
    };
    let ident = |i: usize| -> Result<DeviceId, String> {
        args[i]
            .ident()
            .map(DeviceId::new)
            .ok_or_else(|| format!("argument {} of {canonical} must be a name", i + 1))
    };

    let action = match canonical {
        "move_to_location" => {
            need(3)?;
            ActionKind::MoveToLocation {
                target: Vec3::new(num(0)?, num(1)?, num(2)?),
            }
        }
        "move_robot_inside" => {
            need(1)?;
            ActionKind::MoveInsideDevice { device: ident(0)? }
        }
        "move_robot_outside" => {
            need(0)?;
            ActionKind::MoveOutOfDevice
        }
        "go_to_home_pose" => {
            need(0)?;
            ActionKind::MoveHome
        }
        "go_to_sleep_pose" => {
            need(0)?;
            ActionKind::MoveToSleep
        }
        "pick_object" => {
            need(1)?;
            ActionKind::PickObject { object: ident(0)? }
        }
        "place_object" => match args.len() {
            1 => ActionKind::PlaceObject {
                object: ident(0)?,
                into: None,
            },
            2 => ActionKind::PlaceObject {
                object: ident(0)?,
                into: Some(ident(1)?),
            },
            n => return Err(format!("place_object expects 1-2 arguments, got {n}")),
        },
        "open_gripper" => {
            need(0)?;
            ActionKind::OpenGripper
        }
        "close_gripper" => {
            need(0)?;
            ActionKind::CloseGripper
        }
        "open_door" => {
            need(0)?;
            ActionKind::SetDoor { open: true }
        }
        "close_door" => {
            need(0)?;
            ActionKind::SetDoor { open: false }
        }
        "dose_solid" => {
            need(2)?;
            ActionKind::DoseSolid {
                amount_mg: num(0)?,
                into: ident(1)?,
            }
        }
        "dose_liquid" => {
            need(2)?;
            ActionKind::DoseLiquid {
                volume_ml: num(0)?,
                into: ident(1)?,
            }
        }
        "start_action" => {
            need(1)?;
            ActionKind::StartAction { value: num(0)? }
        }
        "stop_action" => {
            need(0)?;
            ActionKind::StopAction
        }
        "cap_vial" => {
            need(0)?;
            ActionKind::Cap
        }
        "decap_vial" => {
            need(0)?;
            ActionKind::Decap
        }
        "transfer_solid" | "transfer_liquid" => {
            need(2)?;
            let substance = if canonical == "transfer_solid" {
                Substance::Solid
            } else {
                Substance::Liquid
            };
            ActionKind::Transfer {
                from: DeviceId::new(device),
                to: ident(0)?,
                substance,
                amount: num(1)?,
            }
        }
        unknown => {
            return Err(format!(
                "unknown command '{unknown}' (add an alias mapping it to a canonical action)"
            ))
        }
    };
    Ok(Command::new(device, action))
}

/// Parses a whole script into a [`Workflow`]. Blank lines and lines
/// starting with `#` are ignored.
///
/// # Errors
///
/// Returns the first [`ScriptError`] with its line number.
pub fn parse_script(
    name: impl Into<String>,
    text: &str,
    aliases: &AliasTable,
) -> Result<Workflow, ScriptError> {
    let mut wf = Workflow::new(name);
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let command = parse_line(line, aliases).map_err(|message| ScriptError {
            line: i + 1,
            message,
        })?;
        wf.push(command);
    }
    Ok(wf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_commands() {
        let a = AliasTable::new();
        let c = parse_line("ned2.move_to_location(0.443, -0.010, 0.292)", &a).unwrap();
        assert_eq!(
            c.to_string(),
            "ned2.move_to_location(0.4430, -0.0100, 0.2920)"
        );
        let c = parse_line("doser.open_door()", &a).unwrap();
        assert_eq!(c.to_string(), "doser.open_door");
        let c = parse_line("arm.place_object(vial, doser)", &a).unwrap();
        assert!(c.to_string().contains("vial -> doser"));
        let c = parse_line("doser.dose_solid(5.0, vial)", &a).unwrap();
        assert!(c.to_string().contains("dose_solid(5 mg"));
    }

    #[test]
    fn aliases_map_vendor_spellings_to_one_action() {
        // The open challenge: two commands, one action, one rule.
        let a = AliasTable::standard();
        let via_alias = parse_line("ned2.move_pose(0.1, 0.2, 0.3)", &a).unwrap();
        let canonical = parse_line("ned2.move_to_location(0.1, 0.2, 0.3)", &a).unwrap();
        assert_eq!(via_alias, canonical);
        let ur = parse_line("ur3e.set_ep(0.1, 0.2, 0.3)", &a).unwrap();
        assert_eq!(ur.action, canonical.action);
        // Dosing spellings from Fig. 1(b).
        let d1 = parse_line("pump.doseSolvent(2.0, vial)", &a).unwrap();
        let d2 = parse_line("pump.doseInitialSolvent(2.0, vial)", &a).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn unknown_commands_are_rejected_without_an_alias() {
        let a = AliasTable::new();
        let err = parse_line("ned2.move_pose(0.1, 0.2, 0.3)", &a).unwrap_err();
        assert!(err.contains("unknown command 'move_pose'"));
        // …and accepted with one.
        let mut a = AliasTable::new();
        a.add("move_pose", "move_to_location");
        assert!(parse_line("ned2.move_pose(0.1, 0.2, 0.3)", &a).is_ok());
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn syntax_and_arity_errors() {
        let a = AliasTable::new();
        assert!(parse_line("open_door()", &a).is_err()); // no device
        assert!(parse_line("doser.open_door", &a).is_err()); // no parens
        assert!(parse_line("doser.open_door(", &a).is_err());
        assert!(parse_line("arm.move_to_location(1.0, 2.0)", &a)
            .unwrap_err()
            .contains("expects 3"));
        assert!(parse_line("arm.pick_object(5.0)", &a)
            .unwrap_err()
            .contains("must be a name"));
        assert!(parse_line("arm.move_to_location(a, b, c)", &a)
            .unwrap_err()
            .contains("must be a number"));
        assert!(parse_line("arm.pick_object(vial; oops)", &a).is_err());
    }

    #[test]
    fn parses_a_full_script_with_comments() {
        let script = r#"
            # Fig. 5-style workflow fragment (mixed vendor spellings)
            dosing_device.set_door_open()
            vial.decap()

            viperx.home()
            viperx.pick_up_object(vial)
            ned2.move_pose(0.443, -0.010, 0.292)
            dosing_device.run_action(5.0)
        "#;
        let wf = parse_script("fig5_fragment", script, &AliasTable::standard()).unwrap();
        assert_eq!(wf.len(), 6);
        assert_eq!(wf.commands()[0].to_string(), "dosing_device.open_door");
        assert_eq!(wf.commands()[2].to_string(), "viperx.go_to_home_pose");
        assert!(wf.commands()[5].to_string().contains("start_action"));
    }

    #[test]
    fn script_errors_carry_line_numbers() {
        let script = "doser.open_door()\nviperx.fly_to_moon()\n";
        let err = parse_script("bad", script, &AliasTable::standard()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("fly_to_moon"));
    }

    #[test]
    fn transfers_parse_with_the_actor_as_source() {
        let a = AliasTable::new();
        let c = parse_line("vial.transfer_liquid(vial2, 2.0)", &a).unwrap();
        match &c.action {
            ActionKind::Transfer {
                from,
                to,
                substance,
                amount,
            } => {
                assert_eq!(from.as_str(), "vial");
                assert_eq!(to.as_str(), "vial2");
                assert_eq!(*substance, Substance::Liquid);
                assert_eq!(*amount, 2.0);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }
}
