//! The Robot Arm Dataset (RAD) substrate.
//!
//! The paper's rulebase construction starts from RAD — "three months of
//! command trace data captured in the Hein Lab" — mined for rules
//! "implied by the sequences of commands" (§II-A). The real dataset is a
//! lab artifact; this crate substitutes it with a **streaming pipeline**
//! sized for one: sessions are generated lazily, mined one event at a
//! time at memory proportional to the rule vocabulary (not the trace
//! count), and the mined conventions are promoted into a live rulebase
//! the fleet validates against.
//!
//! * [`gen`] — deterministic synthetic session generation.
//!   [`TraceStream`] yields RAD-shaped sessions one at a time (doors
//!   opened before entry, solids before liquids, doors closed while
//!   dosing), optionally switching conventions mid-stream
//!   ([`RadGenParams::with_drift_at`]); [`generate_corpus`] is its
//!   collect-adapter.
//! * [`mod@mine`] — the batch mining surface: [`mine()`] over a
//!   collected corpus, [`score`] against an explicit ground truth
//!   ([`GROUND_TRUTH`], [`DRIFTED_TRUTH`]), rules convertible into
//!   enforceable [`rabit_rulebase::Rule`]s.
//! * [`online`] — [`OnlineMiner`], the incremental miner behind
//!   `mine()`: one [`Command`](rabit_devices::Command) at a time,
//!   cumulative counters for batch-identical results plus exponentially
//!   decayed counters that track the *current* convention and log
//!   [`DriftEvent`]s when a rule's support collapses or a new pattern
//!   emerges.
//! * [`promote`] — [`RulePromoter`], which reconciles a tenant's live
//!   [`rabit_service::RuleStore`] against the currently-qualifying mined
//!   rules so the next fleet epoch enforces what the lab actually does.
//!
//! # Example: stream, mine, promote
//!
//! ```
//! use rabit_rad::{MineParams, OnlineMiner, RadGenParams, RulePromoter, TraceStream};
//! use rabit_service::{RuleStore, TenantId};
//!
//! // Conventions flip a third of the way through the stream.
//! let params = RadGenParams::new().with_sessions(150).with_drift_at(50);
//! let mut miner = OnlineMiner::new(MineParams::default());
//! for trace in TraceStream::new(&params) {
//!     miner.observe_trace(&trace); // constant memory: no corpus is kept
//! }
//!
//! let store = RuleStore::new();
//! store.seed_tenant(TenantId::new("hein"), rabit_rulebase::Rulebase::new());
//! let outcome = RulePromoter::new("hein")
//!     .promote(&miner.decayed_rules(), &store)
//!     .unwrap();
//! assert!(outcome.epoch > 0, "mined rules are live at a fresh epoch");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod mine;
pub mod online;
pub mod promote;

pub use gen::{generate_corpus, generate_lab_corpus, LabTraceStream, RadGenParams, TraceStream};
pub use mine::{
    mine, score, score_default, GuardedAction, MineParams, MinedRule, Toggle, DRIFTED_TRUTH,
    GROUND_TRUTH,
};
pub use online::{DriftEvent, DriftParams, OnlineMiner};
pub use promote::{PromotionOutcome, RulePromoter};
