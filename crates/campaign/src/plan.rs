//! Declarative campaign plans and their materialization into trial
//! matrices.
//!
//! A [`CampaignPlan`] is pure data: named axes (workflows, substrates,
//! fault variants, execution modes, replicates) whose cartesian product
//! is the trial matrix. Materializing a plan yields one [`Trial`] per
//! combination, each with a stable id and a seed derived from
//! `(plan seed, trial index)` — never from execution order — so a
//! resumed or re-threaded campaign draws exactly the same randomness as
//! an uninterrupted serial one.
//!
//! Plans follow the baseline-plus-variants shape: the *first* substrate
//! is the baseline row; every further substrate is a variant compared
//! against it in the merged artifact.

use rabit_buginject::catalog;
use rabit_core::{FaultPlan, Stage};
use rabit_geometry::Vec3;
use rabit_testbed::{locations, workflows, RabitStage, TestbedSubstrate};
use rabit_tracer::Workflow;
use rabit_util::json::{field, field_or_default};
use rabit_util::{FromJson, Json, JsonError, ToJson};

/// The schema tag carried by serialized plans.
pub const PLAN_SCHEMA: &str = "rabit.campaign.plan/v1";

/// Where the placement-precision probe commands the arm to
/// (free space above the testbed deck).
pub const PLACEMENT_TARGET: Vec3 = Vec3::new(0.40, 0.10, 0.30);

/// A workflow axis entry: which command sequence a trial replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowSpec {
    /// The Fig. 5 safe reference workflow.
    Fig5Safe,
    /// The safe device tour.
    DeviceTour,
    /// A bug from the 16-bug catalog, by id (e.g.
    /// `bug_a_door_not_reopened`).
    Bug(String),
    /// The placement-precision probe: one commanded move of the ViperX
    /// to [`PLACEMENT_TARGET`], with the substrate's positional noise
    /// seeded from the trial seed.
    Placement,
}

impl WorkflowSpec {
    /// The canonical string form (`fig5_safe`, `device_tour`,
    /// `bug:<id>`, `placement`).
    pub fn as_str(&self) -> String {
        match self {
            WorkflowSpec::Fig5Safe => "fig5_safe".to_string(),
            WorkflowSpec::DeviceTour => "device_tour".to_string(),
            WorkflowSpec::Bug(id) => format!("bug:{id}"),
            WorkflowSpec::Placement => "placement".to_string(),
        }
    }

    /// Parses the canonical string form.
    ///
    /// # Errors
    ///
    /// Returns a decode error for an unrecognized spec string.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        match text {
            "fig5_safe" => Ok(WorkflowSpec::Fig5Safe),
            "device_tour" => Ok(WorkflowSpec::DeviceTour),
            "placement" => Ok(WorkflowSpec::Placement),
            other => match other.strip_prefix("bug:") {
                Some(id) if !id.is_empty() => Ok(WorkflowSpec::Bug(id.to_string())),
                _ => Err(JsonError::decode(format!("unknown workflow spec '{text}'"))),
            },
        }
    }

    /// Builds the concrete workflow this spec names.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::UnknownBug`] for a bug id absent from the
    /// catalog (plan materialization surfaces this before any trial
    /// runs).
    pub fn build(&self) -> Result<Workflow, PlanError> {
        let loc = locations();
        match self {
            WorkflowSpec::Fig5Safe => Ok(workflows::fig5_safe_workflow(&loc)),
            WorkflowSpec::DeviceTour => Ok(workflows::device_tour(&loc)),
            WorkflowSpec::Bug(id) => catalog()
                .iter()
                .find(|b| b.id == id)
                .map(|b| b.buggy_workflow(&loc))
                .ok_or_else(|| PlanError::UnknownBug(id.clone())),
            WorkflowSpec::Placement => {
                Ok(Workflow::new("placement").move_to("viperx", PLACEMENT_TARGET))
            }
        }
    }
}

/// A substrate axis entry: which deployment backend a trial runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstrateSpec {
    /// One of the §IV study configurations at the physical testbed
    /// stage ([`TestbedSubstrate::study`]).
    Study(RabitStage),
    /// The canonical promotion profile for a deployment stage
    /// ([`TestbedSubstrate::for_stage`]).
    Stage(Stage),
}

impl SubstrateSpec {
    /// The canonical string form (`study:baseline`, `stage:simulator`,
    /// …).
    pub fn as_str(&self) -> String {
        match self {
            SubstrateSpec::Study(RabitStage::Baseline) => "study:baseline".to_string(),
            SubstrateSpec::Study(RabitStage::Modified) => "study:modified".to_string(),
            SubstrateSpec::Study(RabitStage::ModifiedWithSimulator) => {
                "study:modified+sim".to_string()
            }
            SubstrateSpec::Stage(stage) => format!("stage:{}", stage.name().to_lowercase()),
        }
    }

    /// Parses the canonical string form.
    ///
    /// # Errors
    ///
    /// Returns a decode error for an unrecognized spec string.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        match text {
            "study:baseline" => Ok(SubstrateSpec::Study(RabitStage::Baseline)),
            "study:modified" => Ok(SubstrateSpec::Study(RabitStage::Modified)),
            "study:modified+sim" => Ok(SubstrateSpec::Study(RabitStage::ModifiedWithSimulator)),
            "stage:simulator" => Ok(SubstrateSpec::Stage(Stage::Simulator)),
            "stage:testbed" => Ok(SubstrateSpec::Stage(Stage::Testbed)),
            "stage:production" => Ok(SubstrateSpec::Stage(Stage::Production)),
            other => Err(JsonError::decode(format!(
                "unknown substrate spec '{other}'"
            ))),
        }
    }

    /// Builds a fresh substrate profile for one trial.
    pub fn build(&self) -> TestbedSubstrate {
        match self {
            SubstrateSpec::Study(config) => TestbedSubstrate::study(*config),
            SubstrateSpec::Stage(stage) => TestbedSubstrate::for_stage(*stage),
        }
    }
}

/// A fault axis entry: which parametric fault family (if any) a trial
/// runs under. The family's [`FaultPlan`] is derived from the *trial
/// seed*, so the injections are a function of the plan alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultVariant {
    /// No injected faults.
    None,
    /// One of `rabit_buginject::fault_families` by name
    /// (`drop_command`, `stale_state`, …).
    Family(String),
}

impl FaultVariant {
    /// The canonical string form (`none` or `fault:<family>`).
    pub fn as_str(&self) -> String {
        match self {
            FaultVariant::None => "none".to_string(),
            FaultVariant::Family(name) => format!("fault:{name}"),
        }
    }

    /// Parses the canonical string form.
    ///
    /// # Errors
    ///
    /// Returns a decode error for an unrecognized spec string.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        match text {
            "none" => Ok(FaultVariant::None),
            other => match other.strip_prefix("fault:") {
                Some(name) if !name.is_empty() => Ok(FaultVariant::Family(name.to_string())),
                _ => Err(JsonError::decode(format!("unknown fault variant '{text}'"))),
            },
        }
    }

    /// Builds the trial's fault plan from the trial seed (`None` for
    /// the fault-free variant).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::UnknownFaultFamily`] for a family name the
    /// fault runtime does not define.
    pub fn build(&self, trial_seed: u64) -> Result<Option<FaultPlan>, PlanError> {
        match self {
            FaultVariant::None => Ok(None),
            FaultVariant::Family(name) => rabit_buginject::fault_families(trial_seed)
                .into_iter()
                .find(|(family, _)| family == name)
                .map(|(_, plan)| Some(plan))
                .ok_or_else(|| PlanError::UnknownFaultFamily(name.clone())),
        }
    }
}

/// Whether a trial runs guarded (checked by RABIT) or pass-through
/// (the unguarded baseline the damage oracle scores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Every command is checked by a fresh RABIT engine.
    Guarded,
    /// Commands flow straight to the lab (damage-risk measurements).
    Unguarded,
}

impl ExecMode {
    /// The canonical string form.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExecMode::Guarded => "guarded",
            ExecMode::Unguarded => "unguarded",
        }
    }

    /// Parses the canonical string form.
    ///
    /// # Errors
    ///
    /// Returns a decode error for an unrecognized mode string.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        match text {
            "guarded" => Ok(ExecMode::Guarded),
            "unguarded" => Ok(ExecMode::Unguarded),
            other => Err(JsonError::decode(format!("unknown exec mode '{other}'"))),
        }
    }

    /// Whether this mode attaches a RABIT engine.
    pub fn guarded(&self) -> bool {
        matches!(self, ExecMode::Guarded)
    }
}

/// A plan that cannot be materialized into a runnable trial matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// A bug id absent from the 16-bug catalog.
    UnknownBug(String),
    /// A fault family the fault runtime does not define.
    UnknownFaultFamily(String),
    /// An empty axis (a cartesian product over nothing is no campaign).
    EmptyAxis(&'static str),
    /// `replicates` was zero.
    ZeroReplicates,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownBug(id) => write!(f, "unknown bug id '{id}' in plan"),
            PlanError::UnknownFaultFamily(name) => {
                write!(f, "unknown fault family '{name}' in plan")
            }
            PlanError::EmptyAxis(axis) => write!(f, "plan axis '{axis}' is empty"),
            PlanError::ZeroReplicates => f.write_str("plan replicates must be >= 1"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A declarative campaign: the named axes whose cartesian product is
/// the trial matrix. Serializable ([`ToJson`]/[`FromJson`]) so a plan
/// can live next to its artifacts and be replayed bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    name: String,
    seed: u64,
    workflows: Vec<WorkflowSpec>,
    substrates: Vec<SubstrateSpec>,
    faults: Vec<FaultVariant>,
    modes: Vec<ExecMode>,
    replicates: usize,
    skip: Vec<String>,
}

impl CampaignPlan {
    /// An empty plan with defaults: no fault variants beyond
    /// [`FaultVariant::None`], guarded execution, one replicate.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        CampaignPlan {
            name: name.into(),
            seed,
            workflows: Vec::new(),
            substrates: Vec::new(),
            faults: vec![FaultVariant::None],
            modes: vec![ExecMode::Guarded],
            replicates: 1,
            skip: Vec::new(),
        }
    }

    /// Appends a workflow axis entry (builder style).
    pub fn with_workflow(mut self, spec: WorkflowSpec) -> Self {
        self.workflows.push(spec);
        self
    }

    /// Appends every catalogued bug as a workflow axis entry.
    pub fn with_bug_catalog(mut self) -> Self {
        for bug in catalog() {
            self.workflows.push(WorkflowSpec::Bug(bug.id.to_string()));
        }
        self
    }

    /// Appends a substrate axis entry. The first substrate pushed is
    /// the plan's baseline row; later ones are variants.
    pub fn with_substrate(mut self, spec: SubstrateSpec) -> Self {
        self.substrates.push(spec);
        self
    }

    /// Replaces the fault axis (defaults to `[FaultVariant::None]`).
    pub fn with_faults(mut self, faults: Vec<FaultVariant>) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the execution-mode axis (defaults to `[Guarded]`).
    pub fn with_modes(mut self, modes: Vec<ExecMode>) -> Self {
        self.modes = modes;
        self
    }

    /// Sets the number of seeded replicates per combination.
    pub fn with_replicates(mut self, replicates: usize) -> Self {
        self.replicates = replicates;
        self
    }

    /// Marks a combination key (see [`Trial::key`]) as skipped: the
    /// trial is materialized and persisted with status `skipped`, but
    /// never executed.
    pub fn with_skip(mut self, key: impl Into<String>) -> Self {
        self.skip.push(key.into());
        self
    }

    /// The plan's name (becomes the artifact's `name`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The plan's root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The baseline substrate (the first pushed), if any.
    pub fn baseline(&self) -> Option<&SubstrateSpec> {
        self.substrates.first()
    }

    /// The substrate axis, baseline first.
    pub fn substrates(&self) -> &[SubstrateSpec] {
        &self.substrates
    }

    /// The workflow axis.
    pub fn workflows(&self) -> &[WorkflowSpec] {
        &self.workflows
    }

    /// The FNV-1a fingerprint of the serialized plan, as fixed-width
    /// hex. State files and the run manifest carry it so a state
    /// directory can never be resumed under a different plan.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a(self.to_json().to_compact().as_bytes()))
    }

    /// Materializes the trial matrix: the cartesian product
    /// workflows × substrates × faults × modes × replicates, in that
    /// nesting order, with per-trial seeds derived from
    /// `(plan seed, trial index)`.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] for empty axes, zero replicates, unknown
    /// bug ids, or unknown fault families — every spec is resolved here
    /// so a plan that materializes is a plan that runs.
    pub fn materialize(&self) -> Result<Vec<Trial>, PlanError> {
        if self.workflows.is_empty() {
            return Err(PlanError::EmptyAxis("workflows"));
        }
        if self.substrates.is_empty() {
            return Err(PlanError::EmptyAxis("substrates"));
        }
        if self.faults.is_empty() {
            return Err(PlanError::EmptyAxis("faults"));
        }
        if self.modes.is_empty() {
            return Err(PlanError::EmptyAxis("modes"));
        }
        if self.replicates == 0 {
            return Err(PlanError::ZeroReplicates);
        }
        // Resolve every spec up front so errors surface before any
        // trial executes.
        for wf in &self.workflows {
            wf.build().map(|_| ())?;
        }
        for fault in &self.faults {
            fault.build(0).map(|_| ())?;
        }

        let mut trials = Vec::new();
        let mut index = 0usize;
        for workflow in &self.workflows {
            for substrate in &self.substrates {
                for fault in &self.faults {
                    for mode in &self.modes {
                        for replicate in 0..self.replicates {
                            let key = trial_key(workflow, substrate, fault, mode, replicate);
                            trials.push(Trial {
                                index,
                                id: trial_id(index, &key),
                                seed: derive_seed(self.seed, index as u64),
                                workflow: workflow.clone(),
                                substrate: *substrate,
                                fault: fault.clone(),
                                mode: *mode,
                                replicate,
                                skipped: self.skip.contains(&key),
                            });
                            index += 1;
                        }
                    }
                }
            }
        }
        Ok(trials)
    }
}

impl ToJson for CampaignPlan {
    fn to_json(&self) -> Json {
        let strings = |items: Vec<String>| Json::Arr(items.into_iter().map(Json::Str).collect());
        Json::obj([
            ("schema", Json::Str(PLAN_SCHEMA.to_string())),
            ("name", Json::Str(self.name.clone())),
            ("seed", Json::Num(self.seed as f64)),
            (
                "workflows",
                strings(self.workflows.iter().map(WorkflowSpec::as_str).collect()),
            ),
            (
                "substrates",
                strings(self.substrates.iter().map(SubstrateSpec::as_str).collect()),
            ),
            (
                "faults",
                strings(self.faults.iter().map(FaultVariant::as_str).collect()),
            ),
            (
                "modes",
                strings(self.modes.iter().map(|m| m.as_str().to_string()).collect()),
            ),
            ("replicates", Json::Num(self.replicates as f64)),
            ("skip", strings(self.skip.clone())),
        ])
    }
}

impl FromJson for CampaignPlan {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let schema: String = field(json, "schema")?;
        if schema != PLAN_SCHEMA {
            return Err(JsonError::decode(format!(
                "unsupported plan schema '{schema}' (expected '{PLAN_SCHEMA}')"
            )));
        }
        fn specs<T>(
            json: &Json,
            key: &str,
            parse: impl Fn(&str) -> Result<T, JsonError>,
        ) -> Result<Vec<T>, JsonError> {
            field::<Vec<String>>(json, key)?
                .iter()
                .map(|s| parse(s))
                .collect()
        }
        Ok(CampaignPlan {
            name: field(json, "name")?,
            seed: field(json, "seed")?,
            workflows: specs(json, "workflows", WorkflowSpec::parse)?,
            substrates: specs(json, "substrates", SubstrateSpec::parse)?,
            faults: specs(json, "faults", FaultVariant::parse)?,
            modes: specs(json, "modes", ExecMode::parse)?,
            replicates: field(json, "replicates")?,
            skip: field_or_default(json, "skip")?,
        })
    }
}

/// One materialized trial: a point of the plan's cartesian product,
/// with a stable id and a plan-derived seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Position in the matrix (state vectors and artifacts are keyed by
    /// it).
    pub index: usize,
    /// Filesystem-safe stable id, e.g.
    /// `t0007-bug-bug_a_door_not_reopened-study-baseline-none-guarded-r0`.
    pub id: String,
    /// The trial's seed, derived from `(plan seed, index)` by a
    /// SplitMix64 finalizer — a pure function of the plan.
    pub seed: u64,
    /// The workflow axis value.
    pub workflow: WorkflowSpec,
    /// The substrate axis value.
    pub substrate: SubstrateSpec,
    /// The fault axis value.
    pub fault: FaultVariant,
    /// The execution-mode axis value.
    pub mode: ExecMode,
    /// The replicate number within the combination (0-based).
    pub replicate: usize,
    /// Whether the plan's skip list excludes this trial from execution.
    pub skipped: bool,
}

impl Trial {
    /// The trial's combination key — the index-free identity used by
    /// plan skip lists: `workflow|substrate|fault|mode|rN`.
    pub fn key(&self) -> String {
        trial_key(
            &self.workflow,
            &self.substrate,
            &self.fault,
            &self.mode,
            self.replicate,
        )
    }
}

fn trial_key(
    workflow: &WorkflowSpec,
    substrate: &SubstrateSpec,
    fault: &FaultVariant,
    mode: &ExecMode,
    replicate: usize,
) -> String {
    format!(
        "{}|{}|{}|{}|r{}",
        workflow.as_str(),
        substrate.as_str(),
        fault.as_str(),
        mode.as_str(),
        replicate
    )
}

fn trial_id(index: usize, key: &str) -> String {
    let slug: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    format!("t{index:04}-{slug}")
}

/// Derives a trial seed from the plan seed and the trial's matrix
/// index (SplitMix64 finalizer — the same mixing `FaultPlan::for_run`
/// uses, so trial seeds are well-distributed even for seed 0).
pub fn derive_seed(plan_seed: u64, index: u64) -> u64 {
    let mut z = plan_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan() -> CampaignPlan {
        CampaignPlan::new("unit", 7)
            .with_workflow(WorkflowSpec::Fig5Safe)
            .with_workflow(WorkflowSpec::Bug("bug_a_door_not_reopened".into()))
            .with_substrate(SubstrateSpec::Study(RabitStage::Baseline))
            .with_substrate(SubstrateSpec::Study(RabitStage::Modified))
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = small_plan()
            .with_faults(vec![
                FaultVariant::None,
                FaultVariant::Family("drop_command".into()),
            ])
            .with_modes(vec![ExecMode::Guarded, ExecMode::Unguarded])
            .with_replicates(3)
            .with_skip("fig5_safe|study:baseline|none|guarded|r0");
        let json = plan.to_json();
        let back = CampaignPlan::from_json(&json).expect("plan decodes");
        assert_eq!(back, plan);
        assert_eq!(back.fingerprint(), plan.fingerprint());
    }

    #[test]
    fn materialization_is_the_cartesian_product_in_order() {
        let trials = small_plan().materialize().expect("valid plan");
        assert_eq!(trials.len(), 4);
        assert_eq!(trials[0].workflow, WorkflowSpec::Fig5Safe);
        assert_eq!(
            trials[0].substrate,
            SubstrateSpec::Study(RabitStage::Baseline)
        );
        assert_eq!(
            trials[1].substrate,
            SubstrateSpec::Study(RabitStage::Modified)
        );
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.index, i);
            assert!(t.id.starts_with(&format!("t{i:04}-")));
        }
    }

    #[test]
    fn seeds_are_plan_derived_and_distinct() {
        let trials = small_plan().materialize().unwrap();
        let again = small_plan().materialize().unwrap();
        for (a, b) in trials.iter().zip(&again) {
            assert_eq!(a.seed, b.seed, "seeds are a pure function of the plan");
        }
        let mut seeds: Vec<u64> = trials.iter().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), trials.len(), "per-trial seeds are distinct");
        // A different plan seed moves every trial seed.
        let other = CampaignPlan::new("unit", 8)
            .with_workflow(WorkflowSpec::Fig5Safe)
            .with_substrate(SubstrateSpec::Study(RabitStage::Baseline))
            .materialize()
            .unwrap();
        assert_ne!(other[0].seed, trials[0].seed);
    }

    #[test]
    fn unknown_specs_fail_at_materialization() {
        let bad_bug = CampaignPlan::new("x", 1)
            .with_workflow(WorkflowSpec::Bug("no_such_bug".into()))
            .with_substrate(SubstrateSpec::Stage(Stage::Testbed));
        assert_eq!(
            bad_bug.materialize(),
            Err(PlanError::UnknownBug("no_such_bug".into()))
        );
        let bad_fault = CampaignPlan::new("x", 1)
            .with_workflow(WorkflowSpec::Fig5Safe)
            .with_substrate(SubstrateSpec::Stage(Stage::Testbed))
            .with_faults(vec![FaultVariant::Family("gamma_rays".into())]);
        assert_eq!(
            bad_fault.materialize(),
            Err(PlanError::UnknownFaultFamily("gamma_rays".into()))
        );
        let empty = CampaignPlan::new("x", 1);
        assert_eq!(empty.materialize(), Err(PlanError::EmptyAxis("workflows")));
    }

    #[test]
    fn skip_list_matches_by_combination_key() {
        let trials = small_plan()
            .with_skip("bug:bug_a_door_not_reopened|study:modified|none|guarded|r0")
            .materialize()
            .unwrap();
        let skipped: Vec<&Trial> = trials.iter().filter(|t| t.skipped).collect();
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].index, 3);
        assert_eq!(skipped[0].key(), trials[3].key());
    }

    #[test]
    fn spec_strings_round_trip() {
        for spec in [
            WorkflowSpec::Fig5Safe,
            WorkflowSpec::DeviceTour,
            WorkflowSpec::Placement,
            WorkflowSpec::Bug("held_vial_low".into()),
        ] {
            assert_eq!(WorkflowSpec::parse(&spec.as_str()).unwrap(), spec);
        }
        for spec in [
            SubstrateSpec::Study(RabitStage::ModifiedWithSimulator),
            SubstrateSpec::Stage(Stage::Production),
        ] {
            assert_eq!(SubstrateSpec::parse(&spec.as_str()).unwrap(), spec);
        }
        assert!(WorkflowSpec::parse("bug:").is_err());
        assert!(SubstrateSpec::parse("study:quantum").is_err());
        assert!(FaultVariant::parse("fault:").is_err());
        assert!(ExecMode::parse("observed").is_err());
    }

    #[test]
    fn placement_workflow_targets_the_probe_point() {
        let wf = WorkflowSpec::Placement.build().unwrap();
        assert_eq!(wf.len(), 1);
        assert_eq!(wf.name(), "placement");
    }
}
