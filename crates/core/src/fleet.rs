//! A deterministic work-stealing executor for fleets of independent runs.
//!
//! Self-driving-lab studies replay the same workflow library against many
//! virtual labs (the uncontrolled study alone re-runs 16 bugs × 3 RABIT
//! configurations). Each run is independent and CPU-bound, so a worker
//! pool parallelises them — but the results must not depend on thread
//! scheduling: a fleet sweep at 8 threads has to report byte-identical
//! alerts to the serial sweep, or the study is not reproducible.
//!
//! [`run_indexed`] guarantees that by construction: jobs are identified
//! by index, each job function sees only its index (no shared mutable
//! state), and results land in an index-keyed slot vector. Scheduling
//! affects *when* a job runs, never *what* it computes or *where* its
//! result goes.
//!
//! Work distribution is a work-stealing job queue over
//! `std::thread::scope`: jobs are dealt round-robin into per-worker
//! deques; a worker drains its own deque from the front and, when empty,
//! steals from the back of its neighbours'. Long-running jobs therefore
//! do not strand work behind them.
//!
//! # Example
//!
//! ```
//! use rabit_core::fleet::run_indexed;
//!
//! let squares = run_indexed(8, 4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

/// Per-worker job deques with stealing. Indices are dealt round-robin at
/// construction; `pop` takes from the owner's front, then steals from
/// other queues' backs.
struct StealQueue {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueue {
    fn new(n_jobs: usize, n_workers: usize) -> Self {
        let mut queues: Vec<VecDeque<usize>> = (0..n_workers).map(|_| VecDeque::new()).collect();
        for job in 0..n_jobs {
            queues[job % n_workers].push_back(job);
        }
        StealQueue {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The next job for `worker`, or `None` when every queue is empty.
    fn pop(&self, worker: usize) -> Option<usize> {
        let n = self.queues.len();
        // Own queue first (front: the jobs dealt to this worker, in order).
        if let Some(job) = self.queues[worker]
            .lock()
            .expect("queue poisoned")
            .pop_front()
        {
            return Some(job);
        }
        // Steal from the back of the other queues, scanning round-robin
        // from our right-hand neighbour.
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(job) = self.queues[victim]
                .lock()
                .expect("queue poisoned")
                .pop_back()
            {
                return Some(job);
            }
        }
        None
    }
}

/// Runs `n_jobs` independent jobs on `threads` workers and returns their
/// results in job order.
///
/// `job(i)` is called exactly once for every `i in 0..n_jobs`, from some
/// worker thread. Results are keyed by index, so the returned vector is
/// identical for every `threads >= 1` as long as `job` itself is
/// deterministic and does not touch shared mutable state.
///
/// `threads == 0` is treated as 1; `threads` is capped at `n_jobs`.
///
/// # Panics
///
/// Propagates the first panic of any job after all workers have stopped.
pub fn run_indexed<R, F>(n_jobs: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(n_jobs.max(1));
    let slots: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();

    if threads == 1 {
        // Serial fast path — no scope, no queue contention.
        for (i, slot) in slots.iter().enumerate() {
            *slot.lock().expect("slot poisoned") = Some(job(i));
        }
    } else {
        let queue = StealQueue::new(n_jobs, threads);
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let queue = &queue;
                let slots = &slots;
                let job = &job;
                scope.spawn(move || {
                    while let Some(i) = queue.pop(worker) {
                        let result = job(i);
                        *slots[i].lock().expect("slot poisoned") = Some(result);
                    }
                });
            }
        });
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every job index was scheduled exactly once")
        })
        .collect()
}

/// Maps `items` through `job` on a worker pool, preserving input order.
///
/// Convenience wrapper over [`run_indexed`] for owned inputs.
pub fn map_indexed<T, R, F>(items: Vec<T>, threads: usize, job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let items = &items;
    run_indexed(items.len(), threads, move |i| job(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_fleet_is_fine() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_means_serial() {
        assert_eq!(run_indexed(3, 0, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_indexed(100, 8, |i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn results_are_index_ordered_for_any_thread_count() {
        let expected: Vec<usize> = (0..53).map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                run_indexed(53, threads, |i| i * 7 + 1),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn uneven_job_durations_still_deterministic() {
        // Early jobs sleep; stealing redistributes, results stay ordered.
        let out = run_indexed(16, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn map_indexed_borrows_items() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = map_indexed(words, 2, |i, w| (i, w.len()));
        assert_eq!(lens, vec![(0, 1), (1, 2), (2, 3)]);
    }
}
