//! The RABIT core engine.
//!
//! This crate implements the execution algorithm of the paper's Fig. 2:
//! intercept each command, check its preconditions against the rulebase
//! (and, when a simulator is attached, its trajectory), execute it, and
//! verify the resulting device states against the postconditions.
//!
//! * [`Rabit`] — the engine (`Valid`, `ValidTrajectory`, `UpdateState`,
//!   `FetchState`, `alertAndStop`);
//! * [`Lab`] / [`LabDevice`] — the environment: devices, cross-device
//!   physics, virtual time, and the ground-truth [`DamageEvent`] oracle;
//! * [`Alert`] — the three `alertAndStop` variants plus device faults;
//! * [`TrajectoryValidator`] — the hook the Extended Simulator plugs into;
//! * [`SimClock`] — deterministic virtual lab time;
//! * [`fleet`] — a deterministic work-stealing executor for running many
//!   independent labs in parallel;
//! * [`substrate`] — the three-stage deployment pipeline as a typed API:
//!   [`Substrate`] backends, the [`Stage`] enum, and the gating
//!   [`StagePipeline`].
//!
//! # Example
//!
//! ```
//! use rabit_core::{Lab, Rabit, RabitConfig};
//! use rabit_devices::{ActionKind, Command, DeviceType, DosingDevice, RobotArm};
//! use rabit_geometry::{Aabb, Vec3};
//! use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rulebase};
//!
//! let mut lab = Lab::new()
//!     .with_device(RobotArm::new("arm", Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, 0.0, 0.2)))
//!     .with_device(DosingDevice::new("doser", Aabb::new(Vec3::ZERO, Vec3::new(0.2, 0.2, 0.3))));
//! let catalog = DeviceCatalog::new()
//!     .with(DeviceMeta::new("arm", DeviceType::RobotArm))
//!     .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door());
//! let mut rabit = Rabit::new(Rulebase::standard(), catalog, RabitConfig::default());
//! rabit.initialize(&mut lab);
//! let report = rabit.run(
//!     &mut lab,
//!     &[Command::new("doser", ActionKind::SetDoor { open: true })],
//! );
//! assert!(report.completed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alert;
mod builder;
mod clock;
mod damage;
mod engine;
pub mod faults;
pub mod fleet;
mod lab;
pub mod substrate;
mod trajcheck;

pub use alert::{Alert, StopPolicy};
pub use builder::RabitBuilder;
pub use clock::SimClock;
pub use damage::{DamageEvent, DamageKind, Severity};
pub use engine::{Rabit, RabitConfig, RunReport, StepOutcome};
pub use faults::{
    FaultKind, FaultPlan, FaultSchedule, FaultSession, FaultSpec, FaultStats, RecoveryCounters,
    RecoveryPolicy, RetryPolicy,
};
pub use lab::{ArmKinematics, Lab, LabDevice, LabError};
pub use substrate::{PipelineReport, Stage, StagePipeline, StageReport, Substrate};
pub use trajcheck::{
    ApproveAll, CollisionReport, SweepStats, TrajectoryValidator, TrajectoryVerdict,
};
