//! Experiment workflows: the command sequences that Python experiment
//! scripts produce.
//!
//! A [`Workflow`] corresponds to one run of a script like Fig. 1(b)'s
//! automated solubility measurement or Fig. 5's testbed workflow. The
//! builder methods mirror the Hein Lab's Python wrapper API
//! (`open_door()`, `pick_up_vial()`, `go_to_home_pose()`, …), and the
//! editing methods (`delete`, `insert`, `replace`, `swap`) are the
//! mutation operators of the uncontrolled bug study: the "naive
//! programmer" could "change the arguments of commands, delete commands,
//! or change the order of commands" (§IV).

use rabit_devices::{ActionKind, Command, DeviceId, Substance};
use rabit_geometry::Vec3;

/// A named, ordered sequence of commands.
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    name: String,
    commands: Vec<Command>,
}

impl Workflow {
    /// Creates an empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Workflow {
            name: name.into(),
            commands: Vec::new(),
        }
    }

    /// The workflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The command sequence.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Returns `true` if the workflow has no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Appends a raw command.
    pub fn push(&mut self, command: Command) -> &mut Self {
        self.commands.push(command);
        self
    }

    /// Appends a raw command (builder style).
    pub fn then(mut self, command: Command) -> Self {
        self.commands.push(command);
        self
    }

    // ----- Python-wrapper-style builders -----

    /// `device.set_door("state", "open"/"closed")`.
    pub fn set_door(mut self, device: impl Into<DeviceId>, open: bool) -> Self {
        self.commands
            .push(Command::new(device, ActionKind::SetDoor { open }));
        self
    }

    /// `arm.move_to_location(loc)`.
    pub fn move_to(mut self, arm: impl Into<DeviceId>, target: Vec3) -> Self {
        self.commands
            .push(Command::new(arm, ActionKind::MoveToLocation { target }));
        self
    }

    /// `arm.go_to_home_pose()`.
    pub fn go_home(mut self, arm: impl Into<DeviceId>) -> Self {
        self.commands.push(Command::new(arm, ActionKind::MoveHome));
        self
    }

    /// `arm.go_to_sleep_pose()`.
    pub fn go_to_sleep(mut self, arm: impl Into<DeviceId>) -> Self {
        self.commands
            .push(Command::new(arm, ActionKind::MoveToSleep));
        self
    }

    /// `arm.move_inside(device)`.
    pub fn move_inside(mut self, arm: impl Into<DeviceId>, device: impl Into<DeviceId>) -> Self {
        self.commands.push(Command::new(
            arm,
            ActionKind::MoveInsideDevice {
                device: device.into(),
            },
        ));
        self
    }

    /// Retract the arm from the device it is inside.
    pub fn move_out(mut self, arm: impl Into<DeviceId>) -> Self {
        self.commands
            .push(Command::new(arm, ActionKind::MoveOutOfDevice));
        self
    }

    /// `x_pick_up_object(arm, loc, vial)`: move to the object and grasp it.
    pub fn pick_up(
        mut self,
        arm: impl Into<DeviceId>,
        object: impl Into<DeviceId>,
        at: Vec3,
    ) -> Self {
        let arm = arm.into();
        self.commands.push(Command::new(
            arm.clone(),
            ActionKind::MoveToLocation { target: at },
        ));
        self.commands.push(Command::new(
            arm,
            ActionKind::PickObject {
                object: object.into(),
            },
        ));
        self
    }

    /// `x_place_object(arm, loc, vial)`: move to the location and release.
    pub fn place_at(
        mut self,
        arm: impl Into<DeviceId>,
        object: impl Into<DeviceId>,
        at: Vec3,
    ) -> Self {
        let arm = arm.into();
        self.commands.push(Command::new(
            arm.clone(),
            ActionKind::MoveToLocation { target: at },
        ));
        self.commands.push(Command::new(
            arm,
            ActionKind::PlaceObject {
                object: object.into(),
                into: None,
            },
        ));
        self
    }

    /// Place the held object into a device (doser, centrifuge, …).
    pub fn place_into(
        mut self,
        arm: impl Into<DeviceId>,
        object: impl Into<DeviceId>,
        device: impl Into<DeviceId>,
        approach: Vec3,
    ) -> Self {
        let arm = arm.into();
        self.commands.push(Command::new(
            arm.clone(),
            ActionKind::MoveToLocation { target: approach },
        ));
        self.commands.push(Command::new(
            arm,
            ActionKind::PlaceObject {
                object: object.into(),
                into: Some(device.into()),
            },
        ));
        self
    }

    /// `dosing_device.doseSolid(amount)`.
    pub fn dose_solid(
        mut self,
        doser: impl Into<DeviceId>,
        amount_mg: f64,
        into: impl Into<DeviceId>,
    ) -> Self {
        self.commands.push(Command::new(
            doser,
            ActionKind::DoseSolid {
                amount_mg,
                into: into.into(),
            },
        ));
        self
    }

    /// `syringe_pump.doseSolvent(volume)`.
    pub fn dose_liquid(
        mut self,
        pump: impl Into<DeviceId>,
        volume_ml: f64,
        into: impl Into<DeviceId>,
    ) -> Self {
        self.commands.push(Command::new(
            pump,
            ActionKind::DoseLiquid {
                volume_ml,
                into: into.into(),
            },
        ));
        self
    }

    /// `hotplate.stirSolution(temperature)` / `device.run_action(...)`.
    pub fn start_action(mut self, device: impl Into<DeviceId>, value: f64) -> Self {
        self.commands
            .push(Command::new(device, ActionKind::StartAction { value }));
        self
    }

    /// `device.stop_action()`.
    pub fn stop_action(mut self, device: impl Into<DeviceId>) -> Self {
        self.commands
            .push(Command::new(device, ActionKind::StopAction));
        self
    }

    /// `vial.decap_vial()`.
    pub fn decap(mut self, vial: impl Into<DeviceId>) -> Self {
        self.commands.push(Command::new(vial, ActionKind::Decap));
        self
    }

    /// `vial.cap_vial()`.
    pub fn cap(mut self, vial: impl Into<DeviceId>) -> Self {
        self.commands.push(Command::new(vial, ActionKind::Cap));
        self
    }

    /// Transfer between containers.
    pub fn transfer(
        mut self,
        from: impl Into<DeviceId>,
        to: impl Into<DeviceId>,
        substance: Substance,
        amount: f64,
    ) -> Self {
        let from = from.into();
        self.commands.push(Command::new(
            from.clone(),
            ActionKind::Transfer {
                from,
                to: to.into(),
                substance,
                amount,
            },
        ));
        self
    }

    // ----- Mutation operators (the naive programmer's edit classes) -----

    /// Deletes the command at `index` (e.g. omitting the `open_door()`
    /// call — Bug A).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn delete(&mut self, index: usize) -> Command {
        self.commands.remove(index)
    }

    /// Inserts a command at `index` (e.g. adding the stray `move_pose` —
    /// Bug B).
    ///
    /// # Panics
    ///
    /// Panics if `index > len`.
    pub fn insert(&mut self, index: usize, command: Command) {
        self.commands.insert(index, command);
    }

    /// Replaces the command at `index` (e.g. changing a coordinate —
    /// Bug D), returning the old command.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn replace(&mut self, index: usize, command: Command) -> Command {
        std::mem::replace(&mut self.commands[index], command)
    }

    /// Swaps two commands (reordering).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.commands.swap(a, b);
    }

    /// Finds the index of the first command whose display form contains
    /// `needle` — convenient for targeting mutations at named steps.
    pub fn find(&self, needle: &str) -> Option<usize> {
        self.commands
            .iter()
            .position(|c| c.to_string().contains(needle))
    }

    /// Renames the workflow (mutated variants get suffixed names).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl IntoIterator for Workflow {
    type Item = Command;
    type IntoIter = std::vec::IntoIter<Command>;

    fn into_iter(self) -> Self::IntoIter {
        self.commands.into_iter()
    }
}

impl<'a> IntoIterator for &'a Workflow {
    type Item = &'a Command;
    type IntoIter = std::slice::Iter<'a, Command>;

    fn into_iter(self) -> Self::IntoIter {
        self.commands.iter()
    }
}

impl rabit_util::ToJson for Workflow {
    fn to_json(&self) -> rabit_util::Json {
        rabit_util::Json::obj([
            ("name", rabit_util::Json::Str(self.name.clone())),
            ("commands", rabit_util::ToJson::to_json(&self.commands)),
        ])
    }
}

impl rabit_util::FromJson for Workflow {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        Ok(Workflow {
            name: rabit_util::json::field(json, "name")?,
            commands: rabit_util::json::field(json, "commands")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workflow {
        Workflow::new("demo")
            .set_door("doser", true)
            .decap("vial")
            .go_home("viperx")
            .pick_up("viperx", "vial", Vec3::new(0.537, 0.018, 0.12))
            .place_into("viperx", "vial", "doser", Vec3::new(0.15, 0.45, 0.19))
            .set_door("doser", false)
            .start_action("doser", 5.0)
            .stop_action("doser")
            .set_door("doser", true)
    }

    #[test]
    fn builders_produce_expected_sequence() {
        let wf = sample();
        assert_eq!(wf.name(), "demo");
        assert_eq!(wf.len(), 11); // pick_up and place_into are 2 each
        assert_eq!(wf.commands()[0].to_string(), "doser.open_door");
        assert!(wf.commands()[4].to_string().contains("pick_object"));
        assert!(!wf.is_empty());
    }

    #[test]
    fn find_locates_commands() {
        let wf = sample();
        assert_eq!(wf.find("open_door"), Some(0));
        assert!(wf.find("pick_object").is_some());
        assert_eq!(wf.find("no_such_thing"), None);
    }

    #[test]
    fn delete_mutation_bug_a() {
        // Bug A: omit re-opening the door before retrieving the vial.
        let mut wf = sample();
        let last_open = wf.len() - 1;
        let removed = wf.delete(last_open);
        assert_eq!(removed.to_string(), "doser.open_door");
        assert_eq!(wf.len(), 10);
    }

    #[test]
    fn insert_mutation_bug_b() {
        let mut wf = sample();
        wf.insert(
            3,
            Command::new(
                "ned2",
                ActionKind::MoveToLocation {
                    target: Vec3::new(0.443, -0.010, 0.292),
                },
            ),
        );
        assert_eq!(wf.len(), 12);
        assert!(wf.commands()[3].to_string().contains("ned2"));
    }

    #[test]
    fn replace_and_swap() {
        let mut wf = sample();
        let old = wf.replace(
            0,
            Command::new("doser", ActionKind::SetDoor { open: false }),
        );
        assert_eq!(old.to_string(), "doser.open_door");
        assert_eq!(wf.commands()[0].to_string(), "doser.close_door");
        wf.swap(0, 1);
        assert_eq!(wf.commands()[1].to_string(), "doser.close_door");
    }

    #[test]
    fn iteration_and_json() {
        use rabit_util::{FromJson, Json, ToJson};
        let wf = sample();
        let n = (&wf).into_iter().count();
        assert_eq!(n, wf.len());
        let json = wf.to_json().to_compact();
        let back = Workflow::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, wf);
        let owned: Vec<Command> = wf.clone().into_iter().collect();
        assert_eq!(owned.len(), 11);
        assert_eq!(wf.renamed("demo2").name(), "demo2");
    }

    #[test]
    fn transfer_and_liquid_builders() {
        let wf = Workflow::new("t")
            .dose_liquid("pump", 2.0, "vial")
            .transfer("vial", "vial2", Substance::Liquid, 1.0)
            .cap("vial")
            .move_inside("viperx", "doser")
            .move_out("viperx")
            .go_to_sleep("viperx")
            .move_to("viperx", Vec3::new(0.2, 0.0, 0.3));
        assert_eq!(wf.len(), 7);
        assert!(wf.commands()[1].to_string().contains("transfer"));
    }
}
