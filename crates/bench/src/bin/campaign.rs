//! Campaign-runner benchmark: throughput, resume overhead, and state
//! persistence cost of the resumable trial matrix.
//!
//! Runs the 48-trial detection-matrix plan (`--quick`: the 8-trial
//! quick matrix) three ways:
//!
//! 1. **full** — one uninterrupted invocation (trials/sec);
//! 2. **killed + resumed** — the same plan stopped after half the
//!    trials (the deterministic stand-in for a kill) and resumed, to
//!    measure the resume overhead and prove the merged artifact is
//!    byte-identical to the full run's;
//! 3. **warm resume** — re-invoking the completed directory, which must
//!    execute nothing (the pure state-scan cost).
//!
//! Writes `BENCH_campaign.json` with the `campaign` envelope kind, so
//! `bench_schema` validates the trial payload, not just the generic
//! envelope. Run with `cargo run --release -p rabit-bench --bin
//! campaign`; `--quick` runs the reduced matrix for CI smoke checks.

use rabit_campaign::{plans, CampaignRunner};
use rabit_util::Json;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rabit-bench-campaign-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn state_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir.join("trials")) {
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                total += meta.len();
            }
        }
    }
    total
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = 4;
    let plan = if quick {
        plans::quick_matrix_plan()
    } else {
        plans::detection_matrix_plan()
    };
    let n = plan
        .materialize()
        .expect("predefined plan materializes")
        .len();
    println!(
        "campaign bench — plan '{}', {n} trials, {threads} threads{}",
        plan.name(),
        if quick { " (quick)" } else { "" }
    );

    // 1. Uninterrupted run.
    let full_dir = temp_dir("full");
    let full = CampaignRunner::new(plan.clone(), &full_dir).expect("plan materializes");
    let t0 = Instant::now();
    let summary = full.run(threads, None).expect("full run completes");
    let full_s = t0.elapsed().as_secs_f64();
    assert!(summary.complete());
    let full_artifact = full.artifact().expect("artifact written").to_pretty();
    let bytes = state_bytes(&full_dir);

    // 2. Killed after half the matrix, then resumed.
    let resume_dir = temp_dir("resume");
    let interrupted = CampaignRunner::new(plan.clone(), &resume_dir).expect("plan materializes");
    let t0 = Instant::now();
    let first = interrupted
        .run(threads, Some(n / 2))
        .expect("interrupted run");
    let killed_s = t0.elapsed().as_secs_f64();
    assert_eq!(first.executed, n / 2);
    let t0 = Instant::now();
    let second = interrupted.run(threads, None).expect("resumed run");
    let resumed_s = t0.elapsed().as_secs_f64();
    assert!(second.complete());
    let resumed_artifact = interrupted
        .artifact()
        .expect("artifact written")
        .to_pretty();
    assert_eq!(
        full_artifact, resumed_artifact,
        "kill-and-resume must reproduce the artifact byte-for-byte"
    );

    // 3. Warm resume of a completed directory: pure scan, zero trials.
    let t0 = Instant::now();
    let warm = interrupted.run(threads, None).expect("warm resume");
    let warm_s = t0.elapsed().as_secs_f64();
    assert_eq!(warm.executed, 0, "completed campaign re-executes nothing");

    let trials_per_s = n as f64 / full_s;
    let resume_overhead_s = (killed_s + resumed_s) - full_s;
    let bytes_per_trial = bytes as f64 / n as f64;
    println!("  full run            {full_s:>8.3} s  ({trials_per_s:.1} trials/s)");
    println!("  killed @ {:<4}       {killed_s:>8.3} s", n / 2);
    println!("  resumed             {resumed_s:>8.3} s  (overhead {resume_overhead_s:+.3} s)");
    println!("  warm resume (scan)  {warm_s:>8.3} s");
    println!("  state files         {bytes} B total, {bytes_per_trial:.0} B/trial");
    println!("  artifacts           byte-identical: yes");

    // Merge the campaign payload with the perf numbers: the artifact's
    // results (summary + trials) stay intact so the `campaign` envelope
    // kind validates, and the measurements ride alongside.
    let artifact = Json::parse(&full_artifact).expect("artifact parses");
    let mut results = match artifact.get("results").cloned() {
        Some(Json::Obj(pairs)) => pairs,
        _ => unreachable!("campaign artifacts carry a results object"),
    };
    results.push((
        "perf".to_string(),
        Json::obj([
            ("trials_per_second", Json::Num(trials_per_s)),
            ("full_wall_s", Json::Num(full_s)),
            ("resume_overhead_s", Json::Num(resume_overhead_s)),
            ("warm_resume_s", Json::Num(warm_s)),
            ("state_bytes_per_trial", Json::Num(bytes_per_trial)),
            ("artifacts_identical", Json::Bool(true)),
        ]),
    ));
    let config = Json::obj([
        ("quick_mode", Json::Bool(quick)),
        ("threads", Json::Num(threads as f64)),
        ("trials", Json::Num(n as f64)),
        ("plan", Json::Str(plan.name().to_string())),
    ]);
    rabit_bench::schema::write_artifact_with_kind(
        "campaign",
        "campaign",
        config,
        Json::Obj(results),
    );

    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&resume_dir);
}
