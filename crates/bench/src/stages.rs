//! The Table I stage comparison, quantified.
//!
//! The paper's Table I rates the three stages qualitatively (speed of
//! exploration, device precision, accuracy of results, risk of damage).
//! This harness measures each dimension on the same reference workflow:
//!
//! * **speed** — commands per virtual second running the safe Fig. 5
//!   workflow with each stage's latency model;
//! * **precision** — the positional repeatability σ of the stage's arms;
//! * **accuracy** — timing fidelity relative to production (how closely
//!   the stage's per-command time matches the real lab's);
//! * **risk** — the damage cost incurred when the 16-bug suite runs
//!   *unguarded* in the stage, weighted by what the stage's equipment
//!   costs (virtual = free, cardboard mockups = cheap, lab = expensive).
//!
//! The [`Stage`] enum itself (and its latency/noise/cost profiles) lives
//! in `rabit_core::substrate`; this module re-exports it and measures the
//! deck through [`TestbedSubstrate`] stage profiles.

use rabit_buginject::catalog;
use rabit_core::{Severity, Substrate};
use rabit_devices::{ActionKind, Command};
use rabit_geometry::Vec3;
use rabit_testbed::{locations, workflows, TestbedSubstrate};
use rabit_tracer::Tracer;

pub use rabit_core::Stage;

/// Measured Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// The stage.
    pub stage: Stage,
    /// Commands per virtual second on the reference workflow.
    pub commands_per_second: f64,
    /// Arm repeatability σ (metres).
    pub precision_sigma_m: f64,
    /// Mean measured placement error over repeated moves (metres):
    /// commanded vs achieved tool position through the full lab pipeline.
    pub measured_placement_error_m: f64,
    /// Per-command time relative to production (1.0 = production-real).
    pub timing_fidelity: f64,
    /// Total damage cost of running the 16-bug suite unguarded.
    pub unguarded_risk_cost: f64,
}

fn severity_weight(severity: Severity) -> f64 {
    match severity {
        Severity::Low => 1.0,
        Severity::MediumLow => 3.0,
        Severity::MediumHigh => 8.0,
        Severity::High => 25.0,
    }
}

/// Virtual seconds per command of the reference workflow in a stage:
/// `(raw, amortised)` where `amortised` folds in the per-experiment setup
/// cost. Exploration speed uses the amortised figure; timing fidelity the
/// raw one.
fn seconds_per_command(stage: Stage) -> (f64, f64) {
    let mut lab = TestbedSubstrate::for_stage(stage).build_lab();
    let wf = workflows::fig5_safe_workflow(&locations());
    let report = Tracer::pass_through(&mut lab).run(&wf);
    assert!(report.completed(), "reference workflow must complete");
    let n = report.executed as f64;
    (
        report.lab_time_s / n,
        (report.lab_time_s + stage.setup_cost_s()) / n,
    )
}

/// Mean placement error of the stage's arm over `trials` commanded
/// moves, measured through the lab pipeline with the stage's noise model.
fn placement_error(stage: Stage, trials: usize) -> f64 {
    let substrate = TestbedSubstrate::for_stage(stage);
    let mut total = 0.0;
    for seed in 0..trials as u64 {
        let mut lab = substrate.build_lab();
        lab.set_arm_noise("viperx", substrate.position_noise(), seed);
        let target = Vec3::new(0.40, 0.10, 0.30);
        lab.apply(&Command::new(
            "viperx",
            ActionKind::MoveToLocation { target },
        ))
        .expect("free-space move");
        let achieved = lab
            .device(&"viperx".into())
            .unwrap()
            .as_arm()
            .unwrap()
            .location();
        total += achieved.distance(target);
    }
    total / trials as f64
}

/// Damage cost of running every catalogued bug unguarded in a lab with
/// the stage's latency model and cost structure.
fn unguarded_risk(stage: Stage) -> f64 {
    let substrate = TestbedSubstrate::for_stage(stage);
    let loc = locations();
    let mut total = 0.0;
    for bug in catalog() {
        let mut lab = substrate.build_lab();
        let wf = bug.buggy_workflow(&loc);
        let _ = Tracer::pass_through(&mut lab).run(&wf);
        for event in lab.damage_log() {
            total += severity_weight(event.severity);
        }
    }
    total * stage.damage_cost_multiplier()
}

/// Measures one stage.
pub fn profile_stage(stage: Stage) -> StageProfile {
    let (raw, amortised) = seconds_per_command(stage);
    let (prod_raw, _) = seconds_per_command(Stage::Production);
    StageProfile {
        stage,
        commands_per_second: 1.0 / amortised,
        precision_sigma_m: stage.precision_sigma_m(),
        measured_placement_error_m: placement_error(stage, 60),
        timing_fidelity: raw / prod_raw,
        unguarded_risk_cost: unguarded_risk(stage),
    }
}

/// Measures all three stages.
pub fn profile_all() -> Vec<StageProfile> {
    Stage::all().into_iter().map(profile_stage).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_geometry::noise::PositionNoise;

    #[test]
    fn table_i_orderings_hold() {
        let profiles = profile_all();
        let [sim, tb, prod] = [&profiles[0], &profiles[1], &profiles[2]];
        // Speed of exploration: High / Medium / Low.
        assert!(sim.commands_per_second > tb.commands_per_second);
        assert!(tb.commands_per_second >= prod.commands_per_second);
        // Device precision: Low / Medium / High (σ shrinks).
        assert!(sim.precision_sigma_m <= tb.precision_sigma_m);
        assert!(prod.precision_sigma_m < tb.precision_sigma_m);
        // Measured placement error tracks the configured repeatability:
        // E[‖ε‖] = σ·√(8/π).
        assert_eq!(sim.measured_placement_error_m, 0.0);
        let predicted = PositionNoise::gaussian(tb.precision_sigma_m).expected_error_norm();
        assert!(
            (tb.measured_placement_error_m - predicted).abs() / predicted < 0.35,
            "measured {:.4} vs predicted {predicted:.4}",
            tb.measured_placement_error_m
        );
        assert!(prod.measured_placement_error_m < tb.measured_placement_error_m);
        // Accuracy of results: Low / Medium / High (fidelity → 1).
        assert!((prod.timing_fidelity - 1.0).abs() < 1e-9);
        assert!(sim.timing_fidelity < tb.timing_fidelity);
        assert!(tb.timing_fidelity <= 2.0);
        // Risk of damage: Low / Medium / High.
        assert_eq!(sim.unguarded_risk_cost, 0.0);
        assert!(tb.unguarded_risk_cost > 0.0);
        assert!(prod.unguarded_risk_cost > tb.unguarded_risk_cost);
    }

    #[test]
    fn stage_names() {
        assert_eq!(Stage::all().len(), 3);
        assert_eq!(Stage::Simulator.name(), "Simulator");
    }
}
