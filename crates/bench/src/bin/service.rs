//! Rule-service churn benchmark.
//!
//! Exercises the versioned multi-tenant rule service the way a busy
//! deployment would: several tenants' rulebases under continuous live
//! CRUD through the [`ServiceBroker`], while validation traffic keeps
//! pulling fresh snapshots and checking commands against them. Three
//! phases come out:
//!
//! * **commands/sec** — broker commit throughput: per-tenant scripts of
//!   enable/disable toggles, rule creates, partial updates, and removes,
//!   pre-built off the clock, then pushed by one submitter thread per
//!   tenant through [`ServiceBroker::submit_batch`] and timed end to end
//!   (first submit → flush). Full-mode runs are gated by the
//!   `SERVICE_MIN_CMDS_PER_SEC` schema floor.
//! * **overload probe** — a deliberately tiny bounded broker
//!   ([`ServiceBroker::with_queue_capacity`]) fed through
//!   [`ServiceBroker::try_submit_batch`]: an oversized command group is
//!   shed with `ServiceError::Overloaded` (typed backpressure, not a
//!   stall), and the remaining traffic lands under retry — proving shed
//!   commands are observable and non-destructive.
//! * **p50/p99 check latency (µs)** — the cost one validation pays under
//!   churn: snapshot the tenant's latest publication and run a rule
//!   check against it, timed per call while a background churn thread
//!   keeps committing batches. Copy-on-write snapshots mean the check
//!   never takes more than the brief publication lock — the p99 is the
//!   proof.
//!
//! The emitted envelope carries the broker's ingestion counters
//! (`queue_depth_peak`, `shed_commands`, `worker_parks`,
//! `worker_steals`, `batches`) so CI can assert the backpressure
//! surface is really wired up.
//!
//! Writes `BENCH_service.json` (envelope kind `"service"`, validated on
//! write and by the `bench_schema` CI check) and prints the tables.
//! `--quick` runs a reduced pass for CI smoke checks.
//!
//! Run with `cargo run --release -p rabit-bench --bin service -- [--quick]`.

use rabit_bench::histogram::percentile_us;
use rabit_bench::report::render_table;
use rabit_devices::{ActionKind, Command, DeviceState, DeviceType, LabState, StateKey};
use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rule, RuleId, Rulebase, TenantId};
use rabit_service::{
    BrokerStats, CreateRuleRequest, RuleCommand, RuleOp, RuleStore, ServiceBroker,
    UpdateRuleRequest,
};
use rabit_util::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Tenants churned concurrently (the schema's multi-tenant floor is 4).
const TENANTS: usize = 6;
/// Broker worker threads.
const BROKER_THREADS: usize = 4;
/// Commit rounds per tenant in the throughput phase (each round is 5
/// commands: create, disable, update, enable, remove).
const ROUNDS: usize = 8_000;
const ROUNDS_QUICK: usize = 200;
/// Commands per submitted batch in the throughput phase (32 rounds).
const BATCH_COMMANDS: usize = 160;
/// Lane capacity of the overload-probe broker — small on purpose.
const PROBE_CAPACITY: usize = 16;
/// Enable/disable toggle pairs pushed through the probe broker.
const PROBE_TOGGLES: usize = 512;
const PROBE_TOGGLES_QUICK: usize = 64;
/// Timed validation checks in the latency phase.
const CHECKS: usize = 20_000;
const CHECKS_QUICK: usize = 2_000;

fn tenant(i: usize) -> TenantId {
    TenantId::new(format!("lab{i}"))
}

/// A rule that never fires — the churn payload.
fn staged_rule(name: &str) -> Rule {
    Rule::new(
        RuleId::Custom(name.to_string()),
        "staged by bench",
        |_, _, _| None,
    )
}

/// One churn round for a tenant: create a rule, toggle a general rule
/// off and back on, partially update the staged rule, then remove it —
/// five commits that leave the rulebase exactly where it started (but
/// five epochs later), so commit cost stays flat over the run.
fn round_commands(tenant: &TenantId, round: usize) -> [RuleCommand; 5] {
    let name = format!("staged-{round}");
    let toggled = RuleId::General((round % 11) as u8 + 1);
    [
        RuleCommand::new(
            tenant.clone(),
            RuleOp::Create(CreateRuleRequest::new(staged_rule(&name)).disabled()),
        ),
        RuleCommand::new(tenant.clone(), RuleOp::Disable(toggled.clone())),
        RuleCommand::new(
            tenant.clone(),
            RuleOp::Update(
                RuleId::Custom(name.clone()),
                UpdateRuleRequest::new().with_enabled(true),
            ),
        ),
        RuleCommand::new(tenant.clone(), RuleOp::Enable(toggled)),
        RuleCommand::new(tenant.clone(), RuleOp::Remove(RuleId::Custom(name))),
    ]
}

/// The per-tenant throughput script: `rounds` rounds, pre-built so the
/// timed region measures ingestion, not `format!`.
fn build_script(tenant: &TenantId, rounds: usize) -> Vec<RuleCommand> {
    (0..rounds)
        .flat_map(|round| round_commands(tenant, round))
        .collect()
}

/// The validation workload: a command + state + catalog that walks the
/// full dispatch path of the hein rulebase (an arm entering a dosing
/// system with its door open — every door rule is consulted, none fire).
fn check_fixture() -> (Command, LabState, DeviceCatalog) {
    let command = Command::new(
        "arm",
        ActionKind::MoveInsideDevice {
            device: "doser".into(),
        },
    );
    let mut state = LabState::new();
    state.insert(
        "arm",
        DeviceState::new().with(StateKey::Holding, None::<rabit_devices::DeviceId>),
    );
    state.insert("doser", DeviceState::new().with(StateKey::DoorOpen, true));
    let catalog = DeviceCatalog::new()
        .with(DeviceMeta::new("arm", DeviceType::RobotArm))
        .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door());
    (command, state, catalog)
}

/// Phase 1: batched commit throughput across all tenants — one
/// submitter thread per tenant pushing `BATCH_COMMANDS`-command
/// batches. Returns (wall seconds, broker counters).
fn throughput_phase(store: &Arc<RuleStore>, rounds: usize) -> (f64, BrokerStats) {
    let scripts: Vec<Vec<RuleCommand>> = (0..TENANTS)
        .map(|i| build_script(&tenant(i), rounds))
        .collect();
    let broker = ServiceBroker::new(Arc::clone(store), BROKER_THREADS);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for script in &scripts {
            scope.spawn(|| {
                for chunk in script.chunks(BATCH_COMMANDS) {
                    // Receipts are not needed at wire speed; dropping
                    // the ticket discards them, flush() still fences.
                    drop(broker.submit_batch(chunk));
                }
            });
        }
    });
    broker.flush();
    let wall_s = t0.elapsed().as_secs_f64();
    for i in 0..TENANTS {
        let epoch = store.epoch_of(&tenant(i)).expect("seeded tenant");
        assert_eq!(
            epoch,
            (rounds * 5) as u64,
            "every commit of tenant {i} must have landed"
        );
    }
    (wall_s, broker.stats())
}

/// Phase 2: overload probe on a deliberately tiny bounded broker.
/// Returns its counters; panics unless shedding was observed and all
/// retried traffic landed exactly once.
fn overload_phase(store: &Arc<RuleStore>, toggles: usize) -> BrokerStats {
    let target = tenant(0);
    let epoch_before = store.epoch_of(&target).expect("seeded tenant");
    let broker =
        ServiceBroker::with_queue_capacity(Arc::clone(store), BROKER_THREADS, PROBE_CAPACITY);

    // A single-tenant group wider than the lane can never be admitted
    // whole, so it is shed in full — deterministic typed backpressure.
    let oversized: Vec<RuleCommand> = (0..PROBE_CAPACITY + 1)
        .map(|i| {
            let id = RuleId::General((i % 11) as u8 + 1);
            RuleCommand::new(target.clone(), RuleOp::Enable(id))
        })
        .collect();
    let receipts = broker.try_submit_batch(&oversized).wait();
    assert!(
        receipts.iter().all(|r| r.is_err()),
        "oversized group must shed every command"
    );

    // Real traffic under retry: toggle pairs in lane-sized chunks. A
    // chunk is all-or-nothing for its tenant group, so a shed chunk is
    // simply resubmitted until the lane has room.
    let script: Vec<RuleCommand> = (0..toggles)
        .flat_map(|i| {
            let id = RuleId::General((i % 11) as u8 + 1);
            [
                RuleCommand::new(target.clone(), RuleOp::Disable(id.clone())),
                RuleCommand::new(target.clone(), RuleOp::Enable(id)),
            ]
        })
        .collect();
    for chunk in script.chunks(PROBE_CAPACITY / 2) {
        loop {
            let receipts = broker.try_submit_batch(chunk).wait();
            if receipts.iter().all(|r| r.is_ok()) {
                break;
            }
            std::thread::yield_now();
        }
    }
    broker.flush();

    let stats = broker.stats();
    assert!(
        stats.shed_commands >= (PROBE_CAPACITY + 1) as u64,
        "probe must observe shedding (saw {})",
        stats.shed_commands
    );
    let epoch_after = store.epoch_of(&target).expect("seeded tenant");
    assert_eq!(
        epoch_after - epoch_before,
        (toggles * 2) as u64,
        "every retried toggle must land exactly once"
    );
    stats
}

/// Phase 3: per-check latency while a churn thread keeps committing
/// batches. Returns (sorted latencies ns, churn rounds landed).
fn latency_phase(store: &Arc<RuleStore>, rounds: usize, checks: usize) -> (Vec<u64>, usize) {
    let stop = Arc::new(AtomicBool::new(false));
    let churner = {
        let broker_store = Arc::clone(store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let broker = ServiceBroker::new(broker_store, BROKER_THREADS);
            let mut round = rounds;
            while !stop.load(Ordering::Relaxed) {
                for i in 0..TENANTS {
                    drop(broker.submit_batch(&round_commands(&tenant(i), round)));
                }
                round += 1;
            }
            broker.flush();
            round - rounds
        })
    };
    // Don't start the clock until churn commits are actually landing —
    // a warm check loop can otherwise finish before the churn broker's
    // workers have spun up, and "latency under churn" would be a lie.
    let baseline = store.epoch_of(&tenant(0)).expect("seeded tenant");
    while store.epoch_of(&tenant(0)).expect("seeded tenant") <= baseline {
        std::thread::yield_now();
    }
    let (command, state, catalog) = check_fixture();
    let mut latencies_ns = Vec::with_capacity(checks);
    use rabit_rulebase::SnapshotSource;
    for i in 0..checks {
        let target = tenant(i % TENANTS);
        let t = Instant::now();
        let snapshot = store.snapshot(&target);
        let violations = snapshot.check(&command, &state, &catalog);
        latencies_ns.push(t.elapsed().as_nanos() as u64);
        assert!(violations.is_empty(), "fixture is violation-free");
    }
    stop.store(true, Ordering::Relaxed);
    let churn_rounds = churner.join().expect("churn thread");
    latencies_ns.sort_unstable();
    (latencies_ns, churn_rounds)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { ROUNDS_QUICK } else { ROUNDS };
    let toggles = if quick {
        PROBE_TOGGLES_QUICK
    } else {
        PROBE_TOGGLES
    };
    let checks = if quick { CHECKS_QUICK } else { CHECKS };

    let store = Arc::new(RuleStore::new());
    for i in 0..TENANTS {
        store.seed_tenant(tenant(i), Rulebase::hein_lab());
    }

    let commands = TENANTS * rounds * 5;
    let (commit_wall_s, throughput_stats) = throughput_phase(&store, rounds);
    let commands_per_sec = commands as f64 / commit_wall_s;

    let overload_stats = overload_phase(&store, toggles);

    let (latencies_ns, churn_rounds) = latency_phase(&store, rounds, checks);
    let p50 = percentile_us(&latencies_ns, 0.50);
    let p99 = percentile_us(&latencies_ns, 0.99);

    // One counter set for the envelope: sum the monotonic counters over
    // both measured brokers, take the deeper of the two lane peaks.
    let queue_depth_peak = throughput_stats
        .queue_depth_peak
        .max(overload_stats.queue_depth_peak);
    let shed_commands = throughput_stats.shed_commands + overload_stats.shed_commands;
    let worker_parks = throughput_stats.worker_parks + overload_stats.worker_parks;
    let worker_steals = throughput_stats.worker_steals + overload_stats.worker_steals;
    let batches = throughput_stats.batches + overload_stats.batches;

    println!("\n# rule service under churn\n");
    println!(
        "{}",
        render_table(
            &["metric", "value"],
            &[
                vec!["tenants".into(), TENANTS.to_string()],
                vec!["broker threads".into(), BROKER_THREADS.to_string()],
                vec!["commands committed".into(), commands.to_string()],
                vec!["commit wall (s)".into(), format!("{commit_wall_s:.3}")],
                vec!["commands/sec".into(), format!("{commands_per_sec:.0}")],
                vec!["store commits (batches)".into(), batches.to_string()],
                vec!["queue depth peak".into(), queue_depth_peak.to_string()],
                vec!["commands shed (probe)".into(), shed_commands.to_string()],
                vec!["worker parks".into(), worker_parks.to_string()],
                vec!["worker steals".into(), worker_steals.to_string()],
                vec!["checks timed".into(), checks.to_string()],
                vec![
                    "churn rounds behind checks".into(),
                    churn_rounds.to_string()
                ],
                vec!["check p50 (µs)".into(), format!("{p50:.2}")],
                vec!["check p99 (µs)".into(), format!("{p99:.2}")],
            ],
        )
    );

    rabit_bench::schema::write_artifact_with_kind(
        "service",
        "service",
        Json::obj([
            ("quick_mode", Json::Bool(quick)),
            ("tenants", Json::Num(TENANTS as f64)),
            ("broker_threads", Json::Num(BROKER_THREADS as f64)),
            ("rounds_per_tenant", Json::Num(rounds as f64)),
            ("batch_commands", Json::Num(BATCH_COMMANDS as f64)),
            ("probe_capacity", Json::Num(PROBE_CAPACITY as f64)),
            ("checks_timed", Json::Num(checks as f64)),
        ]),
        Json::obj([
            ("tenants", Json::Num(TENANTS as f64)),
            ("commands_committed", Json::Num(commands as f64)),
            ("commit_wall_s", Json::Num(commit_wall_s)),
            ("commands_per_sec", Json::Num(commands_per_sec)),
            ("batches", Json::Num(batches as f64)),
            ("queue_depth_peak", Json::Num(queue_depth_peak as f64)),
            ("shed_commands", Json::Num(shed_commands as f64)),
            ("worker_parks", Json::Num(worker_parks as f64)),
            ("worker_steals", Json::Num(worker_steals as f64)),
            ("p50_check_latency_us", Json::Num(p50)),
            ("p99_check_latency_us", Json::Num(p99)),
            ("churn_rounds_during_checks", Json::Num(churn_rounds as f64)),
        ]),
    );
}
