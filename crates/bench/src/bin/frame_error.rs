//! Regenerates the §IV (category 2) common-frame calibration finding:
//! "transforming both robot arms' coordinate systems to a global
//! coordinate system using a transformation matrix resulted in an average
//! error of 3 cm" — which is why RABIT multiplexes in time/space instead.

use rabit_bench::report::render_table;
use rabit_testbed::calibration::{mean_error_over_trials, CalibrationParams};

fn main() {
    println!("§IV cat. 2 — common-frame transformation error vs arm precision\n");
    let mut rows = Vec::new();
    for sigma_mm in [0.5, 2.0, 5.0, 10.0, 13.0, 20.0] {
        let params = CalibrationParams {
            sigma: sigma_mm / 1000.0,
            ..CalibrationParams::default()
        };
        let err = mean_error_over_trials(&params, 30);
        rows.push(vec![
            format!("{sigma_mm:.1}"),
            format!("{:.1}", err * 1000.0),
            if (sigma_mm - 13.0).abs() < 0.1 {
                "← testbed arms".to_string()
            } else {
                String::new()
            },
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Per-arm noise σ (mm/axis)", "Mean frame error (mm)", ""],
            &rows
        )
    );
    let testbed = mean_error_over_trials(&CalibrationParams::default(), 50);
    println!(
        "At testbed precision the mean error is {:.1} mm — the paper's ~3 cm, \
         far too coarse for collision decisions, hence time/space multiplexing.",
        testbed * 1000.0
    );
}
