//! The testbed environment (stage 2, Fig. 4).
//!
//! "Our testbed setup consists of a lab computer that controls five
//! low-fidelity objects and two robot arms: a six-axis ViperX and a
//! six-axis Ned2. … The low-fidelity objects resemble the shapes and
//! functionalities of their counterparts in the Hein Lab and are realized
//! using cardboard mockups or toy devices." (§III)

use crate::locations::{locations, Locations};
use rabit_core::{Lab, Rabit, RabitConfig};
use rabit_devices::{
    Centrifuge, DeviceId, DeviceType, DosingDevice, Grid, Hotplate, LatencyModel, RobotArm,
    SyringePump, Thermoshaker, Vial,
};
use rabit_geometry::{Aabb, Vec3};
use rabit_kinematics::{presets, ArmModel};
use rabit_rulebase::{extensions, DeviceCatalog, DeviceMeta, Rulebase};
use rabit_sim::{ExtendedSimulator, SimConfig, SimWorld};

/// Which of the paper's RABIT configurations to build. The uncontrolled
/// study evaluates three, in order:
///
/// 1. baseline — 8/16 bugs detected (50%);
/// 2. modified (held-object geometry + time multiplexing) — 12/16 (75%);
/// 3. modified + Extended Simulator on the side — 13/16 (81%).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RabitStage {
    /// The initial deployment: general + custom rules only.
    Baseline,
    /// After the mid-study modifications (§IV categories 2 and 4).
    Modified,
    /// Modified, with the Extended Simulator attached as trajectory
    /// validator.
    ModifiedWithSimulator,
}

/// The assembled testbed: lab, catalog, and location table.
pub struct Testbed {
    /// The physical environment.
    pub lab: Lab,
    /// Device metadata for the rulebase.
    pub catalog: DeviceCatalog,
    /// The Fig. 6 location table.
    pub locations: Locations,
}

/// Footprints of the testbed mockup devices (world frame).
pub mod footprints {
    use rabit_geometry::{Aabb, Vec3};

    /// The vial grid.
    pub fn grid() -> Aabb {
        Aabb::new(Vec3::new(0.45, -0.06, 0.0), Vec3::new(0.63, 0.08, 0.10))
    }

    /// The cardboard dosing-device mockup.
    pub fn dosing_device() -> Aabb {
        Aabb::new(Vec3::new(0.05, 0.42, 0.0), Vec3::new(0.25, 0.57, 0.30))
    }

    /// The toy syringe pump.
    pub fn syringe_pump() -> Aabb {
        Aabb::new(Vec3::new(-0.30, 0.35, 0.0), Vec3::new(-0.15, 0.50, 0.25))
    }

    /// The toy centrifuge.
    pub fn centrifuge() -> Aabb {
        Aabb::new(Vec3::new(-0.35, -0.15, 0.0), Vec3::new(-0.15, 0.05, 0.20))
    }

    /// The mockup hotplate (east of the grid, outside the arm's
    /// grid-to-doser swing corridor).
    pub fn hotplate() -> Aabb {
        Aabb::new(Vec3::new(0.50, 0.30, 0.0), Vec3::new(0.65, 0.45, 0.12))
    }

    /// The mockup thermoshaker (south-west corner, clear of both arms'
    /// sleep cuboids).
    pub fn thermoshaker() -> Aabb {
        Aabb::new(Vec3::new(-0.45, -0.40, 0.0), Vec3::new(-0.25, -0.25, 0.18))
    }

    /// ViperX's sleep cuboid (time multiplexing models sleeping arms as
    /// boxes).
    pub fn viperx_sleep_volume() -> Aabb {
        Aabb::new(Vec3::new(0.0, -0.45, 0.0), Vec3::new(0.25, -0.20, 0.30))
    }

    /// Ned2's sleep cuboid.
    pub fn ned2_sleep_volume() -> Aabb {
        Aabb::new(Vec3::new(0.70, -0.45, 0.0), Vec3::new(0.95, -0.20, 0.25))
    }

    /// ViperX's region under space multiplexing (west of the software
    /// wall at x = 0.70).
    pub fn viperx_region() -> Aabb {
        Aabb::new(Vec3::new(-0.6, -0.6, 0.0), Vec3::new(0.70, 0.7, 0.8))
    }

    /// Ned2's region (east of the wall).
    pub fn ned2_region() -> Aabb {
        Aabb::new(Vec3::new(0.70, -0.6, 0.0), Vec3::new(1.6, 0.7, 0.8))
    }
}

/// Home/sleep tool positions for the two arms.
pub mod arm_positions {
    use rabit_geometry::Vec3;

    /// ViperX home (ready) tool position.
    pub const VIPERX_HOME: Vec3 = Vec3 {
        x: 0.30,
        y: 0.0,
        z: 0.30,
    };
    /// ViperX sleep position (inside its sleep cuboid).
    pub const VIPERX_SLEEP: Vec3 = Vec3 {
        x: 0.12,
        y: -0.32,
        z: 0.15,
    };
    /// Ned2 home tool position.
    pub const NED2_HOME: Vec3 = Vec3 {
        x: 0.85,
        y: 0.0,
        z: 0.25,
    };
    /// Ned2 sleep position (inside its sleep cuboid).
    pub const NED2_SLEEP: Vec3 = Vec3 {
        x: 0.82,
        y: -0.32,
        z: 0.12,
    };
}

impl Testbed {
    /// Builds the standard testbed with one vial in grid slot NW
    /// (the Fig. 5 starting condition).
    pub fn new() -> Self {
        Testbed::with_latency(LatencyModel::TESTBED)
    }

    /// Builds the testbed with a custom latency model on every device —
    /// the Table I stage comparison runs the same deck at simulator,
    /// testbed, and production speeds.
    pub fn with_latency(latency: LatencyModel) -> Self {
        Testbed {
            lab: Testbed::build_lab(latency),
            catalog: Testbed::build_catalog(),
            locations: locations(),
        }
    }

    /// Builds a fresh testbed lab (one vial in grid slot NW) at the given
    /// latency — the recipe both [`Testbed::with_latency`] and the
    /// testbed [`rabit_core::Substrate`]s instantiate from.
    pub fn build_lab(latency: LatencyModel) -> Lab {
        use arm_positions::*;
        let loc = locations();

        let mut grid = Grid::new(
            "grid",
            footprints::grid(),
            vec![
                ("NW".to_string(), loc.grid_nw_viperx.pickup),
                ("SE".to_string(), Vec3::new(0.60, 0.05, 0.12)),
            ],
        );
        grid.occupy("NW", "vial".into()).expect("fresh grid slot");

        let mut lab = Lab::new()
            .with_device(
                RobotArm::new("viperx", VIPERX_HOME, VIPERX_SLEEP)
                    .with_silent_on_infeasible(true)
                    .with_latency(latency),
            )
            .with_device(RobotArm::new("ned2", NED2_HOME, NED2_SLEEP).with_latency(latency))
            .with_device(Vial::new("vial", loc.grid_nw_viperx.pickup))
            .with_device(grid)
            .with_device(
                DosingDevice::new("dosing_device", footprints::dosing_device())
                    .with_latency(latency),
            )
            .with_device(SyringePump::new("syringe_pump", footprints::syringe_pump()))
            .with_device(Centrifuge::new("centrifuge", footprints::centrifuge()))
            .with_device(Hotplate::new("hotplate", footprints::hotplate()))
            .with_device(Thermoshaker::new(
                "thermoshaker",
                footprints::thermoshaker(),
            ));

        // Reach summaries for the silent-skip / exception behaviours.
        lab.set_arm_kinematics("viperx", Vec3::new(0.0, 0.0, 0.0), 0.85);
        lab.set_arm_kinematics("ned2", Vec3::new(0.85, 0.0, 0.0), 0.62);
        lab
    }

    /// Builds the testbed device catalog (pure metadata, no lab state).
    pub fn build_catalog() -> DeviceCatalog {
        use arm_positions::*;
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("viperx", DeviceType::RobotArm)
                    .with_arm_positions(VIPERX_HOME, VIPERX_SLEEP)
                    .with_sleep_volume(footprints::viperx_sleep_volume())
                    .with_allowed_region(footprints::viperx_region()),
            )
            .with(
                DeviceMeta::new("ned2", DeviceType::RobotArm)
                    .with_arm_positions(NED2_HOME, NED2_SLEEP)
                    .with_sleep_volume(footprints::ned2_sleep_volume())
                    .with_allowed_region(footprints::ned2_region()),
            )
            .with(DeviceMeta::new("vial", DeviceType::Container))
            .with(DeviceMeta::new(
                "grid",
                DeviceType::Custom("grid".to_string()),
            ))
            .with(DeviceMeta::new("dosing_device", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("syringe_pump", DeviceType::DosingSystem))
            .with(
                DeviceMeta::new("centrifuge", DeviceType::ActionDevice)
                    .with_door()
                    .with_tag("centrifuge")
                    .with_threshold(6_000.0),
            )
            .with(DeviceMeta::new("hotplate", DeviceType::ActionDevice).with_threshold(150.0))
            .with(DeviceMeta::new("thermoshaker", DeviceType::ActionDevice).with_threshold(1_500.0))
    }

    /// Builds a RABIT engine for one of the study's three configurations.
    /// Time multiplexing (not the software wall) is the paper's deployed
    /// choice for the Modified stages.
    pub fn rabit(&self, stage: RabitStage) -> Rabit {
        let mut rabit = Rabit::new(
            rulebase_for(stage),
            self.catalog.clone(),
            RabitConfig::default(),
        );
        if stage == RabitStage::ModifiedWithSimulator {
            rabit = rabit.with_validator(Box::new(self.extended_simulator(false)));
        }
        rabit
    }

    /// The cuboid obstacle world the Extended Simulator sweeps the
    /// testbed's trajectories against: the platform plus the six mockup
    /// footprints.
    pub fn simulator_world() -> SimWorld {
        SimWorld::new()
            .with_platform(1.6)
            .with_obstacle("grid", footprints::grid())
            .with_obstacle("dosing_device", footprints::dosing_device())
            .with_obstacle("syringe_pump", footprints::syringe_pump())
            .with_obstacle("centrifuge", footprints::centrifuge())
            .with_obstacle("hotplate", footprints::hotplate())
            .with_obstacle("thermoshaker", footprints::thermoshaker())
    }

    /// The kinematic arm models the Extended Simulator mirrors (ViperX at
    /// the origin, Ned2 offset to its platform mount).
    pub fn simulator_arms() -> Vec<(DeviceId, ArmModel)> {
        vec![
            (DeviceId::new("viperx"), presets::viperx300()),
            (
                DeviceId::new("ned2"),
                presets::ned2().with_base(rabit_geometry::Pose::from_translation(Vec3::new(
                    0.85, 0.0, 0.0,
                ))),
            ),
        ]
    }

    /// Builds the Extended Simulator over the testbed's cuboid world
    /// (`gui` selects the 2 s GUI-bound mode or the headless mode).
    pub fn build_extended_simulator(gui: bool) -> ExtendedSimulator {
        let config = SimConfig {
            gui,
            ..SimConfig::default()
        };
        let mut sim = ExtendedSimulator::new(Testbed::simulator_world(), config);
        for (id, model) in Testbed::simulator_arms() {
            sim.add_arm(id, model);
        }
        sim
    }

    /// The Extended Simulator over this testbed (see
    /// [`Testbed::build_extended_simulator`]).
    pub fn extended_simulator(&self, gui: bool) -> ExtendedSimulator {
        Testbed::build_extended_simulator(gui)
    }

    /// Convenience: the footprint of a named mockup (for tests and
    /// harnesses).
    pub fn footprint_of(&self, name: &str) -> Option<Aabb> {
        match name {
            "grid" => Some(footprints::grid()),
            "dosing_device" => Some(footprints::dosing_device()),
            "syringe_pump" => Some(footprints::syringe_pump()),
            "centrifuge" => Some(footprints::centrifuge()),
            "hotplate" => Some(footprints::hotplate()),
            "thermoshaker" => Some(footprints::thermoshaker()),
            _ => None,
        }
    }
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed::new()
    }
}

/// The rulebase of one study configuration: the 15 Hein Lab rules, plus
/// the three §IV extension rules (held-object geometry, time
/// multiplexing, sleep volumes) for the modified configurations. A thin
/// wrapper over the shared [`extensions::extended_hein_rulebase`]
/// builder (the production deck composes the same way with a different
/// [`extensions::ExtensionSet`]).
pub fn rulebase_for(stage: RabitStage) -> Rulebase {
    let set = if stage == RabitStage::Baseline {
        extensions::ExtensionSet::none()
    } else {
        extensions::ExtensionSet::all()
    };
    extensions::extended_hein_rulebase(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::StateKey;

    #[test]
    fn testbed_has_two_arms_and_five_mockups() {
        let mut tb = Testbed::new();
        let state = tb.lab.fetch_state();
        assert_eq!(state.len(), 9); // 2 arms + vial + grid + 5 devices
        assert!(state.device(&"viperx".into()).is_some());
        assert!(state.device(&"ned2".into()).is_some());
        assert_eq!(tb.catalog.robot_arms().count(), 2);
    }

    #[test]
    fn footprints_do_not_overlap() {
        let names = [
            "grid",
            "dosing_device",
            "syringe_pump",
            "centrifuge",
            "hotplate",
            "thermoshaker",
        ];
        let tb = Testbed::new();
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                let fa = tb.footprint_of(a).unwrap();
                let fb = tb.footprint_of(b).unwrap();
                assert!(!fa.intersects(&fb), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn key_locations_are_outside_all_footprints() {
        // Approach/safe-height waypoints must be reachable without rule
        // III-3 violations.
        let tb = Testbed::new();
        let l = tb.locations;
        let waypoints = [
            l.grid_nw_viperx.pickup_safe_height,
            l.grid_nw_viperx.pickup,
            l.dosing_viperx.approach,
            l.dosing_viperx.pickup_safe_height,
            l.dosing_viperx.pickup,
            l.random_location_ned2,
            arm_positions::VIPERX_HOME,
            arm_positions::NED2_HOME,
        ];
        for name in [
            "grid",
            "dosing_device",
            "syringe_pump",
            "centrifuge",
            "hotplate",
            "thermoshaker",
        ] {
            let fp = tb.footprint_of(name).unwrap();
            for w in waypoints {
                assert!(!fp.contains_point(w), "waypoint {w} is inside {name}");
            }
        }
    }

    #[test]
    fn sleep_positions_are_inside_sleep_volumes() {
        assert!(footprints::viperx_sleep_volume().contains_point(arm_positions::VIPERX_SLEEP));
        assert!(footprints::ned2_sleep_volume().contains_point(arm_positions::NED2_SLEEP));
        // And homes are not.
        assert!(!footprints::viperx_sleep_volume().contains_point(arm_positions::VIPERX_HOME));
    }

    #[test]
    fn software_wall_separates_the_regions() {
        let vx = footprints::viperx_region();
        let nd = footprints::ned2_region();
        assert!(vx.contains_point(arm_positions::VIPERX_HOME));
        assert!(nd.contains_point(arm_positions::NED2_HOME));
        assert!(!vx.contains_point(arm_positions::NED2_HOME));
        assert!(!nd.contains_point(arm_positions::VIPERX_HOME));
    }

    #[test]
    fn stages_build_increasingly_armed_rabits() {
        let tb = Testbed::new();
        let base = tb.rabit(RabitStage::Baseline);
        let modif = tb.rabit(RabitStage::Modified);
        assert_eq!(base.rulebase().len(), 15);
        assert_eq!(modif.rulebase().len(), 18);
        let with_sim = tb.rabit(RabitStage::ModifiedWithSimulator);
        assert_eq!(with_sim.rulebase().len(), 18);
    }

    #[test]
    fn initial_vial_sits_in_grid_slot_nw() {
        let tb = Testbed::new();
        // The vial itself is sensorless — check physical ground truth.
        let vial = tb.lab.device(&"vial".into()).unwrap().as_vial().unwrap();
        assert_eq!(vial.location(), tb.locations.grid_nw_viperx.pickup);
        let _ = StateKey::Location;
    }

    #[test]
    fn random_location_is_near_viperx_grid_station() {
        // The Bug B precondition: the stray Ned2 target is within the
        // arm-collision radius of ViperX's post-place station point.
        let tb = Testbed::new();
        let viperx_station = tb.locations.grid_nw_viperx.pickup_safe_height;
        let d = viperx_station.distance(tb.locations.random_location_ned2);
        assert!(
            d <= rabit_devices::physical::ARM_COLLISION_RADIUS_M,
            "distance {d} must be a collision"
        );
    }
}
