//! The logical **Robot Arm** device.
//!
//! This is the arm as RABIT observes it through status commands: a
//! location, a gripper, what it is holding, and which device it is inside.
//! The *physical* arm (joints, links, trajectories) lives in the
//! `rabit-kinematics` crate and is bound to this logical device by the
//! stage crates (simulator / testbed / production).

use crate::command::ActionKind;
use crate::device::{Device, DeviceError, LatencyModel, Malfunction};
use crate::id::{DeviceId, DeviceType};
use crate::state::DeviceState;
use crate::value::StateKey;
use rabit_geometry::Vec3;

/// A six-axis robot arm's logical state.
#[derive(Debug, Clone, PartialEq)]
pub struct RobotArm {
    id: DeviceId,
    location: Vec3,
    home_location: Vec3,
    sleep_location: Vec3,
    gripper_open: bool,
    holding: Option<DeviceId>,
    inside_of: Option<DeviceId>,
    at_sleep: bool,
    /// ViperX-style failure mode: infeasible moves are silently skipped
    /// instead of raising an error (paper §IV, category 4).
    silent_on_infeasible: bool,
    malfunction: Option<Malfunction>,
    latency: LatencyModel,
}

impl RobotArm {
    /// Creates an arm at its home location, gripper open, holding nothing.
    pub fn new(id: impl Into<DeviceId>, home_location: Vec3, sleep_location: Vec3) -> Self {
        RobotArm {
            id: id.into(),
            location: home_location,
            home_location,
            sleep_location,
            gripper_open: true,
            holding: None,
            inside_of: None,
            at_sleep: false,
            silent_on_infeasible: false,
            malfunction: None,
            latency: LatencyModel::PRODUCTION,
        }
    }

    /// Configures the ViperX-style silent-skip behaviour for infeasible
    /// commands.
    pub fn with_silent_on_infeasible(mut self, silent: bool) -> Self {
        self.silent_on_infeasible = silent;
        self
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Whether infeasible moves are silently skipped (ViperX) rather than
    /// raised (Ned2).
    pub fn silent_on_infeasible(&self) -> bool {
        self.silent_on_infeasible
    }

    /// Current tool location (in this arm's own coordinate frame).
    pub fn location(&self) -> Vec3 {
        self.location
    }

    /// The home (ready) location.
    pub fn home_location(&self) -> Vec3 {
        self.home_location
    }

    /// The sleep (stowed) location.
    pub fn sleep_location(&self) -> Vec3 {
        self.sleep_location
    }

    /// What the gripper is holding, if anything.
    pub fn holding(&self) -> Option<&DeviceId> {
        self.holding.as_ref()
    }

    /// Which device the arm is currently inside, if any.
    pub fn inside_of(&self) -> Option<&DeviceId> {
        self.inside_of.as_ref()
    }

    /// Whether the gripper jaws are open.
    pub fn gripper_open(&self) -> bool {
        self.gripper_open
    }

    /// Whether the arm is parked at its sleep position.
    pub fn at_sleep(&self) -> bool {
        self.at_sleep
    }

    /// Forces the holding state (used by the environment when a pick
    /// physically fails, e.g. the gripper closed on air — the Bug-C
    /// scenario where "ViperX … continues the remaining experiment
    /// without a vial").
    pub fn set_holding(&mut self, object: Option<DeviceId>) {
        self.holding = object;
    }

    /// Forces the location (used by the environment after physical
    /// simulation resolves the actual reached position).
    pub fn set_location(&mut self, location: Vec3) {
        self.location = location;
    }
}

impl Device for RobotArm {
    fn id(&self) -> &DeviceId {
        &self.id
    }

    fn device_type(&self) -> DeviceType {
        DeviceType::RobotArm
    }

    fn fetch_state(&self) -> DeviceState {
        // The controller reports its *command-level* state: gripper jaws,
        // what it believes it holds, which device it entered, whether it
        // parked. It does NOT report a Cartesian tool position — RABIT
        // compares command-level states, which is why a silently skipped
        // move (the ViperX behaviour in §IV, category 4) goes unnoticed.
        DeviceState::new()
            .with(StateKey::GripperOpen, self.gripper_open)
            .with(StateKey::Holding, self.holding.clone())
            .with(StateKey::InsideOf, self.inside_of.clone())
            .with(StateKey::AtSleep, self.at_sleep)
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        match action {
            ActionKind::MoveToLocation { target } => {
                if !target.is_finite() {
                    return Err(DeviceError::TrajectoryFault {
                        device: self.id.clone(),
                        reason: "non-finite target".to_string(),
                    });
                }
                self.location = *target;
                self.inside_of = None;
                self.at_sleep = false;
                Ok(())
            }
            ActionKind::MoveInsideDevice { device } => {
                self.inside_of = Some(device.clone());
                self.at_sleep = false;
                Ok(())
            }
            ActionKind::MoveOutOfDevice => {
                self.inside_of = None;
                Ok(())
            }
            ActionKind::MoveHome => {
                self.location = self.home_location;
                self.inside_of = None;
                self.at_sleep = false;
                Ok(())
            }
            ActionKind::MoveToSleep => {
                self.location = self.sleep_location;
                self.inside_of = None;
                self.at_sleep = true;
                Ok(())
            }
            ActionKind::OpenGripper => {
                self.gripper_open = true;
                // Opening the gripper releases whatever was held.
                self.holding = None;
                Ok(())
            }
            ActionKind::CloseGripper => {
                self.gripper_open = false;
                Ok(())
            }
            ActionKind::PickObject { object } => {
                self.gripper_open = false;
                self.at_sleep = false;
                if matches!(self.malfunction, Some(Malfunction::DropsObject)) {
                    // The gripper closed but failed to retain the object.
                    self.holding = None;
                } else {
                    self.holding = Some(object.clone());
                }
                Ok(())
            }
            ActionKind::PlaceObject { object, into: _ } => {
                if self.holding.as_ref() != Some(object) {
                    // The arm executes the motion regardless; whether it
                    // actually released anything is reflected in state.
                    // (The paper's Bug-C workflow "continued without a
                    // vial" — no firmware error was raised.)
                    self.gripper_open = true;
                    return Ok(());
                }
                self.holding = None;
                self.gripper_open = true;
                self.at_sleep = false;
                Ok(())
            }
            other => Err(DeviceError::UnsupportedAction {
                device: self.id.clone(),
                action: other.label(),
            }),
        }
    }

    fn latency(&self) -> LatencyModel {
        self.latency
    }

    fn inject_malfunction(&mut self, malfunction: Option<Malfunction>) {
        self.malfunction = malfunction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm() -> RobotArm {
        RobotArm::new("viperx", Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, 0.0, 0.1))
    }

    #[test]
    fn starts_at_home_holding_nothing() {
        let a = arm();
        assert_eq!(a.location(), a.home_location());
        assert!(a.holding().is_none());
        assert!(a.gripper_open());
        assert!(!a.at_sleep());
        assert_eq!(a.device_type(), DeviceType::RobotArm);
        assert!(a.footprint().is_none(), "arms are dynamic, not cuboids");
    }

    #[test]
    fn move_commands_update_location() {
        let mut a = arm();
        let target = Vec3::new(0.537, 0.018, 0.12);
        a.execute(&ActionKind::MoveToLocation { target }).unwrap();
        assert_eq!(a.location(), target);
        a.execute(&ActionKind::MoveToSleep).unwrap();
        assert!(a.at_sleep());
        assert_eq!(a.location(), a.sleep_location());
        a.execute(&ActionKind::MoveHome).unwrap();
        assert!(!a.at_sleep());
        assert_eq!(a.location(), a.home_location());
    }

    #[test]
    fn non_finite_target_is_a_trajectory_fault() {
        let mut a = arm();
        let err = a
            .execute(&ActionKind::MoveToLocation {
                target: Vec3::new(f64::NAN, 0.0, 0.0),
            })
            .unwrap_err();
        assert!(matches!(err, DeviceError::TrajectoryFault { .. }));
    }

    #[test]
    fn pick_and_place_lifecycle() {
        let mut a = arm();
        a.execute(&ActionKind::PickObject {
            object: "vial".into(),
        })
        .unwrap();
        assert_eq!(a.holding().unwrap().as_str(), "vial");
        assert!(!a.gripper_open());
        a.execute(&ActionKind::PlaceObject {
            object: "vial".into(),
            into: None,
        })
        .unwrap();
        assert!(a.holding().is_none());
        assert!(a.gripper_open());
    }

    #[test]
    fn open_gripper_drops_held_object() {
        let mut a = arm();
        a.execute(&ActionKind::PickObject {
            object: "vial".into(),
        })
        .unwrap();
        a.execute(&ActionKind::OpenGripper).unwrap();
        assert!(a.holding().is_none());
    }

    #[test]
    fn place_without_holding_is_silently_tolerated() {
        // The Bug-C behaviour: no firmware error, experiment continues.
        let mut a = arm();
        assert!(a
            .execute(&ActionKind::PlaceObject {
                object: "vial".into(),
                into: None
            })
            .is_ok());
        assert!(a.holding().is_none());
    }

    #[test]
    fn drops_object_malfunction() {
        let mut a = arm();
        a.inject_malfunction(Some(Malfunction::DropsObject));
        a.execute(&ActionKind::PickObject {
            object: "vial".into(),
        })
        .unwrap();
        assert!(a.holding().is_none(), "gripper failed to retain the vial");
        assert!(!a.gripper_open(), "the jaws did close");
    }

    #[test]
    fn inside_device_tracking() {
        let mut a = arm();
        a.execute(&ActionKind::MoveInsideDevice {
            device: "dosing_device".into(),
        })
        .unwrap();
        assert_eq!(a.inside_of().unwrap().as_str(), "dosing_device");
        a.execute(&ActionKind::MoveOutOfDevice).unwrap();
        assert!(a.inside_of().is_none());
        // Any other move also exits the device volume.
        a.execute(&ActionKind::MoveInsideDevice {
            device: "dosing_device".into(),
        })
        .unwrap();
        a.execute(&ActionKind::MoveHome).unwrap();
        assert!(a.inside_of().is_none());
    }

    #[test]
    fn state_snapshot_contains_all_arm_variables() {
        let mut a = arm();
        a.execute(&ActionKind::PickObject {
            object: "vial".into(),
        })
        .unwrap();
        let s = a.fetch_state();
        assert_eq!(s.get_bool(&StateKey::GripperOpen), Some(false));
        assert_eq!(
            s.get_id(&StateKey::Holding).unwrap().unwrap().as_str(),
            "vial"
        );
        assert_eq!(s.get_id(&StateKey::InsideOf), Some(None));
        assert_eq!(s.get_bool(&StateKey::AtSleep), Some(false));
        // No Cartesian readback: position is a believed variable.
        assert!(s.get(&StateKey::Location).is_none());
    }

    #[test]
    fn rejects_foreign_actions() {
        let mut a = arm();
        assert!(matches!(
            a.execute(&ActionKind::StartAction { value: 1.0 }),
            Err(DeviceError::UnsupportedAction { .. })
        ));
        assert!(matches!(
            a.execute(&ActionKind::Cap),
            Err(DeviceError::UnsupportedAction { .. })
        ));
    }

    #[test]
    fn failure_mode_flag() {
        let a = arm().with_silent_on_infeasible(true);
        assert!(a.silent_on_infeasible());
        assert!(!arm().silent_on_infeasible());
    }
}
