//! Real compute cost of the kinematics substrate: forward kinematics,
//! inverse kinematics, and trajectory sampling.

use rabit_bench::timing::{bench, group};
use rabit_geometry::Vec3;
use rabit_kinematics::ik::{solve_position, IkParams};
use rabit_kinematics::presets;
use rabit_kinematics::trajectory::Trajectory;
use std::hint::black_box;

fn main() {
    let arm = presets::ur3e();
    let q0 = arm.home_configuration();
    let q1 = arm.sleep_configuration();

    group("kinematics");
    bench("forward_kinematics", || {
        arm.chain().end_effector_pose(black_box(q0.angles()))
    });
    bench("link_capsules", || arm.link_capsules(black_box(&q0), None));
    let target = arm.tool_position(&q0) + Vec3::new(0.05, 0.03, -0.04);
    bench("ik_solve_nearby", || {
        solve_position(&arm, &q0, black_box(target), &IkParams::default())
    });

    let traj = Trajectory::linear(q0, q1);
    group("trajectory");
    bench("sample_every_50ms", || traj.sample_every(black_box(0.05)));
    bench("swept_capsules_20", || {
        traj.swept_capsules(&arm, None, black_box(20))
    });
}
