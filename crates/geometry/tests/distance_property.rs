//! Property suite for the batched SoA distance kernels and the
//! closed-form segment–AABB distance.
//!
//! The closed form replaced a 64-iteration ternary search; this suite
//! keeps that reference alive *in the tests* and checks the closed form
//! against it on ≥10k random segment/box triples (plus adversarial
//! through-box and edge-graze families), and checks the batched x4
//! kernels bit-identical to the scalar queries they replace. Hand-rolled
//! property loops on the in-tree seeded PRNG, so failures reproduce
//! exactly and the suite needs no external dependency.

use rabit_geometry::distance::{
    segment_aabb_distance, segment_aabb_distance_x4, segment_capsule_distance_x4, ObstacleSoA,
};
use rabit_geometry::{Aabb, Segment, Vec3};
use rabit_util::Rng;

/// Random segment/box triples checked per property — the suite's
/// headline count.
const CASES: usize = 10_000;

/// Reference tolerance: the ternary search shrinks its bracket by 1/3
/// per iteration, so after 64 iterations its parameter error is ~5e-12
/// and, with Lipschitz constant bounded by the segment length (≤ ~35 in
/// the sampled coordinate range), its distance error is well under 1e-9.
const TOL: f64 = 1e-9;

fn coord(rng: &mut Rng) -> f64 {
    rng.random_range(-10.0..10.0)
}

fn vec3(rng: &mut Rng) -> Vec3 {
    Vec3::new(coord(rng), coord(rng), coord(rng))
}

fn aabb(rng: &mut Rng) -> Aabb {
    Aabb::new(vec3(rng), vec3(rng))
}

fn segment(rng: &mut Rng) -> Segment {
    Segment::new(vec3(rng), vec3(rng))
}

/// The pre-closed-form reference: 64-iteration ternary search on the
/// convex point–box distance along the segment, with both endpoints
/// folded in.
fn ternary_reference(seg: &Segment, aabb: &Aabb) -> f64 {
    let f = |t: f64| aabb.distance_to_point(seg.point_at(t));
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..64 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if f(m1) <= f(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    f(0.5 * (lo + hi)).min(f(0.0)).min(f(1.0))
}

fn assert_matches_reference(seg: &Segment, b: &Aabb, what: &str) {
    let exact = segment_aabb_distance(seg, b);
    let reference = ternary_reference(seg, b);
    assert!(
        (exact - reference).abs() <= TOL,
        "{what}: closed form {exact} vs ternary {reference} for seg \
         ({:?} -> {:?}) box ({:?}..{:?})",
        seg.a,
        seg.b,
        b.min(),
        b.max()
    );
}

#[test]
fn closed_form_matches_ternary_on_random_triples() {
    let mut rng = Rng::seed_from_u64(0x5eed_d157);
    for _ in 0..CASES {
        let b = aabb(&mut rng);
        let seg = segment(&mut rng);
        assert_matches_reference(&seg, &b, "random triple");
    }
}

#[test]
fn closed_form_matches_ternary_on_through_box_segments() {
    // Segments whose chord crosses the box interior: the minimum is an
    // exact 0 attained on an interval, the ternary search's worst case
    // and the closed form's slab-entry special case.
    let mut rng = Rng::seed_from_u64(0x7412_0b0e);
    for _ in 0..CASES / 4 {
        let b = aabb(&mut rng);
        let inside = Vec3::new(
            rng.random_range(b.min().x..b.max().x),
            rng.random_range(b.min().y..b.max().y),
            rng.random_range(b.min().z..b.max().z),
        );
        let dir = vec3(&mut rng);
        let seg = Segment::new(inside - dir, inside + dir);
        assert_matches_reference(&seg, &b, "through-box");
        assert_eq!(
            segment_aabb_distance(&seg, &b),
            0.0,
            "a segment through the interior has exactly zero distance"
        );
    }
}

#[test]
fn closed_form_matches_ternary_on_face_and_edge_grazes() {
    // Segments lying in a face plane (or its offset), sliding along the
    // box without entering it: the derivative's sign-change bracket can
    // degenerate to the edge itself.
    let mut rng = Rng::seed_from_u64(0xedce_6a2e);
    for i in 0..CASES / 4 {
        let b = aabb(&mut rng);
        let axis = i % 3;
        let offset = rng.random_range(0.0..2.0);
        let plane = match axis {
            0 => b.max().x + offset,
            1 => b.max().y + offset,
            _ => b.max().z + offset,
        };
        let mut a = vec3(&mut rng);
        let mut c = vec3(&mut rng);
        match axis {
            0 => {
                a.x = plane;
                c.x = plane;
            }
            1 => {
                a.y = plane;
                c.y = plane;
            }
            _ => {
                a.z = plane;
                c.z = plane;
            }
        }
        let seg = Segment::new(a, c);
        assert_matches_reference(&seg, &b, "face graze");
        assert!(
            segment_aabb_distance(&seg, &b) >= offset - TOL,
            "graze distance can't undercut the plane offset"
        );
    }
}

#[test]
fn closed_form_matches_ternary_on_degenerate_segments() {
    // Zero-length and single-static-axis segments exercise the
    // static-axis path of the slab decomposition.
    let mut rng = Rng::seed_from_u64(0xde6e_4e7a);
    for i in 0..CASES / 4 {
        let b = aabb(&mut rng);
        let p = vec3(&mut rng);
        let seg = if i % 2 == 0 {
            Segment::new(p, p)
        } else {
            let mut q = p;
            match i % 6 {
                1 => q.x = coord(&mut rng),
                3 => q.y = coord(&mut rng),
                _ => q.z = coord(&mut rng),
            }
            Segment::new(p, q)
        };
        assert_matches_reference(&seg, &b, "degenerate segment");
    }
}

#[test]
fn batched_box_lanes_match_scalar_bitwise_on_random_worlds() {
    let mut rng = Rng::seed_from_u64(0xb0c5_0a0a);
    for _ in 0..CASES / 10 {
        let mut soa = ObstacleSoA::new();
        let boxes: Vec<Aabb> = (0..8).map(|_| aabb(&mut rng)).collect();
        for b in &boxes {
            soa.push_box(b);
        }
        let seg = segment(&mut rng);
        for chunk in [[0u32, 1, 2, 3], [4, 5, 6, 7], [7, 2, 7, 0]] {
            let batch = segment_aabb_distance_x4(&soa, &seg, &chunk);
            for (slot, &lane) in chunk.iter().enumerate() {
                let scalar = segment_aabb_distance(&seg, &boxes[lane as usize]);
                assert_eq!(
                    batch[slot].to_bits(),
                    scalar.to_bits(),
                    "box lane {lane} diverged from scalar"
                );
            }
        }
    }
}

#[test]
fn batched_capsule_lanes_match_scalar_bitwise_on_random_worlds() {
    let mut rng = Rng::seed_from_u64(0xca55_0a0a);
    for _ in 0..CASES / 10 {
        let mut soa = ObstacleSoA::new();
        let mut lanes = Vec::new();
        for i in 0..8 {
            let r = rng.random_range(0.01..1.0);
            if i % 3 == 0 {
                let center = vec3(&mut rng);
                soa.push_sphere(center, r);
                lanes.push((Segment::new(center, center), r));
            } else {
                let axis = segment(&mut rng);
                soa.push_capsule(&axis, r);
                lanes.push((axis, r));
            }
        }
        let seg = segment(&mut rng);
        let inflate = rng.random_range(0.0..0.5);
        for chunk in [[0u32, 1, 2, 3], [4, 5, 6, 7], [3, 3, 0, 6]] {
            let batch = segment_capsule_distance_x4(&soa, &seg, inflate, &chunk);
            for (slot, &lane) in chunk.iter().enumerate() {
                let (axis, r) = &lanes[lane as usize];
                let raw = if axis.a == axis.b {
                    seg.distance_to_point(axis.a)
                } else {
                    seg.distance_to_segment(axis)
                };
                let scalar = (raw - inflate) - r;
                assert_eq!(
                    batch[slot].to_bits(),
                    scalar.to_bits(),
                    "capsule lane {lane} diverged from scalar"
                );
            }
        }
    }
}
