//! Configuring RABIT from JSON, the way a lab researcher does (§II-C and
//! the §V-A pilot study): load the template, validate it, build the
//! catalog + custom rules, and run a guarded workflow — then watch the
//! validator catch participant P's sign error.
//!
//! ```text
//! cargo run --example configuration
//! ```

use rabit::config::{template, to_catalog, validate, IssueLevel, LabConfig};
use rabit::core::{Rabit, RabitConfig};
use rabit::rulebase::Rulebase;
use rabit::testbed::{workflows, Testbed};
use rabit::tracer::Tracer;

fn main() {
    // 1. Load and validate the JSON configuration.
    let json = template::testbed_template_json();
    let config = LabConfig::from_json(&json).expect("template parses");
    let issues = validate(&config);
    println!(
        "configuration '{}': {} devices, {} findings",
        config.lab_name,
        config.devices.len(),
        issues.len()
    );
    for issue in &issues {
        println!("  {issue}");
    }
    assert!(issues.iter().all(|i| i.level != IssueLevel::Error));

    // 2. Build the catalog and custom rules from JSON, then a RABIT
    //    engine over them.
    let (catalog, custom_rules) = to_catalog(&config).expect("valid configuration");
    let mut rulebase = Rulebase::standard();
    rulebase.extend(custom_rules);
    let mut rabit = Rabit::new(rulebase, catalog, RabitConfig::default());

    // 3. Drive the physical testbed with the JSON-configured engine.
    let mut tb = Testbed::new();
    let wf = workflows::fig5_safe_workflow(&tb.locations);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    println!(
        "\nFig. 5 workflow under the JSON-configured RABIT: {} commands, alert: {:?}",
        report.executed, report.alert
    );
    assert!(report.completed());

    // 4. Participant P's sign error: caught before it costs four hours.
    let corrupted = json.replace(
        "\"home_location\": [0.30, 0.0, 0.30]",
        "\"home_location\": [0.30, 0.0, -0.30]",
    );
    let broken = LabConfig::from_json(&corrupted).expect("still syntactically valid");
    let errors: Vec<String> = validate(&broken)
        .into_iter()
        .filter(|i| i.level == IssueLevel::Error)
        .map(|i| i.to_string())
        .collect();
    println!("\nP's sign error, as the validator sees it:");
    for e in &errors {
        println!("  {e}");
    }
    assert!(!errors.is_empty());
}
