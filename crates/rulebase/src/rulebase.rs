//! The rulebase: the complete set of rules RABIT evaluates per command.

use crate::catalog::DeviceCatalog;
use crate::custom::hein_custom_rules;
use crate::general::general_rules;
use crate::rule::{Rule, RuleCtx, RuleId, Violation};
use rabit_devices::{Command, LabState};

/// A collection of rules evaluated against every intercepted command.
///
/// # Example
///
/// ```
/// use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rulebase};
/// use rabit_devices::{ActionKind, Command, DeviceType, LabState};
///
/// let catalog = DeviceCatalog::new()
///     .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
///     .with(DeviceMeta::new("arm", DeviceType::RobotArm));
/// let rulebase = Rulebase::standard();
/// let cmd = Command::new("arm", ActionKind::MoveInsideDevice { device: "doser".into() });
/// // No door state recorded → conservatively unsafe.
/// let violations = rulebase.check(&cmd, &LabState::new(), &catalog);
/// assert!(!violations.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rulebase {
    rules: Vec<Rule>,
}

impl Rulebase {
    /// An empty rulebase (detects nothing).
    pub fn new() -> Self {
        Rulebase::default()
    }

    /// The standard rulebase: the 11 general rules of Table III.
    pub fn standard() -> Self {
        Rulebase {
            rules: general_rules(),
        }
    }

    /// The Hein-Lab rulebase: general rules plus the 4 custom rules of
    /// Table IV.
    pub fn hein_lab() -> Self {
        let mut rb = Rulebase::standard();
        rb.extend(hein_custom_rules());
        rb
    }

    /// Adds one rule (builder style).
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds one rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Adds many rules.
    pub fn extend(&mut self, rules: impl IntoIterator<Item = Rule>) {
        self.rules.extend(rules);
    }

    /// Removes the rule with the given id, returning `true` if found.
    pub fn remove(&mut self, id: &RuleId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id() != id);
        self.rules.len() != before
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the rulebase has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates every rule against a pending command; returns all
    /// violations. An empty result is the algorithm's
    /// `Valid(S_current, a_next)`.
    pub fn check(
        &self,
        command: &Command,
        state: &LabState,
        catalog: &DeviceCatalog,
    ) -> Vec<Violation> {
        let ctx = RuleCtx { catalog };
        self.rules
            .iter()
            .filter_map(|rule| rule.check(command, state, &ctx))
            .collect()
    }

    /// Like [`Rulebase::check`] but stops at the first violation — the
    /// fast path used in deployment, since RABIT stops the experiment on
    /// the first alert anyway.
    pub fn check_first(
        &self,
        command: &Command,
        state: &LabState,
        catalog: &DeviceCatalog,
    ) -> Option<Violation> {
        let ctx = RuleCtx { catalog };
        self.rules
            .iter()
            .find_map(|rule| rule.check(command, state, &ctx))
    }
}

impl Extend<Rule> for Rulebase {
    fn extend<I: IntoIterator<Item = Rule>>(&mut self, iter: I) {
        self.rules.extend(iter);
    }
}

impl FromIterator<Rule> for Rulebase {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        Rulebase {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DeviceMeta;
    use rabit_devices::{ActionKind, DeviceId, DeviceState, DeviceType, StateKey};

    fn catalog() -> DeviceCatalog {
        DeviceCatalog::new()
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("arm", DeviceType::RobotArm))
            .with(
                DeviceMeta::new("centrifuge", DeviceType::ActionDevice)
                    .with_door()
                    .with_tag("centrifuge"),
            )
    }

    fn closed_door_state() -> LabState {
        let mut s = LabState::new();
        s.insert("doser", DeviceState::new().with(StateKey::DoorOpen, false));
        s.insert(
            "arm",
            DeviceState::new()
                .with(StateKey::Holding, None::<DeviceId>)
                .with(StateKey::InsideOf, None::<DeviceId>),
        );
        s
    }

    #[test]
    fn sizes() {
        assert_eq!(Rulebase::standard().len(), 11);
        assert_eq!(Rulebase::hein_lab().len(), 15);
        assert!(Rulebase::new().is_empty());
    }

    #[test]
    fn check_collects_all_violations() {
        let rb = Rulebase::hein_lab();
        let cat = catalog();
        let state = closed_door_state();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        let violations = rb.check(&cmd, &state, &cat);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, RuleId::General(1));
        assert_eq!(
            rb.check_first(&cmd, &state, &cat).unwrap().rule,
            RuleId::General(1)
        );
    }

    #[test]
    fn empty_rulebase_detects_nothing() {
        let rb = Rulebase::new();
        let cat = catalog();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        assert!(rb.check(&cmd, &closed_door_state(), &cat).is_empty());
        assert!(rb.check_first(&cmd, &closed_door_state(), &cat).is_none());
    }

    #[test]
    fn removal_by_id() {
        let mut rb = Rulebase::standard();
        assert!(rb.remove(&RuleId::General(1)));
        assert_eq!(rb.len(), 10);
        assert!(!rb.remove(&RuleId::General(1)));
        let cat = catalog();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        assert!(rb.check(&cmd, &closed_door_state(), &cat).is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let rules = crate::general::general_rules();
        let rb: Rulebase = rules.into_iter().collect();
        assert_eq!(rb.len(), 11);
        let mut rb2 = Rulebase::new();
        rb2.extend(crate::custom::hein_custom_rules());
        assert_eq!(rb2.len(), 4);
        let rb3 = Rulebase::new().with_rule(crate::general::rule_4_no_double_pick());
        assert_eq!(rb3.len(), 1);
    }

    #[test]
    fn multiple_violations_reported_together() {
        // Placing an empty, uncapped vial into a misaligned centrifuge
        // violates C2, C3, and C4 at once.
        let rb = Rulebase::hein_lab();
        let cat = catalog();
        let mut state = closed_door_state();
        state.insert(
            "vial",
            DeviceState::new()
                .with(StateKey::SolidMg, 0.0)
                .with(StateKey::LiquidMl, 0.0)
                .with(StateKey::HasStopper, false),
        );
        state.insert(
            "centrifuge",
            DeviceState::new().with(StateKey::RedDotNorth, false),
        );
        let cmd = Command::new(
            "arm",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("centrifuge".into()),
            },
        );
        let violations = rb.check(&cmd, &state, &cat);
        assert_eq!(violations.len(), 3);
        let ids: Vec<String> = violations.iter().map(|v| v.rule.to_string()).collect();
        assert!(ids.contains(&"custom:2".to_string()));
        assert!(ids.contains(&"custom:3".to_string()));
        assert!(ids.contains(&"custom:4".to_string()));
    }
}
