//! Property test: the Lipschitz motion bound is genuinely conservative.
//!
//! For random in-limit configuration pairs on all three arm presets, the
//! observed displacement of sampled capsule surface points never exceeds
//! `MotionBound::max_move(q_a, q_b)` — neither for the end configurations
//! (where wrapped deltas apply) nor for intermediate configurations along
//! the interpolated path (bounded by the accumulated raw variation).

use rabit_geometry::Capsule;
use rabit_kinematics::{presets, ArmModel, HeldObject, JointConfig};
use rabit_util::Rng;

/// Distance from a point to a capsule *as a set* (zero inside). This is the
/// quantity the conservative-advancement argument bounds: every surface
/// point of the displaced capsule stays within `max_move` of the original
/// capsule, radius included.
fn point_to_capsule(p: rabit_geometry::Vec3, c: &Capsule) -> f64 {
    (c.segment.distance_to_point(p) - c.radius).max(0.0)
}

/// Sampled material/surface points of one capsule: the two segment
/// endpoints, interior axis points, and surface points offset by the radius
/// in several fixed world directions (the capsule surface is a union of
/// balls around axis points, so `axis ± r·u` lies on or inside the surface
/// for any unit `u`).
fn surface_points(c: &Capsule, out: &mut Vec<rabit_geometry::Vec3>) {
    use rabit_geometry::Vec3;
    out.clear();
    let dirs = [
        Vec3::new(1.0, 0.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        Vec3::new(0.0, 0.0, 1.0),
        Vec3::new(-0.577350269, 0.577350269, 0.577350269),
    ];
    for k in 0..=3 {
        let axis_pt = c.segment.point_at(k as f64 / 3.0);
        out.push(axis_pt);
        for d in dirs {
            out.push(axis_pt + d * c.radius);
        }
    }
}

fn random_config(rng: &mut Rng, arm: &ArmModel) -> JointConfig {
    let mut q = [0.0; 6];
    for (a, l) in q.iter_mut().zip(arm.limits().iter()) {
        // Stay within ±π of zero even for ±2π joints so raw interpolation
        // stress-tests wrapping rather than multi-turn windup.
        let lo = l.min.max(-std::f64::consts::PI);
        let hi = l.max.min(std::f64::consts::PI);
        *a = lo + (hi - lo) * rng.random_f64();
    }
    JointConfig::new(q)
}

fn check_arm(arm: &ArmModel, held: Option<&HeldObject>, seed: u64, pairs: usize) {
    let bound = arm.motion_bound(held);
    let mut rng = Rng::seed_from_u64(seed);
    let mut caps_a = Vec::new();
    let mut caps_b = Vec::new();
    let mut pts = Vec::new();
    for trial in 0..pairs {
        let qa = random_config(&mut rng, arm);
        let qb = random_config(&mut rng, arm);
        arm.link_capsules_into(&qa, held, &mut caps_a);

        // End-to-end: every surface point of every capsule at q_b stays
        // within max_move of the matching capsule at q_a.
        let budget = bound.max_move(&qa, &qb);
        arm.link_capsules_into(&qb, held, &mut caps_b);
        for (l, cb) in caps_b.iter().enumerate() {
            surface_points(cb, &mut pts);
            for &p in &pts {
                let d = point_to_capsule(p, &caps_a[l]);
                assert!(
                    d <= budget + 1e-9,
                    "{} trial {trial} capsule {l}: displacement {d} > max_move {budget}",
                    arm.name()
                );
            }
            // The per-capsule bound (wrapped deltas) is itself sound and
            // at most the global max_move.
            let per_capsule = bound.capsule_bound(l, &bound.abs_deltas(&qa, &qb));
            assert!(per_capsule <= budget + 1e-12);
        }

        // Along the raw interpolated path (what executed trajectories do):
        // the accumulated raw variation bounds each intermediate sample.
        for step in 1..=4 {
            let t = step as f64 / 4.0;
            let qt = qa.lerp(&qb, t);
            let raw: [f64; 6] = std::array::from_fn(|j| (qt.angle(j) - qa.angle(j)).abs());
            arm.link_capsules_into(&qt, held, &mut caps_b);
            for (l, cb) in caps_b.iter().enumerate() {
                let budget = bound.capsule_bound(l, &raw);
                surface_points(cb, &mut pts);
                for &p in &pts {
                    let d = point_to_capsule(p, &caps_a[l]);
                    assert!(
                        d <= budget + 1e-9,
                        "{} trial {trial} t={t} capsule {l}: {d} > {budget}",
                        arm.name()
                    );
                }
            }
        }
    }
}

#[test]
fn lipschitz_bound_is_conservative_on_all_presets() {
    let vial = HeldObject::vial();
    for (seed, arm) in [presets::ur3e(), presets::viperx300(), presets::ned2()]
        .into_iter()
        .enumerate()
    {
        check_arm(&arm, None, 0xC0FFEE + seed as u64, 60);
        check_arm(&arm, Some(&vial), 0xBEEF + seed as u64, 40);
    }
}

#[test]
fn wrapped_max_move_covers_full_circle_shortcuts() {
    // A pair that differs by nearly 2π on the ViperX full-circle base joint:
    // the wrapped bound is small, and the true end-to-end displacement is
    // smaller still.
    let arm = presets::viperx300();
    let bound = arm.motion_bound(None);
    let qa = JointConfig::new([3.10, -0.4, 0.5, 0.0, 0.3, 0.0]);
    let qb = JointConfig::new([-3.10, -0.4, 0.5, 0.0, 0.3, 0.0]);
    let budget = bound.max_move(&qa, &qb);
    assert!(budget < 0.1, "wrapped bound should be small, got {budget}");
    let ca = arm.link_capsules(&qa, None);
    let cb = arm.link_capsules(&qb, None);
    let mut pts = Vec::new();
    for (l, c) in cb.iter().enumerate() {
        surface_points(c, &mut pts);
        for &p in &pts {
            assert!(point_to_capsule(p, &ca[l]) <= budget + 1e-9);
        }
    }
}
