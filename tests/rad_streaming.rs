//! The full streaming-RAD loop, end to end at the workspace root:
//!
//! lab conventions drift mid-stream → the online miner's decayed
//! counters log the collapse and the emergence → the promoter commits
//! the currently-qualifying rules into a live `RuleStore` epoch → a
//! fleet run through `run_fleet_on_live` validates against exactly that
//! epoch and blocks the workflow that still follows the old convention.
//!
//! No rule in this test is hand-written: the tenant starts from an empty
//! rulebase, so every detection is a mined rule doing its job.

use rabit::core::{Lab, Stage, Substrate};
use rabit::devices::{DeviceType, DosingDevice, RobotArm, Vial};
use rabit::geometry::{Aabb, Vec3};
use rabit::rad::{
    DriftEvent, MineParams, OnlineMiner, RadGenParams, RulePromoter, TraceStream, DRIFTED_TRUTH,
};
use rabit::rulebase::{DeviceCatalog, DeviceMeta, Rulebase, RulebaseSnapshot, TenantId};
use rabit::service::RuleStore;
use rabit::tracer::{run_fleet_on_live, Workflow};

struct MiniSubstrate;

impl Substrate for MiniSubstrate {
    fn name(&self) -> &str {
        "mini"
    }
    fn stage(&self) -> Stage {
        Stage::Simulator
    }
    fn build_lab(&self) -> Lab {
        Lab::new()
            .with_device(RobotArm::new(
                "viperx",
                Vec3::new(0.3, 0.0, 0.3),
                Vec3::new(0.1, -0.3, 0.2),
            ))
            .with_device(DosingDevice::new(
                "doser",
                Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
            ))
            .with_device(Vial::new("vial", Vec3::new(0.537, 0.018, 0.12)))
    }
    fn rulebase(&self) -> RulebaseSnapshot {
        // Empty on purpose: only promoted mined rules guard this lab.
        Rulebase::new().into()
    }
    fn catalog(&self) -> DeviceCatalog {
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("viperx", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
            )
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("vial", DeviceType::Container))
    }
}

/// Two jobs: one following the post-drift convention (dose with the
/// door open), one still on the old habit (dose behind a closed door).
fn workflows() -> Vec<Workflow> {
    vec![
        Workflow::new("drift_safe")
            .set_door("doser", true)
            .dose_solid("doser", 12.0, "vial")
            .move_inside("viperx", "doser")
            .move_out("viperx")
            .set_door("doser", false),
        Workflow::new("old_habit")
            .dose_solid("doser", 12.0, "vial")
            .set_door("doser", true)
            .move_inside("viperx", "doser")
            .move_out("viperx"),
    ]
}

#[test]
fn drift_mines_promotes_and_guards_the_next_fleet_epoch() {
    // --- Stream through the drift (conventions flip at session 400). ---
    let params = RadGenParams::new().with_sessions(800).with_drift_at(400);
    let mut miner = OnlineMiner::new(MineParams::default());
    for trace in TraceStream::new(&params) {
        miner.observe_trace(&trace);
    }

    // The decayed window logs the convention change as typed events...
    let collapses: Vec<&DriftEvent> = miner
        .drift_events()
        .iter()
        .filter(|e| e.is_collapse())
        .collect();
    assert!(
        collapses
            .iter()
            .any(|e| e.name() == "start_running_requires_door_open=false"),
        "old dosing convention collapses: {collapses:?}"
    );
    assert!(
        miner
            .drift_events()
            .iter()
            .any(|e| !e.is_collapse() && e.name() == "start_running_requires_door_open=true"),
        "new dosing convention emerges"
    );

    // ...and the currently-qualifying rule set is the drifted truth.
    let qualifying = miner.decayed_rules();
    let names: Vec<&str> = qualifying.iter().map(|r| r.name()).collect();
    for truth in DRIFTED_TRUTH {
        assert!(names.contains(&truth), "{truth} qualifies after drift");
    }

    // --- Fleet on the un-promoted store: nothing guards the lab. ---
    let tenant = TenantId::new("hein");
    let store = RuleStore::new();
    store.seed_tenant(tenant.clone(), Rulebase::new());

    let sub = MiniSubstrate;
    let wfs = workflows();
    let jobs: Vec<(&dyn Substrate, &Workflow)> = wfs.iter().map(|w| (&sub as _, w)).collect();

    let before = run_fleet_on_live(&jobs, 2, &store, &tenant);
    assert_eq!(
        before.completed_runs(),
        2,
        "empty epoch 0 rulebase blocks nothing"
    );
    assert!(before.runs.iter().all(|r| r.rulebase_epoch == 0));

    // --- Promote: mined rules become the tenant's next epoch. ---
    let outcome = RulePromoter::new(tenant.clone())
        .promote(&qualifying, &store)
        .expect("promotion against a seeded tenant");
    assert!(outcome.epoch >= 1, "promotion published a fresh epoch");
    assert_eq!(outcome.created.len(), qualifying.len());
    assert_eq!(store.epoch_of(&tenant), Some(outcome.epoch));

    // --- The next fleet validates against the promoted epoch. ---
    let after = run_fleet_on_live(&jobs, 2, &store, &tenant);
    assert!(
        after.runs.iter().all(|r| r.rulebase_epoch == outcome.epoch),
        "every run validated against the promoted epoch"
    );
    assert_eq!(
        after.completed_runs(),
        1,
        "the old-habit workflow is now blocked"
    );
    let blocked = after
        .runs
        .iter()
        .find(|r| !r.report.completed())
        .expect("one blocked run");
    assert_eq!(blocked.workflow, "old_habit");
    let alert = blocked
        .report
        .alert
        .as_ref()
        .expect("blocked run carries an alert")
        .to_string();
    assert!(
        alert.contains("mined:start_running_requires_door_open=true"),
        "the emerged mined rule raised the alert: {alert}"
    );

    // Re-promoting the same rule set publishes nothing new; the fleet
    // epoch is stable.
    let again = RulePromoter::new(tenant.clone())
        .promote(&qualifying, &store)
        .unwrap();
    assert_eq!(again.epoch, outcome.epoch);
    let stable = run_fleet_on_live(&jobs, 2, &store, &tenant);
    assert!(stable
        .runs
        .iter()
        .all(|r| r.rulebase_epoch == outcome.epoch));
}
