//! The Fig. 5 testbed workflow: "a safe testbed workflow based on the
//! automated solubility experiment shown in Fig. 1(b)".

use crate::locations::Locations;
use rabit_devices::{ActionKind, Command};
use rabit_tracer::Workflow;

/// Builds the safe Fig. 5 workflow over the given location table.
///
/// Sequence (matching the figure, with explicit enter/exit steps for the
/// dosing device and an initial Ned2 park so time multiplexing holds):
///
/// 1. park Ned2; open the dosing-device door; decap the vial;
/// 2. ViperX homes, picks the vial from grid NW, carries it to the
///    dosing device, and places it inside;
/// 3. door closes, the device doses 5 mg, stops, door re-opens;
/// 4. ViperX retrieves the vial and returns it to grid NW;
/// 5. Ned2's stray `move_pose` slot sits here in the buggy variants;
/// 6. door closes; ViperX homes and goes to sleep;
/// 7. Ned2 picks the vial from the grid.
pub fn fig5_safe_workflow(loc: &Locations) -> Workflow {
    let grid = loc.grid_nw_viperx;
    let dose = loc.dosing_viperx;
    Workflow::new("fig5_safe")
        // -- setup --
        .go_to_sleep("ned2")
        .set_door("dosing_device", true)
        .decap("vial")
        .go_home("viperx")
        // -- pick the vial from grid NW --
        .move_to("viperx", grid.pickup_safe_height)
        .pick_up("viperx", "vial", grid.pickup)
        .move_to("viperx", grid.pickup_safe_height)
        // -- place it into the dosing device --
        .move_to("viperx", dose.approach)
        .move_inside("viperx", "dosing_device")
        .then(Command::new(
            "viperx",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("dosing_device".into()),
            },
        ))
        .move_out("viperx")
        .go_home("viperx")
        // -- dose --
        .set_door("dosing_device", false)
        .start_action("dosing_device", 5.0)
        .stop_action("dosing_device")
        .set_door("dosing_device", true) // Bug A deletes this line
        // -- retrieve the vial --
        .move_to("viperx", dose.approach)
        .move_inside("viperx", "dosing_device")
        .then(Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .move_out("viperx")
        // -- return it to grid NW --
        .move_to("viperx", grid.pickup_safe_height)
        .place_at("viperx", "vial", grid.pickup)
        .move_to("viperx", grid.pickup_safe_height)
        // (Bug B inserts ned2.move_pose(random_location) here, while
        // ViperX is stationed above the grid.)
        // -- wind down --
        .set_door("dosing_device", false)
        .go_home("viperx")
        .go_to_sleep("viperx")
        // -- Ned2 collects the vial --
        .move_to("ned2", loc.grid_nw_ned2.pickup_safe_height)
        .pick_up("ned2", "vial", loc.grid_nw_ned2.pickup)
        .move_to("ned2", loc.grid_nw_ned2.pickup_safe_height)
        .go_home("ned2")
}

/// The index (in the safe workflow) of the door re-open step that Bug A
/// deletes.
pub fn door_reopen_index(wf: &Workflow) -> usize {
    // The second `open_door` in the sequence.
    wf.commands()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.to_string() == "dosing_device.open_door")
        .map(|(i, _)| i)
        .nth(1)
        .expect("workflow has two open_door steps")
}

/// The index after ViperX's final move above the grid, where Bug B's
/// stray Ned2 move is inserted.
pub fn bug_b_insertion_index(wf: &Workflow) -> usize {
    // After the last viperx move to grid safe height, before close_door.
    wf.commands()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.to_string() == "dosing_device.close_door")
        .map(|(i, _)| i)
        .next_back()
        .expect("workflow closes the door at the end")
}

/// The index of ViperX's first pick (`pick_object(vial)` from the grid),
/// which Bug C deletes (together with its approach move).
pub fn first_pick_index(wf: &Workflow) -> usize {
    wf.find("viperx.pick_object")
        .expect("workflow picks the vial")
}

/// A second-arm parking preamble used when running fragments.
pub fn park_all() -> Workflow {
    Workflow::new("park_all")
        .go_to_sleep("ned2")
        .go_home("viperx")
}

/// Quick smoke workflow touching doors, caps, and both arms (everything
/// rule-safe: no substance handling, so no custom-rule preconditions are
/// involved).
pub fn device_tour(loc: &Locations) -> Workflow {
    let grid = loc.grid_nw_viperx;
    Workflow::new("device_tour")
        .go_to_sleep("ned2")
        .go_home("viperx")
        .decap("vial")
        .cap("vial")
        .set_door("centrifuge", true)
        .set_door("centrifuge", false)
        .move_to("viperx", grid.pickup_safe_height)
        .pick_up("viperx", "vial", grid.pickup)
        .move_to("viperx", grid.pickup_safe_height)
        .place_at("viperx", "vial", grid.pickup)
        .go_home("viperx")
        .go_to_sleep("viperx")
        .go_home("ned2")
        .go_to_sleep("ned2")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{RabitStage, Testbed};
    use rabit_tracer::Tracer;

    #[test]
    fn safe_workflow_structure() {
        let tb = Testbed::new();
        let wf = fig5_safe_workflow(&tb.locations);
        assert!(wf.len() > 25);
        assert!(door_reopen_index(&wf) > 0);
        assert!(bug_b_insertion_index(&wf) > door_reopen_index(&wf));
        assert!(first_pick_index(&wf) < door_reopen_index(&wf));
    }

    #[test]
    fn safe_workflow_completes_under_baseline() {
        let mut tb = Testbed::new();
        let mut rabit = tb.rabit(RabitStage::Baseline);
        let report =
            Tracer::guarded(&mut tb.lab, &mut rabit).run(&fig5_safe_workflow(&tb.locations));
        assert!(
            report.completed(),
            "false positive under baseline: {:?}",
            report.alert
        );
        assert!(tb.lab.damage_log().is_empty());
    }

    #[test]
    fn safe_workflow_completes_under_modified() {
        let mut tb = Testbed::new();
        let mut rabit = tb.rabit(RabitStage::Modified);
        let report =
            Tracer::guarded(&mut tb.lab, &mut rabit).run(&fig5_safe_workflow(&tb.locations));
        assert!(
            report.completed(),
            "false positive under modified: {:?}",
            report.alert
        );
    }

    #[test]
    fn safe_workflow_completes_with_simulator() {
        let mut tb = Testbed::new();
        let mut rabit = tb.rabit(RabitStage::ModifiedWithSimulator);
        let report =
            Tracer::guarded(&mut tb.lab, &mut rabit).run(&fig5_safe_workflow(&tb.locations));
        assert!(
            report.completed(),
            "false positive with simulator: {:?}",
            report.alert
        );
    }

    #[test]
    fn device_tour_completes() {
        let mut tb = Testbed::new();
        let mut rabit = tb.rabit(RabitStage::Modified);
        let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&device_tour(&tb.locations));
        assert!(report.completed(), "alert: {:?}", report.alert);
        assert!(tb.lab.damage_log().is_empty());
    }

    #[test]
    fn solid_reaches_the_vial_in_the_safe_run() {
        let mut tb = Testbed::new();
        let mut rabit = tb.rabit(RabitStage::Baseline);
        let _ = Tracer::guarded(&mut tb.lab, &mut rabit).run(&fig5_safe_workflow(&tb.locations));
        let vial = tb.lab.device(&"vial".into()).unwrap().as_vial().unwrap();
        assert_eq!(vial.solid_mg(), 5.0, "the dose must land in the vial");
    }
}
