//! The JSON configuration schema.
//!
//! "The lab researcher configures RABIT for their lab by instantiating
//! their devices in the JSON files that we provide. They must categorize
//! each device into its device type and enter its properties, including
//! the class name that provides the device's APIs and additional
//! properties (such as the presence and position of a door)." (§II-C)

use rabit_geometry::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// A 3D point in configuration form.
pub type Point = [f64; 3];

/// An axis-aligned box in configuration form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxConfig {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl BoxConfig {
    /// Converts to a geometry box (corners are normalised).
    pub fn to_aabb(self) -> Aabb {
        Aabb::new(Vec3::from_array(self.min), Vec3::from_array(self.max))
    }
}

/// Device connection parameters ("RABIT also maintains a list of device
/// connection parameters … to fetch the state of all devices", §II-C).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConnectionConfig {
    /// Transport address (serial port, IP:port, …).
    #[serde(default)]
    pub address: String,
    /// Protocol name.
    #[serde(default)]
    pub protocol: String,
}

/// One device entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Unique device id.
    pub id: String,
    /// Taxonomy type: `"container"`, `"robot_arm"`, `"dosing_system"`,
    /// `"action_device"`, or `"custom:<name>"`.
    #[serde(rename = "type")]
    pub device_type: String,
    /// The Python class exposing the device's APIs (documentation field,
    /// mirrored from the paper's configuration).
    #[serde(default)]
    pub class_name: Option<String>,
    /// Whether the device has a door.
    #[serde(default)]
    pub has_door: bool,
    /// Free-form tags targeted by custom rules.
    #[serde(default)]
    pub tags: Vec<String>,
    /// Firmware threshold on the action value.
    #[serde(default)]
    pub action_threshold: Option<f64>,
    /// Whether the action device hosts a container while running (default
    /// true; spray nozzles and X-ray sources set false — rules III-5/6
    /// only bind hosting devices).
    #[serde(default = "default_true")]
    pub hosts_container: bool,
    /// Stationary footprint cuboid.
    #[serde(default)]
    pub footprint: Option<BoxConfig>,
    /// Robot arms: home tool position.
    #[serde(default)]
    pub home_location: Option<Point>,
    /// Robot arms: sleep tool position.
    #[serde(default)]
    pub sleep_location: Option<Point>,
    /// Robot arms: the cuboid a sleeping arm occupies.
    #[serde(default)]
    pub sleep_volume: Option<BoxConfig>,
    /// Robot arms: allowed region under space multiplexing.
    #[serde(default)]
    pub allowed_region: Option<BoxConfig>,
    /// Labels of the commands that execute actions on this device.
    #[serde(default)]
    pub action_commands: Vec<String>,
    /// Labels of the commands that retrieve the device's state.
    #[serde(default)]
    pub status_commands: Vec<String>,
    /// How RABIT talks to the device.
    #[serde(default)]
    pub connection: Option<ConnectionConfig>,
}

fn default_true() -> bool {
    true
}

/// A custom rule entry. Rules are selected by `kind`, parameterised by
/// tag, matching the crate's custom-rule factories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomRuleConfig {
    /// Rule kind: `"liquid_after_solid"`,
    /// `"centrifuge_needs_solid_and_liquid"`, `"centrifuge_red_dot_north"`,
    /// `"centrifuge_needs_stopper"`.
    pub kind: String,
}

/// The top-level lab configuration file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabConfig {
    /// Lab name (e.g. `"Hein Lab"`).
    pub lab_name: String,
    /// The workspace bounds: every location in the file must fall inside
    /// (the schema guard that would have caught participant P's sign
    /// error, §V-A).
    #[serde(default)]
    pub workspace: Option<BoxConfig>,
    /// All devices on the deck.
    pub devices: Vec<DeviceConfig>,
    /// Lab-specific rules.
    #[serde(default)]
    pub custom_rules: Vec<CustomRuleConfig>,
}

impl LabConfig {
    /// Parses a configuration from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error (with line/column) for
    /// syntax or schema mismatches — the error class that cost the pilot
    /// study "a few JSON syntax errors".
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Serialises to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if serialisation fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Looks up a device entry by id.
    pub fn device(&self, id: &str) -> Option<&DeviceConfig> {
        self.devices.iter().find(|d| d.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> String {
        r#"{
            "lab_name": "Test Lab",
            "devices": [
                {"id": "arm", "type": "robot_arm",
                 "home_location": [0.3, 0.0, 0.3],
                 "sleep_location": [0.1, -0.3, 0.2]},
                {"id": "doser", "type": "dosing_system", "has_door": true,
                 "class_name": "DosingDevice",
                 "footprint": {"min": [0.0, 0.3, 0.0], "max": [0.2, 0.5, 0.3]}}
            ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_minimal_config() {
        let cfg = LabConfig::from_json(&minimal_json()).unwrap();
        assert_eq!(cfg.lab_name, "Test Lab");
        assert_eq!(cfg.devices.len(), 2);
        let doser = cfg.device("doser").unwrap();
        assert!(doser.has_door);
        assert_eq!(doser.class_name.as_deref(), Some("DosingDevice"));
        assert!(cfg.device("ghost").is_none());
        assert!(cfg.custom_rules.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let cfg = LabConfig::from_json(&minimal_json()).unwrap();
        let text = cfg.to_json().unwrap();
        let back = LabConfig::from_json(&text).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn syntax_errors_carry_location() {
        // A missing comma — the pilot study's error class.
        let broken = minimal_json().replace("\"type\": \"robot_arm\",", "\"type\": \"robot_arm\"");
        let err = LabConfig::from_json(&broken).unwrap_err();
        assert!(err.line() > 0);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn box_config_converts() {
        let b = BoxConfig {
            min: [1.0, 1.0, 1.0],
            max: [0.0, 0.0, 0.0],
        };
        let aabb = b.to_aabb();
        assert_eq!(aabb.min(), Vec3::ZERO); // normalised
        assert_eq!(aabb.max(), Vec3::splat(1.0));
    }

    #[test]
    fn unknown_fields_are_rejected_loudly_enough() {
        // serde tolerates unknown fields by default; the schema accepts
        // them, but a *wrong-typed* known field errors.
        let bad = minimal_json().replace("[0.3, 0.0, 0.3]", "\"0.3, 0.0, 0.3\"");
        assert!(LabConfig::from_json(&bad).is_err());
    }
}
