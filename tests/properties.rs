//! Cross-crate property-based tests: random naive-programmer mutations
//! of the safe workflow must never violate RABIT's safety contract.

use proptest::prelude::*;
use rabit::buginject::RabitStage;
use rabit::devices::{ActionKind, Command};
use rabit::geometry::Vec3;
use rabit::testbed::{workflows, Testbed};
use rabit::tracer::{Tracer, Workflow};

/// One random edit in the naive programmer's repertoire: delete a
/// command, swap two commands, corrupt a coordinate, or insert a stray
/// move.
#[derive(Debug, Clone)]
enum Edit {
    Delete(usize),
    Swap(usize, usize),
    CorruptTarget {
        index: usize,
        target: Vec3,
    },
    InsertMove {
        index: usize,
        arm: bool,
        target: Vec3,
    },
}

fn coordinate() -> impl Strategy<Value = Vec3> {
    (-0.6..1.4f64, -0.6..0.7f64, -0.1..0.9f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn edit(len: usize) -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0..len).prop_map(Edit::Delete),
        (0..len, 0..len).prop_map(|(a, b)| Edit::Swap(a, b)),
        (0..len, coordinate()).prop_map(|(index, target)| Edit::CorruptTarget { index, target }),
        (0..=len, any::<bool>(), coordinate()).prop_map(|(index, arm, target)| Edit::InsertMove {
            index,
            arm,
            target
        }),
    ]
}

fn apply(wf: &mut Workflow, edit: &Edit) {
    match edit {
        Edit::Delete(i) => {
            let i = i % wf.len();
            wf.delete(i);
        }
        Edit::Swap(a, b) => {
            let (a, b) = (a % wf.len(), b % wf.len());
            wf.swap(a, b);
        }
        Edit::CorruptTarget { index, target } => {
            let i = index % wf.len();
            let actor = wf.commands()[i].actor.clone();
            wf.replace(
                i,
                Command::new(actor, ActionKind::MoveToLocation { target: *target }),
            );
        }
        Edit::InsertMove { index, arm, target } => {
            let i = index % (wf.len() + 1);
            let actor = if *arm { "viperx" } else { "ned2" };
            wf.insert(
                i,
                Command::new(actor, ActionKind::MoveToLocation { target: *target }),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Safety contract 1: whatever the naive programmer does, a guarded
    /// run never does MORE physical damage than the unguarded run of the
    /// same workflow, and a pre-execution alert leaves the lab unharmed
    /// up to that point.
    #[test]
    fn guarded_damage_never_exceeds_unguarded(edits in prop::collection::vec(edit(30), 1..3)) {
        let template = Testbed::new();
        let mut wf = workflows::fig5_safe_workflow(&template.locations);
        for e in &edits {
            if wf.is_empty() { break; }
            apply(&mut wf, e);
        }
        prop_assume!(!wf.is_empty());

        let mut guarded = Testbed::new();
        let mut rabit = guarded.rabit(RabitStage::Modified);
        let greport = Tracer::guarded(&mut guarded.lab, &mut rabit).run(&wf);

        let mut unguarded = Testbed::new();
        let _ = Tracer::pass_through(&mut unguarded.lab).run(&wf);

        prop_assert!(
            guarded.lab.damage_log().len() <= unguarded.lab.damage_log().len(),
            "edits {edits:?}: guarded {:?} vs unguarded {:?}",
            guarded.lab.damage_log(),
            unguarded.lab.damage_log()
        );

        // Contract 2: if the run was stopped by a precondition or
        // trajectory alert, the stopping command itself did not execute.
        if let Some(alert) = &greport.alert {
            if matches!(alert, rabit::core::Alert::InvalidCommand { .. }
                | rabit::core::Alert::InvalidTrajectory { .. })
            {
                prop_assert_eq!(greport.trace.len(), greport.executed + 1);
            }
        }
    }

    /// Safety contract 3: determinism under mutation — the same mutated
    /// workflow produces the identical guarded outcome every time.
    #[test]
    fn mutated_runs_are_deterministic(edits in prop::collection::vec(edit(30), 1..3)) {
        let template = Testbed::new();
        let mut wf = workflows::fig5_safe_workflow(&template.locations);
        for e in &edits {
            if wf.is_empty() { break; }
            apply(&mut wf, e);
        }
        prop_assume!(!wf.is_empty());

        let run = || {
            let mut tb = Testbed::new();
            let mut rabit = tb.rabit(RabitStage::Modified);
            let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
            (report.executed, report.alert.map(|a| a.to_string()), tb.lab.damage_log().len())
        };
        prop_assert_eq!(run(), run());
    }
}
