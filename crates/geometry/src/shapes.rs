//! Segments, capsules, and spheres: the shapes of robot links and held
//! objects.

use crate::{Vec3, EPSILON};

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Vec3,
    /// End point.
    pub b: Vec3,
}

impl Segment {
    /// Creates a segment between `a` and `b` (degenerate segments with
    /// `a == b` are allowed and behave like points).
    pub const fn new(a: Vec3, b: Vec3) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        (self.b - self.a).norm()
    }

    /// The point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn point_at(&self, t: f64) -> Vec3 {
        self.a.lerp(self.b, t)
    }

    /// Closest point on the segment to `p`, returned with its parameter `t`.
    pub fn closest_point_to(&self, p: Vec3) -> (Vec3, f64) {
        let ab = self.b - self.a;
        let len2 = ab.norm_squared();
        if len2 <= EPSILON * EPSILON {
            return (self.a, 0.0);
        }
        let t = ((p - self.a).dot(ab) / len2).clamp(0.0, 1.0);
        (self.point_at(t), t)
    }

    /// Distance from the segment to a point.
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        (self.closest_point_to(p).0 - p).norm()
    }

    /// Closest pair of points between two segments, returned as
    /// `(point_on_self, point_on_other)`.
    ///
    /// Implements the standard clamped quadratic minimization
    /// (Ericson, *Real-Time Collision Detection*, §5.1.9).
    pub fn closest_points(&self, other: &Segment) -> (Vec3, Vec3) {
        let d1 = self.b - self.a;
        let d2 = other.b - other.a;
        let r = self.a - other.a;
        let a = d1.norm_squared();
        let e = d2.norm_squared();
        let f = d2.dot(r);

        let (s, t);
        if a <= EPSILON && e <= EPSILON {
            // Both segments degenerate to points.
            return (self.a, other.a);
        }
        if a <= EPSILON {
            s = 0.0;
            t = (f / e).clamp(0.0, 1.0);
        } else {
            let c = d1.dot(r);
            if e <= EPSILON {
                t = 0.0;
                s = (-c / a).clamp(0.0, 1.0);
            } else {
                let b = d1.dot(d2);
                let denom = a * e - b * b;
                let mut s_val = if denom.abs() > EPSILON {
                    ((b * f - c * e) / denom).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let mut t_val = (b * s_val + f) / e;
                if t_val < 0.0 {
                    t_val = 0.0;
                    s_val = (-c / a).clamp(0.0, 1.0);
                } else if t_val > 1.0 {
                    t_val = 1.0;
                    s_val = ((b - c) / a).clamp(0.0, 1.0);
                }
                s = s_val;
                t = t_val;
            }
        }
        (self.point_at(s), other.point_at(t))
    }

    /// Minimum distance between two segments.
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        let (p, q) = self.closest_points(other);
        (p - q).norm()
    }
}

/// A capsule: a segment with a radius. Robot-arm links and grippers are
/// modelled as capsules; a held vial extends the wrist capsule (the paper's
/// Bug-D fix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capsule {
    /// Central segment (the link axis).
    pub segment: Segment,
    /// Radius around the segment.
    pub radius: f64,
}

impl Capsule {
    /// Creates a capsule from segment endpoints and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn new(a: Vec3, b: Vec3, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "capsule radius must be finite and non-negative, got {radius}"
        );
        Capsule {
            segment: Segment::new(a, b),
            radius,
        }
    }

    /// Returns a capsule with the radius grown by `margin` (used for the
    /// held-object geometry extension).
    ///
    /// # Panics
    ///
    /// Panics if the resulting radius would be negative.
    pub fn inflated(&self, margin: f64) -> Capsule {
        Capsule::new(self.segment.a, self.segment.b, self.radius + margin)
    }

    /// Returns `true` if `p` lies inside (or on) the capsule surface.
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.segment.distance_to_point(p) <= self.radius
    }

    /// Distance between the *surfaces* of two capsules (negative when they
    /// interpenetrate).
    pub fn distance_to_capsule(&self, other: &Capsule) -> f64 {
        self.segment.distance_to_segment(&other.segment) - self.radius - other.radius
    }

    /// Returns `true` if the two capsules overlap or touch.
    pub fn intersects_capsule(&self, other: &Capsule) -> bool {
        self.distance_to_capsule(other) <= 0.0
    }

    /// The tight axis-aligned bound of the capsule (endpoints inflated by
    /// the radius) — the probe shape for broad-phase queries.
    pub fn bounding_box(&self) -> crate::Aabb {
        let r = Vec3::splat(self.radius);
        crate::Aabb::new(
            self.segment.a.min(self.segment.b) - r,
            self.segment.a.max(self.segment.b) + r,
        )
    }
}

/// A sphere, used for simple held objects and end-effector proximity zones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Center.
    pub center: Vec3,
    /// Radius.
    pub radius: f64,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn new(center: Vec3, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "sphere radius must be finite and non-negative, got {radius}"
        );
        Sphere { center, radius }
    }

    /// Returns `true` if `p` lies inside or on the sphere.
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.center.distance(p) <= self.radius
    }

    /// Returns `true` if the two spheres overlap or touch.
    pub fn intersects_sphere(&self, other: &Sphere) -> bool {
        self.center.distance(other.center) <= self.radius + other.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_length_and_interpolation() {
        let s = Segment::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0));
        assert_eq!(s.length(), 2.0);
        assert_eq!(s.point_at(0.25), Vec3::new(0.0, 0.0, 0.5));
    }

    #[test]
    fn closest_point_on_segment() {
        let s = Segment::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        // Projection inside the segment.
        let (p, t) = s.closest_point_to(Vec3::new(0.5, 1.0, 0.0));
        assert_eq!(p, Vec3::new(0.5, 0.0, 0.0));
        assert_eq!(t, 0.5);
        // Projection clamped to the endpoints.
        let (p, t) = s.closest_point_to(Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(p, Vec3::ZERO);
        assert_eq!(t, 0.0);
        let (p, t) = s.closest_point_to(Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(p, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(t, 1.0);
    }

    #[test]
    fn degenerate_segment_behaves_like_point() {
        let s = Segment::new(Vec3::splat(1.0), Vec3::splat(1.0));
        assert_eq!(s.closest_point_to(Vec3::ZERO).0, Vec3::splat(1.0));
        assert!((s.distance_to_point(Vec3::ZERO) - 3.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn segment_segment_distance_parallel() {
        let a = Segment::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let b = Segment::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 1.0, 0.0));
        assert!((a.distance_to_segment(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_segment_distance_crossing() {
        // Skew segments crossing at right angles with 1.0 vertical gap.
        let a = Segment::new(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        let b = Segment::new(Vec3::new(0.0, -1.0, 1.0), Vec3::new(0.0, 1.0, 1.0));
        assert!((a.distance_to_segment(&b) - 1.0).abs() < 1e-12);
        // Actually intersecting segments have distance 0.
        let c = Segment::new(Vec3::new(0.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        assert!(a.distance_to_segment(&c) < 1e-12);
    }

    #[test]
    fn segment_segment_distance_endpoint_cases() {
        let a = Segment::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let b = Segment::new(Vec3::new(3.0, 0.0, 0.0), Vec3::new(4.0, 0.0, 0.0));
        assert!((a.distance_to_segment(&b) - 2.0).abs() < 1e-12);
        // Degenerate vs regular.
        let p = Segment::new(Vec3::new(0.5, 2.0, 0.0), Vec3::new(0.5, 2.0, 0.0));
        assert!((a.distance_to_segment(&p) - 2.0).abs() < 1e-12);
        // Degenerate vs degenerate.
        let q = Segment::new(Vec3::ZERO, Vec3::ZERO);
        let r = Segment::new(Vec3::new(0.0, 3.0, 4.0), Vec3::new(0.0, 3.0, 4.0));
        assert!((q.distance_to_segment(&r) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn capsule_containment_and_intersection() {
        let c = Capsule::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), 0.1);
        assert!(c.contains_point(Vec3::new(0.05, 0.0, 0.5)));
        assert!(!c.contains_point(Vec3::new(0.2, 0.0, 0.5)));
        let d = Capsule::new(Vec3::new(0.15, 0.0, 0.0), Vec3::new(0.15, 0.0, 1.0), 0.1);
        assert!(c.intersects_capsule(&d));
        let e = Capsule::new(Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.5, 0.0, 1.0), 0.1);
        assert!(!c.intersects_capsule(&e));
        assert!((c.distance_to_capsule(&e) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn capsule_inflation_models_held_object() {
        // Wrist capsule; holding a vial of radius 0.014 m extends it.
        let wrist = Capsule::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 0.1), 0.03);
        let with_vial = wrist.inflated(0.014);
        let p = Vec3::new(0.04, 0.0, 0.05);
        assert!(!wrist.contains_point(p));
        assert!(with_vial.contains_point(p));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capsule_radius_panics() {
        let _ = Capsule::new(Vec3::ZERO, Vec3::X, -0.1);
    }

    #[test]
    fn spheres() {
        let a = Sphere::new(Vec3::ZERO, 1.0);
        let b = Sphere::new(Vec3::new(1.5, 0.0, 0.0), 0.4);
        assert!(a.contains_point(Vec3::new(0.5, 0.5, 0.5)));
        assert!(!a.intersects_sphere(&b));
        let c = Sphere::new(Vec3::new(1.2, 0.0, 0.0), 0.4);
        assert!(a.intersects_sphere(&c));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sphere_radius_panics() {
        let _ = Sphere::new(Vec3::ZERO, f64::NEG_INFINITY);
    }
}
