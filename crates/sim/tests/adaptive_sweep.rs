//! Differential test: the adaptive conservative-advancement sweep must
//! be invisible. Three [`ExtendedSimulator`]s — dense sampling, the
//! adaptive kernel with whole-arm certificates off, and the full
//! batched kernel with certificates on — driven with identical command
//! streams over identical worlds, must return bit-identical verdicts —
//! including the full [`CollisionReport`] payload (obstacle, link,
//! contact point, and the triggering sample's fraction) — and mirror
//! the same arm pose at every step. The adaptive kernels may only
//! differ in *how much work* they do: every kernel must partition the
//! same polling grid between checked and skipped samples.
//!
//! [`CollisionReport`]: rabit_core::CollisionReport

use rabit_core::{TrajectoryValidator, TrajectoryVerdict};
use rabit_devices::{ActionKind, Command, DeviceId, DeviceState, LabState, StateKey};
use rabit_geometry::{Aabb, Sphere, Vec3};
use rabit_kinematics::presets;
use rabit_sim::{ExtendedSimulator, ObstacleShape, SimConfig, SimWorld, VerticalCylinder};
use rabit_util::Rng;

const WORLDS: usize = 120;
const COMMANDS_PER_WORLD: usize = 3;

/// The three kernel configurations under differential test.
#[derive(Clone, Copy)]
enum Mode {
    Dense,
    /// Adaptive skipping on the batched distance kernel, certificates off.
    Adaptive,
    /// The full kernel: adaptive skipping plus whole-arm certificates.
    Certified,
}

fn sim(world: SimWorld, mode: Mode) -> ExtendedSimulator {
    ExtendedSimulator::new(
        world,
        SimConfig {
            gui: false,
            // No verdict cache: every command must really sweep.
            verdict_cache: false,
            dense_sampling: matches!(mode, Mode::Dense),
            whole_arm_certificate: matches!(mode, Mode::Certified),
            ..SimConfig::default()
        },
    )
    .with_arm("ur3e", presets::ur3e())
}

fn state() -> LabState {
    let mut s = LabState::new();
    s.insert(
        "ur3e",
        DeviceState::new().with(StateKey::Holding, None::<DeviceId>),
    );
    s
}

fn shape(rng: &mut Rng, c: Vec3) -> ObstacleShape {
    match rng.random_range(0..10u32) {
        // Mostly cuboids — the paper's device model.
        0..=6 => ObstacleShape::Cuboid(Aabb::from_center_half_extents(
            c,
            Vec3::new(
                rng.random_range(0.02..0.12),
                rng.random_range(0.02..0.12),
                rng.random_range(0.02..0.12),
            ),
        )),
        7 => ObstacleShape::Hemisphere {
            base_center: c,
            radius: rng.random_range(0.03..0.15),
        },
        8 => ObstacleShape::Sphere(Sphere::new(c, rng.random_range(0.03..0.15))),
        _ => ObstacleShape::Cylinder(VerticalCylinder {
            base: c,
            radius: rng.random_range(0.03..0.1),
            height: rng.random_range(0.05..0.3),
        }),
    }
}

/// A cluttered deck: obstacles scattered through the arm's workspace
/// shell so trajectories graze, clear, and strike them in roughly equal
/// measure.
fn random_world(rng: &mut Rng) -> SimWorld {
    let mut w = SimWorld::new();
    let n = rng.random_range(1..7usize);
    for i in 0..n {
        let c = Vec3::new(
            rng.random_range(-0.6..0.6),
            rng.random_range(-0.6..0.6),
            rng.random_range(0.0..0.6),
        );
        w = w.with_shaped_obstacle(format!("dev{i}"), shape(rng, c));
    }
    w
}

fn random_command(rng: &mut Rng) -> Command {
    match rng.random_range(0..8u32) {
        0 => Command::new("ur3e", ActionKind::MoveHome),
        1 => Command::new("ur3e", ActionKind::MoveToSleep),
        _ => {
            // Targets in the reachable shell, biased toward the clutter.
            let r = rng.random_range(0.2..0.5);
            let theta = rng.random_range(0.0..std::f64::consts::TAU);
            let target = Vec3::new(
                r * theta.cos(),
                r * theta.sin(),
                rng.random_range(0.05..0.5),
            );
            Command::new("ur3e", ActionKind::MoveToLocation { target })
        }
    }
}

/// Per-kernel work counters collected by [`drive_trio`].
#[derive(Default, Clone, Copy)]
struct KernelWork {
    checked: u64,
    skipped: u64,
    certificate_spans: u64,
}

fn work(sim: &ExtendedSimulator) -> KernelWork {
    KernelWork {
        checked: sim.samples_checked(),
        skipped: sim.samples_skipped(),
        certificate_spans: sim.certificate_spans(),
    }
}

/// Drives the same command stream through a dense, an adaptive
/// (certificate-off), and a certified simulator over clones of the same
/// world, asserting bit-identical verdicts and mirrored poses at every
/// step. Returns the per-kernel work counters in
/// (dense, adaptive, certified) order plus the verdict mix observed.
fn drive_trio(
    world: SimWorld,
    commands: &[Command],
    label: &str,
) -> ([KernelWork; 3], usize, usize) {
    let st = state();
    let mut dense = sim(world.clone(), Mode::Dense);
    let mut adaptive = sim(world.clone(), Mode::Adaptive);
    let mut certified = sim(world, Mode::Certified);
    let (mut safe, mut collisions) = (0, 0);
    for (k, cmd) in commands.iter().enumerate() {
        let vd = dense.validate(cmd, &st);
        let va = adaptive.validate(cmd, &st);
        let vc = certified.validate(cmd, &st);
        assert_eq!(va, vd, "{label}, command {k} (certificate off): {cmd:?}");
        assert_eq!(vc, vd, "{label}, command {k} (certificate on): {cmd:?}");
        match &vd {
            TrajectoryVerdict::Safe => safe += 1,
            TrajectoryVerdict::Collision(_) => collisions += 1,
            _ => {}
        }
        let pose = dense.arm_configuration(&"ur3e".into());
        assert_eq!(
            adaptive.arm_configuration(&"ur3e".into()),
            pose,
            "{label}, command {k}: adaptive pose diverged"
        );
        assert_eq!(
            certified.arm_configuration(&"ur3e".into()),
            pose,
            "{label}, command {k}: certified pose diverged"
        );
    }
    (
        [work(&dense), work(&adaptive), work(&certified)],
        safe,
        collisions,
    )
}

#[test]
fn adaptive_and_certified_match_dense_over_many_random_worlds() {
    let mut rng = Rng::seed_from_u64(0xADA_517);
    let (mut safe, mut collisions) = (0usize, 0usize);
    let mut totals = [KernelWork::default(); 3];
    for w in 0..WORLDS {
        let commands: Vec<Command> = (0..COMMANDS_PER_WORLD)
            .map(|_| random_command(&mut rng))
            .collect();
        let (runs, s, c) = drive_trio(random_world(&mut rng), &commands, &format!("world {w}"));
        let [dense, adaptive, certified] = runs;
        assert_eq!(dense.skipped, 0, "dense sampling must not skip");
        assert_eq!(
            dense.certificate_spans, 0,
            "dense sampling must not certify spans"
        );
        assert_eq!(
            adaptive.certificate_spans, 0,
            "certificate-off kernel must not certify spans"
        );
        for (name, r) in [("adaptive", &adaptive), ("certified", &certified)] {
            assert_eq!(
                r.checked + r.skipped,
                dense.checked,
                "world {w}: {name} kernel must partition the same polling grid"
            );
        }
        for (i, r) in runs.iter().enumerate() {
            totals[i].checked += r.checked;
            totals[i].skipped += r.skipped;
            totals[i].certificate_spans += r.certificate_spans;
        }
        safe += s;
        collisions += c;
    }
    // The suite must actually exercise both outcomes, real skipping, and
    // real certificate spans, otherwise agreement is vacuous.
    assert!(safe > 20, "only {safe} safe verdicts across the suite");
    assert!(
        collisions > 20,
        "only {collisions} collision verdicts across the suite"
    );
    let [dense, adaptive, certified] = totals;
    assert!(
        adaptive.skipped * 2 > adaptive.checked,
        "adaptive kernel barely skipped: {} skipped vs {} checked ({} dense)",
        adaptive.skipped,
        adaptive.checked,
        dense.checked
    );
    assert!(
        certified.certificate_spans > 0,
        "whole-arm certificate never fired across {WORLDS} worlds"
    );
    // The certificate's union-probe free distance is more conservative
    // per anchor than per-capsule clearance analysis, so it may skip
    // slightly fewer samples — but it must stay in the same regime (it
    // wins on wall clock by making each anchor far cheaper, not by
    // skipping more).
    assert!(
        certified.skipped * 10 > adaptive.skipped * 9,
        "certificates collapsed skipping: {} certified vs {} adaptive",
        certified.skipped,
        adaptive.skipped
    );
}

#[test]
fn near_graze_boundary_is_bit_identical() {
    // Slide a slab through the swept volume of one fixed move in 1 mm
    // steps, from clearly colliding to clearly free. Every position —
    // including the grazing transition — must agree bit for bit across
    // all three kernels, and the scan must actually cross the
    // safe/collision boundary.
    let arm = presets::ur3e();
    let home_tool = arm.tool_position(&arm.home_configuration());
    let target = home_tool + Vec3::new(0.0, 0.25, 0.0);
    let mid = home_tool.lerp(target, 0.5);
    let (mut safe, mut collisions) = (0, 0);
    for step in 0..120 {
        // The slab's top face scans from 7 cm below the mid-path tool
        // point to 5 cm above it, one millimetre at a time.
        let top = mid.z - 0.07 + step as f64 * 0.001;
        let world = SimWorld::new().with_obstacle(
            "slab",
            Aabb::from_center_half_extents(
                Vec3::new(mid.x, mid.y, top - 0.05),
                Vec3::new(0.3, 0.3, 0.05),
            ),
        );
        let cmd = Command::new("ur3e", ActionKind::MoveToLocation { target });
        let (_, s, c) = drive_trio(world, std::slice::from_ref(&cmd), &format!("step {step}"));
        safe += s;
        collisions += c;
    }
    assert!(safe > 0, "the scan never cleared the slab");
    assert!(collisions > 0, "the scan never struck the slab");
}

#[test]
fn mid_run_world_mutation_is_seen_by_all_kernels() {
    // Mutating the world between commands bumps its epoch; the adaptive
    // kernels' temporal-coherence caches must notice and neither serve
    // stale candidates (missing the new obstacle) nor diverge from the
    // dense kernel afterwards.
    let arm = presets::ur3e();
    let home_tool = arm.tool_position(&arm.home_configuration());
    let away = home_tool + Vec3::new(-0.05, 0.18, 0.08);
    let st = state();
    let mut dense = sim(SimWorld::new(), Mode::Dense);
    let mut adaptive = sim(SimWorld::new(), Mode::Adaptive);
    let mut certified = sim(SimWorld::new(), Mode::Certified);

    let go = Command::new("ur3e", ActionKind::MoveToLocation { target: away });
    assert_eq!(dense.validate(&go, &st), TrajectoryVerdict::Safe);
    assert_eq!(adaptive.validate(&go, &st), TrajectoryVerdict::Safe);
    assert_eq!(certified.validate(&go, &st), TrajectoryVerdict::Safe);

    // Drop a crate onto the midpoint of the return path.
    let obstacle =
        Aabb::from_center_half_extents(home_tool.lerp(away, 0.5), Vec3::new(0.06, 0.06, 0.06));
    dense.world_mut().add_obstacle("dropped_crate", obstacle);
    adaptive.world_mut().add_obstacle("dropped_crate", obstacle);
    certified
        .world_mut()
        .add_obstacle("dropped_crate", obstacle);

    let back = Command::new("ur3e", ActionKind::MoveToLocation { target: home_tool });
    let vd = dense.validate(&back, &st);
    let va = adaptive.validate(&back, &st);
    let vc = certified.validate(&back, &st);
    assert_eq!(va, vd, "post-mutation verdicts diverged (certificate off)");
    assert_eq!(vc, vd, "post-mutation verdicts diverged (certificate on)");
    match vd {
        TrajectoryVerdict::Collision(report) => {
            assert_eq!(report.device.as_str(), "dropped_crate");
        }
        other => panic!("expected a collision with the dropped crate, got {other:?}"),
    }
}
